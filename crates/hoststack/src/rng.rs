//! Random samplers for the host-path model.
//!
//! Only `rand`'s uniform source is taken as a dependency; the normal,
//! lognormal and exponential transforms are implemented here (Box–Muller
//! and inverse-CDF) and unit-tested against their analytic moments, so
//! the latency distributions are fully auditable.

use rand::Rng;

/// Standard normal via Box–Muller.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sigma * z
}

/// Lognormal with *location* `mu` and *shape* `sigma` (parameters of the
/// underlying normal): mean = exp(mu + sigma²/2).
pub fn lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Lognormal parameterized by its own mean and the shape `sigma`.
///
/// Useful for calibration: the mean is what Table 4 reports, the shape
/// controls the p99/mean tail ratio (§5.6).
pub fn lognormal_mean<R: Rng>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    let mu = mean.ln() - sigma * sigma / 2.0;
    lognormal(rng, mu, sigma)
}

/// Exponential with the given mean (inverse CDF).
pub fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..200_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let (m, v) = moments(&xs);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.1, "var {v}");
    }

    #[test]
    fn lognormal_mean_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        for target in [12.28, 126.46, 2444.76] {
            let xs: Vec<f64> = (0..200_000)
                .map(|_| lognormal_mean(&mut rng, target, 0.4))
                .collect();
            let (m, _) = moments(&xs);
            assert!(
                (m - target).abs() / target < 0.02,
                "target {target} got {m}"
            );
        }
    }

    #[test]
    fn lognormal_tail_ratio_grows_with_sigma() {
        let mut rng = StdRng::seed_from_u64(3);
        let ratio = |sigma: f64, rng: &mut StdRng| {
            let mut xs: Vec<f64> = (0..100_000)
                .map(|_| lognormal_mean(rng, 100.0, sigma))
                .collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let s = emu_types::Summary::of(&xs).unwrap();
            s.tail_to_average()
        };
        let tight = ratio(0.05, &mut rng);
        let heavy = ratio(0.5, &mut rng);
        assert!(tight < 1.15, "tight {tight}");
        assert!(heavy > 2.0, "heavy {heavy}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..200_000).map(|_| exponential(&mut rng, 7.0)).collect();
        let (m, _) = moments(&xs);
        assert!((m - 7.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn samplers_are_positive() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(lognormal(&mut rng, 0.0, 1.0) > 0.0);
            assert!(exponential(&mut rng, 1.0) >= 0.0);
        }
    }
}
