//! The host receive/transmit path model.
//!
//! §5.2 of the paper: host services run on a 3.5 GHz Xeon E5-2637 v4
//! under Ubuntu 14.04 (kernel 3.13) behind an Intel 82599ES 10 GbE NIC,
//! pinned to a core with a warm cache for latency runs and configured for
//! maximum throughput (multiple cores) for throughput runs.
//!
//! A request traverses explicit stages — NIC DMA, interrupt, softirq /
//! driver, IP + L4 stack, socket wake-up, application, transmit stack,
//! NIC TX — each with a lognormal service time. The stage means follow
//! the breakdown in the authors' own measurement study ("Where has my
//! time gone?", PAM 2017, reference 50 of the paper); the shape
//! parameters are calibrated per service so that the *averages and tail
//! ratios* of Table 4 are reproduced (see `EXPERIMENTS.md` for measured
//! vs paper values). The scheduler/wake-up stage carries most of the
//! variance, which is where Linux tail latency physically comes from.
//!
//! NAT is special: the paper measures it as a loaded gateway (its host
//! throughput column, 1.037 Mq/s, implies near-saturation), so its
//! dominant stage is gateway queueing in the kernel forwarding path —
//! ms-scale, exactly as Table 4 reports.

use crate::rng::lognormal_mean;
use emu_types::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One pipeline stage: a name, a mean (µs), and a lognormal shape.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage name (reported in breakdowns).
    pub name: &'static str,
    /// Mean service time in µs.
    pub mean_us: f64,
    /// Lognormal shape (0 = deterministic-ish, 0.5 = heavy-tailed).
    pub sigma: f64,
}

/// A host service's path profile plus its throughput characteristics.
#[derive(Debug, Clone)]
pub struct HostProfile {
    /// Service name.
    pub name: &'static str,
    /// Receive → application → transmit stages.
    pub stages: Vec<Stage>,
    /// Per-request CPU cost in µs (determines saturation throughput).
    pub cpu_cost_us: f64,
    /// Cores used in the paper's throughput configuration (§5.2: "the
    /// server is configured to achieve maximum throughput").
    pub throughput_cores: usize,
}

fn stage(name: &'static str, mean_us: f64, sigma: f64) -> Stage {
    Stage {
        name,
        mean_us,
        sigma,
    }
}

/// Common kernel receive stages (NIC → socket), with the tail
/// concentrated in the IRQ and wake-up stages.
fn rx_stages(wake_sigma: f64) -> Vec<Stage> {
    vec![
        stage("nic-dma", 1.1, 0.10),
        stage("irq", 2.2, 0.45),
        stage("softirq-driver", 1.6, 0.25),
        stage("ip-l4-stack", 1.3, 0.20),
        stage("socket-wake", 2.4, wake_sigma),
    ]
}

fn tx_stages() -> Vec<Stage> {
    vec![stage("tx-stack", 1.4, 0.20), stage("nic-tx", 0.9, 0.10)]
}

impl HostProfile {
    /// ICMP echo: handled entirely in the kernel (no socket/app stages).
    pub fn icmp() -> Self {
        let mut stages = vec![
            stage("nic-dma", 1.1, 0.10),
            stage("irq", 2.6, 0.60),
            stage("softirq-driver", 1.8, 0.30),
            stage("icmp-kernel", 4.5, 0.55),
        ];
        stages.extend(tx_stages());
        HostProfile {
            name: "icmp-echo",
            stages,
            cpu_cost_us: 0.93,
            throughput_cores: 1,
        }
    }

    /// TCP ping: kernel TCP SYN processing; listen-queue locking gives it
    /// the widest tail of the request/response services (paper ratio 2.98).
    pub fn tcp_ping() -> Self {
        let mut stages = rx_stages(0.9);
        stages.insert(4, stage("tcp-syn-handling", 9.5, 0.85));
        stages.extend(tx_stages());
        HostProfile {
            name: "tcp-ping",
            stages,
            cpu_cost_us: 0.97,
            throughput_cores: 1,
        }
    }

    /// DNS: a user-space resolver (the app stage dominates; its per-query
    /// work is long but *regular*, hence the paper's tight 1.09 ratio).
    pub fn dns() -> Self {
        let mut stages = rx_stages(0.30);
        stages.push(stage("syscall-recv", 2.1, 0.15));
        stages.push(stage("resolver-app", 112.0, 0.035));
        stages.push(stage("syscall-send", 2.0, 0.15));
        stages.extend(tx_stages());
        HostProfile {
            name: "dns",
            stages,
            cpu_cost_us: 4.42,
            throughput_cores: 1,
        }
    }

    /// NAT: the kernel forwarding path of a *loaded* gateway — per-packet
    /// conntrack work is sub-µs, latency is gateway queueing.
    pub fn nat() -> Self {
        HostProfile {
            name: "nat",
            stages: vec![
                stage("nic-dma", 1.1, 0.10),
                stage("gateway-queue", 2430.0, 0.44),
                stage("conntrack-forward", 8.5, 0.40),
                stage("nic-tx", 0.9, 0.10),
            ],
            cpu_cost_us: 0.96,
            throughput_cores: 1,
        }
    }

    /// Memcached: 4 worker threads, UDP + ASCII (§5.4's setup).
    pub fn memcached() -> Self {
        let mut stages = rx_stages(0.38);
        stages.push(stage("syscall-recv", 2.2, 0.18));
        stages.push(stage("memcached-app", 11.5, 0.22));
        stages.push(stage("syscall-send", 2.1, 0.18));
        stages.extend(tx_stages());
        HostProfile {
            name: "memcached",
            stages,
            cpu_cost_us: 4.56,
            throughput_cores: 4,
        }
    }

    /// All five Table 4 profiles.
    pub fn all() -> Vec<HostProfile> {
        vec![
            Self::icmp(),
            Self::tcp_ping(),
            Self::dns(),
            Self::nat(),
            Self::memcached(),
        ]
    }

    /// Samples one request's latency in µs.
    pub fn sample_latency_us(&self, rng: &mut StdRng) -> f64 {
        self.stages
            .iter()
            .map(|s| lognormal_mean(rng, s.mean_us, s.sigma))
            .sum()
    }

    /// Samples one request with a per-stage breakdown (µs).
    pub fn sample_breakdown(&self, rng: &mut StdRng) -> Vec<(&'static str, f64)> {
        self.stages
            .iter()
            .map(|s| (s.name, lognormal_mean(rng, s.mean_us, s.sigma)))
            .collect()
    }

    /// Runs the paper's latency experiment: `n` request/response pairs
    /// (§5.2 uses 100 K), returning the latency summary in nanoseconds
    /// (to match the pipeline simulator's units).
    pub fn latency_run(&self, n: usize, seed: u64) -> Summary {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n)
            .map(|_| self.sample_latency_us(&mut rng) * 1000.0)
            .collect();
        Summary::of(&samples).expect("n > 0")
    }

    /// Saturation throughput in requests/s: a closed-loop run over
    /// `throughput_cores` workers, each consuming `cpu_cost_us` (with
    /// small lognormal noise) per request.
    pub fn throughput_rps(&self, requests: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut core_busy_us = vec![0.0f64; self.throughput_cores];
        for i in 0..requests {
            // Least-loaded dispatch, as RSS/SO_REUSEPORT spreads flows.
            let c = (0..core_busy_us.len())
                .min_by(|&a, &b| {
                    core_busy_us[a]
                        .partial_cmp(&core_busy_us[b])
                        .expect("no NaN")
                })
                .expect("at least one core");
            let _ = i;
            core_busy_us[c] += lognormal_mean(&mut rng, self.cpu_cost_us, 0.05);
        }
        let makespan = core_busy_us.iter().cloned().fold(0.0f64, f64::max);
        requests as f64 / (makespan / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 4 host column: (avg µs, p99 µs, Mq/s).
    const PAPER: [(&str, f64, f64, f64); 5] = [
        ("icmp-echo", 12.28, 22.63, 1.068),
        ("tcp-ping", 21.79, 65.00, 1.012),
        ("dns", 126.46, 138.33, 0.226),
        ("nat", 2444.76, 6185.27, 1.037),
        ("memcached", 24.29, 28.65, 0.876),
    ];

    #[test]
    fn latency_lands_near_paper_values() {
        for (profile, (name, avg, p99, _)) in HostProfile::all().iter().zip(PAPER) {
            assert_eq!(profile.name, name);
            let s = profile.latency_run(100_000, 42);
            let mean_us = s.mean / 1000.0;
            let p99_us = s.p99 / 1000.0;
            assert!(
                (mean_us - avg).abs() / avg < 0.25,
                "{name}: mean {mean_us:.2} vs paper {avg}"
            );
            assert!(
                (p99_us - p99).abs() / p99 < 0.35,
                "{name}: p99 {p99_us:.2} vs paper {p99}"
            );
        }
    }

    #[test]
    fn throughput_lands_near_paper_values() {
        for (profile, (name, _, _, mqps)) in HostProfile::all().iter().zip(PAPER) {
            let got = profile.throughput_rps(200_000, 7) / 1e6;
            assert!(
                (got - mqps).abs() / mqps < 0.15,
                "{name}: {got:.3} Mq/s vs paper {mqps}"
            );
        }
    }

    #[test]
    fn tail_ratios_match_section_5_6() {
        // §5.6: host tail-to-average varies from 1.09 to 2.98.
        let mut ratios: Vec<f64> = HostProfile::all()
            .iter()
            .map(|p| p.latency_run(100_000, 11).tail_to_average())
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        assert!(
            ratios[0] > 1.0 && ratios[0] < 1.2,
            "min ratio {}",
            ratios[0]
        );
        assert!(
            ratios[ratios.len() - 1] > 2.0 && ratios[ratios.len() - 1] < 3.6,
            "max ratio {}",
            ratios[ratios.len() - 1]
        );
    }

    #[test]
    fn breakdown_sums_to_latency_scale() {
        let p = HostProfile::memcached();
        let mut rng = StdRng::seed_from_u64(1);
        let bd = p.sample_breakdown(&mut rng);
        let total: f64 = bd.iter().map(|(_, us)| us).sum();
        assert!(total > 10.0 && total < 100.0, "total {total}");
        assert!(bd.iter().any(|(n, _)| *n == "memcached-app"));
    }

    #[test]
    fn runs_are_reproducible_by_seed() {
        let p = HostProfile::dns();
        let a = p.latency_run(1000, 3);
        let b = p.latency_run(1000, 3);
        assert_eq!(a.mean, b.mean);
        let c = p.latency_run(1000, 4);
        assert_ne!(a.mean, c.mean);
    }
}
