//! Host-native functional implementations of the paper's services.
//!
//! These are the "Linux native counterparts" of §5.4 — ordinary software
//! implementations that run inside the host-path model's application
//! stage. They are deliberately byte-compatible with the Emu services'
//! replies (same checksum conventions, same response formats), which lets
//! the integration tests diff a host service against the same service
//! compiled for the FPGA target — the strongest functional check the
//! reproduction has.

use emu_types::proto::{ether_type, ip_proto, offset};
use emu_types::{bitutil, checksum, Frame, Ipv4};
use std::collections::HashMap;

/// A software network function: frames in, frames out.
pub trait HostService {
    /// Processes one frame.
    fn process(&mut self, frame: &Frame) -> Vec<Frame>;
}

fn is_ipv4(b: &[u8]) -> bool {
    bitutil::get16(b, offset::ETH_TYPE) == ether_type::IPV4 && b[offset::IPV4] >> 4 == 4
}

fn has_options(b: &[u8]) -> bool {
    b[offset::IPV4] & 0xf != 5
}

fn swap_l2_l3(b: &mut [u8]) {
    for i in 0..6 {
        b.swap(offset::ETH_DST + i, offset::ETH_SRC + i);
    }
    for i in 0..4 {
        b.swap(offset::IPV4_SRC + i, offset::IPV4_DST + i);
    }
}

/// ICMP echo responder (kernel behaviour).
#[derive(Debug, Default)]
pub struct HostIcmpEcho;

impl HostService for HostIcmpEcho {
    fn process(&mut self, frame: &Frame) -> Vec<Frame> {
        let b = frame.bytes();
        if !is_ipv4(b)
            || has_options(b)
            || b[offset::IPV4_PROTO] != ip_proto::ICMP
            || b[offset::L4] != 8
        {
            return Vec::new();
        }
        let total = bitutil::get16(b, offset::IPV4 + 2) as usize;
        if !checksum::verify(&b[offset::L4..14 + total]) {
            return Vec::new();
        }
        let mut out = b.to_vec();
        swap_l2_l3(&mut out);
        out[offset::L4] = 0;
        let c = bitutil::get16(&out, offset::L4 + 2);
        bitutil::set16(
            &mut out,
            offset::L4 + 2,
            checksum::update_word(c, 0x0800, 0x0000),
        );
        let mut f = Frame::new(out);
        f.in_port = frame.in_port;
        vec![f]
    }
}

/// Non-recursive DNS resolver over a static zone.
#[derive(Debug)]
pub struct HostDns {
    zone: HashMap<Vec<u8>, Ipv4>,
    /// Maximum accepted wire-name length (mirrors the Emu limit).
    pub max_name: usize,
}

impl HostDns {
    /// Builds a resolver for dotted names.
    pub fn new(zone: Vec<(String, Ipv4)>) -> Self {
        let map = zone
            .into_iter()
            .map(|(n, a)| {
                let wire = crate::dns_wire(&n);
                (wire[..wire.len() - 1].to_vec(), a)
            })
            .collect();
        HostDns {
            zone: map,
            max_name: 26,
        }
    }
}

impl HostService for HostDns {
    fn process(&mut self, frame: &Frame) -> Vec<Frame> {
        let b = frame.bytes();
        if !is_ipv4(b)
            || has_options(b)
            || b[offset::IPV4_PROTO] != ip_proto::UDP
            || bitutil::get16(b, offset::L4 + 2) != 53
            || b[offset::L4 + 8 + 2] & 0x80 != 0
            || bitutil::get16(b, offset::L4 + 8 + 4) != 1
        {
            return Vec::new();
        }
        let q = offset::L4 + 8 + 12;
        // Walk the QNAME.
        let mut i = q;
        while i < b.len() && b[i] != 0 && i - q < self.max_name {
            i += 1;
        }
        let too_long = i - q >= self.max_name;
        let mut out = b.to_vec();
        swap_l2_l3(&mut out);
        out.swap(offset::L4, offset::L4 + 2);
        out.swap(offset::L4 + 1, offset::L4 + 3);
        bitutil::set16(&mut out, offset::L4 + 6, 0); // UDP csum cleared
        let hdr = offset::L4 + 8;
        if too_long {
            bitutil::set16(&mut out, hdr + 2, 0x8184);
            bitutil::set16(&mut out, hdr + 6, 0);
        } else if let Some(addr) = self.zone.get(&b[q..i]) {
            bitutil::set16(&mut out, hdr + 2, 0x8180);
            bitutil::set16(&mut out, hdr + 6, 1);
            let ans = i + 1 + 4;
            let record = [0xc0, 0x0c, 0, 1, 0, 1, 0, 0, 0, 0x3c, 0, 4];
            out.truncate(ans);
            out.extend_from_slice(&record);
            out.extend_from_slice(&addr.octets());
            let new_total = (out.len() - 14) as u16;
            let old_total = bitutil::get16(&out, 16);
            let c = bitutil::get16(&out, offset::IPV4_CSUM);
            bitutil::set16(&mut out, 16, new_total);
            bitutil::set16(
                &mut out,
                offset::IPV4_CSUM,
                checksum::update_word(c, old_total, new_total),
            );
            let udp_len = (out.len() - 34) as u16;
            bitutil::set16(&mut out, offset::L4 + 4, udp_len);
        } else {
            bitutil::set16(&mut out, hdr + 2, 0x8183);
            bitutil::set16(&mut out, hdr + 6, 0);
        }
        let mut f = Frame::new(out);
        f.in_port = frame.in_port;
        vec![f]
    }
}

/// Memcached ASCII-over-UDP server (GET/SET/DELETE, 8-byte values).
#[derive(Debug, Default)]
pub struct HostMemcached {
    store: HashMap<Vec<u8>, [u8; 8]>,
}

impl HostMemcached {
    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

impl HostService for HostMemcached {
    fn process(&mut self, frame: &Frame) -> Vec<Frame> {
        let b = frame.bytes();
        if !is_ipv4(b)
            || has_options(b)
            || b[offset::IPV4_PROTO] != ip_proto::UDP
            || bitutil::get16(b, offset::L4 + 2) != 11211
        {
            return Vec::new();
        }
        let cmd = offset::L4 + 8 + 8;
        let udp_len = bitutil::get16(b, offset::L4 + 4) as usize;
        let text_end = (offset::L4 + udp_len).min(b.len());
        let text = &b[cmd..text_end];
        let key_of = |rest: &[u8]| -> Option<Vec<u8>> {
            let end = rest.iter().position(|&c| c == b' ' || c == b'\r')?;
            if end == 0 || end > 8 {
                return None;
            }
            Some(rest[..end].to_vec())
        };

        let reply: Option<Vec<u8>> = if text.starts_with(b"get ") {
            key_of(&text[4..]).map(|key| match self.store.get(&key) {
                Some(v) => {
                    let mut r = b"VALUE ".to_vec();
                    r.extend_from_slice(&key);
                    r.extend_from_slice(b" 0 8\r\n");
                    r.extend_from_slice(v);
                    r.extend_from_slice(b"\r\nEND\r\n");
                    r
                }
                None => b"END\r\n".to_vec(),
            })
        } else if text.starts_with(b"set ") {
            key_of(&text[4..]).and_then(|key| {
                let nl = text.iter().position(|&c| c == b'\n')?;
                let data = text.get(nl + 1..nl + 9)?;
                let mut v = [0u8; 8];
                v.copy_from_slice(data);
                self.store.insert(key, v);
                Some(b"STORED\r\n".to_vec())
            })
        } else if text.starts_with(b"delete ") {
            key_of(&text[7..]).map(|key| {
                if self.store.remove(&key).is_some() {
                    b"DELETED\r\n".to_vec()
                } else {
                    b"NOT_FOUND\r\n".to_vec()
                }
            })
        } else {
            None
        };

        let Some(reply) = reply else {
            return Vec::new();
        };
        let mut out = b[..cmd].to_vec();
        out.extend_from_slice(&reply);
        swap_l2_l3(&mut out);
        out.swap(offset::L4, offset::L4 + 2);
        out.swap(offset::L4 + 1, offset::L4 + 3);
        bitutil::set16(&mut out, offset::L4 + 6, 0);
        let new_total = (out.len() - 14) as u16;
        let old_total = bitutil::get16(&out, 16);
        let c = bitutil::get16(&out, offset::IPV4_CSUM);
        bitutil::set16(&mut out, 16, new_total);
        bitutil::set16(
            &mut out,
            offset::IPV4_CSUM,
            checksum::update_word(c, old_total, new_total),
        );
        let udp_len = (out.len() - 34) as u16;
        bitutil::set16(&mut out, offset::L4 + 4, udp_len);
        let mut f = Frame::new(out);
        f.in_port = frame.in_port;
        vec![f]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icmp_echo_replies_and_validates() {
        let mut svc = HostIcmpEcho;
        // Reuse a hand-built valid echo request.
        let mut ip = vec![
            0x45, 0, 0, 0x54, 0, 0, 0x40, 0, 0x40, 1, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2,
        ];
        let c = checksum::internet_checksum(&ip);
        ip[10] = (c >> 8) as u8;
        ip[11] = c as u8;
        let mut icmp = vec![8u8, 0, 0, 0, 0, 1, 0, 2];
        icmp.extend_from_slice(&[7; 56]);
        let cc = checksum::internet_checksum(&icmp);
        icmp[2] = (cc >> 8) as u8;
        icmp[3] = cc as u8;
        let mut payload = ip;
        payload.extend_from_slice(&icmp);
        let f = Frame::ethernet(
            emu_types::MacAddr::from_u64(1),
            emu_types::MacAddr::from_u64(2),
            ether_type::IPV4,
            &payload,
        );
        let out = svc.process(&f);
        assert_eq!(out.len(), 1);
        let r = out[0].bytes();
        assert_eq!(r[34], 0);
        assert!(checksum::verify(&r[34..98]));
        // Corrupted checksum: dropped.
        let mut bad = f.clone();
        bad.bytes_mut()[40] ^= 1;
        assert!(svc.process(&bad).is_empty());
    }

    #[test]
    fn memcached_round_trip() {
        let mut svc = HostMemcached::default();
        let set = mc_frame("set foo 0 0 8\r\nAAAABBBB\r\n");
        let out = svc.process(&set);
        assert!(reply_of(&out[0]).starts_with(b"STORED"));
        let get = mc_frame("get foo\r\n");
        let out = svc.process(&get);
        assert_eq!(reply_of(&out[0]), b"VALUE foo 0 8\r\nAAAABBBB\r\nEND\r\n");
        let del = mc_frame("delete foo\r\n");
        assert!(reply_of(&svc.process(&del)[0]).starts_with(b"DELETED"));
        assert!(svc.is_empty());
    }

    fn mc_frame(body: &str) -> Frame {
        let udp_len = 8 + 8 + body.len();
        let total = 20 + udp_len;
        let mut ip = vec![
            0x45,
            0,
            (total >> 8) as u8,
            total as u8,
            0,
            1,
            0x40,
            0,
            0x40,
            17,
            0,
            0,
            10,
            0,
            0,
            9,
            10,
            0,
            0,
            10,
        ];
        let c = checksum::internet_checksum(&ip);
        ip[10] = (c >> 8) as u8;
        ip[11] = c as u8;
        let mut p = ip;
        p.extend_from_slice(&31337u16.to_be_bytes());
        p.extend_from_slice(&11211u16.to_be_bytes());
        p.extend_from_slice(&(udp_len as u16).to_be_bytes());
        p.extend_from_slice(&[0, 0]);
        p.extend_from_slice(&[0, 1, 0, 0, 0, 1, 0, 0]);
        p.extend_from_slice(body.as_bytes());
        Frame::ethernet(
            emu_types::MacAddr::from_u64(1),
            emu_types::MacAddr::from_u64(2),
            ether_type::IPV4,
            &p,
        )
    }

    fn reply_of(f: &Frame) -> Vec<u8> {
        let b = f.bytes();
        let udp_len = bitutil::get16(b, 38) as usize;
        b[50..34 + udp_len].to_vec()
    }

    #[test]
    fn dns_resolves_and_nxdomains() {
        let mut svc = HostDns::new(vec![("a.b".into(), "1.2.3.4".parse().unwrap())]);
        let q = dns_frame("a.b");
        let out = svc.process(&q);
        let b = out[0].bytes();
        assert_eq!(bitutil::get16(b, 48), 1);
        assert_eq!(&b[b.len() - 4..], &[1, 2, 3, 4]);
        assert!(checksum::verify(&b[14..34]));

        let miss = dns_frame("x.y");
        let out = svc.process(&miss);
        assert_eq!(bitutil::get16(out[0].bytes(), 44) & 0xf, 3);
    }

    fn dns_frame(name: &str) -> Frame {
        let qname = crate::dns_wire(name);
        let udp_len = 8 + 12 + qname.len() + 4;
        let total = 20 + udp_len;
        let mut ip = vec![
            0x45,
            0,
            (total >> 8) as u8,
            total as u8,
            0,
            1,
            0x40,
            0,
            0x40,
            17,
            0,
            0,
            10,
            0,
            0,
            9,
            10,
            0,
            0,
            53,
        ];
        let c = checksum::internet_checksum(&ip);
        ip[10] = (c >> 8) as u8;
        ip[11] = c as u8;
        let mut p = ip;
        p.extend_from_slice(&4242u16.to_be_bytes());
        p.extend_from_slice(&53u16.to_be_bytes());
        p.extend_from_slice(&(udp_len as u16).to_be_bytes());
        p.extend_from_slice(&[0, 0]);
        p.extend_from_slice(&[0, 7, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0]);
        p.extend_from_slice(&qname);
        p.extend_from_slice(&[0, 1, 0, 1]);
        Frame::ethernet(
            emu_types::MacAddr::from_u64(1),
            emu_types::MacAddr::from_u64(2),
            ether_type::IPV4,
            &p,
        )
    }
}
