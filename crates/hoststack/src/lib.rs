//! The host baseline: a model of the Linux network path plus host-native
//! service implementations.
//!
//! Table 4 of the paper compares each Emu service against its "Linux
//! native counterpart" measured through the kernel stack (§5.4). This
//! crate provides that side of the comparison:
//!
//! * [`path`] — the staged receive/transmit path model (NIC DMA, IRQ,
//!   softirq, stack, socket wake-up, application) with per-service
//!   profiles calibrated to the paper's averages and tail ratios,
//! * [`services`] — real software implementations of ICMP echo, DNS and
//!   memcached, byte-compatible with the Emu services for differential
//!   testing,
//! * [`workload`] — memaslap- and OSNT-style load generators,
//! * [`rng`] — auditable samplers (Box–Muller, lognormal, exponential).

pub mod path;
pub mod rng;
pub mod services;
pub mod workload;

pub use path::{HostProfile, Stage};
pub use services::{HostDns, HostIcmpEcho, HostMemcached, HostService};
pub use workload::{constant_rate_ns, McOp, Memaslap};

/// DNS wire-format name encoding (shared with the resolver and tests).
pub fn dns_wire(name: &str) -> Vec<u8> {
    let mut out = Vec::new();
    for label in name.split('.').filter(|l| !l.is_empty()) {
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
    out
}
