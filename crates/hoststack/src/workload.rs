//! Workload generation: the memaslap / OSNT analogues.
//!
//! §5.2: "The Memcached evaluation uses the memaslap benchmark,
//! configured to use a mix of 90 % GET and 10 % SET requests with random
//! keys", and "we use the Open Source Network Tester (OSNT) as the
//! traffic source... modifying traffic rate to find the maximum
//! throughput."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One memcached operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McOp {
    /// Read the given key.
    Get(String),
    /// Store `key` with an 8-byte value.
    Set(String, [u8; 8]),
}

impl McOp {
    /// Renders the ASCII request body for this op.
    pub fn request_body(&self) -> String {
        match self {
            McOp::Get(k) => format!("get {k}\r\n"),
            McOp::Set(k, v) => {
                format!("set {k} 0 0 8\r\n{}\r\n", String::from_utf8_lossy(v))
            }
        }
    }

    /// True for SETs, which must be replicated to all cores in the §5.4
    /// multi-core configuration.
    pub fn is_set(&self) -> bool {
        matches!(self, McOp::Set(..))
    }
}

/// memaslap-style generator: fixed keyspace, 90/10 GET/SET, random keys.
#[derive(Debug)]
pub struct Memaslap {
    rng: StdRng,
    keys: Vec<String>,
    /// Probability of a GET (0.9 in the paper's configuration).
    pub get_ratio: f64,
}

impl Memaslap {
    /// Creates a generator over `keyspace` distinct keys (≤8 chars each).
    pub fn new(keyspace: usize, get_ratio: f64, seed: u64) -> Self {
        let keys = (0..keyspace).map(|i| format!("k{i:06}")).collect();
        Memaslap {
            rng: StdRng::seed_from_u64(seed),
            keys,
            get_ratio,
        }
    }

    /// SET ops covering the whole keyspace (cache warm-up).
    pub fn warmup(&mut self) -> Vec<McOp> {
        let mut v = [0u8; 8];
        self.keys
            .iter()
            .map(|k| {
                self.rng.fill(&mut v);
                for b in v.iter_mut() {
                    *b = b'A' + (*b % 26);
                }
                McOp::Set(k.clone(), v)
            })
            .collect()
    }

    /// The next operation under the configured mix.
    pub fn next_op(&mut self) -> McOp {
        let key = self.keys[self.rng.gen_range(0..self.keys.len())].clone();
        if self.rng.gen_bool(self.get_ratio) {
            McOp::Get(key)
        } else {
            let mut v = [0u8; 8];
            self.rng.fill(&mut v);
            for b in v.iter_mut() {
                *b = b'A' + (*b % 26);
            }
            McOp::Set(key, v)
        }
    }

    /// Generates `n` operations.
    pub fn ops(&mut self, n: usize) -> Vec<McOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

/// OSNT-style constant-rate arrival times: `n` arrivals at `rate_pps`
/// starting at `t0_ns`.
pub fn constant_rate_ns(n: usize, rate_pps: f64, t0_ns: f64) -> Vec<f64> {
    let gap = 1e9 / rate_pps;
    (0..n).map(|i| t0_ns + i as f64 * gap).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_ratio_respected() {
        let mut g = Memaslap::new(100, 0.9, 1);
        let ops = g.ops(10_000);
        let gets = ops.iter().filter(|o| !o.is_set()).count();
        let ratio = gets as f64 / ops.len() as f64;
        assert!((ratio - 0.9).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn warmup_covers_keyspace() {
        let mut g = Memaslap::new(50, 0.9, 2);
        let w = g.warmup();
        assert_eq!(w.len(), 50);
        assert!(w.iter().all(|o| o.is_set()));
    }

    #[test]
    fn request_bodies_are_wire_format() {
        assert_eq!(McOp::Get("abc".into()).request_body(), "get abc\r\n");
        let s = McOp::Set("k".into(), *b"AAAABBBB").request_body();
        assert_eq!(s, "set k 0 0 8\r\nAAAABBBB\r\n");
    }

    #[test]
    fn values_are_printable_ascii() {
        let mut g = Memaslap::new(10, 0.0, 3);
        for op in g.ops(100) {
            if let McOp::Set(_, v) = op {
                assert!(v.iter().all(|b| b.is_ascii_uppercase()));
            }
        }
    }

    #[test]
    fn constant_rate_spacing() {
        let ts = constant_rate_ns(4, 1e9 / 16.8, 100.0);
        assert!((ts[1] - ts[0] - 16.8).abs() < 1e-9);
        assert_eq!(ts.len(), 4);
        assert_eq!(ts[0], 100.0);
    }

    #[test]
    fn generator_is_deterministic_by_seed() {
        let a = Memaslap::new(10, 0.9, 7).ops(20);
        let b = Memaslap::new(10, 0.9, 7).ops(20);
        assert_eq!(a, b);
    }
}
