//! A Mininet-analogue network simulator — the paper's third target.
//!
//! §3.3: "By using virtual interfaces, developers can test network
//! functions in a simulator", and §4.4 compiles the NAT service "to
//! three different targets: software, Mininet, and hardware". This crate
//! provides that middle target: a discrete-event network of hosts and
//! links where service nodes run the *same IR program* via the CPU
//! backend (`emu_core::Target::Cpu`), attached to virtual interfaces.
//!
//! Links model propagation delay and serialization at a configurable
//! rate; frames are delivered in global time order.

use emu_core::Engine;
use emu_types::Frame;
use kiwi_ir::IrResult;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Node handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// A received frame with its arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Arrival time (ns).
    pub t_ns: f64,
    /// The frame (with `in_port` set to the arrival interface).
    pub frame: Frame,
}

enum NodeKind {
    /// An end host: frames accumulate in its inbox.
    Host { inbox: Vec<Delivery> },
    /// A service node: an [`Engine`] of 1..N pipelines, built by the
    /// caller — the same engine (and dispatch policy) every other target
    /// uses, so the Mininet-analogue exercises identical behaviour.
    Service(Box<Engine>),
}

struct Node {
    name: String,
    kind: NodeKind,
    /// Interface table: port index → (link id) when connected.
    ifaces: Vec<Option<usize>>,
}

#[derive(Debug, Clone, Copy)]
struct Link {
    a: (usize, usize), // (node, port)
    b: (usize, usize),
    delay_ns: f64,
    gbps: f64,
    busy_until_ns: f64,
}

struct Event {
    t_ns: f64,
    seq: u64,
    dst_node: usize,
    dst_port: usize,
    frame: Frame,
}

impl PartialEq for Event {
    fn eq(&self, o: &Self) -> bool {
        self.t_ns == o.t_ns && self.seq == o.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Event {
    fn cmp(&self, o: &Self) -> Ordering {
        // Min-heap by time (BinaryHeap is a max-heap), ties by sequence.
        o.t_ns
            .partial_cmp(&self.t_ns)
            .expect("no NaN times")
            .then(o.seq.cmp(&self.seq))
    }
}

/// The network simulator.
pub struct NetSim {
    nodes: Vec<Node>,
    links: Vec<Link>,
    events: BinaryHeap<Event>,
    time_ns: f64,
    seq: u64,
    /// Frames delivered to a port with no link attached.
    pub dropped_no_link: u64,
}

impl Default for NetSim {
    fn default() -> Self {
        Self::new()
    }
}

impl NetSim {
    /// Creates an empty network.
    pub fn new() -> Self {
        NetSim {
            nodes: Vec::new(),
            links: Vec::new(),
            events: BinaryHeap::new(),
            time_ns: 0.0,
            seq: 0,
            dropped_no_link: 0,
        }
    }

    /// Adds an end host with `ports` interfaces.
    pub fn add_host(&mut self, name: &str, ports: usize) -> NodeId {
        self.nodes.push(Node {
            name: name.to_string(),
            kind: NodeKind::Host { inbox: Vec::new() },
            ifaces: vec![None; ports],
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a service node running a caller-built [`Engine`] with
    /// `ports` interfaces. The engine carries the whole execution
    /// configuration — shard count, dispatch policy, target — so a
    /// single-pipeline node and a sharded scale-out node are the same
    /// API:
    ///
    /// ```ignore
    /// let node = net.add_service("nat", svc.engine(Target::Cpu).shards(4).build()?, 4);
    /// ```
    ///
    /// Service nodes conventionally run the CPU target (Mininet gives
    /// functional, not temporal, fidelity), but any engine works.
    pub fn add_service(&mut self, name: &str, engine: Engine, ports: usize) -> NodeId {
        self.nodes.push(Node {
            name: name.to_string(),
            kind: NodeKind::Service(Box::new(engine)),
            ifaces: vec![None; ports],
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Connects `a.port_a ↔ b.port_b` with the given delay and rate.
    ///
    /// # Panics
    ///
    /// Panics if either port is out of range or already connected.
    pub fn link(
        &mut self,
        a: NodeId,
        port_a: usize,
        b: NodeId,
        port_b: usize,
        delay_ns: f64,
        gbps: f64,
    ) {
        assert!(self.nodes[a.0].ifaces[port_a].is_none(), "port in use");
        assert!(self.nodes[b.0].ifaces[port_b].is_none(), "port in use");
        let id = self.links.len();
        self.links.push(Link {
            a: (a.0, port_a),
            b: (b.0, port_b),
            delay_ns,
            gbps,
            busy_until_ns: 0.0,
        });
        self.nodes[a.0].ifaces[port_a] = Some(id);
        self.nodes[b.0].ifaces[port_b] = Some(id);
    }

    /// Current simulation time.
    pub fn now_ns(&self) -> f64 {
        self.time_ns
    }

    /// Injects a frame leaving `node`'s `port` at time `t_ns`.
    pub fn send(&mut self, node: NodeId, port: usize, frame: Frame, t_ns: f64) {
        self.transmit(node.0, port, frame, t_ns);
    }

    fn transmit(&mut self, node: usize, port: usize, frame: Frame, t_ns: f64) {
        let Some(&Some(link_id)) = self.nodes[node].ifaces.get(port) else {
            self.dropped_no_link += 1;
            return;
        };
        let link = &mut self.links[link_id];
        let ser_ns = frame.wire_bytes() as f64 * 8.0 / link.gbps;
        let start = t_ns.max(link.busy_until_ns);
        link.busy_until_ns = start + ser_ns;
        let arrive = start + ser_ns + link.delay_ns;
        let (dst_node, dst_port) = if link.a.0 == node && link.a.1 == port {
            link.b
        } else {
            link.a
        };
        self.seq += 1;
        self.events.push(Event {
            t_ns: arrive,
            seq: self.seq,
            dst_node,
            dst_port,
            frame,
        });
    }

    /// Runs until the event queue drains or `t_end_ns` passes. Returns the
    /// number of events processed.
    pub fn run_until(&mut self, t_end_ns: f64) -> IrResult<u64> {
        let mut processed = 0;
        while let Some(ev) = self.events.peek() {
            if ev.t_ns > t_end_ns {
                break;
            }
            let ev = self.events.pop().expect("peeked");
            self.time_ns = ev.t_ns;
            processed += 1;
            let mut frame = ev.frame;
            frame.in_port = ev.dst_port as u8;
            let out = match &mut self.nodes[ev.dst_node].kind {
                NodeKind::Host { inbox } => {
                    inbox.push(Delivery {
                        t_ns: ev.t_ns,
                        frame,
                    });
                    continue;
                }
                NodeKind::Service(engine) => engine.process(&frame)?,
            };
            // Service processing time on the CPU target is not modelled
            // (Mininet gives functional, not temporal, fidelity);
            // transmissions leave "immediately".
            let t = ev.t_ns;
            let n_ports = self.nodes[ev.dst_node].ifaces.len();
            for tx in out.tx {
                for p in 0..n_ports {
                    if tx.ports & (1 << p) != 0 {
                        self.transmit(ev.dst_node, p, tx.frame.clone(), t);
                    }
                }
            }
        }
        Ok(processed)
    }

    /// Drains a host's inbox.
    pub fn inbox(&mut self, host: NodeId) -> Vec<Delivery> {
        match &mut self.nodes[host.0].kind {
            NodeKind::Host { inbox } => std::mem::take(inbox),
            NodeKind::Service(_) => Vec::new(),
        }
    }

    /// Node name (diagnostics).
    pub fn name(&self, n: NodeId) -> &str {
        &self.nodes[n.0].name
    }

    /// Access a service node's engine (register/shard inspection in
    /// tests) — the one accessor for every node shape.
    pub fn engine_mut(&mut self, n: NodeId) -> Option<&mut Engine> {
        match &mut self.nodes[n.0].kind {
            NodeKind::Service(engine) => Some(engine),
            NodeKind::Host { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::{service_builder, Service, Target};
    use kiwi_ir::dsl::*;

    fn cpu_engine(svc: &Service, shards: usize) -> Engine {
        svc.engine(Target::Cpu).shards(shards).build().unwrap()
    }

    fn mirror_service() -> Service {
        let (mut pb, dp) = service_builder("mirror", 1536);
        let mut body = vec![dp.rx_wait(), dp.set_output_port(dp.input_port())];
        body.extend(dp.transmit(dp.rx_len()));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        Service::new(pb.build().unwrap())
    }

    #[test]
    fn frame_crosses_a_link_with_delay() {
        let mut net = NetSim::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        net.link(a, 0, b, 0, 1000.0, 10.0);
        net.send(a, 0, Frame::new(vec![0xaa; 60]), 0.0);
        net.run_until(1e9).unwrap();
        let inbox = net.inbox(b);
        assert_eq!(inbox.len(), 1);
        // 80 wire bytes at 10G = 64 ns + 1000 ns propagation.
        assert!((inbox[0].t_ns - 1064.0).abs() < 1e-9, "t {}", inbox[0].t_ns);
    }

    #[test]
    fn mirror_node_reflects() {
        let mut net = NetSim::new();
        let h = net.add_host("h", 1);
        let m = net.add_service("mirror", cpu_engine(&mirror_service(), 1), 4);
        net.link(h, 0, m, 2, 500.0, 10.0);
        net.send(h, 0, Frame::new(vec![1; 60]), 0.0);
        net.run_until(1e9).unwrap();
        let inbox = net.inbox(h);
        assert_eq!(inbox.len(), 1, "mirrored frame must come back");
        // Round trip: 2 × (serialization + delay).
        assert!(inbox[0].t_ns > 1000.0);
    }

    #[test]
    fn switch_learns_across_the_network() {
        let mut net = NetSim::new();
        let sw = net.add_service("sw", cpu_engine(&emu_services::switch_ip_cam(), 1), 4);
        let h: Vec<NodeId> = (0..4)
            .map(|i| {
                let h = net.add_host(&format!("h{i}"), 1);
                net.link(h, 0, sw, i, 100.0, 10.0);
                h
            })
            .collect();

        let mac = |i: u64| emu_types::MacAddr::from_u64(0x10 + i);
        // h0 -> h1 (unknown: floods to h1,h2,h3).
        let f = Frame::ethernet(mac(1), mac(0), 0x0800, &[0; 46]);
        net.send(h[0], 0, f, 0.0);
        net.run_until(1e6).unwrap();
        assert_eq!(net.inbox(h[1]).len(), 1);
        assert_eq!(net.inbox(h[2]).len(), 1);
        assert_eq!(net.inbox(h[3]).len(), 1);
        assert!(net.inbox(h[0]).is_empty(), "no hairpin");

        // h1 -> h0 (learned: unicast).
        let f = Frame::ethernet(mac(0), mac(1), 0x0800, &[0; 46]);
        net.send(h[1], 0, f, 1e6);
        net.run_until(2e6).unwrap();
        assert_eq!(net.inbox(h[0]).len(), 1);
        assert!(net.inbox(h[2]).is_empty());
        assert!(net.inbox(h[3]).is_empty());
    }

    #[test]
    fn sharded_mirror_node_reflects_like_single() {
        // The same topology behaves identically whether the service node
        // is a single instance or a sharded engine (mirror is stateless).
        let run = |shards: usize| {
            let mut net = NetSim::new();
            let h = net.add_host("h", 1);
            let svc = mirror_service();
            let m = net.add_service("mirror", cpu_engine(&svc, shards), 4);
            net.link(h, 0, m, 2, 500.0, 10.0);
            for i in 0..6u8 {
                net.send(
                    h,
                    0,
                    Frame::new(vec![i; 60 + i as usize * 9]),
                    i as f64 * 1e4,
                );
            }
            net.run_until(1e9).unwrap();
            net.inbox(h)
        };
        let single = run(1);
        let sharded = run(4);
        assert_eq!(single.len(), 6);
        assert_eq!(single, sharded);
    }

    #[test]
    fn service_node_exposes_engine() {
        let mut net = NetSim::new();
        let m = net.add_service("mirror", cpu_engine(&mirror_service(), 3), 4);
        let h = net.add_host("h", 1);
        assert_eq!(net.engine_mut(m).unwrap().num_shards(), 3);
        assert!(net.engine_mut(h).is_none());
    }

    #[test]
    fn unlinked_port_drops() {
        let mut net = NetSim::new();
        let h = net.add_host("h", 2);
        net.send(h, 1, Frame::new(vec![0; 60]), 0.0);
        net.run_until(1e9).unwrap();
        assert_eq!(net.dropped_no_link, 1);
    }

    #[test]
    fn serialization_queues_back_to_back_frames() {
        let mut net = NetSim::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        net.link(a, 0, b, 0, 0.0, 10.0);
        for _ in 0..3 {
            net.send(a, 0, Frame::new(vec![0; 60]), 0.0);
        }
        net.run_until(1e9).unwrap();
        let inbox = net.inbox(b);
        assert_eq!(inbox.len(), 3);
        // Arrivals spaced by one 80-byte serialization time (64 ns).
        assert!((inbox[1].t_ns - inbox[0].t_ns - 64.0).abs() < 1e-9);
        assert!((inbox[2].t_ns - inbox[1].t_ns - 64.0).abs() < 1e-9);
    }
}
