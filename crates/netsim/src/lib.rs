//! A Mininet-analogue network simulator — the paper's third target.
//!
//! §3.3: "By using virtual interfaces, developers can test network
//! functions in a simulator", and §4.4 compiles the NAT service "to
//! three different targets: software, Mininet, and hardware". This crate
//! provides that middle target: a discrete-event network of hosts and
//! links where service nodes run the *same IR program* via the CPU
//! backend (`emu_core::Target::Cpu`), attached to virtual interfaces.
//!
//! Links model propagation delay and serialization at a configurable
//! rate; frames are delivered in global time order. Each direction of a
//! link is an independent lane (full duplex): serialization on a→b
//! never delays b→a.
//!
//! Links can additionally carry seeded **impairments** — loss,
//! duplication, and reorder jitter — layered on the delay/rate model
//! (see [`Impairments`]). Emulation work (Lochin et al., *When Should I
//! Use Network Emulation?*) shows impaired links are what separate a
//! demo topology from a testbed; impairments here are deterministic per
//! seed, so an impaired scenario replays exactly.
//!
//! Service nodes carry **per-node drop accounting**: an engine refusing
//! one frame (oversize input, trapping core) increments the node's drop
//! counter ([`NetSim::service_drops`]) instead of aborting the
//! simulation, so adversarial traffic mixes can soak whole topologies.
//! Only simulation-fatal engine errors (`Build`, `Poisoned`) abort
//! [`NetSim::run_until`].
//!
//! Endpoints come in two shapes. A **host** is a passive inbox the
//! harness inspects after the run. An **agent** ([`HostAgent`],
//! [`NetSim::add_agent`]) is a closed-loop endpoint that reacts *inside*
//! the event loop: the simulator delivers frames and one-shot **timer**
//! events to it, and it answers with frames-to-send and timers-to-arm —
//! enough to express retransmission timeouts, exponential backoff, and
//! request/response dialogues (the `emu-hosts` crate builds TCP,
//! memcached, and DNS clients on this). Optionally,
//! [`NetSim::set_ns_per_cycle`] converts each service engine's model
//! cycle count into simulated processing latency, so closed-loop
//! round-trip times include service time and stay deterministic per
//! seed.

use emu_core::{Engine, EngineError};
use emu_telemetry::Json;
use emu_types::Frame;
use kiwi_ir::IrResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Frames to send and timers to arm, returned by a [`HostAgent`]
/// callback. Sends leave the agent's interfaces at the callback's
/// `now_ns`; timers fire as [`HostAgent::on_timer`] events at their
/// absolute times (clamped to never fire in the past).
#[derive(Debug, Default)]
pub struct AgentOutput {
    /// `(port, frame)` transmissions, in order.
    pub tx: Vec<(usize, Frame)>,
    /// `(at_ns, token)` one-shot timers to arm.
    pub timers: Vec<(f64, u64)>,
}

impl AgentOutput {
    /// No sends, no timers.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a transmission out of `port`.
    pub fn send(mut self, port: usize, frame: Frame) -> Self {
        self.tx.push((port, frame));
        self
    }

    /// Arms a one-shot timer for absolute time `at_ns` carrying `token`.
    pub fn arm(mut self, at_ns: f64, token: u64) -> Self {
        self.timers.push((at_ns, token));
        self
    }
}

/// A closed-loop endpoint living *inside* the event loop: where a
/// plain host node's inbox only accumulates deliveries for the harness
/// to inspect afterwards, an agent reacts to frames and to its own
/// timers **at simulation time** — it can retransmit on timeout, back
/// off, suppress duplicates, and issue its next request the moment a
/// response lands. This is the fidelity gap named by the emulation
/// literature (temporal behaviour, not just functional correctness) and
/// the ROADMAP's closed-loop-hosts item.
///
/// Timers are one-shot and carry an opaque `token`; there is no cancel —
/// agents implement cancellation by ignoring stale tokens (the idiomatic
/// discrete-event pattern: a retransmission timer that fires after the
/// response already arrived simply matches no outstanding request).
///
/// `emu-hosts` provides the standard implementations (TCP handshake
/// client, memcached/DNS request clients, NAT-side responder); anything
/// implementing this trait can be attached with [`NetSim::add_agent`].
pub trait HostAgent {
    /// A frame arrived on `port` at `now_ns`.
    fn on_frame(&mut self, now_ns: f64, port: usize, frame: &Frame) -> AgentOutput;

    /// A timer armed with `token` fired at `now_ns`.
    fn on_timer(&mut self, now_ns: f64, token: u64) -> AgentOutput;

    /// Optional telemetry snapshot, folded into [`NetSim::telemetry`]
    /// under the node's `agent` key. Implementations should emit only
    /// simulation-time quantities so snapshots stay deterministic per
    /// seed.
    fn telemetry(&self) -> Option<Json> {
        None
    }

    /// Concrete-type access for harvesting typed stats in tests and
    /// benches (see [`NetSim::agent_as`]).
    fn as_any(&self) -> &dyn Any;

    /// Mutable concrete-type access.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Node handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Link handle, returned by [`NetSim::link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Seeded link impairments: probabilities are per transmitted frame,
/// drawn from a per-link RNG seeded by [`Impairments::seed`] — the same
/// seed and traffic always produce the same deliveries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Impairments {
    /// Probability a frame is lost after occupying the wire.
    pub loss: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame's arrival is jittered (which reorders it
    /// relative to close neighbours).
    pub reorder: f64,
    /// Maximum extra delay added to a jittered frame (ns).
    pub jitter_ns: f64,
    /// RNG seed for this link's draws.
    pub seed: u64,
}

/// Frame-count accounting for impaired links: every offered frame is
/// either delivered or counted lost, and duplicates are counted on top
/// (`delivered == offered - lost + duplicated`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImpairStats {
    /// Frames dropped by link loss.
    pub lost: u64,
    /// Extra copies delivered by duplication.
    pub duplicated: u64,
    /// Frames whose arrival was jittered.
    pub reordered: u64,
}

/// A received frame with its arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Arrival time (ns).
    pub t_ns: f64,
    /// The frame (with `in_port` set to the arrival interface).
    pub frame: Frame,
}

enum NodeKind {
    /// An end host: frames accumulate in its inbox.
    Host { inbox: Vec<Delivery> },
    /// A service node: an [`Engine`] of 1..N pipelines, built by the
    /// caller — the same engine (and dispatch policy) every other target
    /// uses, so the Mininet-analogue exercises identical behaviour.
    Service(Box<Engine>),
    /// A closed-loop endpoint agent reacting to frames and timers
    /// inside `run_until` (see [`HostAgent`]).
    Agent(Box<dyn HostAgent>),
}

struct Node {
    name: String,
    kind: NodeKind,
    /// Interface table: port index → (link id) when connected.
    ifaces: Vec<Option<usize>>,
    /// Frames this node's engine refused per-frame (oversize input or a
    /// trapping core) — the per-node drop accounting that lets
    /// adversarial mixes run through topologies without aborting the
    /// simulation. Always zero for hosts.
    drops: u64,
    /// The most recent drop's error text (diagnostics).
    last_drop: Option<String>,
}

struct Link {
    a: (usize, usize), // (node, port)
    b: (usize, usize),
    delay_ns: f64,
    gbps: f64,
    /// Per-direction serialization horizon: `[0]` is the a→b lane,
    /// `[1]` the b→a lane. A full-duplex link's directions never
    /// contend for the wire.
    busy_until_ns: [f64; 2],
    /// Impairment model and its private RNG, when configured.
    impair: Option<(Impairments, StdRng)>,
}

enum Payload {
    /// A frame arriving on `dst_port`.
    Deliver { dst_port: usize, frame: Frame },
    /// An agent's one-shot timer carrying its token.
    Timer { token: u64 },
}

struct Event {
    t_ns: f64,
    seq: u64,
    dst_node: usize,
    payload: Payload,
}

impl PartialEq for Event {
    fn eq(&self, o: &Self) -> bool {
        self.t_ns == o.t_ns && self.seq == o.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Event {
    fn cmp(&self, o: &Self) -> Ordering {
        // Min-heap by time (BinaryHeap is a max-heap), ties by sequence.
        o.t_ns
            .partial_cmp(&self.t_ns)
            .expect("no NaN times")
            .then(o.seq.cmp(&self.seq))
    }
}

/// The network simulator.
pub struct NetSim {
    nodes: Vec<Node>,
    links: Vec<Link>,
    events: BinaryHeap<Event>,
    time_ns: f64,
    seq: u64,
    /// Service processing latency: ns of simulated time per model cycle
    /// consumed by a service node's engine (default 0.0 — transmissions
    /// leave "immediately", the pre-timer behaviour).
    ns_per_cycle: f64,
    /// Frames delivered to a port with no link attached.
    pub dropped_no_link: u64,
    /// Aggregate impairment accounting across every impaired link.
    pub impair_stats: ImpairStats,
}

impl Default for NetSim {
    fn default() -> Self {
        Self::new()
    }
}

impl NetSim {
    /// Creates an empty network.
    pub fn new() -> Self {
        NetSim {
            nodes: Vec::new(),
            links: Vec::new(),
            events: BinaryHeap::new(),
            time_ns: 0.0,
            seq: 0,
            ns_per_cycle: 0.0,
            dropped_no_link: 0,
            impair_stats: ImpairStats::default(),
        }
    }

    /// Models service processing latency: every frame a service node
    /// handles delays its transmissions by `cycles × ns`, where
    /// `cycles` is the engine's model-cycle count for that frame (the
    /// same quantity the telemetry histograms record). The `sustained`
    /// bench's convention is 5 ns/cycle (`netfpga_sim::timing`'s 200 MHz
    /// core clock); the default `0.0` preserves the historical
    /// "transmit immediately" behaviour. With a non-zero value,
    /// closed-loop round-trip times become meaningful — and stay
    /// deterministic per seed, because model cycles are deterministic.
    pub fn set_ns_per_cycle(&mut self, ns: f64) {
        assert!(ns >= 0.0 && ns.is_finite(), "ns_per_cycle must be finite");
        self.ns_per_cycle = ns;
    }

    /// Adds an end host with `ports` interfaces.
    pub fn add_host(&mut self, name: &str, ports: usize) -> NodeId {
        self.nodes.push(Node {
            name: name.to_string(),
            kind: NodeKind::Host { inbox: Vec::new() },
            ifaces: vec![None; ports],
            drops: 0,
            last_drop: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a service node running a caller-built [`Engine`] with
    /// `ports` interfaces. The engine carries the whole execution
    /// configuration — shard count, dispatch policy, target — so a
    /// single-pipeline node and a sharded scale-out node are the same
    /// API:
    ///
    /// ```ignore
    /// let node = net.add_service("nat", svc.engine(Target::Cpu).shards(4).build()?, 4);
    /// ```
    ///
    /// Service nodes conventionally run the CPU target (Mininet gives
    /// functional, not temporal, fidelity), but any engine works.
    pub fn add_service(&mut self, name: &str, engine: Engine, ports: usize) -> NodeId {
        self.nodes.push(Node {
            name: name.to_string(),
            kind: NodeKind::Service(Box::new(engine)),
            ifaces: vec![None; ports],
            drops: 0,
            last_drop: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a closed-loop endpoint agent with `ports` interfaces. The
    /// agent's [`HostAgent::on_frame`]/[`HostAgent::on_timer`] callbacks
    /// run inside [`NetSim::run_until`]; kick it off by arming its first
    /// timer with [`NetSim::arm_timer`] (or by sending it a frame).
    pub fn add_agent(&mut self, name: &str, agent: Box<dyn HostAgent>, ports: usize) -> NodeId {
        self.nodes.push(Node {
            name: name.to_string(),
            kind: NodeKind::Agent(agent),
            ifaces: vec![None; ports],
            drops: 0,
            last_drop: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Arms a one-shot timer on an agent node: at `at_ns` (or the
    /// current simulation time, whichever is later) the agent's
    /// [`HostAgent::on_timer`] runs with `token`. This is how a harness
    /// starts agents before the first `run_until`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an agent node.
    pub fn arm_timer(&mut self, node: NodeId, at_ns: f64, token: u64) {
        assert!(
            matches!(self.nodes[node.0].kind, NodeKind::Agent(_)),
            "arm_timer: node {} ({:?}) is not an agent",
            self.nodes[node.0].name,
            node,
        );
        self.push_timer(node.0, at_ns.max(self.time_ns), token);
    }

    fn push_timer(&mut self, node: usize, at_ns: f64, token: u64) {
        self.seq += 1;
        self.events.push(Event {
            t_ns: at_ns,
            seq: self.seq,
            dst_node: node,
            payload: Payload::Timer { token },
        });
    }

    /// Connects `a.port_a ↔ b.port_b` with the given delay and rate,
    /// returning a handle for further configuration ([`NetSim::impair`]).
    ///
    /// # Panics
    ///
    /// Panics if either port is out of range or already connected.
    pub fn link(
        &mut self,
        a: NodeId,
        port_a: usize,
        b: NodeId,
        port_b: usize,
        delay_ns: f64,
        gbps: f64,
    ) -> LinkId {
        assert!(self.nodes[a.0].ifaces[port_a].is_none(), "port in use");
        assert!(self.nodes[b.0].ifaces[port_b].is_none(), "port in use");
        let id = self.links.len();
        self.links.push(Link {
            a: (a.0, port_a),
            b: (b.0, port_b),
            delay_ns,
            gbps,
            busy_until_ns: [0.0; 2],
            impair: None,
        });
        self.nodes[a.0].ifaces[port_a] = Some(id);
        self.nodes[b.0].ifaces[port_b] = Some(id);
        LinkId(id)
    }

    /// Attaches seeded impairments to a link (both directions share the
    /// configuration and the RNG).
    pub fn impair(&mut self, link: LinkId, imp: Impairments) {
        self.links[link.0].impair = Some((imp, StdRng::seed_from_u64(imp.seed ^ 0x11e7_51f1)));
    }

    /// Current simulation time.
    pub fn now_ns(&self) -> f64 {
        self.time_ns
    }

    /// Injects a frame leaving `node`'s `port` at time `t_ns`.
    pub fn send(&mut self, node: NodeId, port: usize, frame: Frame, t_ns: f64) {
        self.transmit(node.0, port, frame, t_ns);
    }

    fn transmit(&mut self, node: usize, port: usize, frame: Frame, t_ns: f64) {
        let Some(&Some(link_id)) = self.nodes[node].ifaces.get(port) else {
            self.dropped_no_link += 1;
            return;
        };
        let link = &mut self.links[link_id];
        // Serialization occupies only this direction's lane: a full-
        // duplex link's two directions never contend for the wire.
        let dir = usize::from(!(link.a.0 == node && link.a.1 == port));
        let ser_ns = frame.wire_bytes() as f64 * 8.0 / link.gbps;
        let start = t_ns.max(link.busy_until_ns[dir]);
        link.busy_until_ns[dir] = start + ser_ns;
        let arrive = start + ser_ns + link.delay_ns;
        let (dst_node, dst_port) = if dir == 0 { link.b } else { link.a };

        // Impairments: the frame occupied the wire either way; it is
        // then lost, delivered (possibly jittered), and possibly
        // delivered twice. Draws come from the link's seeded RNG in a
        // fixed order, so a seed fully determines the outcome sequence.
        let mut deliveries: Vec<f64> = Vec::with_capacity(1);
        match &mut link.impair {
            None => deliveries.push(arrive),
            Some((imp, rng)) => {
                if imp.loss > 0.0 && rng.gen_bool(imp.loss) {
                    self.impair_stats.lost += 1;
                } else {
                    let mut jittered = arrive;
                    if imp.reorder > 0.0 && imp.jitter_ns > 0.0 && rng.gen_bool(imp.reorder) {
                        jittered += rng.gen_range(0.0..imp.jitter_ns);
                        self.impair_stats.reordered += 1;
                    }
                    deliveries.push(jittered);
                    if imp.duplicate > 0.0 && rng.gen_bool(imp.duplicate) {
                        let mut copy = arrive;
                        if imp.reorder > 0.0 && imp.jitter_ns > 0.0 && rng.gen_bool(imp.reorder) {
                            copy += rng.gen_range(0.0..imp.jitter_ns);
                        }
                        deliveries.push(copy);
                        self.impair_stats.duplicated += 1;
                    }
                }
            }
        }
        // Move the frame into the last delivery; only duplicates clone.
        let last = deliveries.pop();
        for t in deliveries {
            self.seq += 1;
            self.events.push(Event {
                t_ns: t,
                seq: self.seq,
                dst_node,
                payload: Payload::Deliver {
                    dst_port,
                    frame: frame.clone(),
                },
            });
        }
        if let Some(t) = last {
            self.seq += 1;
            self.events.push(Event {
                t_ns: t,
                seq: self.seq,
                dst_node,
                payload: Payload::Deliver { dst_port, frame },
            });
        }
    }

    /// Runs until the event queue drains or `t_end_ns` passes. Returns the
    /// number of events processed.
    ///
    /// A service node refusing one frame — [`EngineError::Oversize`]
    /// input validation or a [`EngineError::Trap`] out of the core — is
    /// a *per-node drop* ([`NetSim::service_drops`]), exactly as a real
    /// NIC counts rx errors, so adversarial mixes run whole topologies
    /// without killing the simulation. Simulation-fatal errors —
    /// [`EngineError::Build`] and [`EngineError::Poisoned`] (the node
    /// kept receiving traffic after a trap already poisoned the shard) —
    /// still abort.
    pub fn run_until(&mut self, t_end_ns: f64) -> IrResult<u64> {
        let mut processed = 0;
        while let Some(ev) = self.events.peek() {
            if ev.t_ns > t_end_ns {
                break;
            }
            let ev = self.events.pop().expect("peeked");
            self.time_ns = ev.t_ns;
            processed += 1;
            let (mut frame, dst_port) = match ev.payload {
                Payload::Timer { token } => {
                    // Timers only target agent nodes (`arm_timer`
                    // asserts at arm time; agents arm only themselves).
                    let NodeKind::Agent(agent) = &mut self.nodes[ev.dst_node].kind else {
                        debug_assert!(false, "timer fired on a non-agent node");
                        continue;
                    };
                    let out = agent.on_timer(ev.t_ns, token);
                    self.apply_agent_output(ev.dst_node, ev.t_ns, out);
                    continue;
                }
                Payload::Deliver { dst_port, frame } => (frame, dst_port),
            };
            frame.in_port = dst_port as u8;
            let node = &mut self.nodes[ev.dst_node];
            let out = match &mut node.kind {
                NodeKind::Host { inbox } => {
                    inbox.push(Delivery {
                        t_ns: ev.t_ns,
                        frame,
                    });
                    continue;
                }
                NodeKind::Agent(agent) => {
                    let out = agent.on_frame(ev.t_ns, dst_port, &frame);
                    self.apply_agent_output(ev.dst_node, ev.t_ns, out);
                    continue;
                }
                NodeKind::Service(engine) => match engine.process(&frame) {
                    Ok(out) => out,
                    Err(e @ (EngineError::Oversize { .. } | EngineError::Trap { .. })) => {
                        node.drops += 1;
                        node.last_drop = Some(e.to_string());
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                },
            };
            // Service processing time: by default transmissions leave
            // "immediately" (Mininet gives functional, not temporal,
            // fidelity); with `set_ns_per_cycle` the engine's model
            // cycle count for this frame delays its transmissions, so
            // closed-loop RTTs are meaningful and deterministic.
            let t = ev.t_ns + out.cycles as f64 * self.ns_per_cycle;
            let n_ports = self.nodes[ev.dst_node].ifaces.len();
            for tx in out.tx {
                for p in 0..n_ports {
                    if tx.ports & (1 << p) != 0 {
                        self.transmit(ev.dst_node, p, tx.frame.clone(), t);
                    }
                }
            }
        }
        Ok(processed)
    }

    /// Applies one agent callback's output: transmissions leave now,
    /// timers are armed no earlier than now.
    fn apply_agent_output(&mut self, node: usize, now_ns: f64, out: AgentOutput) {
        for (port, frame) in out.tx {
            self.transmit(node, port, frame, now_ns);
        }
        for (at_ns, token) in out.timers {
            self.push_timer(node, at_ns.max(now_ns), token);
        }
    }

    /// Drains a host's inbox.
    ///
    /// # Panics
    ///
    /// Panics if `host` is a service or agent node — those have no
    /// inbox, and the old behaviour of silently returning an empty
    /// `Vec` was indistinguishable from "no traffic arrived" (a real
    /// bug class: asserting on the inbox of the wrong node always
    /// passed vacuously). Use [`NetSim::try_inbox`] to probe.
    #[track_caller]
    pub fn inbox(&mut self, host: NodeId) -> Vec<Delivery> {
        match self.try_inbox(host) {
            Some(v) => v,
            None => panic!(
                "inbox: node {} ({host:?}) is not a host (services and \
                 agents have no inbox; did you assert on the wrong node?)",
                self.nodes[host.0].name,
            ),
        }
    }

    /// Drains a host's inbox, or `None` when `node` is a service or
    /// agent node (which have no inbox).
    pub fn try_inbox(&mut self, node: NodeId) -> Option<Vec<Delivery>> {
        match &mut self.nodes[node.0].kind {
            NodeKind::Host { inbox } => Some(std::mem::take(inbox)),
            NodeKind::Service(_) | NodeKind::Agent(_) => None,
        }
    }

    /// Node name (diagnostics).
    pub fn name(&self, n: NodeId) -> &str {
        &self.nodes[n.0].name
    }

    /// Access a service node's engine (register/shard inspection in
    /// tests) — the one accessor for every node shape.
    pub fn engine_mut(&mut self, n: NodeId) -> Option<&mut Engine> {
        match &mut self.nodes[n.0].kind {
            NodeKind::Service(engine) => Some(engine),
            NodeKind::Host { .. } | NodeKind::Agent(_) => None,
        }
    }

    /// Access an agent node's [`HostAgent`] (`None` for other node
    /// kinds).
    pub fn agent_mut(&mut self, n: NodeId) -> Option<&mut dyn HostAgent> {
        match &mut self.nodes[n.0].kind {
            NodeKind::Agent(agent) => Some(agent.as_mut()),
            _ => None,
        }
    }

    /// Typed access to an agent node's concrete implementation —
    /// harvesting client stats in tests and benches:
    ///
    /// ```ignore
    /// let stats = net.agent_as::<McClient>(c).unwrap().stats();
    /// ```
    pub fn agent_as<T: HostAgent + 'static>(&mut self, n: NodeId) -> Option<&mut T> {
        self.agent_mut(n)?.as_any_mut().downcast_mut::<T>()
    }

    /// Frames node `n`'s engine refused per-frame (oversize or trap) —
    /// see [`NetSim::run_until`]. Zero for hosts.
    pub fn service_drops(&self, n: NodeId) -> u64 {
        self.nodes[n.0].drops
    }

    /// The most recent per-node drop's error text, if any.
    pub fn last_drop_reason(&self, n: NodeId) -> Option<&str> {
        self.nodes[n.0].last_drop.as_deref()
    }

    /// Whole-network telemetry as one JSON object in the bench-report
    /// row shape: per-node drop accounting (with the embedded engine's
    /// [`Engine::telemetry`] snapshot for service nodes), plus the
    /// network-level counters — frames offered to unlinked ports and
    /// the aggregate [`ImpairStats`].
    ///
    /// The snapshot is deterministic for a seeded scenario: it folds
    /// model-cycle histograms and frame counters, never wall time.
    pub fn telemetry(&self) -> Json {
        let nodes: Vec<Json> = self
            .nodes
            .iter()
            .map(|node| {
                let mut fields = vec![
                    ("node", Json::from(node.name.as_str())),
                    (
                        "kind",
                        Json::from(match node.kind {
                            NodeKind::Host { .. } => "host",
                            NodeKind::Service(_) => "service",
                            NodeKind::Agent(_) => "agent",
                        }),
                    ),
                    ("drops", Json::from(node.drops)),
                ];
                if let Some(reason) = &node.last_drop {
                    fields.push(("last_drop", Json::from(reason.as_str())));
                }
                if let NodeKind::Service(engine) = &node.kind {
                    if let Some(snap) = engine.telemetry() {
                        fields.push(("engine", snap.to_json()));
                    }
                }
                if let NodeKind::Agent(agent) = &node.kind {
                    if let Some(snap) = agent.telemetry() {
                        fields.push(("agent", snap));
                    }
                }
                Json::obj(fields)
            })
            .collect();
        Json::obj(vec![
            ("time_ns", Json::from(self.time_ns)),
            ("dropped_no_link", Json::from(self.dropped_no_link)),
            (
                "impairments",
                Json::obj(vec![
                    ("lost", Json::from(self.impair_stats.lost)),
                    ("duplicated", Json::from(self.impair_stats.duplicated)),
                    ("reordered", Json::from(self.impair_stats.reordered)),
                ]),
            ),
            ("nodes", Json::Arr(nodes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::{service_builder, Service, Target};
    use kiwi_ir::dsl::*;

    fn cpu_engine(svc: &Service, shards: usize) -> Engine {
        svc.engine(Target::Cpu).shards(shards).build().unwrap()
    }

    fn mirror_service() -> Service {
        let (mut pb, dp) = service_builder("mirror", 1536);
        let mut body = vec![dp.rx_wait(), dp.set_output_port(dp.input_port())];
        body.extend(dp.transmit(dp.rx_len()));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        Service::new(pb.build().unwrap())
    }

    #[test]
    fn frame_crosses_a_link_with_delay() {
        let mut net = NetSim::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        net.link(a, 0, b, 0, 1000.0, 10.0);
        net.send(a, 0, Frame::new(vec![0xaa; 60]), 0.0);
        net.run_until(1e9).unwrap();
        let inbox = net.inbox(b);
        assert_eq!(inbox.len(), 1);
        // 80 wire bytes at 10G = 64 ns + 1000 ns propagation.
        assert!((inbox[0].t_ns - 1064.0).abs() < 1e-9, "t {}", inbox[0].t_ns);
    }

    #[test]
    fn mirror_node_reflects() {
        let mut net = NetSim::new();
        let h = net.add_host("h", 1);
        let m = net.add_service("mirror", cpu_engine(&mirror_service(), 1), 4);
        net.link(h, 0, m, 2, 500.0, 10.0);
        net.send(h, 0, Frame::new(vec![1; 60]), 0.0);
        net.run_until(1e9).unwrap();
        let inbox = net.inbox(h);
        assert_eq!(inbox.len(), 1, "mirrored frame must come back");
        // Round trip: 2 × (serialization + delay).
        assert!(inbox[0].t_ns > 1000.0);
    }

    #[test]
    fn switch_learns_across_the_network() {
        let mut net = NetSim::new();
        let sw = net.add_service("sw", cpu_engine(&emu_services::switch_ip_cam(), 1), 4);
        let h: Vec<NodeId> = (0..4)
            .map(|i| {
                let h = net.add_host(&format!("h{i}"), 1);
                net.link(h, 0, sw, i, 100.0, 10.0);
                h
            })
            .collect();

        let mac = |i: u64| emu_types::MacAddr::from_u64(0x10 + i);
        // h0 -> h1 (unknown: floods to h1,h2,h3).
        let f = Frame::ethernet(mac(1), mac(0), 0x0800, &[0; 46]);
        net.send(h[0], 0, f, 0.0);
        net.run_until(1e6).unwrap();
        assert_eq!(net.inbox(h[1]).len(), 1);
        assert_eq!(net.inbox(h[2]).len(), 1);
        assert_eq!(net.inbox(h[3]).len(), 1);
        assert!(net.inbox(h[0]).is_empty(), "no hairpin");

        // h1 -> h0 (learned: unicast).
        let f = Frame::ethernet(mac(0), mac(1), 0x0800, &[0; 46]);
        net.send(h[1], 0, f, 1e6);
        net.run_until(2e6).unwrap();
        assert_eq!(net.inbox(h[0]).len(), 1);
        assert!(net.inbox(h[2]).is_empty());
        assert!(net.inbox(h[3]).is_empty());
    }

    #[test]
    fn sharded_mirror_node_reflects_like_single() {
        // The same topology behaves identically whether the service node
        // is a single instance or a sharded engine (mirror is stateless).
        let run = |shards: usize| {
            let mut net = NetSim::new();
            let h = net.add_host("h", 1);
            let svc = mirror_service();
            let m = net.add_service("mirror", cpu_engine(&svc, shards), 4);
            net.link(h, 0, m, 2, 500.0, 10.0);
            for i in 0..6u8 {
                net.send(
                    h,
                    0,
                    Frame::new(vec![i; 60 + i as usize * 9]),
                    i as f64 * 1e4,
                );
            }
            net.run_until(1e9).unwrap();
            net.inbox(h)
        };
        let single = run(1);
        let sharded = run(4);
        assert_eq!(single.len(), 6);
        assert_eq!(single, sharded);
    }

    #[test]
    fn telemetry_folds_node_and_engine_stats() {
        let mut net = NetSim::new();
        let h = net.add_host("h", 1);
        let m = net.add_service("mirror", cpu_engine(&mirror_service(), 2), 4);
        net.link(h, 0, m, 2, 500.0, 10.0);
        for i in 0..5u8 {
            net.send(h, 0, Frame::new(vec![i; 60]), f64::from(i) * 1e4);
        }
        net.run_until(1e9).unwrap();
        // An unlinked send shows up in the network-level counter.
        let h2 = net.add_host("h2", 2);
        net.send(h2, 1, Frame::new(vec![0; 60]), 0.0);
        net.run_until(2e9).unwrap();

        let t = net.telemetry();
        assert_eq!(t.get("dropped_no_link").and_then(Json::as_u64), Some(1));
        let nodes = t.get("nodes").and_then(Json::as_arr).unwrap();
        assert_eq!(nodes.len(), 3);
        let svc = nodes
            .iter()
            .find(|n| n.get("kind").and_then(Json::as_str) == Some("service"))
            .unwrap();
        assert_eq!(svc.get("node").and_then(Json::as_str), Some("mirror"));
        assert_eq!(svc.get("drops").and_then(Json::as_u64), Some(0));
        let total = svc
            .get("engine")
            .and_then(|e| e.get("total"))
            .expect("service node embeds its engine snapshot");
        assert_eq!(
            total
                .get("counters")
                .and_then(|c| c.get("frames"))
                .and_then(Json::as_u64),
            Some(5)
        );
        // Round-trips through the JSON writer/parser losslessly.
        let echo = Json::parse(&t.pretty()).unwrap();
        assert_eq!(echo, t);
    }

    #[test]
    fn service_node_exposes_engine() {
        let mut net = NetSim::new();
        let m = net.add_service("mirror", cpu_engine(&mirror_service(), 3), 4);
        let h = net.add_host("h", 1);
        assert_eq!(net.engine_mut(m).unwrap().num_shards(), 3);
        assert!(net.engine_mut(h).is_none());
    }

    #[test]
    fn unlinked_port_drops() {
        let mut net = NetSim::new();
        let h = net.add_host("h", 2);
        net.send(h, 1, Frame::new(vec![0; 60]), 0.0);
        net.run_until(1e9).unwrap();
        assert_eq!(net.dropped_no_link, 1);
    }

    #[test]
    fn serialization_queues_back_to_back_frames() {
        let mut net = NetSim::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        net.link(a, 0, b, 0, 0.0, 10.0);
        for _ in 0..3 {
            net.send(a, 0, Frame::new(vec![0; 60]), 0.0);
        }
        net.run_until(1e9).unwrap();
        let inbox = net.inbox(b);
        assert_eq!(inbox.len(), 3);
        // Arrivals spaced by one 80-byte serialization time (64 ns).
        assert!((inbox[1].t_ns - inbox[0].t_ns - 64.0).abs() < 1e-9);
        assert!((inbox[2].t_ns - inbox[1].t_ns - 64.0).abs() < 1e-9);
    }

    #[test]
    fn slow_link_sends_arrive_in_order_without_overlap() {
        // Regression for `Link::busy_until_ns` accounting: back-to-back
        // sends on a slow link must arrive in send order with at least
        // one full serialization time between arrivals — the wire can
        // hold one frame at a time per direction.
        let mut net = NetSim::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        net.link(a, 0, b, 0, 250.0, 0.1); // 80 wire bytes = 6400 ns each
        for i in 0..5u8 {
            net.send(a, 0, Frame::new(vec![i; 60]), 0.0);
        }
        net.run_until(1e9).unwrap();
        let inbox = net.inbox(b);
        assert_eq!(inbox.len(), 5);
        for (i, d) in inbox.iter().enumerate() {
            assert_eq!(d.frame.bytes()[0], i as u8, "arrival order broke");
        }
        for w in inbox.windows(2) {
            let gap = w[1].t_ns - w[0].t_ns;
            assert!(gap >= 6400.0 - 1e-9, "frames overlapped on the wire: {gap}");
        }
        // First frame: 6400 ns serialization + 250 ns propagation.
        assert!((inbox[0].t_ns - 6650.0).abs() < 1e-9, "{}", inbox[0].t_ns);
    }

    #[test]
    fn link_directions_are_independent_lanes() {
        // Full duplex: simultaneous sends in both directions must not
        // serialize behind each other (the old shared `busy_until_ns`
        // accounting delayed the reverse direction by a full frame).
        let mut net = NetSim::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        net.link(a, 0, b, 0, 100.0, 0.1);
        net.send(a, 0, Frame::new(vec![1; 60]), 0.0);
        net.send(b, 0, Frame::new(vec![2; 60]), 0.0);
        net.run_until(1e9).unwrap();
        let at_b = net.inbox(b);
        let at_a = net.inbox(a);
        assert_eq!((at_a.len(), at_b.len()), (1, 1));
        // Both see exactly serialization + propagation; neither waited.
        assert!((at_b[0].t_ns - 6500.0).abs() < 1e-9, "{}", at_b[0].t_ns);
        assert!((at_a[0].t_ns - 6500.0).abs() < 1e-9, "{}", at_a[0].t_ns);
    }

    fn lossy(loss: f64, dup: f64, reorder: f64, seed: u64) -> Impairments {
        Impairments {
            loss,
            duplicate: dup,
            reorder,
            jitter_ns: 5_000.0,
            seed,
        }
    }

    /// Sends `n` distinct frames a→b over a link impaired with `imp`,
    /// returning the delivered payload tags in arrival order plus the
    /// final stats.
    fn run_impaired(n: u16, imp: Impairments) -> (Vec<u16>, ImpairStats) {
        let mut net = NetSim::new();
        let a = net.add_host("a", 1);
        let b = net.add_host("b", 1);
        let l = net.link(a, 0, b, 0, 500.0, 10.0);
        net.impair(l, imp);
        for i in 0..n {
            let mut bytes = vec![0u8; 60];
            bytes[12..14].copy_from_slice(&[0x12, 0x34]); // inert ethertype
            bytes[14..16].copy_from_slice(&i.to_be_bytes());
            net.send(a, 0, Frame::new(bytes), f64::from(i) * 1_000.0);
        }
        net.run_until(1e12).unwrap();
        let tags = net
            .inbox(b)
            .into_iter()
            .map(|d| u16::from_be_bytes([d.frame.bytes()[14], d.frame.bytes()[15]]))
            .collect();
        (tags, net.impair_stats)
    }

    #[test]
    fn impairments_are_deterministic_for_a_seed() {
        let imp = lossy(0.1, 0.05, 0.2, 42);
        let (tags_a, stats_a) = run_impaired(400, imp);
        let (tags_b, stats_b) = run_impaired(400, imp);
        assert_eq!(tags_a, tags_b, "same seed must replay identically");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.lost > 0 && stats_a.duplicated > 0 && stats_a.reordered > 0);
        // A different seed gives a different realization.
        let (tags_c, _) = run_impaired(400, lossy(0.1, 0.05, 0.2, 43));
        assert_ne!(tags_a, tags_c);
    }

    #[test]
    fn impairments_conserve_or_drop_frame_counts_exactly() {
        for seed in 0..5u64 {
            let (tags, stats) = run_impaired(500, lossy(0.15, 0.1, 0.0, seed));
            assert_eq!(
                tags.len() as u64,
                500 - stats.lost + stats.duplicated,
                "seed {seed}: delivered must equal offered - lost + duplicated"
            );
        }
        // No impairment: exact conservation.
        let (tags, stats) = run_impaired(100, Impairments::default());
        assert_eq!(tags.len(), 100);
        assert_eq!(stats, ImpairStats::default());
    }

    #[test]
    fn reorder_jitter_shuffles_arrivals() {
        let (tags, stats) = run_impaired(300, lossy(0.0, 0.0, 0.5, 7));
        assert_eq!(tags.len(), 300, "reorder must not lose frames");
        assert!(stats.reordered > 50);
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_ne!(tags, sorted, "jitter must actually reorder");
        // Loss/duplication untouched.
        assert_eq!((stats.lost, stats.duplicated), (0, 0));
    }

    #[test]
    fn dropped_no_link_accounting_correct_under_impairment() {
        // A flooding service behind an impaired link: deliveries that
        // the service floods to unlinked ports are counted in
        // `dropped_no_link`, and impairment losses are *not* (they are
        // link losses, not missing-link drops).
        let mut net = NetSim::new();
        let h = net.add_host("h", 1);
        let m = net.add_service("mirror", cpu_engine(&mirror_service(), 1), 4);
        let l = net.link(h, 0, m, 2, 500.0, 10.0);
        net.impair(l, lossy(0.3, 0.0, 0.0, 9));
        for i in 0..200u8 {
            net.send(h, 0, Frame::new(vec![i; 60]), f64::from(i) * 10_000.0);
        }
        net.run_until(1e12).unwrap();
        let delivered = net.inbox(h).len() as u64;
        let lost = net.impair_stats.lost;
        assert!(lost > 20, "loss must bite: {lost}");
        // The mirror echoes every frame it receives back through the
        // same impaired link; echoes can be lost again on the way back.
        assert_eq!(delivered + lost, 200, "h→m loss + m→h loss + deliveries");
        assert_eq!(net.dropped_no_link, 0, "no unlinked ports involved");
        // And an unlinked send still counts exactly once.
        let lone = net.add_host("lone", 2);
        net.send(lone, 1, Frame::new(vec![0; 60]), 0.0);
        net.run_until(1e12).unwrap();
        assert_eq!(net.dropped_no_link, 1);
    }

    #[test]
    fn adversarial_mix_through_impaired_link_counts_drops() {
        // The ROADMAP open item: a topology must survive an adversarial
        // mix. Oversize frames out of the generator are refused by the
        // service's engine and counted on the node — the simulation
        // keeps running and well-formed traffic still flows.
        use emu_traffic::{Adversarial, Background, Mix, TrafficGen};
        let mut net = NetSim::new();
        let h = net.add_host("h", 1);
        let sw = net.add_service("sw", cpu_engine(&emu_services::switch_ip_cam(), 4), 4);
        let l = net.link(h, 0, sw, 1, 500.0, 10.0);
        net.impair(l, lossy(0.05, 0.02, 0.1, 11));
        let mut mix = Mix::new(5)
            .add(3, Background::new(6, &[0]))
            .add(2, Adversarial::new(7, &[0]));
        let mut oversize_sent = 0u64;
        for i in 0..400u64 {
            let f = mix.next_frame();
            if f.len() > net.engine_mut(sw).unwrap().frame_capacity() {
                oversize_sent += 1;
            }
            net.send(h, 0, f, i as f64 * 20_000.0);
        }
        net.run_until(1e12)
            .expect("adversarial mix must not abort the sim");
        assert!(oversize_sent > 0, "generator must produce oversize frames");
        let drops = net.service_drops(sw);
        assert!(drops > 0, "oversize frames must count as node drops");
        assert!(
            drops <= oversize_sent,
            "drops {drops} cannot exceed oversize offered {oversize_sent} \
             (the impaired link may lose some first)"
        );
        assert!(
            net.last_drop_reason(sw).unwrap().contains("exceeds"),
            "{:?}",
            net.last_drop_reason(sw)
        );
        // The switch still processed the well-formed majority: broadcast
        // frames flooded to unlinked ports count there, not as drops.
        assert!(net.dropped_no_link > 0);
        assert_eq!(net.service_drops(h), 0, "hosts never drop");
        assert_eq!(
            net.engine_mut(sw).unwrap().healthy_shards(),
            4,
            "adversarial traffic must not poison shards"
        );
    }

    /// A minimal agent: sends a tagged frame every time its timer
    /// fires, re-arming `period_ns` later until `left` hits zero, and
    /// records each arrival time it sees.
    struct Ticker {
        period_ns: f64,
        left: u32,
        seen: Vec<f64>,
    }

    impl HostAgent for Ticker {
        fn on_frame(&mut self, now_ns: f64, _port: usize, _frame: &Frame) -> AgentOutput {
            self.seen.push(now_ns);
            AgentOutput::none()
        }
        fn on_timer(&mut self, now_ns: f64, token: u64) -> AgentOutput {
            if self.left == 0 {
                return AgentOutput::none();
            }
            self.left -= 1;
            AgentOutput::none()
                .send(0, Frame::new(vec![token as u8; 60]))
                .arm(now_ns + self.period_ns, token)
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn agent_timers_drive_sends_and_reflections_close_the_loop() {
        let mut net = NetSim::new();
        let a = net.add_agent(
            "ticker",
            Box::new(Ticker {
                period_ns: 10_000.0,
                left: 5,
                seen: Vec::new(),
            }),
            1,
        );
        let m = net.add_service("mirror", cpu_engine(&mirror_service(), 1), 1);
        net.link(a, 0, m, 0, 500.0, 10.0);
        net.arm_timer(a, 0.0, 7);
        net.run_until(1e9).unwrap();
        let t = net.agent_as::<Ticker>(a).unwrap();
        assert_eq!(t.left, 0, "every timer must have fired");
        assert_eq!(t.seen.len(), 5, "every send must reflect back");
        // Arrivals are one period apart and after one round trip.
        assert!(t.seen[0] > 1000.0);
        for w in t.seen.windows(2) {
            assert!((w[1] - w[0] - 10_000.0).abs() < 1e-6, "{:?}", t.seen);
        }
        // Agents appear in telemetry as their own node kind.
        let nodes = net.telemetry();
        let kinds: Vec<&str> = nodes
            .get("nodes")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|n| n.get("kind").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(kinds, ["agent", "service"]);
    }

    #[test]
    fn service_latency_delays_transmissions_by_model_cycles() {
        let run = |ns_per_cycle: f64| {
            let mut net = NetSim::new();
            net.set_ns_per_cycle(ns_per_cycle);
            let h = net.add_host("h", 1);
            let m = net.add_service("mirror", cpu_engine(&mirror_service(), 1), 1);
            net.link(h, 0, m, 0, 500.0, 10.0);
            net.send(h, 0, Frame::new(vec![1; 60]), 0.0);
            net.run_until(1e9).unwrap();
            net.inbox(h)[0].t_ns
        };
        let immediate = run(0.0);
        let modelled = run(5.0);
        assert!(
            modelled > immediate,
            "service cycles must delay the echo: {modelled} <= {immediate}"
        );
        // The delta is exactly cycles × 5 ns — deterministic, so two
        // modelled runs agree to the bit.
        assert_eq!(run(5.0).to_bits(), modelled.to_bits());
    }

    #[test]
    fn try_inbox_distinguishes_node_kinds() {
        let mut net = NetSim::new();
        let h = net.add_host("h", 1);
        let m = net.add_service("mirror", cpu_engine(&mirror_service(), 1), 1);
        assert!(net.try_inbox(h).is_some());
        assert!(net.try_inbox(m).is_none(), "services have no inbox");
        assert!(net.agent_mut(h).is_none());
        assert!(net.engine_mut(m).is_some());
    }

    #[test]
    #[should_panic(expected = "not a host")]
    fn inbox_on_a_service_node_panics() {
        let mut net = NetSim::new();
        let m = net.add_service("mirror", cpu_engine(&mirror_service(), 1), 1);
        let _ = net.inbox(m);
    }

    #[test]
    fn impaired_sharded_service_stays_deterministic() {
        // End-to-end: a sharded engine behind an impaired link still
        // yields a reproducible delivery sequence for a fixed seed.
        let run = || {
            let mut net = NetSim::new();
            let h = net.add_host("h", 1);
            let m = net.add_service("mirror", cpu_engine(&mirror_service(), 4), 4);
            let l = net.link(h, 0, m, 1, 300.0, 10.0);
            net.impair(l, lossy(0.2, 0.1, 0.3, 77));
            for i in 0..100u8 {
                net.send(
                    h,
                    0,
                    Frame::new(vec![i; 60 + usize::from(i % 32)]),
                    f64::from(i) * 5_000.0,
                );
            }
            net.run_until(1e12).unwrap();
            net.inbox(h)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() < 100);
    }
}
