//! Resource estimation: the analogue of a Vivado utilization report.
//!
//! Table 3 of the paper compares "logic resources" and "memory resources"
//! of the Emu switch, the NetFPGA reference switch, and P4FPGA. Without a
//! real place-and-route flow we estimate from the compiled FSM:
//!
//! * **logic units** ≈ LUT6 count: datapath operators, state decoding,
//!   register write muxes, and attached IP blocks;
//! * **memory units** ≈ memory-LUT count (64-bit LUTRAM primitives, with
//!   an 18 Kb BRAM counted as 32 units);
//! * **flip-flops** are reported separately.
//!
//! The per-operator constants below are textbook Virtex-7 mappings (1
//! LUT/bit for carry chains, 1 LUT per 2 bits of 2:1 mux, ~w²/8 for small
//! array multipliers). The paper's own breakdown (§5.3: 85 % of the Emu
//! switch is the CAM, 15 % generated logic) anchors the CAM constants.
//! Absolute agreement with Vivado is *not* claimed; EXPERIMENTS.md reports
//! measured vs paper values side by side.

use crate::fsm::Fsm;
use kiwi_ir::ast::{BinOp, Expr, UnOp};
use kiwi_ir::flat::Op;
use kiwi_ir::program::{ArrayBacking, Program};
use std::fmt;

/// Description of an IP block attached to a design, for accounting.
///
/// IP blocks are outside the C#-generated logic (§3.4 "Using IP blocks"):
/// the program talks to them over signals, and their cost is added to the
/// design's totals separately — exactly how the paper attributes 85 % of
/// the Emu switch to its CAM.
#[derive(Debug, Clone, PartialEq)]
pub enum IpBlock {
    /// Content-addressable memory. `native` selects the vendor-optimized
    /// flavour used by the reference switch (§4.1: the native IP CAM has
    /// "better resource usage and timing performance" than the behavioural
    /// one Emu generates by default).
    Cam {
        /// Number of entries.
        entries: usize,
        /// Match key width in bits.
        key_bits: u16,
        /// Stored value width in bits.
        value_bits: u16,
        /// Vendor-optimized flavour (cheaper logic, uses BRAM).
        native: bool,
    },
    /// Streaming Pearson hash unit (Figure 5).
    Hash,
    /// A FIFO queue of `depth` × `width` bits.
    Fifo {
        /// Entries.
        depth: usize,
        /// Bits per entry.
        width: u16,
    },
    /// Raw block RAM of `bits` capacity (e.g. DNS resolution tables).
    Bram {
        /// Total capacity in bits.
        bits: u64,
    },
}

impl IpBlock {
    /// (logic units, memory units, flip-flops) for this block.
    pub fn cost(&self) -> (u64, u64, u64) {
        match self {
            IpBlock::Cam {
                entries,
                key_bits,
                value_bits,
                native,
            } => {
                let keybits = *entries as u64 * u64::from(*key_bits);
                let valbits = *entries as u64 * u64::from(*value_bits);
                if *native {
                    // BRAM-assisted TCAM: ~0.18 LUT per key bit, values in
                    // BRAM.
                    let logic = keybits * 18 / 100;
                    let mem = 32 * valbits.div_ceil(18_432).max(1);
                    (logic, mem, keybits / 8)
                } else {
                    // Behavioural CAM: match line per entry, ~1 LUT per 4
                    // key bits, values in LUTRAM.
                    let logic = keybits / 4;
                    let mem = valbits.div_ceil(64);
                    (logic, mem, keybits / 6)
                }
            }
            IpBlock::Hash => (96, 4, 24), // table ROM + xor network
            IpBlock::Fifo { depth, width } => {
                let bits = *depth as u64 * u64::from(*width);
                let mem = if bits > 4096 {
                    32 * bits.div_ceil(18_432)
                } else {
                    bits.div_ceil(64)
                };
                (24, mem, 16)
            }
            IpBlock::Bram { bits } => (8, 32 * bits.div_ceil(18_432), 4),
        }
    }

    /// Short name for report breakdowns.
    pub fn name(&self) -> &'static str {
        match self {
            IpBlock::Cam { native: true, .. } => "cam(native)",
            IpBlock::Cam { native: false, .. } => "cam(behavioural)",
            IpBlock::Hash => "hash",
            IpBlock::Fifo { .. } => "fifo",
            IpBlock::Bram { .. } => "bram",
        }
    }
}

/// A utilization report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceReport {
    /// LUT-equivalent logic units.
    pub logic: u64,
    /// Memory units (LUTRAM64 equivalents; BRAM18 = 32).
    pub memory: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// Named contributions: (component, logic, memory).
    pub breakdown: Vec<(String, u64, u64)>,
}

impl ResourceReport {
    /// Adds a named contribution.
    pub fn add(&mut self, name: &str, logic: u64, memory: u64, ffs: u64) {
        self.logic += logic;
        self.memory += memory;
        self.ffs += ffs;
        self.breakdown.push((name.to_string(), logic, memory));
    }

    /// Merges another report under a component prefix.
    pub fn merge(&mut self, prefix: &str, other: &ResourceReport) {
        self.logic += other.logic;
        self.memory += other.memory;
        self.ffs += other.ffs;
        for (n, l, m) in &other.breakdown {
            self.breakdown.push((format!("{prefix}/{n}"), *l, *m));
        }
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "logic {:>7}  memory {:>6}  ffs {:>7}",
            self.logic, self.memory, self.ffs
        )?;
        for (n, l, m) in &self.breakdown {
            writeln!(f, "  {n:<28} logic {l:>7}  memory {m:>6}")?;
        }
        Ok(())
    }
}

/// LUT cost of an expression, with structural sharing: a subexpression
/// already counted (within the same thread) costs nothing again, the way
/// synthesis CSE shares identical logic cones. Without this, nested
/// checksum helpers — which textually duplicate their operands — would be
/// billed exponentially.
fn expr_luts(e: &Expr, prog: &Program, seen: &mut std::collections::HashSet<Expr>) -> u64 {
    if !matches!(e, Expr::Const(_) | Expr::Var(_) | Expr::SigRead(_)) && !seen.insert(e.clone()) {
        return 0;
    }
    expr_luts_inner(e, prog, seen)
}

fn expr_luts_inner(e: &Expr, prog: &Program, seen: &mut std::collections::HashSet<Expr>) -> u64 {
    let w = u64::from(e.width(prog).unwrap_or(64));
    let own = match e {
        Expr::Const(_) | Expr::Var(_) | Expr::SigRead(_) => 0,
        Expr::ArrRead(a, _) => {
            let d = prog.array(*a).expect("validated");
            match d.backing {
                // Read mux over LUTRAM outputs: ~1 LUT per 4 output bits
                // per 4 entries of depth.
                ArrayBacking::LutRam => (d.len as u64 / 4).max(1) * u64::from(d.elem_width) / 4,
                // BRAM and CAM reads use dedicated decode.
                ArrayBacking::BlockRam | ArrayBacking::Cam => 2,
            }
        }
        Expr::Un(op, _) => match op {
            UnOp::Not => w / 4,
            UnOp::Neg => w,
            UnOp::RedOr => w / 6 + 1,
        },
        Expr::Bin(op, _, _) => match op {
            BinOp::Add | BinOp::Sub => w,
            BinOp::Mul => (w * w / 8).min(600),
            BinOp::And | BinOp::Or | BinOp::Xor => w / 2,
            // Shifts by constants are wiring; dynamic shifts are barrel
            // shifters. Approximate by the mean.
            BinOp::Shl | BinOp::Shr => w / 2,
            BinOp::Eq | BinOp::Ne => w / 3 + 1,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => w / 2 + 1,
        },
        Expr::Mux(_, _, _) => w / 2 + 1,
        Expr::Slice(_, _, _) | Expr::Concat(_, _) | Expr::Resize(_, _) => 0,
    };
    let mut total = own;
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::SigRead(_) => {}
        Expr::ArrRead(_, i) => total += expr_luts(i, prog, seen),
        Expr::Un(_, x) | Expr::Slice(x, _, _) | Expr::Resize(x, _) => {
            total += expr_luts(x, prog, seen)
        }
        Expr::Bin(_, l, r) | Expr::Concat(l, r) => {
            total += expr_luts(l, prog, seen) + expr_luts(r, prog, seen)
        }
        Expr::Mux(c, t, e2) => {
            total += expr_luts(c, prog, seen) + expr_luts(t, prog, seen) + expr_luts(e2, prog, seen)
        }
    }
    total
}

/// Estimates the utilization of a compiled design plus its IP blocks.
pub fn estimate(fsm: &Fsm, ip_blocks: &[IpBlock]) -> ResourceReport {
    let prog = &fsm.prog;
    let mut rep = ResourceReport::default();

    // Registers.
    let reg_ffs: u64 = prog.vars().iter().map(|v| u64::from(v.width)).sum();
    let sig_ffs: u64 = prog.signals().iter().map(|s| u64::from(s.width)).sum();
    rep.add("registers", 0, 0, reg_ffs + sig_ffs);

    // The Kiwi runtime substrate (§3.3): AXI glue, DMA frame mover,
    // scheduling sequencer scaffolding — present in every compiled
    // program regardless of its own logic.
    rep.add("kiwi-substrate", 280, 24, 200);

    // Arrays declared inside the program.
    for a in prog.arrays() {
        let bits = a.len as u64 * u64::from(a.elem_width);
        let (logic, mem) = match a.backing {
            ArrayBacking::LutRam => (bits / 512, bits.div_ceil(64)),
            ArrayBacking::BlockRam => (4, 32 * bits.div_ceil(18_432)),
            ArrayBacking::Cam => (bits / 4, bits.div_ceil(64)),
        };
        rep.add(&format!("array:{}", a.name), logic, mem, 0);
    }

    // Datapath + control per thread; shared logic cones (identical
    // subexpressions) are counted once per thread.
    for t in &fsm.threads {
        let mut logic = 0u64;
        let mut seen = std::collections::HashSet::new();
        for op in &t.ops {
            logic += match op {
                Op::Assign(d, e) => {
                    let w = u64::from(prog.var(*d).map(|v| v.width).unwrap_or(1));
                    // Write-enable mux into the register.
                    expr_luts(e, prog, &mut seen) + w / 2
                }
                Op::ArrWrite(_, i, v) => {
                    expr_luts(i, prog, &mut seen) + expr_luts(v, prog, &mut seen) + 4
                }
                Op::SigWrite(_, e) => expr_luts(e, prog, &mut seen),
                Op::Branch(c, _) => expr_luts(c, prog, &mut seen) + 1,
                Op::Jump(_) | Op::Pause | Op::Label(_) | Op::ExtPoint(_) | Op::Halt => 0,
            };
        }
        let states = t.state_count() as u64;
        let state_bits = (usize::BITS - t.state_count().leading_zeros()).max(1) as u64;
        // One-hot-ish state decode plus next-state logic.
        let control = states * 3 + state_bits * 2;
        rep.add(
            &format!("thread:{}", t.name),
            logic + control,
            0,
            state_bits,
        );
    }

    for b in ip_blocks {
        let (l, m, f) = b.cost();
        rep.add(b.name(), l, m, f);
    }

    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::{schedule, CostModel};
    use kiwi_ir::dsl::*;
    use kiwi_ir::flat::flatten;
    use kiwi_ir::program::{ArrayBacking, ProgramBuilder};

    fn tiny_fsm() -> Fsm {
        let mut pb = ProgramBuilder::new("tiny");
        let a = pb.reg("a", 32);
        pb.thread(
            "main",
            vec![forever(vec![assign(a, add(var(a), lit(1, 32))), pause()])],
        );
        schedule(
            &flatten(&pb.build().unwrap()).unwrap(),
            CostModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn behavioural_cam_near_paper_share() {
        // §5.3: the 256-entry CAM accounts for ~85 % of the 3509-unit Emu
        // switch, i.e. ~3000 logic units.
        let cam = IpBlock::Cam {
            entries: 256,
            key_bits: 48,
            value_bits: 64,
            native: false,
        };
        let (logic, mem, _) = cam.cost();
        assert!((2500..3600).contains(&logic), "cam logic {logic}");
        assert!(mem > 0);
    }

    #[test]
    fn native_cam_cheaper_than_behavioural() {
        let mk = |native| IpBlock::Cam {
            entries: 256,
            key_bits: 48,
            value_bits: 64,
            native,
        };
        assert!(mk(true).cost().0 < mk(false).cost().0);
    }

    #[test]
    fn estimate_accumulates_blocks() {
        let f = tiny_fsm();
        let base = estimate(&f, &[]);
        let with_cam = estimate(
            &f,
            &[IpBlock::Cam {
                entries: 256,
                key_bits: 48,
                value_bits: 64,
                native: false,
            }],
        );
        assert!(with_cam.logic > base.logic + 2000);
        assert_eq!(
            with_cam.breakdown.last().map(|(n, _, _)| n.as_str()),
            Some("cam(behavioural)")
        );
    }

    #[test]
    fn ffs_count_registers_and_state() {
        let f = tiny_fsm();
        let rep = estimate(&f, &[]);
        assert!(rep.ffs >= 32, "ffs {}", rep.ffs);
    }

    #[test]
    fn bigger_programs_cost_more() {
        let small = estimate(&tiny_fsm(), &[]);

        let mut pb = ProgramBuilder::new("big");
        let a = pb.reg("a", 64);
        let b = pb.reg("b", 64);
        let t = pb.array("t", 64, 64, ArrayBacking::LutRam);
        let mut body = Vec::new();
        for i in 0..10 {
            body.push(assign(a, add(mul(var(a), var(b)), lit(i, 64))));
            body.push(arr_write(t, slice(var(a), 5, 0), var(b)));
            body.push(pause());
        }
        pb.thread("main", vec![forever(body)]);
        let f = schedule(
            &flatten(&pb.build().unwrap()).unwrap(),
            CostModel::default(),
        )
        .unwrap();
        let big = estimate(&f, &[]);
        assert!(big.logic > small.logic * 5);
        assert!(big.memory > 0);
    }

    #[test]
    fn report_display_lists_breakdown() {
        let rep = estimate(&tiny_fsm(), &[IpBlock::Hash]);
        let text = rep.to_string();
        assert!(text.contains("thread:main"));
        assert!(text.contains("hash"));
    }

    #[test]
    fn fifo_scales_with_capacity() {
        let small = IpBlock::Fifo {
            depth: 16,
            width: 32,
        }
        .cost();
        let large = IpBlock::Fifo {
            depth: 4096,
            width: 256,
        }
        .cost();
        assert!(large.1 > small.1);
    }
}
