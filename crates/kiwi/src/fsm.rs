//! Scheduling: partitioning the linear op stream into clock-cycle states.
//!
//! This is the heart of the Kiwi back end as the paper describes it
//! (§3.2(ii), §3.4): `Kiwi.Pause()` gives the developer a cycle-accurate
//! handle ("this breaks up computation and allows Kiwi to schedule a
//! suitable amount of computation in a single clock cycle"), while
//! elsewhere the compiler auto-schedules — if it packs too much logic into
//! one cycle the design fails timing, so the scheduler splits any region
//! whose estimated combinational depth exceeds the clock-period budget.
//!
//! A state is identified by the op index (program counter) at which the
//! cycle begins. State boundaries arise from three sources:
//!
//! 1. the op after every `Pause`,
//! 2. every backward-jump target (loop headers take at least one cycle per
//!    iteration, as in Kiwi), and
//! 3. budget cuts inserted where accumulated combinational delay would
//!    exceed [`CostModel::period_units`].
//!
//! Lowering the clock-period budget models a higher clock frequency /
//! deeper pipeline; the `ablation-parallelism` bench uses this to
//! reproduce the paper's observation (§2, §5.3) that adding parallelism
//! (pipeline depth) *increases* network latency.

use kiwi_ir::flat::{FlatProgram, FlatThread, Op};
use kiwi_ir::program::Program;
use kiwi_ir::{IrError, IrResult};
use std::collections::{BTreeMap, BTreeSet};

/// Calibration constants for the scheduler and resource estimator.
///
/// `period_units` is the combinational budget per 5 ns cycle, in the gate
/// units returned by `Expr::delay`: one unit ≈ one LUT level ≈ 0.2 ns with
/// generous routing slack. 24 units ≈ what a 200 MHz Virtex-7 design can
/// absorb between registers.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Combinational depth budget per clock cycle, in gate units.
    pub period_units: u32,
    /// Clock frequency in Hz; 200 MHz on NetFPGA SUME (§5.1).
    pub clock_hz: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            period_units: 24,
            clock_hz: 200_000_000,
        }
    }
}

impl CostModel {
    /// Nanoseconds per clock cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1e9 / self.clock_hz as f64
    }
}

/// A state machine compiled from one thread.
#[derive(Debug, Clone)]
pub struct FsmThread {
    /// Thread name.
    pub name: String,
    /// The op stream (shared shape with the flattened thread).
    pub ops: Vec<Op>,
    /// State entry points: op index → dense state number, ascending in pc.
    pub state_of_pc: BTreeMap<usize, usize>,
    /// Entry state pc (`resolve(0)`).
    pub entry_pc: usize,
}

/// A compiled program: declarations plus one FSM per thread.
#[derive(Debug, Clone)]
pub struct Fsm {
    /// Declarations (registers, arrays, signals).
    pub prog: Program,
    /// Per-thread state machines.
    pub threads: Vec<FsmThread>,
    /// The cost model used for scheduling.
    pub model: CostModel,
}

impl FsmThread {
    /// Number of FSM states.
    pub fn state_count(&self) -> usize {
        self.state_of_pc.len()
    }

    /// True if `pc` begins a state.
    pub fn is_boundary(&self, pc: usize) -> bool {
        self.state_of_pc.contains_key(&pc)
    }

    /// Follows `Jump` and `Label` chains from `pc` to the first effective
    /// op. Safe on malformed chains (gives up after `ops.len()` hops).
    pub fn resolve(&self, mut pc: usize) -> usize {
        resolve(&self.ops, &mut pc);
        pc
    }
}

fn resolve(ops: &[Op], pc: &mut usize) {
    let mut hops = 0;
    loop {
        if hops > ops.len() {
            return;
        }
        match ops.get(*pc) {
            Some(Op::Jump(t)) => *pc = *t,
            Some(Op::Label(_)) => *pc += 1,
            _ => return,
        }
        hops += 1;
    }
}

/// Per-op combinational delay in gate units.
fn op_delay(op: &Op, prog: &Program) -> u32 {
    match op {
        Op::Assign(_, e) => e.delay(prog) + 1,
        Op::ArrWrite(a, i, v) => {
            let decode = prog
                .array(*a)
                .map(|d| (usize::BITS - d.len.leading_zeros()).max(1))
                .unwrap_or(1);
            i.delay(prog).max(v.delay(prog)) + decode
        }
        Op::SigWrite(_, e) => e.delay(prog) + 1,
        Op::Branch(c, _) => c.delay(prog) + 1,
        Op::Jump(_) | Op::Pause | Op::Label(_) | Op::ExtPoint(_) | Op::Halt => 0,
    }
}

/// Schedules one thread into states.
fn schedule_thread(t: &FlatThread, prog: &Program, model: &CostModel) -> IrResult<FsmThread> {
    t.check_targets()?;
    let ops = t.ops.clone();
    let n = ops.len();
    let mut boundaries: BTreeSet<usize> = BTreeSet::new();

    let mut entry = 0usize;
    resolve(&ops, &mut entry);
    boundaries.insert(entry);

    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Pause if i < n => {
                let mut t2 = i + 1;
                resolve(&ops, &mut t2);
                boundaries.insert(t2.min(n.saturating_sub(1)));
            }
            Op::Jump(t) if *t <= i => {
                let mut t2 = *t;
                resolve(&ops, &mut t2);
                boundaries.insert(t2);
            }
            Op::Branch(_, t) if *t <= i => {
                let mut t2 = *t;
                resolve(&ops, &mut t2);
                boundaries.insert(t2);
            }
            _ => {}
        }
    }

    // Budget pass: accumulate combinational offsets forward; cut where the
    // budget would be exceeded. Within-cycle predecessors all have smaller
    // indices (backward targets are boundaries already), so one forward
    // pass suffices.
    let mut offset = vec![0u32; n];
    for pc in 0..n {
        if boundaries.contains(&pc) {
            offset[pc] = 0;
        } else {
            // Fall-through predecessor.
            let mut off = 0u32;
            if pc > 0 {
                let prev = &ops[pc - 1];
                let falls = !matches!(prev, Op::Jump(_) | Op::Halt | Op::Pause);
                if falls {
                    off = off.max(offset[pc - 1] + op_delay(prev, prog));
                }
            }
            offset[pc] = off;
        }
        // Forward jump/branch edges into later ops.
        match &ops[pc] {
            Op::Jump(t2) if *t2 > pc && *t2 < n && !boundaries.contains(t2) => {
                offset[*t2] = offset[*t2].max(offset[pc]);
            }
            Op::Branch(_, t2) if *t2 > pc && *t2 < n && !boundaries.contains(t2) => {
                offset[*t2] = offset[*t2].max(offset[pc] + op_delay(&ops[pc], prog));
            }
            _ => {}
        }
        let d = op_delay(&ops[pc], prog);
        if offset[pc] + d > model.period_units && offset[pc] > 0 {
            boundaries.insert(pc);
            offset[pc] = 0;
        }
    }

    let state_of_pc: BTreeMap<usize, usize> = boundaries
        .iter()
        .filter(|&&pc| pc < n)
        .enumerate()
        .map(|(s, &pc)| (pc, s))
        .collect();

    Ok(FsmThread {
        name: t.name.clone(),
        ops,
        state_of_pc,
        entry_pc: entry,
    })
}

/// Compiles a flattened program into per-thread FSMs under `model`.
pub fn schedule(flat: &FlatProgram, model: CostModel) -> IrResult<Fsm> {
    let mut threads = Vec::new();
    for t in &flat.threads {
        threads.push(schedule_thread(t, &flat.prog, &model)?);
    }
    if threads.is_empty() {
        return Err(IrError("program has no threads".into()));
    }
    Ok(Fsm {
        prog: flat.prog.clone(),
        threads,
        model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiwi_ir::dsl::*;
    use kiwi_ir::flat::flatten;
    use kiwi_ir::program::ProgramBuilder;

    fn fsm_of(pb: ProgramBuilder, model: CostModel) -> Fsm {
        schedule(&flatten(&pb.build().unwrap()).unwrap(), model).unwrap()
    }

    #[test]
    fn pause_creates_states() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![
                assign(a, lit(1, 8)),
                pause(),
                assign(a, lit(2, 8)),
                pause(),
                assign(a, lit(3, 8)),
                halt(),
            ],
        );
        let f = fsm_of(pb, CostModel::default());
        // Three states: entry, after first pause, after second pause.
        assert_eq!(f.threads[0].state_count(), 3);
    }

    #[test]
    fn loop_header_is_a_state() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![forever(vec![assign(a, add(var(a), lit(1, 8))), pause()])],
        );
        let f = fsm_of(pb, CostModel::default());
        let t = &f.threads[0];
        assert!(t.is_boundary(t.entry_pc));
        // The pause successor resolves through the back jump to the header,
        // so a single state suffices: one iteration per cycle.
        assert_eq!(t.state_count(), 1);
    }

    #[test]
    fn budget_splits_deep_logic() {
        // One very deep expression chain with no pauses: the scheduler must
        // cut it into multiple states under a small budget.
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 32);
        let mut body = Vec::new();
        for _ in 0..20 {
            body.push(assign(a, add(var(a), lit(1, 32))));
        }
        body.push(halt());
        pb.thread("main", body);

        let tight = fsm_of(
            pb.clone(),
            CostModel {
                period_units: 8,
                clock_hz: 400_000_000,
            },
        );
        let loose = fsm_of(
            pb,
            CostModel {
                period_units: 10_000,
                clock_hz: 50_000_000,
            },
        );
        assert!(
            tight.threads[0].state_count() > loose.threads[0].state_count(),
            "tight {} vs loose {}",
            tight.threads[0].state_count(),
            loose.threads[0].state_count()
        );
        assert_eq!(loose.threads[0].state_count(), 1);
    }

    #[test]
    fn wait_loop_is_single_state() {
        // The Figure-5 idiom `while (!ready) pause;` must poll once per
        // cycle, i.e. compile to exactly one state.
        let mut pb = ProgramBuilder::new("p");
        let rdy = pb.sig_in("ready", 1);
        pb.thread("main", vec![wait_until(sig(rdy)), halt()]);
        let f = fsm_of(pb, CostModel::default());
        // States: loop header (poll) + halt landing.
        assert!(f.threads[0].state_count() <= 2);
    }

    #[test]
    fn resolve_follows_jump_chains() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![forever(vec![
                if_then(eq(var(a), lit(0, 8)), vec![assign(a, lit(1, 8))]),
                pause(),
            ])],
        );
        let f = fsm_of(pb, CostModel::default());
        let t = &f.threads[0];
        for &pc in t.state_of_pc.keys() {
            // No state may begin on a Jump (they must be resolved through).
            assert!(!matches!(t.ops[pc], Op::Jump(_)), "state at jump pc {pc}");
        }
    }

    #[test]
    fn empty_program_rejected() {
        let pb = ProgramBuilder::new("p");
        let flat = flatten(&pb.build().unwrap()).unwrap();
        assert!(schedule(&flat, CostModel::default()).is_err());
    }
}
