//! The Kiwi-style HLS back end: IR → clocked FSM → Verilog.
//!
//! The paper builds Emu on the Kiwi compiler, which translates .NET CIL
//! into register-transfer-level Verilog (§3.1). This crate reproduces the
//! parts of Kiwi that the paper's evaluation depends on:
//!
//! * **Scheduling** ([`fsm`]): `Kiwi.Pause()`-delimited cycle boundaries
//!   plus automatic splitting under a clock-period budget (§3.2(ii), §3.4).
//! * **Resource estimation** ([`resources`]): LUT/memory/FF accounting for
//!   the compiled logic and attached IP blocks — the quantities in
//!   Tables 3 and 5.
//! * **Verilog emission** ([`verilog`]): textual RTL with forward-
//!   substituted, guard-qualified non-blocking assignments.
//!
//! Cycle-accurate *execution* of the compiled FSM lives in `emu-rtl`.

pub mod fsm;
pub mod resources;
pub mod verilog;

pub use fsm::{schedule, CostModel, Fsm, FsmThread};
pub use resources::{estimate, IpBlock, ResourceReport};
pub use verilog::{emit, lint};

use kiwi_ir::{flatten, IrResult, Program};

/// Compiles a program with the default 200 MHz cost model.
pub fn compile(prog: &Program) -> IrResult<Fsm> {
    compile_with(prog, CostModel::default())
}

/// Compiles a program with an explicit cost model (used by the
/// parallelism-vs-latency ablation).
pub fn compile_with(prog: &Program, model: CostModel) -> IrResult<Fsm> {
    let flat = flatten(prog)?;
    schedule(&flat, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiwi_ir::dsl::*;
    use kiwi_ir::ProgramBuilder;

    #[test]
    fn end_to_end_compile_and_emit() {
        let mut pb = ProgramBuilder::new("blinky");
        let led = pb.sig_out("led", 1);
        let c = pb.reg("c", 24);
        pb.thread(
            "main",
            vec![forever(vec![
                assign(c, add(var(c), lit(1, 24))),
                sig_write(led, slice(var(c), 23, 23)),
                pause(),
            ])],
        );
        let prog = pb.build().unwrap();
        let fsm = compile(&prog).unwrap();
        assert!(fsm.threads[0].state_count() >= 1);
        let text = emit(&fsm).unwrap();
        lint(&text).unwrap();
        let rep = estimate(&fsm, &[]);
        assert!(rep.logic > 0 && rep.ffs >= 24);
    }
}
