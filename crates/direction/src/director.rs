//! The director: the host-side half of Figure 8.
//!
//! "The director and controller exchange commands and their outputs" —
//! the [`Director`] turns high-level commands into direction packets,
//! injects them into a running service instance, and decodes the
//! replies. This is the reproduction's `gdb` front end; §5.5's checksum
//! bug hunt ("directing the packets to report the checksum calculated
//! within Emu") is exactly a sequence of `print` commands issued this way.

use crate::lang::{compile, Command};
use crate::packet::{status, DirectionPacket};
use emu_core::Engine;
use emu_types::MacAddr;
use kiwi_ir::IrResult;

/// Remote-direction client for a running service.
///
/// Commands are injected as in-band frames through the engine's normal
/// dispatch path; direction packets share one src/dst MAC pair, so on a
/// sharded engine every command consistently reaches the same shard.
pub struct Director {
    /// Variables exported to the controller, in index order (must match
    /// the `ControllerConfig` used at transform time).
    pub var_table: Vec<String>,
    /// MAC used as the director's source address.
    pub src: MacAddr,
    /// MAC of the device under direction.
    pub dst: MacAddr,
}

/// The decoded outcome of one command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A value came back (print / trace reads).
    Value(u64),
    /// Several values came back (trace print).
    Values(Vec<u64>),
    /// Acknowledged with no payload.
    Ok,
    /// The controller rejected the request with this status code.
    Rejected(u8),
    /// The command has no hardware mapping (attach an observer instead).
    SoftwareOnly,
}

impl Director {
    /// Creates a director for the given exported-variable table.
    pub fn new(var_table: Vec<String>) -> Self {
        Director {
            var_table,
            src: MacAddr::from_u64(0xD12EC7),
            dst: MacAddr::from_u64(0xDE71CE),
        }
    }

    /// Sends one raw packet and decodes the reply.
    fn exchange(
        &self,
        inst: &mut Engine,
        op: crate::packet::Opcode,
        var: u8,
        value: u64,
    ) -> IrResult<DirectionPacket> {
        let mut frame = DirectionPacket::request(op, var, value).encode(self.dst, self.src);
        frame.in_port = 0;
        let out = inst.process(&frame)?;
        let reply = out
            .tx
            .first()
            .and_then(|t| DirectionPacket::decode(&t.frame))
            .ok_or_else(|| kiwi_ir::IrError("no direction reply (controller missing?)".into()))?;
        Ok(reply)
    }

    /// Runs a parsed command against a live instance.
    pub fn run(&self, inst: &mut Engine, cmd: &Command) -> IrResult<Outcome> {
        let ops = compile(cmd, &self.var_table).map_err(kiwi_ir::IrError)?;
        if ops.is_empty() {
            return Ok(Outcome::SoftwareOnly);
        }

        // `trace print X` expands dynamically: status first, then reads.
        if let Command::TracePrint(_) = cmd {
            let st = self.exchange(inst, crate::packet::Opcode::TraceStatus, 0, 0)?;
            if st.status != status::OK {
                return Ok(Outcome::Rejected(st.status));
            }
            let fill = st.value & 0xffff_ffff;
            let mut vals = Vec::new();
            for i in 0..fill {
                let r = self.exchange(inst, crate::packet::Opcode::TraceRead, 0, i)?;
                if r.status != status::OK {
                    return Ok(Outcome::Rejected(r.status));
                }
                vals.push(r.value);
            }
            return Ok(Outcome::Values(vals));
        }

        let mut last = None;
        for op in ops {
            let (opcode, var, value) = op.encode();
            let reply = self.exchange(inst, opcode, var, value)?;
            if reply.status != status::OK {
                return Ok(Outcome::Rejected(reply.status));
            }
            last = Some(reply);
        }
        Ok(match (cmd, last) {
            (Command::Print(_), Some(r)) => Outcome::Value(r.value),
            (Command::TraceFull(_), Some(r)) => {
                // Full iff overflow counter non-zero.
                Outcome::Value(u64::from(r.value >> 32 != 0))
            }
            _ => Outcome::Ok,
        })
    }

    /// Convenience: `print <name>`.
    pub fn print(&self, inst: &mut Engine, name: &str) -> IrResult<Outcome> {
        self.run(inst, &Command::Print(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{extend_program, ControllerConfig};
    use emu_core::{service_builder, Service, Target};
    use emu_types::Frame;
    use kiwi_ir::dsl::*;

    fn counter_service_directed(trace: usize) -> (Service, Director) {
        let (mut pb, dp) = service_builder("ctr", 128);
        let count = pb.reg("count", 32);
        let mut body = vec![dp.rx_wait(), label("rx"), ext_point(0)];
        body.push(assign(count, add(var(count), lit(1, 32))));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        let base = pb.build().unwrap();
        let cfg = ControllerConfig::full(&["count"], trace);
        let svc = Service::new(extend_program(&base, &cfg).unwrap());
        (svc, Director::new(vec!["count".to_string()]))
    }

    #[test]
    fn print_command_end_to_end() {
        let (svc, dir) = counter_service_directed(0);
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        for _ in 0..4 {
            inst.process(&Frame::new(vec![0; 60])).unwrap();
        }
        assert_eq!(dir.print(&mut inst, "count").unwrap(), Outcome::Value(4));
    }

    #[test]
    fn set_and_increment_commands() {
        let (svc, dir) = counter_service_directed(0);
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        dir.run(&mut inst, &crate::lang::parse("set count 100").unwrap())
            .unwrap();
        dir.run(&mut inst, &crate::lang::parse("increment count").unwrap())
            .unwrap();
        assert_eq!(dir.print(&mut inst, "count").unwrap(), Outcome::Value(101));
    }

    #[test]
    fn trace_print_collects_history() {
        let (svc, dir) = counter_service_directed(16);
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        dir.run(
            &mut inst,
            &crate::lang::parse("trace start count 4").unwrap(),
        )
        .unwrap();
        for _ in 0..4 {
            inst.process(&Frame::new(vec![0; 60])).unwrap();
        }
        let out = dir
            .run(&mut inst, &crate::lang::parse("trace print count").unwrap())
            .unwrap();
        assert_eq!(out, Outcome::Values(vec![0, 1, 2, 3]));
        // Not full (no overflow yet).
        let full = dir
            .run(&mut inst, &crate::lang::parse("trace full count").unwrap())
            .unwrap();
        assert_eq!(full, Outcome::Value(0));
    }

    #[test]
    fn software_only_commands_reported() {
        let (svc, dir) = counter_service_directed(0);
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let out = dir
            .run(&mut inst, &crate::lang::parse("watch count").unwrap())
            .unwrap();
        assert_eq!(out, Outcome::SoftwareOnly);
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let (svc, dir) = counter_service_directed(0);
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        assert!(dir
            .run(&mut inst, &crate::lang::parse("print missing").unwrap())
            .is_err());
    }
}
