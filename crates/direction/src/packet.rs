//! Direction packets: the in-band remote-debugging protocol of §3.5.
//!
//! "Direction packets are network packets in a custom and simple packet
//! format, whose payload consists of (i) code to be executed by the
//! controller; or (ii) status replies from the controller to the
//! director. It enables us to remotely direct a running program, similar
//! to gdb's remote serial protocol."
//!
//! Layout (after the Ethernet header, EtherType `0x88b5`):
//!
//! ```text
//! offset 14: opcode   (1 byte; replies set bit 7)
//! offset 15: variable (1 byte; index into the controller's var table)
//! offset 16: value    (8 bytes, big-endian)
//! offset 24: status   (1 byte; 0 = ok, 1 = bad var, 2 = bad op)
//! ```

use emu_types::proto::ether_type;
use emu_types::{bitutil, Frame, MacAddr};

/// Controller opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Read a variable: reply carries its value.
    ReadVar = 1,
    /// Write a variable from the value field.
    WriteVar = 2,
    /// Increment a variable.
    Increment = 3,
    /// Arm the trace unit: variable index + depth in the value field.
    TraceStart = 4,
    /// Read one trace-buffer slot (index in the value field).
    TraceRead = 5,
    /// Read trace status: reply value = (overflowed << 32) | fill.
    TraceStatus = 6,
    /// Stop tracing.
    TraceStop = 7,
}

impl Opcode {
    /// Parses a request opcode byte.
    pub fn from_byte(b: u8) -> Option<Opcode> {
        Some(match b {
            1 => Opcode::ReadVar,
            2 => Opcode::WriteVar,
            3 => Opcode::Increment,
            4 => Opcode::TraceStart,
            5 => Opcode::TraceRead,
            6 => Opcode::TraceStatus,
            7 => Opcode::TraceStop,
            _ => return None,
        })
    }
}

/// Reply status codes.
pub mod status {
    /// Success.
    pub const OK: u8 = 0;
    /// Unknown variable index.
    pub const BAD_VAR: u8 = 1;
    /// Opcode not compiled into this controller.
    pub const BAD_OP: u8 = 2;
}

/// Byte offsets of the packet fields (within the frame).
pub mod field {
    /// Opcode.
    pub const OPCODE: usize = 14;
    /// Variable index.
    pub const VAR: usize = 15;
    /// 64-bit value.
    pub const VALUE: usize = 16;
    /// Status byte (replies).
    pub const STATUS: usize = 24;
}

/// Reply bit OR-ed into the opcode byte.
pub const REPLY_BIT: u8 = 0x80;

/// A parsed direction packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectionPacket {
    /// The operation.
    pub opcode: Opcode,
    /// Target variable index.
    pub var: u8,
    /// Argument / result value.
    pub value: u64,
    /// Status (meaningful in replies).
    pub status: u8,
    /// Reply flag.
    pub is_reply: bool,
}

impl DirectionPacket {
    /// Builds a request.
    pub fn request(opcode: Opcode, var: u8, value: u64) -> Self {
        DirectionPacket {
            opcode,
            var,
            value,
            status: 0,
            is_reply: false,
        }
    }

    /// Encodes into a frame addressed `src → dst`.
    pub fn encode(&self, dst: MacAddr, src: MacAddr) -> Frame {
        let mut payload = vec![0u8; 46];
        payload[0] = self.opcode as u8 | if self.is_reply { REPLY_BIT } else { 0 };
        payload[1] = self.var;
        bitutil::set64(&mut payload, 2, self.value);
        payload[10] = self.status;
        Frame::ethernet(dst, src, ether_type::DIRECTION, &payload)
    }

    /// Decodes from a frame; `None` when the frame is not a direction
    /// packet or carries an unknown opcode.
    pub fn decode(frame: &Frame) -> Option<DirectionPacket> {
        if !frame.is_direction() {
            return None;
        }
        let b = frame.bytes();
        let raw = *b.get(field::OPCODE)?;
        let opcode = Opcode::from_byte(raw & !REPLY_BIT)?;
        Some(DirectionPacket {
            opcode,
            var: *b.get(field::VAR)?,
            value: bitutil::get64(b, field::VALUE),
            status: *b.get(field::STATUS)?,
            is_reply: raw & REPLY_BIT != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for op in [
            Opcode::ReadVar,
            Opcode::WriteVar,
            Opcode::Increment,
            Opcode::TraceStart,
            Opcode::TraceRead,
            Opcode::TraceStatus,
            Opcode::TraceStop,
        ] {
            let p = DirectionPacket::request(op, 3, 0xdead_beef_0042);
            let f = p.encode(MacAddr::from_u64(1), MacAddr::from_u64(2));
            let q = DirectionPacket::decode(&f).unwrap();
            assert_eq!(p, q);
        }
    }

    #[test]
    fn reply_bit_preserved() {
        let mut p = DirectionPacket::request(Opcode::ReadVar, 0, 7);
        p.is_reply = true;
        p.status = status::OK;
        let f = p.encode(MacAddr::from_u64(1), MacAddr::from_u64(2));
        let q = DirectionPacket::decode(&f).unwrap();
        assert!(q.is_reply);
        assert_eq!(q.status, status::OK);
    }

    #[test]
    fn non_direction_frames_rejected() {
        let f = Frame::ethernet(
            MacAddr::from_u64(1),
            MacAddr::from_u64(2),
            emu_types::proto::ether_type::IPV4,
            &[0; 46],
        );
        assert!(DirectionPacket::decode(&f).is_none());
    }

    #[test]
    fn unknown_opcode_rejected() {
        let p = DirectionPacket::request(Opcode::ReadVar, 0, 0);
        let mut f = p.encode(MacAddr::from_u64(1), MacAddr::from_u64(2));
        f.bytes_mut()[field::OPCODE] = 0x7f;
        assert!(DirectionPacket::decode(&f).is_none());
    }

    #[test]
    fn field_offsets_match_layout() {
        let p = DirectionPacket::request(Opcode::WriteVar, 9, 0x0102030405060708);
        let f = p.encode(MacAddr::from_u64(1), MacAddr::from_u64(2));
        let b = f.bytes();
        assert_eq!(b[field::OPCODE], 2);
        assert_eq!(b[field::VAR], 9);
        assert_eq!(bitutil::get64(b, field::VALUE), 0x0102030405060708);
    }
}
