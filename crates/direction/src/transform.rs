//! The Figure 11 transformation: embedding a direction controller.
//!
//! "Extending a C# program to support direction commands involves
//! inserting (i) named extension points with runtime-modifiable code in a
//! computationally weak language (no recursion); and (ii) state used for
//! book-keeping by that code" (§3.5). Concretely:
//!
//! * a branch is inserted at the top of the service's receive loop (the
//!   `rx` label every service carries): direction packets are diverted to
//!   the controller, normal packets continue into the original program —
//!   exactly the pink-dot picture of Figure 11;
//! * the service's `ExtPoint` statements become the trace hook of
//!   Figure 7 (bounded buffer, overflow counter);
//! * controller state (opcode/argument registers, the trace buffer) is
//!   appended to the program's declarations.
//!
//! The extension is *frugal* (§3.5): only the features selected in
//! [`ControllerConfig`] are compiled in, which is what Table 5 measures
//! as +R / +W / +I variants.

use emu_core::Dataplane;
use kiwi_ir::dsl::*;
use kiwi_ir::{Expr, IrError, IrResult, Program, ProgramBuilder, Stmt, VarId};
use netfpga_sim::dataplane::{names, DataplanePorts};

use crate::packet::{field, status, Opcode, REPLY_BIT};

/// Which controller features to compile in.
#[derive(Debug, Clone, Default)]
pub struct ControllerConfig {
    /// Program variables the controller may access, in index order (the
    /// paper's "enumerated type that corresponds to the program
    /// variables").
    pub vars: Vec<String>,
    /// Compile in `ReadVar`.
    pub read: bool,
    /// Compile in `WriteVar`.
    pub write: bool,
    /// Compile in `Increment`.
    pub increment: bool,
    /// Trace-buffer depth (0 = no trace unit).
    pub trace_depth: usize,
}

impl ControllerConfig {
    /// The Table 5 "+R" variant.
    pub fn read_only(vars: &[&str]) -> Self {
        ControllerConfig {
            vars: vars.iter().map(|s| s.to_string()).collect(),
            read: true,
            ..Default::default()
        }
    }

    /// The Table 5 "+W" variant.
    pub fn read_write(vars: &[&str]) -> Self {
        ControllerConfig {
            write: true,
            ..Self::read_only(vars)
        }
    }

    /// The Table 5 "+I" variant.
    pub fn read_increment(vars: &[&str]) -> Self {
        ControllerConfig {
            increment: true,
            ..Self::read_only(vars)
        }
    }

    /// Full-featured controller with a trace unit.
    pub fn full(vars: &[&str], trace_depth: usize) -> Self {
        ControllerConfig {
            vars: vars.iter().map(|s| s.to_string()).collect(),
            read: true,
            write: true,
            increment: true,
            trace_depth,
        }
    }
}

/// Handles to the controller state added by the transformation.
struct CtlRegs {
    d_op: VarId,
    d_var: VarId,
    d_val: VarId,
    d_reply: VarId,
    d_status: VarId,
    d_scratch: VarId,
    trace: Option<TraceRegs>,
}

struct TraceRegs {
    buf: kiwi_ir::ArrId,
    idx: VarId,
    max: VarId,
    ovf: VarId,
    en: VarId,
    sel: VarId,
}

/// Extends `prog` with an embedded controller per `cfg`.
///
/// The program must follow the service conventions: the dataplane
/// contract signals, a `frame` array, and a `label("rx")` at the top of
/// its receive loop.
pub fn extend_program(prog: &Program, cfg: &ControllerConfig) -> IrResult<Program> {
    // Re-declare everything so existing ids stay valid.
    let mut pb = ProgramBuilder::new(&format!("{}_directed", prog.name));
    for v in prog.vars() {
        pb.reg_init(&v.name, v.width, v.init.clone());
    }
    for a in prog.arrays() {
        pb.array_init(&a.name, a.elem_width, a.len, a.backing, a.init.clone());
    }
    for s in prog.signals() {
        match s.dir {
            kiwi_ir::SigDir::In => pb.sig_in(&s.name, s.width),
            kiwi_ir::SigDir::Out => pb.sig_out(&s.name, s.width),
        };
    }

    // Resolve the variables the controller may touch.
    let var_ids: Vec<VarId> = cfg
        .vars
        .iter()
        .map(|n| {
            prog.var_by_name(n)
                .ok_or_else(|| IrError(format!("controller var `{n}` not found")))
        })
        .collect::<IrResult<_>>()?;

    // Controller state.
    let regs = CtlRegs {
        d_op: pb.reg("d_op", 8),
        d_var: pb.reg("d_var", 8),
        d_val: pb.reg("d_val", 64),
        d_reply: pb.reg("d_reply", 64),
        d_status: pb.reg("d_status", 8),
        d_scratch: pb.reg("d_scratch", 48),
        trace: if cfg.trace_depth > 0 {
            Some(TraceRegs {
                buf: pb.array(
                    "d_trace_buf",
                    64,
                    cfg.trace_depth,
                    kiwi_ir::ArrayBacking::BlockRam,
                ),
                idx: pb.reg("d_trace_idx", 32),
                max: pb.reg("d_trace_max", 32),
                ovf: pb.reg("d_trace_ovf", 32),
                en: pb.reg("d_trace_en", 1),
                sel: pb.reg("d_trace_sel", 8),
            })
        } else {
            None
        },
    };

    // Reconstruct the dataplane handle over the existing ids.
    let dp = Dataplane {
        ports: resolve_ports(prog)?,
    };

    let controller = controller_body(&dp, &regs, cfg, &var_ids);

    for t in &prog.threads {
        let body = inject(&t.body, &dp, &regs, &var_ids, &controller)?;
        pb.thread(&t.name, body);
    }
    pb.build()
}

fn resolve_ports(prog: &Program) -> IrResult<DataplanePorts> {
    let sig = |n: &str| {
        prog.signal_by_name(n)
            .ok_or_else(|| IrError(format!("program lacks dataplane signal `{n}`")))
    };
    Ok(DataplanePorts {
        rx_valid: sig(names::RX_VALID)?,
        rx_len: sig(names::RX_LEN)?,
        rx_port: sig(names::RX_PORT)?,
        rx_done: sig(names::RX_DONE)?,
        tx_valid: sig(names::TX_VALID)?,
        tx_len: sig(names::TX_LEN)?,
        tx_ports: sig(names::TX_PORTS)?,
        frame: prog
            .array_by_name(names::FRAME)
            .ok_or_else(|| IrError("program lacks `frame` array".into()))?,
    })
}

/// The controller's packet handler (runs instead of the program body when
/// a direction packet arrives — Figure 8's controller/director split).
fn controller_body(
    dp: &Dataplane,
    regs: &CtlRegs,
    cfg: &ControllerConfig,
    vars: &[VarId],
) -> Vec<Stmt> {
    let mut body = vec![
        assign(regs.d_op, dp.byte(field::OPCODE)),
        assign(regs.d_var, dp.byte(field::VAR)),
        assign(regs.d_val, dp.get64(field::VALUE)),
        assign(regs.d_reply, lit(0, 64)),
        assign(regs.d_status, lit(u64::from(status::BAD_OP), 8)),
    ];

    let op_is = |op: Opcode| eq(var(regs.d_op), lit(op as u64, 8));

    // Per-variable dispatch chain builder.
    let per_var = |mk: &dyn Fn(VarId) -> Vec<Stmt>| -> Vec<Stmt> {
        let mut chain = vec![assign(regs.d_status, lit(u64::from(status::BAD_VAR), 8))];
        for (i, &v) in vars.iter().enumerate() {
            let mut hit = mk(v);
            hit.push(assign(regs.d_status, lit(u64::from(status::OK), 8)));
            chain.push(if_then(eq(var(regs.d_var), lit(i as u64, 8)), hit));
        }
        chain
    };

    if cfg.read {
        body.push(if_then(
            op_is(Opcode::ReadVar),
            per_var(&|v| vec![assign(regs.d_reply, resize(var(v), 64))]),
        ));
    }
    if cfg.write {
        body.push(if_then(
            op_is(Opcode::WriteVar),
            per_var(&|v| vec![assign(v, var(regs.d_val))]),
        ));
    }
    if cfg.increment {
        body.push(if_then(
            op_is(Opcode::Increment),
            per_var(&|v| vec![assign(v, add(var(v), lit(1, 8)))]),
        ));
    }
    if let Some(tr) = &regs.trace {
        body.push(if_then(
            op_is(Opcode::TraceStart),
            vec![
                assign(tr.sel, var(regs.d_var)),
                assign(tr.max, resize(var(regs.d_val), 32)),
                assign(tr.idx, lit(0, 32)),
                assign(tr.ovf, lit(0, 32)),
                assign(tr.en, tru()),
                assign(regs.d_status, lit(u64::from(status::OK), 8)),
            ],
        ));
        body.push(if_then(
            op_is(Opcode::TraceRead),
            vec![
                assign(
                    regs.d_reply,
                    resize(arr_read(tr.buf, resize(var(regs.d_val), 16)), 64),
                ),
                assign(regs.d_status, lit(u64::from(status::OK), 8)),
            ],
        ));
        body.push(if_then(
            op_is(Opcode::TraceStatus),
            vec![
                assign(regs.d_reply, resize(concat(var(tr.ovf), var(tr.idx)), 64)),
                assign(regs.d_status, lit(u64::from(status::OK), 8)),
            ],
        ));
        body.push(if_then(
            op_is(Opcode::TraceStop),
            vec![
                assign(tr.en, fls()),
                assign(regs.d_status, lit(u64::from(status::OK), 8)),
            ],
        ));
    }

    // Build the reply in place and send it back where it came from.
    body.push(dp.set8(
        field::OPCODE,
        bor(var(regs.d_op), lit(u64::from(REPLY_BIT), 8)),
    ));
    body.extend(dp.set64(field::VALUE, var(regs.d_reply)));
    body.push(dp.set8(field::STATUS, resize(var(regs.d_status), 8)));
    body.extend(dp.swap_macs(regs.d_scratch));
    body.push(dp.set_output_port(dp.input_port()));
    body.extend(dp.transmit(dp.rx_len()));
    body
}

/// The Figure 7 trace hook substituted for each `ExtPoint`.
fn trace_hook(tr: &TraceRegs, vars: &[VarId], sel: VarId) -> Stmt {
    // Select the traced variable by index (the "enumerated type").
    let mut capture: Expr = lit(0, 64);
    for (i, &v) in vars.iter().enumerate() {
        capture = mux(eq(var(sel), lit(i as u64, 8)), resize(var(v), 64), capture);
    }
    if_then(
        var(tr.en),
        vec![if_else(
            lt(var(tr.idx), var(tr.max)),
            vec![
                arr_write(tr.buf, resize(var(tr.idx), 16), capture),
                assign(tr.idx, add(var(tr.idx), lit(1, 32))),
            ],
            // Figure 7 "break"s the hosted program on depletion; a network
            // service cannot stop, so depletion disables the trace and
            // counts the overflow.
            vec![
                assign(tr.ovf, add(var(tr.ovf), lit(1, 32))),
                assign(tr.en, fls()),
            ],
        )],
    )
}

/// Walks a statement list, diverting direction packets at `label("rx")`
/// and substituting trace hooks for extension points.
fn inject(
    body: &[Stmt],
    dp: &Dataplane,
    regs: &CtlRegs,
    vars: &[VarId],
    controller: &[Stmt],
) -> IrResult<Vec<Stmt>> {
    let mut out = Vec::new();
    let iter = body.iter().enumerate();
    for (i, s) in iter {
        match s {
            Stmt::Label(l) if l == "rx" => {
                out.push(s.clone());
                // The rest of this list becomes the "normal program"
                // branch; the controller takes the direction branch.
                let rest: Vec<Stmt> = body[i + 1..].to_vec();
                let rest = inject(&rest, dp, regs, vars, controller)?;
                let mut ctl = controller.to_vec();
                ctl.extend(dp.done());
                out.push(if_else(
                    dp.ethertype_is(emu_types::proto::ether_type::DIRECTION),
                    ctl,
                    rest,
                ));
                return Ok(out);
            }
            Stmt::ExtPoint(_) => {
                if let Some(tr) = &regs.trace {
                    out.push(trace_hook(tr, vars, tr.sel));
                } else {
                    out.push(s.clone());
                }
            }
            Stmt::If(c, t, e) => {
                out.push(Stmt::If(
                    c.clone(),
                    inject(t, dp, regs, vars, controller)?,
                    inject(e, dp, regs, vars, controller)?,
                ));
            }
            Stmt::While(c, b) => {
                out.push(Stmt::While(
                    c.clone(),
                    inject(b, dp, regs, vars, controller)?,
                ));
            }
            _ => out.push(s.clone()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::DirectionPacket;
    use emu_core::{service_builder, Service, Target};
    use emu_types::{Frame, MacAddr};

    /// A counter service: counts received frames, mirrors them back.
    fn counter_service() -> Service {
        let (mut pb, dp) = service_builder("counter", 128);
        let count = pb.reg("count", 32);
        let mut body = vec![dp.rx_wait(), label("rx"), ext_point(0)];
        body.push(assign(count, add(var(count), lit(1, 32))));
        body.push(dp.set_output_port(dp.input_port()));
        body.extend(dp.transmit(dp.rx_len()));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        Service::new(pb.build().unwrap())
    }

    fn directed(cfg: &ControllerConfig) -> Service {
        let base = counter_service();
        Service::new(extend_program(&base.program, cfg).unwrap())
    }

    fn dir_frame(op: Opcode, var_idx: u8, value: u64) -> Frame {
        let mut f = DirectionPacket::request(op, var_idx, value)
            .encode(MacAddr::from_u64(0xD0), MacAddr::from_u64(0xD1));
        f.in_port = 1;
        f
    }

    #[test]
    fn read_variable_over_packets() {
        let svc = directed(&ControllerConfig::read_only(&["count"]));
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        // Three normal frames bump the counter.
        for _ in 0..3 {
            inst.process(&Frame::new(vec![0; 60])).unwrap();
        }
        let out = inst.process(&dir_frame(Opcode::ReadVar, 0, 0)).unwrap();
        assert_eq!(out.tx.len(), 1);
        let reply = DirectionPacket::decode(&out.tx[0].frame).unwrap();
        assert!(reply.is_reply);
        assert_eq!(reply.status, status::OK);
        assert_eq!(reply.value, 3);
        // Direction packets must NOT bump the service counter.
        assert_eq!(inst.read_reg("count").unwrap().to_u64(), 3);
    }

    #[test]
    fn write_and_increment_variants() {
        let svc = directed(&ControllerConfig::full(&["count"], 0));
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        inst.process(&dir_frame(Opcode::WriteVar, 0, 41)).unwrap();
        assert_eq!(inst.read_reg("count").unwrap().to_u64(), 41);
        inst.process(&dir_frame(Opcode::Increment, 0, 0)).unwrap();
        assert_eq!(inst.read_reg("count").unwrap().to_u64(), 42);
    }

    #[test]
    fn feature_frugality_rejects_uncompiled_ops() {
        // +R only: a write must come back BAD_OP and not change state.
        let svc = directed(&ControllerConfig::read_only(&["count"]));
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let out = inst.process(&dir_frame(Opcode::WriteVar, 0, 99)).unwrap();
        let reply = DirectionPacket::decode(&out.tx[0].frame).unwrap();
        assert_eq!(reply.status, status::BAD_OP);
        assert_eq!(inst.read_reg("count").unwrap().to_u64(), 0);
    }

    #[test]
    fn unknown_variable_index_reports_bad_var() {
        let svc = directed(&ControllerConfig::read_only(&["count"]));
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let out = inst.process(&dir_frame(Opcode::ReadVar, 7, 0)).unwrap();
        let reply = DirectionPacket::decode(&out.tx[0].frame).unwrap();
        assert_eq!(reply.status, status::BAD_VAR);
    }

    #[test]
    fn trace_captures_variable_history() {
        let svc = directed(&ControllerConfig::full(&["count"], 8));
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        // Arm the trace on var 0 with depth 5.
        inst.process(&dir_frame(Opcode::TraceStart, 0, 5)).unwrap();
        // Seven normal frames: 5 captured, then depletion.
        for _ in 0..7 {
            inst.process(&Frame::new(vec![0; 60])).unwrap();
        }
        // Status: fill = 5, overflow flagged.
        let out = inst.process(&dir_frame(Opcode::TraceStatus, 0, 0)).unwrap();
        let st = DirectionPacket::decode(&out.tx[0].frame).unwrap();
        assert_eq!(st.value & 0xffff_ffff, 5, "fill count");
        assert!(st.value >> 32 >= 1, "overflow count");
        // The trace captured count's values *at the extension point*
        // (before each increment): 0,1,2,3,4.
        for i in 0..5u64 {
            let out = inst.process(&dir_frame(Opcode::TraceRead, 0, i)).unwrap();
            let p = DirectionPacket::decode(&out.tx[0].frame).unwrap();
            assert_eq!(p.value, i, "slot {i}");
        }
    }

    #[test]
    fn normal_traffic_unaffected_by_controller() {
        let plain = counter_service();
        let directed_svc = directed(&ControllerConfig::full(&["count"], 8));
        let mut a = plain.engine(Target::Fpga).build().unwrap();
        let mut b = directed_svc.engine(Target::Fpga).build().unwrap();
        for i in 0..5 {
            let f = Frame::new(vec![i; 64]);
            let ra = a.process(&f).unwrap();
            let rb = b.process(&f).unwrap();
            assert_eq!(ra.tx, rb.tx, "frame {i}");
        }
    }

    #[test]
    fn both_targets_agree_on_direction_traffic() {
        let svc = directed(&ControllerConfig::full(&["count"], 4));
        let frames = vec![
            Frame::new(vec![1; 60]),
            dir_frame(Opcode::ReadVar, 0, 0),
            dir_frame(Opcode::WriteVar, 0, 10),
            Frame::new(vec![2; 60]),
            dir_frame(Opcode::ReadVar, 0, 0),
        ];
        emu_core::assert_targets_agree(&svc, &frames).unwrap();
    }

    #[test]
    fn missing_rx_label_is_an_error() {
        let (mut pb, dp) = service_builder("nolabel", 64);
        let mut body = vec![dp.rx_wait()];
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        let prog = pb.build().unwrap();
        // Transform succeeds but produces a program whose controller is
        // unreachable; reading a var must then time out/not reply. We
        // assert the *structural* property: no direction branch present.
        let cfg = ControllerConfig::read_only(&[]);
        let ext = extend_program(&prog, &cfg).unwrap();
        let text = kiwi_ir::pretty::program_to_string(&ext);
        assert!(
            !text.contains("34997"),
            "no direction ethertype check expected"
        );
    }
}
