//! The direction-command language of Table 2.
//!
//! Commands are parsed from gdb-like text, then *compiled*: commands the
//! embedded controller supports become CASP programs — sequences of
//! counter/array/stored-procedure operations carried by direction packets
//! (§3.5 models the controller "as a counters, arrays, and stored
//! procedures (CASP) machine") — while purely observational commands
//! (`watch`, `count`, `backtrace`, `break`) attach to the software
//! target's observer hooks, reproducing the paper's heterogeneous debug
//! environment.

use crate::packet::Opcode;
use kiwi_ir::interp::{MachineState, Observer};
use std::collections::HashMap;
use std::fmt;

/// A comparison condition `⟨var⟩ ⟨op⟩ ⟨literal⟩` (the `⟨B⟩` of Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond {
    /// Variable name.
    pub var: String,
    /// One of `== != < <= > >=`.
    pub op: String,
    /// Right-hand literal.
    pub value: u64,
}

impl Cond {
    /// Evaluates against a value of `self.var`.
    pub fn eval(&self, v: u64) -> bool {
        match self.op.as_str() {
            "==" => v == self.value,
            "!=" => v != self.value,
            "<" => v < self.value,
            "<=" => v <= self.value,
            ">" => v > self.value,
            ">=" => v >= self.value,
            _ => false,
        }
    }
}

/// A direction command (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `print X`
    Print(String),
    /// `set X <value>` (the writing counterpart used by the +W variant).
    Set(String, u64),
    /// `increment X` (the +I variant).
    Increment(String),
    /// `break L [cond]`
    Break(String, Option<Cond>),
    /// `unbreak L`
    Unbreak(String),
    /// `backtrace [n]`
    Backtrace(Option<usize>),
    /// `watch X [cond]`
    Watch(String, Option<Cond>),
    /// `unwatch X`
    Unwatch(String),
    /// `count writes X` / `count calls L`
    Count {
        /// `"writes"` or `"calls"`.
        what: String,
        /// Variable or label name.
        target: String,
    },
    /// `trace start X [depth]`
    TraceStart(String, usize),
    /// `trace stop X`
    TraceStop(String),
    /// `trace clear X`
    TraceClear(String),
    /// `trace print X`
    TracePrint(String),
    /// `trace full X`
    TraceFull(String),
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Print(x) => write!(f, "print {x}"),
            Command::Set(x, v) => write!(f, "set {x} {v}"),
            Command::Increment(x) => write!(f, "increment {x}"),
            Command::Break(l, None) => write!(f, "break {l}"),
            Command::Break(l, Some(c)) => write!(f, "break {l} {} {} {}", c.var, c.op, c.value),
            Command::Unbreak(l) => write!(f, "unbreak {l}"),
            Command::Backtrace(None) => write!(f, "backtrace"),
            Command::Backtrace(Some(n)) => write!(f, "backtrace {n}"),
            Command::Watch(x, None) => write!(f, "watch {x}"),
            Command::Watch(x, Some(c)) => write!(f, "watch {x} {} {} {}", c.var, c.op, c.value),
            Command::Unwatch(x) => write!(f, "unwatch {x}"),
            Command::Count { what, target } => write!(f, "count {what} {target}"),
            Command::TraceStart(x, d) => write!(f, "trace start {x} {d}"),
            Command::TraceStop(x) => write!(f, "trace stop {x}"),
            Command::TraceClear(x) => write!(f, "trace clear {x}"),
            Command::TracePrint(x) => write!(f, "trace print {x}"),
            Command::TraceFull(x) => write!(f, "trace full {x}"),
        }
    }
}

/// Parses one command line.
pub fn parse(line: &str) -> Result<Command, String> {
    let t: Vec<&str> = line.split_whitespace().collect();
    let cond_of = |toks: &[&str]| -> Result<Option<Cond>, String> {
        match toks {
            [] => Ok(None),
            [v, op, lit] => Ok(Some(Cond {
                var: v.to_string(),
                op: op.to_string(),
                value: lit.parse().map_err(|e| format!("bad literal: {e}"))?,
            })),
            _ => Err("condition must be `<var> <op> <value>`".into()),
        }
    };
    match t.as_slice() {
        ["print", x] => Ok(Command::Print(x.to_string())),
        ["set", x, v] => Ok(Command::Set(
            x.to_string(),
            v.parse().map_err(|e| format!("bad value: {e}"))?,
        )),
        ["increment", x] => Ok(Command::Increment(x.to_string())),
        ["break", l, rest @ ..] => Ok(Command::Break(l.to_string(), cond_of(rest)?)),
        ["unbreak", l] => Ok(Command::Unbreak(l.to_string())),
        ["backtrace"] => Ok(Command::Backtrace(None)),
        ["backtrace", n] => Ok(Command::Backtrace(Some(
            n.parse().map_err(|e| format!("bad depth: {e}"))?,
        ))),
        ["watch", x, rest @ ..] => Ok(Command::Watch(x.to_string(), cond_of(rest)?)),
        ["unwatch", x] => Ok(Command::Unwatch(x.to_string())),
        ["count", what @ ("writes" | "calls" | "reads"), tgt] => Ok(Command::Count {
            what: what.to_string(),
            target: tgt.to_string(),
        }),
        ["trace", "start", x] => Ok(Command::TraceStart(x.to_string(), 64)),
        ["trace", "start", x, d] => Ok(Command::TraceStart(
            x.to_string(),
            d.parse().map_err(|e| format!("bad depth: {e}"))?,
        )),
        ["trace", "stop", x] => Ok(Command::TraceStop(x.to_string())),
        ["trace", "clear", x] => Ok(Command::TraceClear(x.to_string())),
        ["trace", "print", x] => Ok(Command::TracePrint(x.to_string())),
        ["trace", "full", x] => Ok(Command::TraceFull(x.to_string())),
        _ => Err(format!("unrecognized command: {line}")),
    }
}

/// One CASP-machine operation, carried by a direction packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaspOp {
    /// Read a variable into the result.
    ReadVar(u8),
    /// Write a variable.
    WriteVar(u8, u64),
    /// Increment a variable.
    Inc(u8),
    /// Arm the trace unit.
    TraceStart(u8, u64),
    /// Read a trace slot.
    TraceRead(u64),
    /// Read fill/overflow status.
    TraceStatus,
    /// Disarm the trace unit.
    TraceStop,
}

impl CaspOp {
    /// The wire opcode plus var/value arguments.
    pub fn encode(&self) -> (Opcode, u8, u64) {
        match *self {
            CaspOp::ReadVar(v) => (Opcode::ReadVar, v, 0),
            CaspOp::WriteVar(v, x) => (Opcode::WriteVar, v, x),
            CaspOp::Inc(v) => (Opcode::Increment, v, 0),
            CaspOp::TraceStart(v, d) => (Opcode::TraceStart, v, d),
            CaspOp::TraceRead(i) => (Opcode::TraceRead, 0, i),
            CaspOp::TraceStatus => (Opcode::TraceStatus, 0, 0),
            CaspOp::TraceStop => (Opcode::TraceStop, 0, 0),
        }
    }
}

/// Compiles a command into controller ops, resolving variable names via
/// the controller's var table. Commands without a hardware mapping
/// (watch/break/count/backtrace) return an empty program — they run on
/// the software target's observer instead.
pub fn compile(cmd: &Command, var_table: &[String]) -> Result<Vec<CaspOp>, String> {
    let idx = |name: &str| -> Result<u8, String> {
        var_table
            .iter()
            .position(|v| v == name)
            .map(|i| i as u8)
            .ok_or_else(|| format!("variable `{name}` not exported to the controller"))
    };
    Ok(match cmd {
        Command::Print(x) => vec![CaspOp::ReadVar(idx(x)?)],
        Command::Set(x, v) => vec![CaspOp::WriteVar(idx(x)?, *v)],
        Command::Increment(x) => vec![CaspOp::Inc(idx(x)?)],
        Command::TraceStart(x, d) => vec![CaspOp::TraceStart(idx(x)?, *d as u64)],
        Command::TraceStop(_) => vec![CaspOp::TraceStop],
        Command::TraceClear(x) => vec![CaspOp::TraceStop, CaspOp::TraceStart(idx(x)?, 0)],
        Command::TraceFull(_) | Command::TracePrint(_) => vec![CaspOp::TraceStatus],
        _ => Vec::new(),
    })
}

/// Software-target direction support: an [`Observer`] implementing
/// watchpoints, breakpoints, write/call counters and a label backtrace.
#[derive(Debug, Default)]
pub struct DirectionObserver {
    /// Active watchpoints: var index → optional condition.
    pub watches: HashMap<u32, Option<Cond>>,
    /// Triggered watch events: (var index, old, new).
    pub watch_hits: Vec<(u32, u64, u64)>,
    /// Active breakpoints by label name.
    pub breaks: HashMap<String, Option<Cond>>,
    /// Labels whose breakpoints fired.
    pub break_hits: Vec<String>,
    /// Write counters per var index.
    pub write_counts: HashMap<u32, u64>,
    /// Call (label-crossing) counters.
    pub call_counts: HashMap<String, u64>,
    /// Rolling label history (the "function call stack" of `backtrace`).
    pub backtrace: Vec<String>,
    /// Backtrace depth bound.
    pub backtrace_depth: usize,
}

impl DirectionObserver {
    /// Creates an observer with a default backtrace depth.
    pub fn new() -> Self {
        DirectionObserver {
            backtrace_depth: 32,
            ..Default::default()
        }
    }
}

impl Observer for DirectionObserver {
    fn on_assign(&mut self, var: u32, old: &emu_types::Bits, new: &emu_types::Bits) {
        *self.write_counts.entry(var).or_insert(0) += 1;
        if let Some(cond) = self.watches.get(&var) {
            let fire = cond.as_ref().is_none_or(|c| c.eval(new.to_u64()));
            if fire {
                self.watch_hits.push((var, old.to_u64(), new.to_u64()));
            }
        }
    }

    fn on_label(&mut self, name: &str) {
        *self.call_counts.entry(name.to_string()).or_insert(0) += 1;
        self.backtrace.push(name.to_string());
        if self.backtrace.len() > self.backtrace_depth {
            self.backtrace.remove(0);
        }
        if let Some(cond) = self.breaks.get(name) {
            if cond.is_none() {
                self.break_hits.push(name.to_string());
            }
        }
    }

    fn on_ext_point(&mut self, _id: u32, _state: &mut MachineState) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for line in [
            "print count",
            "set count 42",
            "increment count",
            "break rx",
            "break rx count > 5",
            "unbreak rx",
            "backtrace",
            "backtrace 8",
            "watch count",
            "watch count count == 3",
            "unwatch count",
            "count writes count",
            "count calls rx",
            "trace start count 16",
            "trace stop count",
            "trace clear count",
            "trace print count",
            "trace full count",
        ] {
            let cmd = parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            let printed = cmd.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(cmd, reparsed, "{line}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("prynt x").is_err());
        assert!(parse("set x notanumber").is_err());
        assert!(parse("break rx count >").is_err());
        assert!(parse("count flops x").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn compile_maps_to_controller_ops() {
        let table = vec!["count".to_string(), "free".to_string()];
        assert_eq!(
            compile(&parse("print free").unwrap(), &table).unwrap(),
            vec![CaspOp::ReadVar(1)]
        );
        assert_eq!(
            compile(&parse("set count 9").unwrap(), &table).unwrap(),
            vec![CaspOp::WriteVar(0, 9)]
        );
        assert_eq!(
            compile(&parse("trace start count 32").unwrap(), &table).unwrap(),
            vec![CaspOp::TraceStart(0, 32)]
        );
        // Unknown variable.
        assert!(compile(&parse("print nope").unwrap(), &table).is_err());
        // Software-only commands compile to no packets.
        assert!(compile(&parse("watch count").unwrap(), &table)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn cond_evaluation() {
        let c = Cond {
            var: "x".into(),
            op: ">=".into(),
            value: 10,
        };
        assert!(c.eval(10));
        assert!(c.eval(11));
        assert!(!c.eval(9));
    }

    #[test]
    fn observer_counts_and_watches() {
        use kiwi_ir::interp::Observer as _;
        let mut obs = DirectionObserver::new();
        obs.watches.insert(
            2,
            Some(Cond {
                var: "x".into(),
                op: ">".into(),
                value: 5,
            }),
        );
        obs.on_assign(
            2,
            &emu_types::Bits::from_u64(1, 32),
            &emu_types::Bits::from_u64(3, 32),
        );
        obs.on_assign(
            2,
            &emu_types::Bits::from_u64(3, 32),
            &emu_types::Bits::from_u64(9, 32),
        );
        assert_eq!(obs.write_counts[&2], 2);
        assert_eq!(obs.watch_hits.len(), 1);
        assert_eq!(obs.watch_hits[0], (2, 3, 9));

        obs.breaks.insert("rx".into(), None);
        obs.on_label("rx");
        obs.on_label("rx");
        assert_eq!(obs.call_counts["rx"], 2);
        assert_eq!(obs.break_hits.len(), 2);
        assert_eq!(obs.backtrace, vec!["rx", "rx"]);
    }
}
