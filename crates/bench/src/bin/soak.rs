//! The standing scenario engine: millions of generated frames through
//! sharded **parallel** engines, with reference checkers asserting
//! service invariants on every frame — translation consistency for
//! NAT, cache coherence for memcached, learned forwarding for the
//! switch — and the engine-wide rule that no input may ever trap a
//! shard.
//!
//! Every service runs twice with the *same generator seed*: once on a
//! `shards(4).parallel(true)` engine (real OS threads) and once on the
//! sequential cost-model engine. The checker verdicts must be
//! identical — parallel execution is invisible to semantics — and both
//! must be **zero violations**.
//!
//! Emits a bench report (`emu-telemetry`'s versioned schema) on stdout
//! — one row per service × mode carrying the checker's name, its
//! per-checker frame/violation counts, and the first violation notes
//! verbatim — plus a human-readable table on stderr; exits non-zero on
//! any violation or verdict divergence.
//!
//! Run: `cargo run --release -p emu-bench --bin soak
//! [-- --frames N] [-- --backend compiled|treewalk]`
//! (default 1,000,000 frames per service on the compiled CPU backend;
//! CI's `soak-smoke` job runs 50,000). Every row reports `us_per_frame`
//! for the selected backend; `backend_compare` reports the compiled-vs-
//! tree-walk matrix directly.

use emu_core::{Backend, Engine, NatSteering, Target};
use emu_telemetry::{BenchReport, Json};
use emu_traffic::{
    Adversarial, Background, Checker, DnsWeighted, FlowChurn, MacChurn, McModel, MemcachedZipf,
    Mix, NatChecker, SwitchModel, TcpConversations, TrafficGen,
};
use emu_types::{Frame, Ipv4};
use std::time::Instant;

const SHARDS: usize = 4;
const BATCH: usize = 1024;
const SEED: u64 = 0x50a1c;

/// Scaled-up Cpu table size (the million-flow regime; Fpga targets
/// stay BRAM-bounded and reject this).
const TABLE_ENTRIES: usize = 1_000_000;

/// Mapping/MAC idle timeout in frames for the stateful services. Short
/// enough that churned-away flows age out many times over a soak run,
/// long enough that live Zipf-tail flows survive between sends.
const TTL_FRAMES: u64 = 20_000;

/// Verdict of one engine run — the quantities that must match between
/// sequential and parallel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Verdict {
    frames: u64,
    tx: u64,
    rejected: u64,
    violations: u64,
}

struct Row {
    service: &'static str,
    mode: &'static str,
    checker: &'static str,
    verdict: Verdict,
    wall_s: f64,
    notes: Vec<String>,
}

fn public() -> Ipv4 {
    "203.0.113.1".parse().expect("valid")
}

/// The per-service traffic recipe (fresh generator for every run, so
/// sequential and parallel consume identical streams).
fn nat_mix(seed: u64) -> Mix {
    // The FlowChurn pool stays under the per-shard ephemeral-port
    // budget (~3 900 ports per residue class); departed flows' mappings
    // are reclaimed by TTL_FRAMES-idle expiry, which the churn weight
    // exercises ~70k times over a million-frame run.
    Mix::new(seed)
        .add(10, FlowChurn::new(seed ^ 5, 4_000, 200, &[1, 2, 3]))
        .add(8, TcpConversations::new(seed ^ 1, 48, &[1, 2, 3]))
        .add(
            3,
            DnsWeighted::new(seed ^ 2, &[("example.com", 3), ("emu.cam.ac.uk", 1)]),
        )
        .add(2, Background::new(seed ^ 3, &[1, 2, 3]))
        .add(1, Adversarial::new(seed ^ 4, &[0, 1, 2, 3]))
}

fn mc_mix(seed: u64) -> Mix {
    // 200k-key Zipf working set against a million-entry store.
    Mix::new(seed)
        .add(12, MemcachedZipf::new(seed ^ 1, 200_000, 1.1, 0.9))
        .add(2, Background::new(seed ^ 2, &[0, 1, 2, 3]))
        .add(1, Adversarial::new(seed ^ 3, &[0, 1, 2, 3]))
}

fn switch_mix(seed: u64) -> Mix {
    // A 5 000-station sliding window: ~100k distinct MACs learned over
    // a million-frame run, silent stations aging out along the way.
    Mix::new(seed)
        .add(8, MacChurn::new(seed ^ 4, 5_000, 300))
        .add(6, Background::new(seed ^ 1, &[0, 1, 2, 3]))
        .add(3, TcpConversations::new(seed ^ 2, 32, &[0, 1, 2, 3]))
        .add(1, Adversarial::new(seed ^ 3, &[0, 1, 2, 3]))
}

/// DNS queries in the NAT mix arrive with `in_port` 0..4; NAT treats
/// port 0 as the external side, so re-pin every generated frame to an
/// internal port while preserving determinism.
fn pin_internal(mut f: Frame) -> Frame {
    if f.in_port == 0 {
        f.in_port = 1 + (f.len() % 3) as u8;
    }
    f
}

/// Drives `frames` frames of `mix` through `engine` in batches,
/// checking every batch. When `bounce` is set (NAT), every 8th batch's
/// translated outputs come back as inbound replies — so the reverse
/// path soaks too.
fn run(
    engine: &mut Engine,
    checker: &mut dyn Checker,
    mut mix: Mix,
    frames: u64,
    bounce: bool,
) -> (Verdict, u64) {
    let mut offered = 0u64;
    let mut tx = 0u64;
    let mut rejected = 0u64;
    let mut batch_idx = 0u64;
    while offered < frames {
        let n = BATCH.min((frames - offered) as usize);
        let mut batch: Vec<Frame> = (0..n).map(|_| mix.next_frame()).collect();
        if bounce {
            batch = batch.into_iter().map(pin_internal).collect();
        }
        let report = engine.process_batch(&batch);
        checker.check_batch(&batch, &report);
        offered += n as u64;
        tx += report.tx_count() as u64;
        rejected += report.outputs.iter().filter(|o| o.is_err()).count() as u64;
        if bounce && batch_idx.is_multiple_of(8) {
            let replies: Vec<Frame> = batch
                .iter()
                .zip(&report.outputs)
                .filter(|(f, _)| f.in_port != 0)
                .filter_map(|(_, r)| r.as_ref().ok())
                .flat_map(|o| &o.tx)
                .take(256)
                .map(|t| emu_traffic::build::reply_to(&t.frame, b"soak-reply"))
                .collect();
            if !replies.is_empty() {
                let reply_report = engine.process_batch(&replies);
                checker.check_batch(&replies, &reply_report);
                offered += replies.len() as u64;
                tx += reply_report.tx_count() as u64;
            }
        }
        batch_idx += 1;
    }
    (
        Verdict {
            frames: checker.frames(),
            tx,
            rejected,
            violations: checker.violations(),
        },
        offered,
    )
}

fn main() {
    let mut frames: u64 = 1_000_000;
    let mut backend = Backend::Compiled;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--frames") {
        frames = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--frames N");
    }
    if let Some(i) = args.iter().position(|a| a == "--backend") {
        backend = match args.get(i + 1).map(String::as_str) {
            Some("treewalk") => Backend::TreeWalk,
            Some("compiled") => Backend::Compiled,
            other => panic!("--backend compiled|treewalk, got {other:?}"),
        };
    }

    type ServiceCase = (
        &'static str,
        fn() -> emu_core::Service,
        fn(u64) -> Mix,
        fn(usize, Option<u64>) -> Box<dyn Checker>,
        Option<u64>, // table TTL (idle timeout in frames)
        bool,        // bounce replies
        bool,        // NatSteering dispatch
    );
    // Every stateful service runs at the scaled-up Cpu table size; the
    // checkers' shadow tables are built with the *same* geometry, so
    // expiry and eviction are predicted, not tolerated.
    let cases: Vec<ServiceCase> = vec![
        (
            "nat",
            || emu_services::nat(public()),
            nat_mix,
            |shards, ttl| {
                Box::new(NatChecker::new(public(), shards).with_table(TABLE_ENTRIES, ttl))
            },
            Some(TTL_FRAMES),
            true,
            true,
        ),
        (
            "memcached",
            emu_services::memcached,
            mc_mix,
            // The store keeps keys until DELETE (GET-after-SET must
            // always hit), so no TTL — the model needs no resizing.
            |_, _| Box::new(McModel::new()),
            None,
            false,
            false,
        ),
        (
            "switch",
            emu_services::switch_ip_cam,
            switch_mix,
            |shards, ttl| Box::new(SwitchModel::new(shards).with_table(TABLE_ENTRIES, ttl)),
            Some(TTL_FRAMES),
            false,
            false,
        ),
    ];

    eprintln!(
        "== soak: {frames} churn frames/service through {SHARDS}-shard {} engines \
         ({TABLE_ENTRIES}-entry tables), parallel vs sequential ==",
        backend.label()
    );
    eprintln!(
        "{:<10} {:>10} {:>9} {:>10} {:>9} {:>10} {:>11} {:>10} {:>8}",
        "service", "mode", "frames", "tx", "rejected", "violations", "wall (s)", "kfps", "us/f"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut failed = false;
    for (name, build, mix, checker, ttl, bounce, steer) in &cases {
        let svc = build();
        let mut verdicts: Vec<Verdict> = Vec::new();
        for (mode, parallel) in [("parallel", true), ("sequential", false)] {
            let mut b = svc
                .engine(Target::Cpu)
                .backend(backend)
                .shards(SHARDS)
                .parallel(parallel)
                .table_entries(TABLE_ENTRIES);
            if let Some(t) = ttl {
                b = b.ttl_frames(*t);
            }
            if *steer {
                b = b.dispatch(NatSteering::default());
            }
            let mut engine = b.build().expect("engine build");
            let mut chk = checker(SHARDS, *ttl);
            let t0 = Instant::now();
            let (verdict, offered) = run(&mut engine, chk.as_mut(), mix(SEED), frames, *bounce);
            let wall_s = t0.elapsed().as_secs_f64();
            assert!(offered >= frames, "{name}: offered {offered} < {frames}");
            eprintln!(
                "{:<10} {:>10} {:>9} {:>10} {:>9} {:>10} {:>11.2} {:>10.1} {:>8.2}",
                name,
                mode,
                verdict.frames,
                verdict.tx,
                verdict.rejected,
                verdict.violations,
                wall_s,
                verdict.frames as f64 / wall_s / 1e3,
                wall_s / verdict.frames as f64 * 1e6,
            );
            for note in chk.notes() {
                eprintln!("    violation: {note}");
            }
            if verdict.violations > 0 {
                failed = true;
            }
            verdicts.push(verdict.clone());
            rows.push(Row {
                service: name,
                mode,
                checker: chk.name(),
                verdict,
                wall_s,
                notes: chk.notes().to_vec(),
            });
        }
        if verdicts[0] != verdicts[1] {
            eprintln!(
                "{name}: sequential and parallel verdicts DIVERGED: {:?} vs {:?}",
                verdicts[1], verdicts[0]
            );
            failed = true;
        }
    }

    // Bench report on stdout. Each row carries its checker's own
    // frame/violation tally and the first violation notes verbatim
    // (escaped by the JSON writer), so a failing soak is diagnosable
    // from the report alone.
    let mut report = BenchReport::new("soak")
        .param("frames_per_service", frames)
        .param("shards", SHARDS as u64)
        .param("seed", SEED)
        .param("backend", backend.label())
        .param("table_entries", TABLE_ENTRIES as u64)
        .param("ttl_frames", TTL_FRAMES);
    for r in &rows {
        report.push_row(Json::obj(vec![
            ("service", Json::from(r.service)),
            ("mode", Json::from(r.mode)),
            ("backend", Json::from(backend.label())),
            ("checker", Json::from(r.checker)),
            ("frames", Json::from(r.verdict.frames)),
            ("tx", Json::from(r.verdict.tx)),
            ("rejected", Json::from(r.verdict.rejected)),
            ("violations", Json::from(r.verdict.violations)),
            ("wall_s", Json::from(r.wall_s)),
            (
                "us_per_frame",
                Json::from(r.wall_s / r.verdict.frames.max(1) as f64 * 1e6),
            ),
            (
                "notes",
                Json::Arr(r.notes.iter().map(|n| Json::from(n.as_str())).collect()),
            ),
        ]));
    }
    println!("{}", report.render());

    if failed {
        eprintln!("\nsoak FAILED: violations or verdict divergence (see above)");
        std::process::exit(1);
    }
    eprintln!("\nsoak passed: zero violations, sequential == parallel ✓");
}
