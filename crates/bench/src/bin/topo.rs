//! Closed-loop goodput and RTT over a generated fat-tree — the
//! topology-scale complement to the per-engine `sustained` bench.
//!
//! One seeded `emu::hosts` fat-tree (core + 2 aggregation + 4 edge
//! learning switches, every engine 2-shard parallel compiled Cpu, plus
//! the memcached/DNS/TCP-ping service leaves: 10 engines) carries nine
//! closed-loop clients through an impairment sweep:
//!
//! * `topo:clean`        — unimpaired fabric,
//! * `topo:loss`         — 2% per-link loss, full retry budget,
//! * `topo:loss-noretry` — the same loss with the budget zeroed,
//! * `topo:chaos`        — loss + duplication + reorder + jitter.
//!
//! Per point the report rows carry sim-time RTT quantiles (p50/p99/p999
//! ns over clean first-try samples — deterministic per seed), the
//! completed-request rate in both sim time (`goodput_rps`) and host
//! wall clock (`mpps`, millions of completed requests per wall second —
//! the row key the schema requires; topology rows are prefixed `topo:`
//! so sustained baseline gates never cross-match them).
//!
//! **Gates (exit non-zero):** every sweep point must finish with zero
//! end-to-end checker violations, and the lossy point with retries must
//! complete strictly more requests than the same fabric without them —
//! the closed-loop claim that retransmission recovers goodput.
//!
//! The full run issues >100k closed-loop requests across the sweep;
//! `--smoke` trims per-client request counts for CI.
//!
//! Run: `cargo run --release -p emu-bench --bin topo
//! [-- --requests N] [-- --smoke] [-- --out PATH] [-- --check]`

use emu_hosts::{fat_tree, ClientConfig, TopoSpec, TopoSummary};
use emu_telemetry::{BenchReport, Json};
use emu_traffic::ClientCheck;
use netsim::Impairments;
use std::time::Instant;

const SEED: u64 = 0x70b0;

struct Point {
    label: &'static str,
    impair: Option<Impairments>,
    retries: u32,
}

fn sweep() -> Vec<Point> {
    let loss = Impairments {
        loss: 0.02,
        seed: SEED ^ 1,
        ..Impairments::default()
    };
    vec![
        Point {
            label: "clean",
            impair: None,
            retries: 4,
        },
        Point {
            label: "loss",
            impair: Some(loss),
            retries: 4,
        },
        Point {
            label: "loss-noretry",
            impair: Some(loss),
            retries: 0,
        },
        Point {
            label: "chaos",
            impair: Some(Impairments {
                loss: 0.02,
                duplicate: 0.02,
                reorder: 0.05,
                jitter_ns: 2_000.0,
                seed: SEED ^ 2,
            }),
            retries: 4,
        },
    ]
}

struct Run {
    sum: TopoSummary,
    violations: u64,
    notes: Vec<String>,
    wall_s: f64,
    engines: usize,
    clients: usize,
}

fn run_point(point: &Point, requests: u64) -> Run {
    let spec = TopoSpec {
        seed: SEED,
        impair: point.impair,
        client: ClientConfig {
            requests,
            retries: point.retries,
            ..ClientConfig::default()
        },
        ..TopoSpec::default()
    };
    let mut topo = fat_tree(spec).expect("engines build");
    topo.start();
    let t0 = Instant::now();
    topo.run().expect("run to quiescence");
    let wall_s = t0.elapsed().as_secs_f64();
    let mut check = ClientCheck::new(spec.client.retries).rtt_floor_ns(topo.rtt_floor_ns());
    let sum = topo.harvest(&mut check);
    Run {
        violations: check.violations(),
        notes: check.notes().to_vec(),
        wall_s,
        engines: topo.engines(),
        clients: topo.clients.len(),
        sum,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut requests: u64 = if smoke { 150 } else { 3_000 };
    if let Some(i) = args.iter().position(|a| a == "--requests") {
        requests = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--requests N");
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args[i + 1].clone());
    let self_check = args.iter().any(|a| a == "--check");

    let mut report = BenchReport::new("topo")
        .param("seed", SEED)
        .param("requests_per_client", requests)
        .param("smoke", smoke);

    eprintln!("== topo: closed-loop fat-tree, {requests} requests/client ==");
    eprintln!(
        "{:<13} {:>8} {:>9} {:>9} {:>9} {:>6} {:>9} {:>9} {:>9} {:>11}",
        "point",
        "issued",
        "done",
        "retx",
        "dups",
        "t/o",
        "p50 ns",
        "p99 ns",
        "p999 ns",
        "goodput r/s"
    );

    let mut failed = false;
    let mut total_requests = 0u64;
    let mut by_label: Vec<(&'static str, u64)> = Vec::new();
    for point in sweep() {
        let run = run_point(&point, requests);
        let s = &run.sum;
        total_requests += s.issued;
        by_label.push((point.label, s.completed));
        let q = |q: f64| s.rtt.quantile(q).unwrap_or(0);
        let (p50, p99, p999) = (q(0.50), q(0.99), q(0.999));
        eprintln!(
            "{:<13} {:>8} {:>9} {:>9} {:>9} {:>6} {:>9} {:>9} {:>9} {:>11.0}",
            point.label,
            s.issued,
            s.completed,
            s.retransmits,
            s.duplicates,
            s.timeouts,
            p50,
            p99,
            p999,
            s.goodput_rps()
        );
        if run.violations > 0 {
            eprintln!(
                "topo FAILED: {} end-to-end violations at {}: {:?}",
                run.violations,
                point.label,
                &run.notes[..run.notes.len().min(5)]
            );
            failed = true;
        }
        report.push_row(Json::obj(vec![
            (
                "service",
                Json::from(format!("topo:{}", point.label).as_str()),
            ),
            ("backend", Json::from("compiled")),
            ("shards", Json::from(2u64)),
            ("mode", Json::from("parallel")),
            ("engines", Json::from(run.engines as u64)),
            ("clients", Json::from(run.clients as u64)),
            ("frames", Json::from(s.issued)),
            ("completed", Json::from(s.completed)),
            ("retransmits", Json::from(s.retransmits)),
            ("timeouts", Json::from(s.timeouts)),
            ("duplicates", Json::from(s.duplicates)),
            ("retries", Json::from(point.retries as u64)),
            ("mpps", Json::from(s.completed as f64 / run.wall_s / 1e6)),
            ("goodput_rps", Json::from(s.goodput_rps())),
            ("p50_ns", Json::from(p50 as f64)),
            ("p99_ns", Json::from(p99 as f64)),
            ("p999_ns", Json::from(p999 as f64)),
        ]));
    }

    // The recovery gate: retries must buy goodput back under loss.
    let completed = |label: &str| {
        by_label
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, c)| *c)
            .expect("sweep point ran")
    };
    let (with, without) = (completed("loss"), completed("loss-noretry"));
    if with <= without {
        eprintln!(
            "topo FAILED: retries did not recover goodput under loss \
             ({with} completed with retries vs {without} without)"
        );
        failed = true;
    } else {
        eprintln!("recovery: {with} completed with retries vs {without} without ✓");
    }
    if !smoke && total_requests < 100_000 {
        eprintln!("topo FAILED: full sweep issued only {total_requests} requests (<100k)");
        failed = true;
    }
    eprintln!("total closed-loop requests across sweep: {total_requests}");

    let rendered = report.render();
    let doc = Json::parse(&rendered).expect("self-parse");
    if self_check {
        BenchReport::validate(&doc).expect("schema");
        BenchReport::require_row_keys(
            &doc,
            &[
                "service",
                "backend",
                "shards",
                "mode",
                "frames",
                "mpps",
                "p50_ns",
                "p99_ns",
                "p999_ns",
                "engines",
                "clients",
                "completed",
            ],
        )
        .expect("row keys");
        eprintln!(
            "self-check: report validates against {} ✓",
            emu_telemetry::SCHEMA
        );
    }
    if failed {
        std::process::exit(1);
    }
    match &out_path {
        Some(path) => {
            std::fs::write(path, rendered + "\n").expect("write --out");
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
}
