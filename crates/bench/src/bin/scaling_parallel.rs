//! Sequential cost-model vs real-thread execution: every Table 4
//! service through the unified `Engine` at 1/2/4/8 shards, measuring
//! *host wall-clock* time for the same batch in both execution modes.
//!
//! The sequential mode is the deterministic default — shards run one
//! after another on the calling thread and the parallel-datapath *cost
//! model* (wall = busiest shard's cycles) prices the hardware. The
//! `.parallel(true)` mode runs each shard's slice on its own OS thread:
//! identical outputs, but the simulation itself now scales with host
//! cores. This harness tracks that speedup so the perf trajectory
//! accumulates run over run.
//!
//! Emits a bench report on stdout (one row per service/shard-count
//! configuration, shared `emu-telemetry` schema) and a human-readable
//! table on stderr.
//!
//! Run: `cargo run --release -p emu-bench --bin scaling_parallel`

use emu_bench::shard_scale_services;
use emu_core::Target;
use emu_telemetry::{BenchReport, Json};
use emu_types::Frame;
use netfpga_sim::timing::NS_PER_CYCLE;
use std::time::Instant;

const REQUESTS: usize = 2_000;
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Row {
    service: &'static str,
    shards: usize,
    seq_wall_s: f64,
    par_wall_s: f64,
    model_wall_ns: f64,
    ok: usize,
}

fn run(
    build: fn() -> emu_core::Service,
    frames: &[Frame],
    shards: usize,
) -> (f64, f64, f64, usize) {
    let svc = build();
    let mut seq = svc
        .engine(Target::Fpga)
        .shards(shards)
        .build()
        .expect("build sequential engine");
    let mut par = svc
        .engine(Target::Fpga)
        .shards(shards)
        .parallel(true)
        .build()
        .expect("build parallel engine");

    let t0 = Instant::now();
    let a = seq.process_batch(frames);
    let seq_wall = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let b = par.process_batch(frames);
    let par_wall = t1.elapsed().as_secs_f64();

    assert_eq!(a.ok_count(), b.ok_count(), "modes must agree");
    assert_eq!(
        a.shard_cycles, b.shard_cycles,
        "cycle accounting must agree"
    );
    (
        seq_wall,
        par_wall,
        a.wall_cycles() as f64 * NS_PER_CYCLE,
        a.ok_count(),
    )
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "== parallel scaling: sequential cost-model vs {cores}-core real threads, \
         {REQUESTS} requests =="
    );
    eprintln!(
        "{:<12} {:>6} {:>12} {:>12} {:>9} {:>14}",
        "service", "shards", "seq (ms)", "par (ms)", "speedup", "model-wall(us)"
    );

    let mut rows: Vec<Row> = Vec::new();
    for svc in shard_scale_services() {
        let frames: Vec<Frame> = (0..REQUESTS as u64).map(svc.request).collect();
        for &shards in &SHARD_SWEEP {
            // Warm one run, measure the second (first run pays one-time
            // allocation/fault costs that are noise at this batch size).
            let _ = run(svc.build, &frames, shards);
            let (seq_wall_s, par_wall_s, model_wall_ns, ok) = run(svc.build, &frames, shards);
            eprintln!(
                "{:<12} {:>6} {:>12.2} {:>12.2} {:>8.2}x {:>14.1}",
                svc.name,
                shards,
                seq_wall_s * 1e3,
                par_wall_s * 1e3,
                seq_wall_s / par_wall_s,
                model_wall_ns / 1e3,
            );
            rows.push(Row {
                service: svc.name,
                shards,
                seq_wall_s,
                par_wall_s,
                model_wall_ns,
                ok,
            });
        }
    }

    // Bench report on stdout: the accumulating perf record (the host
    // core count is in the report's standard `host` block).
    let mut report = BenchReport::new("scaling_parallel").param("requests", REQUESTS as u64);
    for r in &rows {
        report.push_row(Json::obj(vec![
            ("service", Json::from(r.service)),
            ("shards", Json::from(r.shards as u64)),
            ("seq_wall_s", Json::from(r.seq_wall_s)),
            ("par_wall_s", Json::from(r.par_wall_s)),
            ("speedup", Json::from(r.seq_wall_s / r.par_wall_s)),
            ("model_wall_ns", Json::from(r.model_wall_ns)),
            ("ok", Json::from(r.ok as u64)),
        ]));
    }
    println!("{}", report.render());

    // On hosts with the cores to show it, real threads must beat the
    // sequential walk at 4 shards for the batch-heavy services.
    if cores >= 4 {
        let best_at_4 = rows
            .iter()
            .filter(|r| r.shards == 4)
            .map(|r| r.seq_wall_s / r.par_wall_s)
            .fold(0.0f64, f64::max);
        assert!(
            best_at_4 > 1.2,
            "expected real-thread speedup at 4 shards on a {cores}-core host, best {best_at_4:.2}x"
        );
        eprintln!("\nbest speedup at 4 shards: {best_at_4:.2}x ✓");
    }
}
