//! CPU backend comparison: per-frame processing time for every Table 4
//! service on the tree-walking reference interpreter, the compiled
//! micro-op backend in scalar per-frame mode, and the compiled backend
//! on the batched fast path, as a `{service, backend, us_per_frame}`
//! row matrix in the shared bench-report schema.
//!
//! This is the speed leg of the compiled-backend story (the equivalence
//! leg is `tests/backend_equiv.rs` and the differential proptests): the
//! backends are byte-identical in every observable — this harness
//! re-checks outputs while timing — so the only difference left to
//! report is throughput. The three columns are:
//!
//! * `treewalk` — the recursive reference interpreter,
//! * `compiled` — the scalar path with the statement-local pass list
//!   (the PR-5 artifact: `EngineBuilder::batching(false)` +
//!   `kiwi_ir::statement_pipeline`), and
//! * `batched`  — the full cross-statement pipeline through
//!   `Engine::process_batch`'s monomorphized fast path (the current
//!   production default).
//!
//! The harness **exits non-zero** unless (a) compiled beats tree-walk
//! on every service and at least 2× on at least three of them — the
//! original PR-5 gate — and (b) batched beats compiled-scalar on every
//! service and at least 2× on at least three of them.
//!
//! Run: `cargo run --release -p emu-bench --bin backend_compare
//! [-- --frames N]` (default 3000 frames per service per backend).

use emu_bench::table4_services;
use emu_core::{Backend, Target};
use emu_telemetry::{BenchReport, Json};
use emu_types::Frame;
use std::time::Instant;

const BATCH: usize = 256;

/// The three timed execution modes, column order of the report.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Batched,
    CompiledScalar,
    TreeWalk,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Batched => "batched",
            Mode::CompiledScalar => "compiled",
            Mode::TreeWalk => "treewalk",
        }
    }
}

struct Row {
    service: &'static str,
    /// µs/frame in [batched, compiled-scalar, treewalk] order.
    us_per_frame: [f64; 3],
}

impl Row {
    /// Compiled-scalar speedup over the tree-walker (the PR-5 gate).
    fn compiled_speedup(&self) -> f64 {
        self.us_per_frame[2] / self.us_per_frame[1]
    }

    /// Batched speedup over compiled-scalar (this PR's gate).
    fn batched_speedup(&self) -> f64 {
        self.us_per_frame[1] / self.us_per_frame[0]
    }
}

/// Timed repetitions per mode; the fastest one is reported, which
/// hedges scheduler and frequency-scaling noise (every repetition
/// executes the full workload, so a minimum is still a real run).
const REPS: usize = 3;

/// Times `frames` through a fresh engine in `mode`, returning
/// (best-of-[`REPS`] µs/frame, per-frame tx counts as an output
/// fingerprint).
fn run(build: fn() -> emu_core::Service, frames: &[Frame], mode: Mode) -> (f64, Vec<usize>) {
    let svc = build();
    let mut builder = svc.engine(Target::Cpu);
    builder = match mode {
        Mode::Batched => builder
            .backend(Backend::Compiled)
            .passes(kiwi_ir::default_pipeline())
            .batching(true),
        Mode::CompiledScalar => builder
            .backend(Backend::Compiled)
            .passes(kiwi_ir::statement_pipeline())
            .batching(false),
        Mode::TreeWalk => builder.backend(Backend::TreeWalk),
    };
    let mut engine = builder.build().expect("engine build");
    // Warm-up: populate caches/stores so every mode times steady state.
    let warm = frames.len().min(BATCH);
    engine.process_batch(&frames[..warm]);

    let mut fingerprint = Vec::with_capacity(frames.len());
    let mut best = f64::INFINITY;
    for rep in 0..REPS {
        let t0 = Instant::now();
        for chunk in frames.chunks(BATCH) {
            let report = engine.process_batch(chunk);
            if rep == 0 {
                for out in &report.outputs {
                    fingerprint.push(out.as_ref().map(|o| o.tx.len()).unwrap_or(usize::MAX));
                }
            }
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best / frames.len() as f64 * 1e6, fingerprint)
}

fn main() {
    let mut frames_n: usize = 3_000;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--frames") {
        frames_n = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--frames N");
    }

    eprintln!("== backend_compare: {frames_n} frames/service, batched vs compiled vs tree-walk ==");
    eprintln!(
        "{:<12} {:>15} {:>16} {:>16} {:>9} {:>9}",
        "service", "batched (us/f)", "compiled (us/f)", "treewalk (us/f)", "b/c", "c/t"
    );

    let mut rows = Vec::new();
    let mut failed = false;
    for svc in table4_services() {
        let frames: Vec<Frame> = (0..frames_n as u64).map(svc.request).collect();
        let modes = [Mode::Batched, Mode::CompiledScalar, Mode::TreeWalk];
        let mut us = [0.0; 3];
        let mut fps = Vec::new();
        for (k, mode) in modes.into_iter().enumerate() {
            let (u, fp) = run(svc.build, &frames, mode);
            us[k] = u;
            fps.push(fp);
        }
        for k in 1..fps.len() {
            assert_eq!(
                fps[0],
                fps[k],
                "{}: {} outputs diverged from batched while timing",
                svc.name,
                modes[k].label()
            );
        }
        let row = Row {
            service: svc.name,
            us_per_frame: us,
        };
        eprintln!(
            "{:<12} {:>15.3} {:>16.3} {:>16.3} {:>8.2}x {:>8.2}x",
            row.service,
            us[0],
            us[1],
            us[2],
            row.batched_speedup(),
            row.compiled_speedup()
        );
        if us[1] >= us[2] {
            eprintln!("    FAIL: compiled must beat tree-walk on {}", svc.name);
            failed = true;
        }
        if us[0] >= us[1] {
            eprintln!(
                "    FAIL: batched must beat compiled-scalar on {}",
                svc.name
            );
            failed = true;
        }
        rows.push(row);
    }

    let twox_c = rows.iter().filter(|r| r.compiled_speedup() >= 2.0).count();
    if twox_c < 3 {
        eprintln!("FAIL: only {twox_c} services reach 2x compiled-over-treewalk (need >= 3)");
        failed = true;
    }
    let twox_b = rows.iter().filter(|r| r.batched_speedup() >= 2.0).count();
    if twox_b < 3 {
        eprintln!("FAIL: only {twox_b} services reach 2x batched-over-compiled (need >= 3)");
        failed = true;
    }

    let mut report =
        BenchReport::new("backend_compare").param("frames_per_service", frames_n as u64);
    for r in &rows {
        for (b, label) in [(0usize, "batched"), (1, "compiled"), (2, "treewalk")] {
            report.push_row(Json::obj(vec![
                ("service", Json::from(r.service)),
                ("backend", Json::from(label)),
                ("us_per_frame", Json::from(r.us_per_frame[b])),
                ("speedup", Json::from(r.compiled_speedup())),
                ("batched_speedup", Json::from(r.batched_speedup())),
            ]));
        }
    }
    println!("{}", report.render());

    if failed {
        eprintln!("\nbackend_compare FAILED (see above)");
        std::process::exit(1);
    }
    eprintln!(
        "\nbackend_compare passed: batched > compiled > treewalk everywhere, \
         {twox_b}/5 batched >= 2x, {twox_c}/5 compiled >= 2x"
    );
}
