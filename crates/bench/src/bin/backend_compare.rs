//! CPU backend comparison: per-frame processing time for every Table 4
//! service on the tree-walking reference interpreter vs the compiled
//! micro-op backend, as a `{service, backend, us_per_frame}` row matrix
//! in the shared bench-report schema.
//!
//! This is the speed leg of the compiled-backend story (the equivalence
//! leg is `tests/backend_equiv.rs` and the differential proptests): the
//! two backends are byte-identical in every observable — this harness
//! re-checks outputs while timing — so the only difference left to
//! report is throughput. The harness **exits non-zero** unless the
//! compiled backend is faster on *every* service and at least 2× faster
//! on at least three of them.
//!
//! Run: `cargo run --release -p emu-bench --bin backend_compare
//! [-- --frames N]` (default 3000 frames per service per backend).

use emu_bench::table4_services;
use emu_core::{Backend, Target};
use emu_telemetry::{BenchReport, Json};
use emu_types::Frame;
use std::time::Instant;

const BATCH: usize = 256;

struct Row {
    service: &'static str,
    us_per_frame: [f64; 2], // [compiled, treewalk]
    speedup: f64,
}

/// Times `frames` through a fresh engine on `backend`, returning
/// (µs/frame, per-frame tx counts as an output fingerprint).
fn run(build: fn() -> emu_core::Service, frames: &[Frame], backend: Backend) -> (f64, Vec<usize>) {
    let svc = build();
    let mut engine = svc
        .engine(Target::Cpu)
        .backend(backend)
        .build()
        .expect("engine build");
    // Warm-up: populate caches/stores so both backends time steady state.
    let warm = frames.len().min(BATCH);
    engine.process_batch(&frames[..warm]);

    let mut fingerprint = Vec::with_capacity(frames.len());
    let t0 = Instant::now();
    for chunk in frames.chunks(BATCH) {
        let report = engine.process_batch(chunk);
        for out in &report.outputs {
            fingerprint.push(out.as_ref().map(|o| o.tx.len()).unwrap_or(usize::MAX));
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    (wall / frames.len() as f64 * 1e6, fingerprint)
}

fn main() {
    let mut frames_n: usize = 3_000;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--frames") {
        frames_n = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--frames N");
    }

    eprintln!("== backend_compare: {frames_n} frames/service, compiled vs tree-walk ==");
    eprintln!(
        "{:<12} {:>16} {:>16} {:>9}",
        "service", "compiled (us/f)", "treewalk (us/f)", "speedup"
    );

    let mut rows = Vec::new();
    let mut failed = false;
    for svc in table4_services() {
        let frames: Vec<Frame> = (0..frames_n as u64).map(svc.request).collect();
        let (us_c, fp_c) = run(svc.build, &frames, Backend::Compiled);
        let (us_t, fp_t) = run(svc.build, &frames, Backend::TreeWalk);
        assert_eq!(
            fp_c, fp_t,
            "{}: backend outputs diverged while timing",
            svc.name
        );
        let speedup = us_t / us_c;
        eprintln!(
            "{:<12} {:>16.3} {:>16.3} {:>8.2}x",
            svc.name, us_c, us_t, speedup
        );
        if us_c >= us_t {
            eprintln!("    FAIL: compiled must beat tree-walk on {}", svc.name);
            failed = true;
        }
        rows.push(Row {
            service: svc.name,
            us_per_frame: [us_c, us_t],
            speedup,
        });
    }

    let twox = rows.iter().filter(|r| r.speedup >= 2.0).count();
    if twox < 3 {
        eprintln!("FAIL: only {twox} services reach a 2x speedup (need >= 3)");
        failed = true;
    }

    let mut report =
        BenchReport::new("backend_compare").param("frames_per_service", frames_n as u64);
    for r in &rows {
        for (b, label) in [(0usize, "compiled"), (1, "treewalk")] {
            report.push_row(Json::obj(vec![
                ("service", Json::from(r.service)),
                ("backend", Json::from(label)),
                ("us_per_frame", Json::from(r.us_per_frame[b])),
                ("speedup", Json::from(r.speedup)),
            ]));
        }
    }
    println!("{}", report.render());

    if failed {
        eprintln!("\nbackend_compare FAILED (see above)");
        std::process::exit(1);
    }
    eprintln!("\nbackend_compare passed: compiled faster everywhere, {twox}/5 services >= 2x");
}
