//! Regenerates the §5.6 predictability summary: Emu designs keep
//! p99 − median under 200 ns with tail-to-average ratios of 1.02–1.04,
//! while host services range from 1.09 to 2.98 and their medians sit an
//! order of magnitude (or more) above Emu's.
//!
//! Run: `cargo run --release -p emu-bench --bin tails`

use emu_bench::{emu_latency, table4_services, EMU_LATENCY_SAMPLES};
use hoststack::HostProfile;

fn main() {
    println!("== §5.6: latency predictability (tail-to-average, p99 - median) ==\n");
    println!(
        "{:<12} | {:>10} {:>12} {:>10} | {:>10} {:>12} {:>10} | {:>8}",
        "service",
        "emu p50",
        "emu p99-p50",
        "emu t/a",
        "host p50",
        "host p99-p50",
        "host t/a",
        "p50 gap"
    );
    println!("{}", "-".repeat(104));

    let mut emu_ratios: Vec<f64> = Vec::new();
    let mut host_ratios: Vec<f64> = Vec::new();

    for (svc, host) in table4_services().iter().zip(HostProfile::all()) {
        let service = (svc.build)();
        let warm = svc.name == "memcached";
        let e = emu_latency(&service, svc.request, EMU_LATENCY_SAMPLES, warm).expect(svc.name);
        let h = host.latency_run(100_000, 42);

        emu_ratios.push(e.tail_to_average());
        host_ratios.push(h.tail_to_average());

        println!(
            "{:<12} | {:>9.2}us {:>10.0}ns {:>10.3} | {:>9.2}us {:>10.2}us {:>10.3} | {:>7.1}x",
            svc.name,
            e.p50 / 1000.0,
            e.p99 - e.p50,
            e.tail_to_average(),
            h.p50 / 1000.0,
            (h.p99 - h.p50) / 1000.0,
            h.tail_to_average(),
            h.p50 / e.p50,
        );
    }

    let span = |v: &[f64]| {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(0.0f64, f64::max);
        (lo, hi)
    };
    let (elo, ehi) = span(&emu_ratios);
    let (hlo, hhi) = span(&host_ratios);
    println!("\nemu  tail-to-average span: {elo:.3} .. {ehi:.3}   (paper: 1.02 .. 1.04)");
    println!("host tail-to-average span: {hlo:.3} .. {hhi:.3}   (paper: 1.09 .. 2.98)");
    println!("paper also reports: Emu medians >=10x lower; Emu p99-median < 200 ns");
}
