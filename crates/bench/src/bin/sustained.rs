//! The canonical sustained-rate benchmark — the one number the repo
//! quotes for "how fast is the engine", recorded as `BENCH_6.json`.
//!
//! Every Table 4 service runs a **pinned, seeded emu-traffic mix**
//! (not the single-flow request generators: sustained rate is about
//! realistic flow churn) through the unified `Engine` across the full
//! backend × shard-count matrix. Each configuration reports:
//!
//! - **Mpps** — host wall-clock millions of packets per second;
//! - **p50/p99/p999 ns** — per-frame service latency from the engine's
//!   telemetry cycle histogram at the 200 MHz core clock. Model time,
//!   not wall time: the quantiles are deterministic per seed.
//!
//! The run doubles as the telemetry subsystem's acceptance test:
//!
//! - sequential and parallel execution must produce **equal**
//!   telemetry snapshots (shards > 1 runs both and compares);
//! - compiled and tree-walk backends must produce **equal** cycle
//!   histograms (cycle accounting is backend-independent);
//! - instrumentation overhead (telemetry on vs off, min-of-trials on
//!   the busiest configuration) must stay **under 5 %**;
//! - no frame may trap or hit a poisoned shard.
//!
//! Run: `cargo run --release -p emu-bench --bin sustained
//! [-- --frames N] [-- --smoke] [-- --out PATH] [-- --check]
//! [-- --baseline PATH]`
//!
//! `--baseline` compares against a committed report and fails on a
//! Mpps drop over 10 % or a p99 rise over 20 % for any matching
//! configuration (p99 is deterministic; Mpps is host-dependent, so
//! compare reports from comparable hosts — the `host` block records
//! os/arch/cores).

use emu_core::{Backend, NatSteering, Service, Target};
use emu_telemetry::{BenchReport, EngineSnapshot, Json};
use emu_traffic::{Background, DnsWeighted, MemcachedZipf, Mix, TcpConversations, TrafficGen};
use emu_types::Frame;
use netfpga_sim::timing::NS_PER_CYCLE;
use std::collections::HashMap;
use std::time::Instant;

const SEED: u64 = 0x5057;
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const BATCH: usize = 1024;
/// Telemetry-overhead budget (fraction) and trials for the gate.
const OVERHEAD_BUDGET: f64 = 0.05;
const OVERHEAD_TRIALS: usize = 5;
/// Wall-clock trials per reported Mpps (min taken). A single sample is
/// at the mercy of scheduler noise; the min of three keeps the 10 %
/// baseline gate meaningful on shared hosts.
const MPPS_TRIALS: usize = 3;

/// One Table 4 service with its pinned sustained-rate mix.
struct Case {
    name: &'static str,
    build: fn() -> Service,
    mix: fn(u64) -> Mix,
    /// NAT needs flow steering and internal-port pinning.
    nat: bool,
}

fn dns_names() -> Vec<(&'static str, u32)> {
    // The four bench_zone() names, weighted toward the hot ones.
    vec![
        ("example.com", 4),
        ("emu.cam.ac.uk", 2),
        ("a.b", 1),
        ("cache.io", 1),
    ]
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "icmp-echo",
            build: emu_services::icmp::icmp_echo,
            mix: |s| Mix::new(s).add(1, Background::new(s ^ 1, &[0, 1, 2, 3])),
            nat: false,
        },
        Case {
            name: "tcp-ping",
            build: emu_services::tcp_ping::tcp_ping,
            mix: |s| Mix::new(s).add(1, TcpConversations::new(s ^ 1, 48, &[0, 1, 2, 3])),
            nat: false,
        },
        Case {
            name: "dns",
            build: || emu_services::dns::dns_server(emu_bench::bench_zone()),
            mix: |s| Mix::new(s).add(1, DnsWeighted::new(s ^ 1, &dns_names())),
            nat: false,
        },
        Case {
            name: "nat",
            build: || emu_services::nat("203.0.113.1".parse().expect("valid")),
            mix: |s| {
                Mix::new(s)
                    .add(8, TcpConversations::new(s ^ 1, 48, &[1, 2, 3]))
                    .add(3, DnsWeighted::new(s ^ 2, &dns_names()))
                    .add(1, Background::new(s ^ 3, &[1, 2, 3]))
            },
            nat: true,
        },
        Case {
            name: "memcached",
            build: emu_services::memcached,
            mix: |s| Mix::new(s).add(1, MemcachedZipf::new(s ^ 1, 256, 1.1, 0.9)),
            nat: false,
        },
    ]
}

/// NAT treats port 0 as the external side; re-pin stray frames to an
/// internal port (deterministically), as the soak harness does.
fn pin_internal(mut f: Frame) -> Frame {
    if f.in_port == 0 {
        f.in_port = 1 + (f.len() % 3) as u8;
    }
    f
}

/// Generates the pinned frame stream for one case.
fn frames_for(case: &Case, n: usize) -> Vec<Frame> {
    let mut mix = (case.mix)(SEED);
    (0..n)
        .map(|_| {
            let f = mix.next_frame();
            if case.nat {
                pin_internal(f)
            } else {
                f
            }
        })
        .collect()
}

fn build_engine(
    case: &Case,
    backend: Backend,
    shards: usize,
    parallel: bool,
    telemetry: bool,
) -> emu_core::Engine {
    let svc = (case.build)();
    let mut b = svc
        .engine(Target::Cpu)
        .backend(backend)
        .shards(shards)
        .parallel(parallel)
        .telemetry(telemetry);
    if case.nat {
        b = b.dispatch(NatSteering::default());
    }
    b.build().expect("engine build")
}

/// Runs `frames` through a fresh engine, returning wall seconds and the
/// telemetry snapshot.
fn run(
    case: &Case,
    backend: Backend,
    shards: usize,
    parallel: bool,
    frames: &[Frame],
) -> (f64, EngineSnapshot) {
    let mut engine = build_engine(case, backend, shards, parallel, true);
    let t0 = Instant::now();
    for chunk in frames.chunks(BATCH) {
        engine.process_batch(chunk);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let snap = engine.telemetry().expect("telemetry enabled");
    let total = snap.total();
    assert_eq!(
        total.counters.drop_trap + total.counters.drop_poisoned,
        0,
        "{} ({} shards={shards}): sustained traffic must never trap a shard",
        case.name,
        backend.label()
    );
    (wall_s, snap)
}

/// Measures telemetry overhead on the busiest configuration: every
/// service's full stream through a compiled 4-shard parallel engine,
/// with instrumentation on vs off, min wall time of `OVERHEAD_TRIALS`
/// trials per arm. One untimed warmup pass runs first (page faults and
/// allocator growth would otherwise be billed to whichever arm goes
/// first), and the arm order alternates per trial so slow background
/// load hits both arms symmetrically.
fn telemetry_overhead(cases: &[Case], streams: &[Vec<Frame>]) -> f64 {
    let pass = |telemetry: bool| {
        for (case, frames) in cases.iter().zip(streams) {
            let mut engine = build_engine(case, Backend::Compiled, 4, true, telemetry);
            for chunk in frames.chunks(BATCH) {
                engine.process_batch(chunk);
            }
        }
    };
    pass(true); // warmup, untimed
    let mut walls = [f64::INFINITY; 2]; // [on, off]
    for trial in 0..OVERHEAD_TRIALS {
        let mut arms = [(0, true), (1, false)];
        if trial % 2 == 1 {
            arms.reverse();
        }
        for (arm, telemetry) in arms {
            let t0 = Instant::now();
            pass(telemetry);
            walls[arm] = walls[arm].min(t0.elapsed().as_secs_f64());
        }
    }
    walls[0] / walls[1] - 1.0
}

fn quantile_ns(snap: &EngineSnapshot, q: f64) -> f64 {
    let cycles = snap
        .total()
        .cycles
        .quantile(q)
        .expect("non-empty histogram");
    cycles as f64 * NS_PER_CYCLE
}

/// Baseline comparison: >10 % Mpps drop or >20 % p99 rise on any
/// configuration present in both reports fails the run.
fn check_against_baseline(current: &Json, baseline: &Json) -> Result<(), String> {
    BenchReport::validate(baseline).map_err(|e| format!("baseline invalid: {e}"))?;
    let key = |row: &Json| {
        (
            row.get("service").and_then(Json::as_str).map(String::from),
            row.get("backend").and_then(Json::as_str).map(String::from),
            row.get("shards").and_then(Json::as_u64),
        )
    };
    let base_rows = baseline.get("rows").and_then(Json::as_arr).expect("rows");
    let cur_rows = current.get("rows").and_then(Json::as_arr).expect("rows");
    let mut compared = 0usize;
    for cur in cur_rows {
        let Some(base) = base_rows.iter().find(|b| key(b) == key(cur)) else {
            continue;
        };
        compared += 1;
        let field = |row: &Json, k: &str| row.get(k).and_then(Json::as_f64).expect("numeric field");
        let (mpps, base_mpps) = (field(cur, "mpps"), field(base, "mpps"));
        if mpps < base_mpps * 0.9 {
            return Err(format!(
                "{:?}: mpps {mpps:.3} regressed >10% vs baseline {base_mpps:.3}",
                key(cur)
            ));
        }
        let (p99, base_p99) = (field(cur, "p99_ns"), field(base, "p99_ns"));
        if p99 > base_p99 * 1.2 {
            return Err(format!(
                "{:?}: p99 {p99:.0} ns regressed >20% vs baseline {base_p99:.0} ns",
                key(cur)
            ));
        }
    }
    if compared == 0 {
        return Err("baseline shares no configurations with this run".into());
    }
    eprintln!("baseline: {compared} configurations within thresholds ✓");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut frames_per_service: usize = if smoke { 8_000 } else { 40_000 };
    if let Some(i) = args.iter().position(|a| a == "--frames") {
        frames_per_service = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--frames N");
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args[i + 1].clone());
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| args[i + 1].clone());
    let self_check = args.iter().any(|a| a == "--check");

    let cases = cases();
    let streams: Vec<Vec<Frame>> = cases
        .iter()
        .map(|c| frames_for(c, frames_per_service))
        .collect();

    eprintln!(
        "== sustained: {frames_per_service} frames/service, shards {SHARD_SWEEP:?}, \
         compiled + tree-walk ==",
    );
    eprintln!(
        "{:<11} {:>9} {:>7} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "service", "backend", "shards", "mode", "Mpps", "p50 ns", "p99 ns", "p999 ns"
    );

    let mut report = BenchReport::new("sustained")
        .param("frames_per_service", frames_per_service as u64)
        .param("seed", SEED)
        .param("smoke", smoke)
        .param("batch", BATCH as u64)
        .param("ns_per_cycle", NS_PER_CYCLE);

    // (service, shards) → compiled-backend snapshot, for the
    // cross-backend cycle-equality assertion.
    let mut compiled_snaps: HashMap<(usize, usize), EngineSnapshot> = HashMap::new();

    for (ci, case) in cases.iter().enumerate() {
        let frames = &streams[ci];
        for backend in [Backend::Compiled, Backend::TreeWalk] {
            for &shards in &SHARD_SWEEP {
                // Sequential run always; parallel run when sharded. The
                // canonical Mpps comes from the mode a deployment would
                // use (parallel when sharded), min wall time of
                // `MPPS_TRIALS` fresh-engine runs.
                let (seq_wall, seq_snap) = run(case, backend, shards, false, frames);
                let canonical = |parallel: bool, first: (f64, EngineSnapshot)| {
                    let mut wall = first.0;
                    for _ in 1..MPPS_TRIALS {
                        let (w, s) = run(case, backend, shards, parallel, frames);
                        assert_eq!(s, first.1, "{}: trials must not diverge", case.name);
                        wall = wall.min(w);
                    }
                    (wall, first.1)
                };
                let (wall_s, snap, mode) = if shards > 1 {
                    let (par_wall, par_snap) = run(case, backend, shards, true, frames);
                    assert_eq!(
                        par_snap,
                        seq_snap,
                        "{} ({} shards={shards}): sequential and parallel \
                         telemetry snapshots diverged",
                        case.name,
                        backend.label()
                    );
                    let (wall, snap) = canonical(true, (par_wall, par_snap));
                    (wall, snap, "parallel")
                } else {
                    let (wall, snap) = canonical(false, (seq_wall, seq_snap));
                    (wall, snap, "sequential")
                };
                match backend {
                    Backend::Compiled => {
                        compiled_snaps.insert((ci, shards), snap.clone());
                    }
                    Backend::TreeWalk => {
                        let compiled = &compiled_snaps[&(ci, shards)];
                        assert_eq!(
                            &snap, compiled,
                            "{} (shards={shards}): compiled and tree-walk \
                             telemetry snapshots diverged",
                            case.name
                        );
                    }
                }
                let total = snap.total();
                let mpps = frames.len() as f64 / wall_s / 1e6;
                let (p50, p99, p999) = (
                    quantile_ns(&snap, 0.50),
                    quantile_ns(&snap, 0.99),
                    quantile_ns(&snap, 0.999),
                );
                eprintln!(
                    "{:<11} {:>9} {:>7} {:>11} {:>9.3} {:>9.0} {:>9.0} {:>9.0}",
                    case.name,
                    backend.label(),
                    shards,
                    mode,
                    mpps,
                    p50,
                    p99,
                    p999
                );
                report.push_row(Json::obj(vec![
                    ("service", Json::from(case.name)),
                    ("backend", Json::from(backend.label())),
                    ("shards", Json::from(shards as u64)),
                    ("mode", Json::from(mode)),
                    ("frames", Json::from(total.counters.frames)),
                    ("drop_oversize", Json::from(total.counters.drop_oversize)),
                    ("mpps", Json::from(mpps)),
                    ("p50_ns", Json::from(p50)),
                    ("p99_ns", Json::from(p99)),
                    ("p999_ns", Json::from(p999)),
                    (
                        "mean_cycles",
                        Json::from(total.cycles.mean().expect("non-empty")),
                    ),
                ]));
            }
        }
    }

    // Instrumentation overhead gate.
    let overhead = telemetry_overhead(&cases, &streams);
    eprintln!(
        "telemetry overhead: {:+.2}% (budget {:.0}%, min of {OVERHEAD_TRIALS} trials)",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    report = report.param("telemetry_overhead", overhead);
    assert!(
        overhead < OVERHEAD_BUDGET,
        "telemetry overhead {:.2}% exceeds the {:.0}% budget",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );

    let rendered = report.render();
    let doc = Json::parse(&rendered).expect("self-parse");
    if self_check {
        BenchReport::validate(&doc).expect("schema");
        BenchReport::require_row_keys(
            &doc,
            &[
                "service", "backend", "shards", "mode", "frames", "mpps", "p50_ns", "p99_ns",
                "p999_ns",
            ],
        )
        .expect("row keys");
        eprintln!(
            "self-check: report validates against {} ✓",
            emu_telemetry::SCHEMA
        );
    }
    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path).expect("read baseline");
        let base = Json::parse(&text).expect("parse baseline");
        if let Err(e) = check_against_baseline(&doc, &base) {
            eprintln!("sustained FAILED baseline comparison: {e}");
            std::process::exit(1);
        }
    }
    match &out_path {
        Some(path) => {
            std::fs::write(path, rendered + "\n").expect("write --out");
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
}
