//! Shard-scaling sweep: every Table 4 service through the unified
//! `Engine` at 1/2/4/8 replicated pipelines, reporting aggregate
//! throughput under the parallel-datapath model (wall time = busiest
//! shard's busy time at the 200 MHz core clock).
//!
//! This generalizes the paper's §5.4 multi-core Memcached result (3.7×
//! at 4 cores) to the whole service set: stateless services scale with
//! shard count, limited only by flow-hash balance; stateful services
//! additionally rely on flow affinity to keep per-shard state correct.
//!
//! Emits a bench report on stdout (shared `emu-telemetry` schema) and
//! the human-readable table on stderr.
//!
//! Run: `cargo run --release -p emu-bench --bin scaling_shards`

use emu_bench::shard_scale_services;
use emu_core::{Backend, Target};
use emu_telemetry::{BenchReport, Json};
use emu_types::Frame;
use netfpga_sim::timing::NS_PER_CYCLE;
use std::time::Instant;

const REQUESTS: usize = 4_000;
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn run(build: fn() -> emu_core::Service, frames: &[Frame], shards: usize) -> f64 {
    let svc = build();
    let mut engine = svc
        .engine(Target::Fpga)
        .shards(shards)
        .build()
        .expect("build engine");
    let batch = engine.process_batch(frames);
    assert_eq!(
        batch.ok_count(),
        frames.len(),
        "every request must process cleanly"
    );
    let wall_ns = batch.wall_cycles() as f64 * NS_PER_CYCLE;
    frames.len() as f64 / (wall_ns / 1e9)
}

/// Host-side wall time per frame for a 1-shard Cpu engine on `backend` —
/// the per-backend column of this report (model time above is
/// backend-independent by construction).
fn host_us_per_frame(build: fn() -> emu_core::Service, frames: &[Frame], backend: Backend) -> f64 {
    let svc = build();
    let mut engine = svc
        .engine(Target::Cpu)
        .backend(backend)
        .build()
        .expect("build engine");
    engine.process_batch(&frames[..frames.len().min(256)]); // warm-up
    let t0 = Instant::now();
    let batch = engine.process_batch(frames);
    assert_eq!(batch.ok_count(), frames.len());
    t0.elapsed().as_secs_f64() / frames.len() as f64 * 1e6
}

fn main() {
    eprintln!("== shard scaling: Table 4 services on 1/2/4/8 pipelines ==");
    eprintln!("   ({REQUESTS} requests over 64 client flows, RSS flow-hash dispatch)");
    eprintln!("   (us/f columns: host wall time per frame, 1-shard Cpu engine per backend)\n");
    eprintln!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}  speedup@4 {:>10} {:>10}",
        "service", "1 (Mq/s)", "2 (Mq/s)", "4 (Mq/s)", "8 (Mq/s)", "cmp us/f", "tw us/f"
    );

    let mut report = BenchReport::new("scaling_shards")
        .param("requests", REQUESTS as u64)
        .param("flow_pool", emu_bench::FLOW_POOL);
    for svc in shard_scale_services() {
        let frames: Vec<Frame> = (0..REQUESTS as u64).map(svc.request).collect();
        let mut rps = Vec::new();
        for &n in &SHARD_SWEEP {
            rps.push(run(svc.build, &frames, n));
        }
        let us_compiled = host_us_per_frame(svc.build, &frames, Backend::Compiled);
        let us_treewalk = host_us_per_frame(svc.build, &frames, Backend::TreeWalk);
        let tag = if svc.stateless { "" } else { " (stateful)" };
        eprintln!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3}  {:>8.2}x {:>10.2} {:>10.2}{tag}",
            svc.name,
            rps[0] / 1e6,
            rps[1] / 1e6,
            rps[2] / 1e6,
            rps[3] / 1e6,
            rps[2] / rps[0],
            us_compiled,
            us_treewalk,
        );
        for (i, &shards) in SHARD_SWEEP.iter().enumerate() {
            report.push_row(Json::obj(vec![
                ("service", Json::from(svc.name)),
                ("shards", Json::from(shards as u64)),
                ("model_rps", Json::from(rps[i])),
                ("speedup_vs_1", Json::from(rps[i] / rps[0])),
                ("stateless", Json::from(svc.stateless)),
                ("host_us_per_frame_compiled", Json::from(us_compiled)),
                ("host_us_per_frame_treewalk", Json::from(us_treewalk)),
            ]));
        }
        if svc.stateless {
            assert!(
                rps[0] < rps[1] && rps[1] < rps[2],
                "{}: stateless throughput must rise monotonically 1 -> 4 shards: {rps:?}",
                svc.name
            );
        }
    }
    println!("{}", report.render());

    eprintln!("\npaper §5.4: four cores give 3.7x on a 90/10 memcached mix;");
    eprintln!("stateless services approach linear scaling, bounded by flow balance.");
}
