//! Regenerates Table 4: average / 99th-percentile latency and throughput
//! for ICMP echo, TCP ping, DNS, NAT and Memcached — Emu (cycle-accurate
//! pipeline) vs host (Linux-path model).
//!
//! Run: `cargo run --release -p emu-bench --bin table4`

use emu_bench::{
    emu_latency, emu_throughput, table4_services, EMU_LATENCY_SAMPLES, HOST_LATENCY_SAMPLES,
    THROUGHPUT_REQUESTS,
};
use hoststack::HostProfile;

fn main() {
    println!("== Table 4: Emu-based services vs host-based services ==\n");
    println!(
        "{:<12} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "", "emu avg", "emu p99", "emu Mq/s", "host avg", "host p99", "host Mq/s"
    );
    println!(
        "{:<12} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "service", "(us)", "(us)", "", "(us)", "(us)", ""
    );
    println!("{}", "-".repeat(84));

    let hosts = HostProfile::all();
    for (svc, host) in table4_services().iter().zip(&hosts) {
        let service = (svc.build)();
        let warm = svc.name == "memcached";

        let lat = emu_latency(&service, svc.request, EMU_LATENCY_SAMPLES, warm).expect(svc.name);
        let tput =
            emu_throughput(&service, svc.request, THROUGHPUT_REQUESTS, warm).expect(svc.name);

        let host_lat = host.latency_run(HOST_LATENCY_SAMPLES, 42);
        let host_tput = host.throughput_rps(500_000, 7);

        println!(
            "{:<12} | {:>10.2} {:>10.2} {:>10.3} | {:>10.2} {:>10.2} {:>10.3}",
            svc.name,
            lat.mean / 1000.0,
            lat.p99 / 1000.0,
            tput / 1e6,
            host_lat.mean / 1000.0,
            host_lat.p99 / 1000.0,
            host_tput / 1e6,
        );
    }

    println!("\npaper values:");
    let paper = [
        ("icmp-echo", 1.09, 1.11, 3.226, 12.28, 22.63, 1.068),
        ("tcp-ping", 1.27, 1.29, 2.105, 21.79, 65.00, 1.012),
        ("dns", 1.82, 1.86, 1.176, 126.46, 138.33, 0.226),
        ("nat", 1.32, 1.34, 2.439, 2444.76, 6185.27, 1.037),
        ("memcached", 1.21, 1.26, 1.932, 24.29, 28.65, 0.876),
    ];
    for (n, a, b, c, d, e, f) in paper {
        println!("{n:<12} | {a:>10.2} {b:>10.2} {c:>10.3} | {d:>10.2} {e:>10.2} {f:>10.3}");
    }
}
