//! Per-frame cost vs **live flow count** — the scaling claim behind
//! the hashed CAM index: table operations are O(1) in resident
//! entries, so a million-flow table serves frames as fast as a
//! thousand-flow one.
//!
//! For each stateful service the bench prefills a scaled-up
//! (million-entry) Cpu table to N live flows — switch MACs, memcached
//! keys, NAT translations — then measures a steady access stream over
//! the resident set on a 1-shard compiled engine:
//!
//! - **Mpps** — host wall-clock rate (min of trials);
//! - **p50/p99/p999 ns** — model-time latency quantiles from the
//!   telemetry cycle histogram (deterministic per seed), telemetry
//!   reset after prefill so warmup frames don't pollute the quantiles.
//!
//! Sweep: 10^3..10^6 live flows for switch and memcached; NAT stops at
//! 10^4 because one shard's ephemeral-port space (~15 500 ports) caps
//! its live mappings — the inherent NAT bound, not a table bound.
//!
//! **Flatness gate:** for each service, the per-frame cost of the
//! largest sweep point must stay within 2× of the smallest — a linear
//! scan (the pre-PR-7 CAM model) fails this by orders of magnitude.
//!
//! Run: `cargo run --release -p emu-bench --bin flow_scale
//! [-- --frames N] [-- --smoke] [-- --out PATH] [-- --check]`
//! Rows carry the `flow_scale:` service prefix so baseline gates keyed
//! on `sustained` rows never cross-match.

use emu_core::{Backend, Engine, Service, Target};
use emu_telemetry::{BenchReport, Json};
use emu_traffic::{FlowChurn, MacChurn, MemcachedZipf, TrafficGen};
use emu_types::Frame;
use netfpga_sim::timing::NS_PER_CYCLE;
use std::time::Instant;

const SEED: u64 = 0xf10a;
const BATCH: usize = 1024;
const TABLE_ENTRIES: usize = 1_000_000;
const MPPS_TRIALS: usize = 3;
/// Max allowed ratio of slowest to fastest per-frame cost per service.
const FLATNESS_BUDGET: f64 = 2.0;

/// One prefill + measure recipe at `live` flows.
struct Point {
    live: usize,
    /// Frames that make all `live` flows resident.
    warmup: Vec<Frame>,
    /// The steady measurement stream over the resident set.
    measure: Vec<Frame>,
}

fn build_service(service: &str) -> Service {
    match service {
        "switch" => emu_services::switch_ip_cam(),
        "memcached" => emu_services::memcached(),
        "nat" => emu_services::nat("203.0.113.1".parse().expect("valid")),
        other => panic!("unknown service {other}"),
    }
}

/// The measurement stream must never leave the resident set (a miss
/// would mutate the table mid-measurement), so every recipe uses a
/// zero-churn generator warmed by its own `warmup_frames`.
fn point(service: &'static str, live: usize, frames: usize) -> Point {
    match service {
        "switch" => {
            let mut gen = MacChurn::new(SEED, live, 0);
            let warmup = gen.warmup_frames();
            Point {
                live,
                warmup,
                measure: gen.take(frames),
            }
        }
        "nat" => {
            let mut gen = FlowChurn::new(SEED, live, 0, &[1, 2, 3]);
            let warmup = gen.warmup_frames();
            Point {
                live,
                warmup,
                measure: gen.take(frames),
            }
        }
        "memcached" => {
            // Prefill one SET per key, then measure a pure-GET uniform
            // stream (uniform is the honest index test: every access
            // is equally likely to touch a cold bucket).
            let warmup = (0..live)
                .map(|k| {
                    let key = MemcachedZipf::key(k);
                    emu_services::memcached::request_frame(
                        &format!("set {key} 0 0 8\r\nV{k:07}\r\n"),
                        k as u16,
                    )
                })
                .collect();
            let mut gen = MemcachedZipf::new(SEED, live, 0.0, 1.0);
            Point {
                live,
                warmup,
                measure: gen.take(frames),
            }
        }
        other => panic!("unknown service {other}"),
    }
}

fn drive(engine: &mut Engine, frames: &[Frame]) {
    for chunk in frames.chunks(BATCH) {
        for out in engine.process_batch(chunk).outputs {
            out.expect("flow_scale traffic must never trap");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut frames: usize = if smoke { 8_000 } else { 40_000 };
    if let Some(i) = args.iter().position(|a| a == "--frames") {
        frames = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--frames N");
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args[i + 1].clone());
    let self_check = args.iter().any(|a| a == "--check");

    // NAT's sweep is port-space-bounded (see module docs); smoke trims
    // the top decade so CI stays fast.
    let full: &[usize] = if smoke {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let nat_sweep: &[usize] = &[1_000, 10_000];
    let sweeps: Vec<(&'static str, &[usize])> =
        vec![("switch", full), ("memcached", full), ("nat", nat_sweep)];

    eprintln!(
        "== flow_scale: {frames} measured frames/point, 1-shard compiled Cpu, \
         {TABLE_ENTRIES}-entry tables =="
    );
    eprintln!(
        "{:<11} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "service", "live", "warm (s)", "Mpps", "us/f", "p50 ns", "p99 ns", "p999 ns"
    );

    let mut report = BenchReport::new("flow_scale")
        .param("frames_per_point", frames as u64)
        .param("seed", SEED)
        .param("smoke", smoke)
        .param("table_entries", TABLE_ENTRIES as u64)
        .param("flatness_budget", FLATNESS_BUDGET)
        .param("ns_per_cycle", NS_PER_CYCLE);

    let mut failed = false;
    for (service, sweep) in &sweeps {
        let mut us_per_frame: Vec<(usize, f64)> = Vec::new();
        for &live in *sweep {
            let p = point(service, live, frames);
            let svc = build_service(service);
            let mut engine = svc
                .engine(Target::Cpu)
                .backend(Backend::Compiled)
                .table_entries(TABLE_ENTRIES)
                .telemetry(true)
                .build()
                .expect("engine build");
            let t0 = Instant::now();
            drive(&mut engine, &p.warmup);
            let warm_s = t0.elapsed().as_secs_f64();
            // Quantiles must describe only the steady stream.
            engine.reset_telemetry();
            let mut wall_s = f64::INFINITY;
            for _ in 0..MPPS_TRIALS {
                let t0 = Instant::now();
                drive(&mut engine, &p.measure);
                wall_s = wall_s.min(t0.elapsed().as_secs_f64());
            }
            let snap = engine.telemetry().expect("telemetry enabled");
            let total = snap.total();
            assert_eq!(
                total.counters.drop_trap + total.counters.drop_poisoned,
                0,
                "{service} live={live}: steady traffic must never trap"
            );
            let q = |q: f64| {
                total.cycles.quantile(q).expect("non-empty histogram") as f64 * NS_PER_CYCLE
            };
            let (p50, p99, p999) = (q(0.50), q(0.99), q(0.999));
            let mpps = p.measure.len() as f64 / wall_s / 1e6;
            let usf = wall_s / p.measure.len() as f64 * 1e6;
            us_per_frame.push((live, usf));
            eprintln!(
                "{:<11} {:>9} {:>9.2} {:>9.3} {:>9.3} {:>9.0} {:>9.0} {:>9.0}",
                service, p.live, warm_s, mpps, usf, p50, p99, p999
            );
            report.push_row(Json::obj(vec![
                (
                    "service",
                    Json::from(format!("flow_scale:{service}").as_str()),
                ),
                ("backend", Json::from("compiled")),
                ("shards", Json::from(1u64)),
                ("mode", Json::from("sequential")),
                ("live_flows", Json::from(live as u64)),
                ("table_entries", Json::from(TABLE_ENTRIES as u64)),
                ("frames", Json::from(p.measure.len() as u64)),
                ("mpps", Json::from(mpps)),
                ("us_per_frame", Json::from(usf)),
                ("p50_ns", Json::from(p50)),
                ("p99_ns", Json::from(p99)),
                ("p999_ns", Json::from(p999)),
            ]));
        }
        // The flatness gate: per-frame cost across the sweep.
        let min = us_per_frame
            .iter()
            .map(|(_, u)| *u)
            .fold(f64::INFINITY, f64::min);
        let (worst_live, max) =
            us_per_frame.iter().fold(
                (0usize, 0.0f64),
                |acc, &(l, u)| if u > acc.1 { (l, u) } else { acc },
            );
        let ratio = max / min;
        eprintln!(
            "{service}: per-frame cost spread {ratio:.2}x across {:?} live flows \
             (budget {FLATNESS_BUDGET}x)",
            sweep
        );
        if ratio > FLATNESS_BUDGET {
            eprintln!(
                "flow_scale FAILED: {service} at {worst_live} live flows costs \
                 {max:.3} us/frame, {ratio:.2}x the sweep minimum {min:.3} \
                 (per-frame cost must stay flat in live flows)"
            );
            failed = true;
        }
    }

    let rendered = report.render();
    let doc = Json::parse(&rendered).expect("self-parse");
    if self_check {
        BenchReport::validate(&doc).expect("schema");
        BenchReport::require_row_keys(
            &doc,
            &[
                "service",
                "backend",
                "shards",
                "mode",
                "frames",
                "mpps",
                "p50_ns",
                "p99_ns",
                "p999_ns",
                "live_flows",
                "table_entries",
            ],
        )
        .expect("row keys");
        eprintln!(
            "self-check: report validates against {} ✓",
            emu_telemetry::SCHEMA
        );
    }
    if failed {
        std::process::exit(1);
    }
    match &out_path {
        Some(path) => {
            std::fs::write(path, rendered + "\n").expect("write --out");
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
}
