//! Regenerates the §5.4 multi-core Memcached result: "using four Emu
//! cores (one per port) further increases \[throughput\] by 3.7× when
//! considering a workload of 90 % GET and 10 % SET requests. SET requests
//! must be applied to all instances, thus their relative ratio in
//! performance cannot improve."
//!
//! Run: `cargo run --release -p emu-bench --bin scaling`

use emu_core::Target;
use emu_services::memcached::{self, memcached};
use hoststack::{McOp, Memaslap};
use netfpga_sim::MultiCoreSim;

fn frame_of(op: &McOp, i: u64) -> emu_types::Frame {
    let mut f = memcached::request_frame(&op.request_body(), i as u16);
    f.in_port = (i % 4) as u8;
    f
}

/// Runs `n` requests of a 90/10 mix through a `cores`-wide pipeline.
fn run(cores: usize, n: usize, seed: u64) -> f64 {
    let mut drivers = Vec::new();
    let mut envs = Vec::new();
    for _ in 0..cores {
        let inst = memcached()
            .engine(Target::Fpga)
            .build()
            .expect("instantiate");
        let (d, e) = inst.into_fpga_parts().expect("fpga");
        drivers.push(d);
        envs.push(e);
    }
    let mut sim = MultiCoreSim::new(drivers, envs);

    let mut gen = Memaslap::new(64, 0.9, seed);
    // Warm every core with the keyspace (SETs replicate).
    let mut t = 0.0;
    for (i, op) in gen.warmup().iter().enumerate() {
        sim.inject(&frame_of(op, i as u64), t, i % 4, true)
            .expect("warm");
        t += 5_000.0;
    }
    // Offered load beyond single-core capacity.
    let gap = 100.0;
    for (i, op) in gen.ops(n).iter().enumerate() {
        sim.inject(&frame_of(op, i as u64), t, i % 4, op.is_set())
            .expect("inject");
        t += gap;
    }
    sim.throughput_rps()
}

fn main() {
    println!("== §5.4: multi-core Memcached scaling (90% GET / 10% SET) ==\n");
    let n = 8_000;
    let single = run(1, n, 11);
    println!("1 core : {:>10.3} Mq/s", single / 1e6);
    let mut four_x = 0.0;
    for cores in [2usize, 4] {
        let rps = run(cores, n, 11);
        println!(
            "{cores} cores: {:>10.3} Mq/s  ({:.2}x)",
            rps / 1e6,
            rps / single
        );
        if cores == 4 {
            four_x = rps / single;
        }
    }
    println!("\npaper: 4 cores -> 3.7x (GETs scale 4x, replicated SETs do not:");
    println!("       0.9 * 4 + 0.1 * 1 = 3.7)");
    println!("measured 4-core speedup: {four_x:.2}x");
}
