//! Regenerates Table 5: utilization and performance of DNS and Memcached
//! extended with direction-controller features (+R read, +W write,
//! +I increment), relative to the unextended service.
//!
//! Run: `cargo run --release -p emu-bench --bin table5`

use direction::{extend_program, ControllerConfig};
use emu_bench::{bench_zone, emu_latency, emu_throughput, pct, pnr_factor};
use emu_core::Service;
use emu_services::{dns, memcached};
use emu_types::Frame;

struct Artefact {
    name: &'static str,
    build: fn() -> Service,
    request: fn(u64) -> Frame,
    ctl_vars: &'static [&'static str],
}

fn dns_request(i: u64) -> Frame {
    let names = ["example.com", "emu.cam.ac.uk", "a.b", "cache.io"];
    let mut f = dns::query_frame(names[(i % 4) as usize], i as u16);
    f.in_port = (i % 4) as u8;
    f
}

fn mc_request(i: u64) -> Frame {
    let key = format!("k{:04}", i % 64);
    let body = if i % 10 == 9 {
        format!("set {key} 0 0 8\r\nVALUE{:03}\r\n", i % 1000)
    } else {
        format!("get {key}\r\n")
    };
    let mut f = memcached::request_frame(&body, i as u16);
    f.in_port = (i % 4) as u8;
    f
}

fn variants(vars: &[&str]) -> Vec<(&'static str, Option<ControllerConfig>)> {
    vec![
        ("base", None),
        ("+R", Some(ControllerConfig::read_only(vars))),
        ("+W", Some(ControllerConfig::read_write(vars))),
        ("+I", Some(ControllerConfig::read_increment(vars))),
    ]
}

fn main() {
    println!("== Table 5: profile of utilization and performance ==");
    println!("(R/W/I are controller instructions; all values % of the base design)\n");
    println!(
        "{:<16} {:>14} {:>16} {:>14}",
        "artefact", "utilization %", "p99 latency %", "queries/s %"
    );

    let artefacts = [
        Artefact {
            name: "dns",
            build: || dns::dns_server(bench_zone()),
            request: dns_request,
            ctl_vars: &["hit", "too_long"],
        },
        Artefact {
            name: "memcached",
            build: memcached::memcached,
            request: mc_request,
            ctl_vars: &["n_get", "n_set", "n_hit"],
        },
    ];

    for art in &artefacts {
        let base = (art.build)();
        let warm = art.name == "memcached";

        let mut base_logic = 0.0;
        let mut base_p99 = 0.0;
        let mut base_qps = 0.0;

        for (label, cfg) in variants(art.ctl_vars) {
            let svc = match &cfg {
                None => (art.build)(),
                Some(c) => {
                    let prog = extend_program(&base.program, c).expect("transform");
                    let inner = (art.build)();
                    Service::with_sized_env(prog, move |cfg| (inner.make_env)(cfg))
                }
            };
            let design_name = format!("{}{}", art.name, label);
            let fsm = kiwi::compile(&svc.program).expect("compile");
            // IP blocks are identical across variants; utilization deltas
            // come from the generated logic. P&R noise per DESIGN.md.
            let logic = kiwi::estimate(&fsm, &[]).logic as f64 * pnr_factor(&design_name);

            let lat = emu_latency(&svc, art.request, 1_500, warm).expect("latency");
            let qps = emu_throughput(&svc, art.request, 6_000, warm).expect("throughput");

            if label == "base" {
                base_logic = logic;
                base_p99 = lat.p99;
                base_qps = qps;
                println!(
                    "{:<16} {:>14.1} {:>16.1} {:>14.1}",
                    art.name, 100.0, 100.0, 100.0
                );
            } else {
                println!(
                    "{:<16} {:>14.1} {:>16.1} {:>14.1}",
                    format!("{}{}", art.name, label),
                    pct(logic, base_logic),
                    pct(lat.p99, base_p99),
                    pct(qps, base_qps)
                );
            }
        }
        println!();
    }

    println!("paper values:");
    println!("dns       base 100.0 / +R 103.4, 100.0, 100.0 / +W 115.1, 99.5, 100.0 / +I 109.8, 99.5, 100.0");
    println!("memcached base 100.0 / +R  99.2, 100.0, 100.0 / +W  99.8, 100.5, 100.0 / +I 100.6, 100.0, 100.0");
}
