//! Regenerates Table 3: Emu switch vs NetFPGA reference switch vs
//! P4FPGA switch — logic/memory resources, module latency, throughput at
//! 64-byte packets.
//!
//! Run: `cargo run --release -p emu-bench --bin table3`

use emu_bench::emu_pipeline;
use emu_core::Target;
use emu_services::switch::{switch_ip_cam, switch_ip_cam_blocks};
use emu_types::{Frame, MacAddr};
use netfpga_sim::{timing, CoreMode, NativeCore, P4FpgaCore, PipelineSim, RefSwitchCore};

fn test_frame(src: u64, dst: u64, port: u8) -> Frame {
    let mut f = Frame::ethernet(
        MacAddr::from_u64(dst),
        MacAddr::from_u64(src),
        0x0800,
        &[0; 46],
    );
    f.in_port = port;
    f
}

/// Offers 64 B frames at aggregate line rate with egress spread over all
/// four ports; returns achieved Mpps.
fn line_rate_mpps(sim: &mut PipelineSim, n: u64) -> f64 {
    for p in 0..4u8 {
        sim.inject(
            &test_frame(100 + u64::from(p), 0xEE, p),
            f64::from(p) * 100.0,
        )
        .expect("inject");
    }
    let gap = timing::wire_ns(64) / timing::NUM_PORTS as f64;
    let mut t = 1000.0;
    for i in 0..n {
        let port = (i % 4) as u8;
        let dst = 100 + (u64::from(port) + 1) % 4;
        sim.inject(&test_frame(100 + u64::from(port), dst, port), t)
            .expect("inject");
        t += gap;
    }
    sim.throughput_pps() / 1e6
}

fn main() {
    println!("== Table 3: switch comparison (64-byte packets, 256-entry tables) ==\n");

    // --- Emu switch (C# → Kiwi analogue) -----------------------------
    let svc = switch_ip_cam();
    let fsm = kiwi::compile(&svc.program).expect("compile");
    let resources = kiwi::estimate(&fsm, &switch_ip_cam_blocks());

    // Module latency: measured on a learned unicast path.
    let mut inst = svc.engine(Target::Fpga).build().expect("instantiate");
    inst.process(&test_frame(0xB, 0xA, 1)).expect("learn");
    inst.process(&test_frame(0xA, 0xB, 0)).expect("learn");
    let out = inst.process(&test_frame(0xA, 0xB, 0)).expect("forward");
    let emu_latency = out.cycles;

    let mut emu_sim = emu_pipeline(&svc, CoreMode::Streaming).expect("pipeline");
    let emu_mpps = line_rate_mpps(&mut emu_sim, 20_000);

    // --- Baselines -----------------------------------------------------
    let refsw = RefSwitchCore::new();
    let ref_res = refsw.resources();
    let ref_latency = refsw.module_latency_cycles();
    let mut ref_sim = PipelineSim::new_native(Box::new(RefSwitchCore::new()));
    let ref_mpps = line_rate_mpps(&mut ref_sim, 20_000);

    let p4 = P4FpgaCore::default();
    let p4_res = p4.resources();
    let p4_latency = p4.module_latency_cycles();
    let mut p4_sim = PipelineSim::new_native(Box::new(P4FpgaCore::default()));
    let p4_mpps = line_rate_mpps(&mut p4_sim, 20_000);

    println!(
        "{:<22} {:>12} {:>12} {:>16} {:>14}",
        "design", "logic", "memory", "latency (cyc)", "tput (Mpps)"
    );
    let row = |name: &str, logic: u64, mem: u64, lat: u64, mpps: f64| {
        println!("{name:<22} {logic:>12} {mem:>12} {lat:>16} {mpps:>14.2}");
    };
    row(
        "emu (C#)",
        resources.logic,
        resources.memory,
        emu_latency,
        emu_mpps,
    );
    row(
        "netfpga-reference",
        ref_res.logic,
        ref_res.memory,
        ref_latency,
        ref_mpps,
    );
    row("p4fpga", p4_res.logic, p4_res.memory, p4_latency, p4_mpps);

    println!("\npaper values:");
    row("emu (paper)", 3509, 118, 8, 59.52);
    row("reference (paper)", 2836, 87, 6, 59.52);
    row("p4fpga (paper)", 24161, 236, 85, 53.0);

    // §5.3: CAM share of the Emu design.
    let cam_logic: u64 = resources
        .breakdown
        .iter()
        .filter(|(n, _, _)| n.contains("cam"))
        .map(|(_, l, _)| *l)
        .sum();
    println!(
        "\nCAM share of Emu logic: {:.0}% (paper: 85%)",
        100.0 * cam_logic as f64 / resources.logic as f64
    );

    // §5.3 ClickNP-relative note: resource ratio vs the reference design.
    println!(
        "Emu/reference logic ratio: {:.2}x (paper: 1.24x; ClickNP reports 0.9x vs parser)",
        resources.logic as f64 / ref_res.logic as f64
    );
}
