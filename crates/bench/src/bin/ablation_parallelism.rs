//! Regenerates the §2/§5.3 observation that "increasing parallelism adds
//! to latency": Vivado-HLS-style latency optimization means deeper
//! pipelining, which *raises* per-packet network latency. The ablation
//! compiles the same ICMP echo service under progressively tighter
//! clock-period budgets (more pipeline states = more parallelism between
//! packets) and measures per-request cycles and time.
//!
//! Run: `cargo run --release -p emu-bench --bin ablation-parallelism`

use emu_core::{Service, Target};
use emu_services::icmp::{echo_request_frame, icmp_echo};
use kiwi::CostModel;

fn main() {
    println!("== §5.3 ablation: pipeline depth (parallelism) vs request latency ==\n");
    println!(
        "{:<28} {:>8} {:>12} {:>12} {:>16}",
        "schedule", "states", "cycles/req", "ns @ clk", "ns @ 200 MHz"
    );

    // Tighter period budget = higher clock = deeper pipeline.
    let points = [
        ("relaxed (150 MHz-ish)", 36u32, 150_000_000u64),
        ("NetFPGA default (200 MHz)", 24, 200_000_000),
        ("aggressive (300 MHz)", 14, 300_000_000),
        ("max pipeline (400 MHz)", 8, 400_000_000),
    ];

    for (label, period_units, clock_hz) in points {
        let mut svc: Service = icmp_echo();
        svc.cost_model = CostModel {
            period_units,
            clock_hz,
        };
        let fsm = kiwi::compile_with(&svc.program, svc.cost_model.clone()).expect("compile");
        let states: usize = fsm.threads.iter().map(|t| t.state_count()).sum();

        let mut inst = svc.engine(Target::Fpga).build().expect("instantiate");
        let out = inst.process(&echo_request_frame(56, 1)).expect("process");
        let ns = out.cycles as f64 * 1e9 / clock_hz as f64;
        let ns_fixed = out.cycles as f64 * 5.0;
        println!(
            "{label:<28} {states:>8} {:>12} {:>12.1} {:>16.1}",
            out.cycles, ns, ns_fixed
        );
    }

    println!("\nReading: deeper pipelining (Vivado-HLS-style \"latency\" optimization =");
    println!("more parallelism) strictly increases the cycles one request occupies —");
    println!("the fixed-clock column. Only an idealized clock speedup (unrealistic on");
    println!("a real Virtex-7 at these depths) could compensate. This is the paper's");
    println!("point (§2, §5.3): HLS parallelism is not network-latency optimization.");
}
