//! Shared harness code for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` reproduces one artefact of the paper's
//! evaluation (see DESIGN.md §5 for the experiment index); the
//! functions here build the workloads and drive the pipeline simulator
//! so that every harness measures the same way.

use emu_core::{Service, Target};
use emu_services::{dns, icmp, memcached, nat, tcp_ping};
use emu_types::{Frame, Ipv4, Summary};

use kiwi_ir::IrResult;
use netfpga_sim::{CoreMode, PipelineSim};

/// Number of latency samples for Emu-side runs (the paper uses 100 K;
/// the cycle-accurate simulator makes 5 K plenty for a deterministic
/// design and keeps the harness fast).
pub const EMU_LATENCY_SAMPLES: usize = 5_000;

/// Number of latency samples for host-side runs (cheap; match the paper).
pub const HOST_LATENCY_SAMPLES: usize = 100_000;

/// Requests used for throughput measurement.
pub const THROUGHPUT_REQUESTS: usize = 20_000;

/// The five Table 4 services with request generators.
pub struct Table4Service {
    /// Row label, matching `hoststack::HostProfile` names.
    pub name: &'static str,
    /// Builds the Emu service.
    pub build: fn() -> Service,
    /// Builds the i-th request frame.
    pub request: fn(u64) -> Frame,
}

/// DNS zone used across benches.
pub fn bench_zone() -> Vec<(String, Ipv4)> {
    vec![
        (
            "example.com".into(),
            "93.184.216.34".parse().expect("valid"),
        ),
        (
            "emu.cam.ac.uk".into(),
            "128.232.0.20".parse().expect("valid"),
        ),
        ("a.b".into(), "1.2.3.4".parse().expect("valid")),
        ("cache.io".into(), "10.9.8.7".parse().expect("valid")),
    ]
}

fn dns_request(i: u64) -> Frame {
    let names = ["example.com", "emu.cam.ac.uk", "a.b", "cache.io"];
    let mut f = dns::query_frame(names[(i % 4) as usize], i as u16);
    f.in_port = (i % 4) as u8;
    f
}

fn memcached_request(i: u64) -> Frame {
    // 90/10 GET/SET over a small hot keyset (pre-warmed by the harness).
    let key = format!("k{:04}", i % 64);
    let body = if i % 10 == 9 {
        format!("set {key} 0 0 8\r\nVALUE{:03}\r\n", i % 1000)
    } else {
        format!("get {key}\r\n")
    };
    let mut f = memcached::request_frame(&body, i as u16);
    f.in_port = (i % 4) as u8;
    f
}

fn nat_request(i: u64) -> Frame {
    // A modest set of flows from the internal side.
    let sport = 2000 + (i % 32) as u16;
    let mut f = nat::udp_frame(
        "192.168.1.50".parse().expect("valid"),
        sport,
        "8.8.8.8".parse().expect("valid"),
        53,
        1 + (i % 3) as u8,
    );
    f.in_port = 1 + (i % 3) as u8;
    f
}

fn icmp_request(i: u64) -> Frame {
    let mut f = icmp::echo_request_frame(56, i as u16);
    f.in_port = (i % 4) as u8;
    f
}

fn tcp_request(i: u64) -> Frame {
    let mut f = tcp_ping::syn_frame(40_000 + (i % 1000) as u16, 80, i as u32);
    f.in_port = (i % 4) as u8;
    f
}

/// The Table 4 service set, in the paper's row order.
pub fn table4_services() -> Vec<Table4Service> {
    vec![
        Table4Service {
            name: "icmp-echo",
            build: icmp::icmp_echo,
            request: icmp_request,
        },
        Table4Service {
            name: "tcp-ping",
            build: tcp_ping::tcp_ping,
            request: tcp_request,
        },
        Table4Service {
            name: "dns",
            build: || dns::dns_server(bench_zone()),
            request: dns_request,
        },
        Table4Service {
            name: "nat",
            build: || nat::nat("203.0.113.1".parse().expect("valid")),
            request: nat_request,
        },
        Table4Service {
            name: "memcached",
            build: memcached::memcached,
            request: memcached_request,
        },
    ]
}

/// Builds an iterative-mode pipeline around a service's FPGA instance.
pub fn emu_pipeline(svc: &Service, mode: CoreMode) -> IrResult<PipelineSim> {
    let inst = svc.engine(Target::Fpga).build()?;
    let (driver, env) = inst
        .into_fpga_parts()
        .ok_or_else(|| kiwi_ir::IrError("expected FPGA instance".into()))?;
    Ok(PipelineSim::new_emu(driver, env, mode))
}

/// Pre-warms a memcached-shaped service with SETs for the harness keyset.
pub fn warm_memcached(sim: &mut PipelineSim) -> IrResult<()> {
    let mut t = 0.0;
    for i in 0..64u64 {
        let body = format!("set k{i:04} 0 0 8\r\nVALUE{:03}\r\n", i);
        let f = memcached::request_frame(&body, i as u16);
        sim.inject(&f, t)?;
        t += 10_000.0;
    }
    Ok(())
}

/// Measures request/response latency: `n` requests spaced far apart (an
/// unloaded DUT, as the paper's latency runs are), returning the summary
/// in nanoseconds.
pub fn emu_latency(
    svc: &Service,
    request: fn(u64) -> Frame,
    n: usize,
    warm_mc: bool,
) -> IrResult<Summary> {
    let mut sim = emu_pipeline(svc, CoreMode::Iterative)?;
    if warm_mc {
        warm_memcached(&mut sim)?;
    }
    let t0 = 2_000_000.0;
    // Prime-spaced arrivals vary the clock-grid phase, exposing the
    // (small) alignment jitter a synchronous design has.
    let mut t = t0;
    let warm_records = {
        let r = sim.records().len();
        for i in 0..n as u64 {
            sim.inject(&request(i), t)?;
            t += 9_973.0;
        }
        r
    };
    let lat: Vec<f64> = sim.records()[warm_records..]
        .iter()
        .filter_map(|r| r.t_out_ns.map(|o| o - r.t_in_ns))
        .collect();
    Summary::of(&lat).ok_or_else(|| kiwi_ir::IrError("no completions".into()))
}

/// Measures saturation throughput: requests offered faster than the core
/// can serve, completions counted over the busy interval. Returns
/// requests/s.
pub fn emu_throughput(
    svc: &Service,
    request: fn(u64) -> Frame,
    n: usize,
    warm_mc: bool,
) -> IrResult<f64> {
    let mut sim = emu_pipeline(svc, CoreMode::Iterative)?;
    if warm_mc {
        warm_memcached(&mut sim)?;
    }
    let skip = sim.records().len();
    // Offer at 8 Mpps across the four ports — beyond any Table 4 service.
    let gap = 125.0;
    let mut t = 2_000_000.0;
    for i in 0..n as u64 {
        sim.inject(&request(i), t)?;
        t += gap;
    }
    let recs = &sim.records()[skip..];
    let outs: Vec<f64> = recs.iter().filter_map(|r| r.t_out_ns).collect();
    if outs.len() < 2 {
        return Err(kiwi_ir::IrError("too few completions".into()));
    }
    let t_first = recs.iter().map(|r| r.t_in_ns).fold(f64::INFINITY, f64::min);
    let t_last = outs.iter().fold(0.0f64, |a, &b| a.max(b));
    Ok(outs.len() as f64 / ((t_last - t_first) / 1e9))
}

/// A Table 4 service prepared for shard-scaling runs: like
/// [`Table4Service`] but with a request generator that varies the *flow*
/// (addresses/ports) across a pool of client flows, so an RSS dispatcher
/// has entropy to spread — a single-flow workload degenerates to one
/// shard by design.
pub struct ShardScaleService {
    /// Row label.
    pub name: &'static str,
    /// Builds the Emu service.
    pub build: fn() -> Service,
    /// Builds the i-th request frame, cycling through `FLOW_POOL` flows.
    pub request: fn(u64) -> Frame,
    /// Whether per-shard state partitioning is semantics-preserving for
    /// arbitrary traffic (true) or requires flow affinity (false).
    pub stateless: bool,
}

/// Number of distinct client flows the shard-scaling generators cycle
/// through.
pub const FLOW_POOL: u64 = 64;

/// Rewrites the IPv4 source address of `f` and refreshes the IP header
/// checksum (the L4 checksum, where present, is left for the caller —
/// the generators below only patch frames whose L4 checksum is absent
/// or does not cover the mutated field).
pub fn set_src_ip(f: &mut Frame, ip: Ipv4) {
    use emu_types::{bitutil, checksum, proto::offset};
    let b = f.bytes_mut();
    b[offset::IPV4_SRC..offset::IPV4_SRC + 4].copy_from_slice(&ip.octets());
    bitutil::set16(b, offset::IPV4_CSUM, 0);
    let ihl = usize::from(b[offset::IPV4] & 0x0f) * 4;
    let c = checksum::internet_checksum(&b[offset::IPV4..offset::IPV4 + ihl]);
    bitutil::set16(b, offset::IPV4_CSUM, c);
}

fn icmp_flow_request(i: u64) -> Frame {
    // Vary the pinging client's address: ICMP has no ports, so the RSS
    // hash falls back to MACs+IPs. The ICMP checksum does not cover the
    // IP header, so only the IP checksum needs refreshing.
    let mut f = icmp::echo_request_frame(56, i as u16);
    set_src_ip(&mut f, Ipv4::new(10, 1, (i % FLOW_POOL) as u8, 2));
    f.in_port = (i % 4) as u8;
    f
}

fn tcp_flow_request(i: u64) -> Frame {
    let mut f = tcp_ping::syn_frame(40_000 + (i % FLOW_POOL) as u16, 80, i as u32);
    f.in_port = (i % 4) as u8;
    f
}

fn dns_flow_request(i: u64) -> Frame {
    let names = ["example.com", "emu.cam.ac.uk", "a.b", "cache.io"];
    let mut f = dns::query_frame(names[(i % 4) as usize], i as u16);
    // Vary the resolver client's source port (the query's UDP checksum
    // is 0 = absent, so no fixup is needed).
    emu_types::bitutil::set16(
        f.bytes_mut(),
        emu_types::proto::offset::L4,
        4000 + (i % FLOW_POOL) as u16,
    );
    f.in_port = (i % 4) as u8;
    f
}

fn nat_flow_request(i: u64) -> Frame {
    // Outbound flows from the internal side; flow affinity is what keeps
    // the per-flow translation state consistent (see `emu_services::nat`).
    let mut f = nat::udp_frame(
        "192.168.1.50".parse().expect("valid"),
        2000 + (i % FLOW_POOL) as u16,
        "8.8.8.8".parse().expect("valid"),
        53,
        1 + (i % 3) as u8,
    );
    f.in_port = 1 + (i % 3) as u8;
    f
}

fn memcached_flow_request(i: u64) -> Frame {
    // Key and client flow move in lockstep, so one key's GETs and SETs
    // always share a shard and per-shard stores stay coherent.
    let key = format!("k{:04}", i % FLOW_POOL);
    let body = if i % 10 == 9 {
        format!("set {key} 0 0 8\r\nVALUE{:03}\r\n", i % 1000)
    } else {
        format!("get {key}\r\n")
    };
    let mut f = memcached::request_frame(&body, i as u16);
    emu_types::bitutil::set16(
        f.bytes_mut(),
        emu_types::proto::offset::L4,
        5000 + (i % FLOW_POOL) as u16,
    );
    f.in_port = (i % 4) as u8;
    f
}

/// The Table 4 service set with flow-varied request generators, for the
/// `scaling_shards` harness.
pub fn shard_scale_services() -> Vec<ShardScaleService> {
    vec![
        ShardScaleService {
            name: "icmp-echo",
            build: icmp::icmp_echo,
            request: icmp_flow_request,
            stateless: true,
        },
        ShardScaleService {
            name: "tcp-ping",
            build: tcp_ping::tcp_ping,
            request: tcp_flow_request,
            stateless: true,
        },
        ShardScaleService {
            name: "dns",
            build: || dns::dns_server(bench_zone()),
            request: dns_flow_request,
            stateless: true,
        },
        ShardScaleService {
            name: "nat",
            build: || nat::nat("203.0.113.1".parse().expect("valid")),
            request: nat_flow_request,
            stateless: false,
        },
        ShardScaleService {
            name: "memcached",
            build: memcached::memcached,
            request: memcached_flow_request,
            stateless: false,
        },
    ]
}

/// Deterministic "place-and-route noise" for utilization comparisons.
///
/// Table 5 reports utilization *below* 100 % for some controller
/// variants; the paper attributes this to "the optimization process
/// during the place-and-route state... occasionally this results in more
/// utilization-efficient allocations". Our additive estimator cannot
/// reproduce that by itself, so comparisons apply a small deterministic,
/// design-keyed factor in ±1.5 %, mirroring P&R luck. Documented in
/// DESIGN.md §2 (known deviations).
pub fn pnr_factor(design: &str) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in design.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    let unit = (h % 10_000) as f64 / 10_000.0; // [0, 1)
    0.985 + 0.03 * unit
}

/// Formats a ratio as the paper's "percent of baseline" columns.
pub fn pct(new: f64, base: f64) -> f64 {
    100.0 * new / base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emu_latency_runs_for_every_service() {
        for svc in table4_services() {
            let s = (svc.build)();
            let warm = svc.name == "memcached";
            let sum = emu_latency(&s, svc.request, 50, warm).expect(svc.name);
            assert!(sum.count >= 45, "{}: only {} samples", svc.name, sum.count);
            assert!(
                sum.mean > 500.0 && sum.mean < 10_000.0,
                "{}: {}",
                svc.name,
                sum.mean
            );
        }
    }

    #[test]
    fn emu_throughput_exceeds_host_for_every_service() {
        for (svc, host) in table4_services().iter().zip(hoststack::HostProfile::all()) {
            let s = (svc.build)();
            let warm = svc.name == "memcached";
            let rps = emu_throughput(&s, svc.request, 2_000, warm).expect(svc.name);
            let host_rps = host.throughput_rps(50_000, 3);
            assert!(
                rps > host_rps,
                "{}: emu {rps:.0} ≤ host {host_rps:.0}",
                svc.name
            );
        }
    }

    #[test]
    fn pnr_factor_bounded_and_deterministic() {
        for name in ["dns", "dns+R", "memcached+W"] {
            let f = pnr_factor(name);
            assert!((0.985..1.015).contains(&f), "{name}: {f}");
            assert_eq!(f, pnr_factor(name));
        }
        assert_ne!(pnr_factor("a"), pnr_factor("b"));
    }

    #[test]
    fn warm_memcached_populates_store() {
        let svc = emu_services::memcached();
        let mut sim = emu_pipeline(&svc, CoreMode::Iterative).unwrap();
        warm_memcached(&mut sim).unwrap();
        // A GET for a warmed key must produce a VALUE reply.
        let f = emu_services::memcached::request_frame("get k0003\r\n", 1);
        sim.inject(&f, 1e7).unwrap();
        let last = sim.records().last().unwrap();
        assert!(last.t_out_ns.is_some());
    }
}
