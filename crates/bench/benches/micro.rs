//! Criterion micro-benchmarks over the reproduction's substrates.
//!
//! These do not regenerate paper tables (the `src/bin/table*` harnesses
//! do); they track the raw performance of the simulator stack itself:
//! wide-word arithmetic, checksum kernels, interpreter and RTL stepping
//! rates, IP-block models, and the host-path sampler.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use emu_core::Target;
use emu_types::{checksum, Bits, U256};
use kiwi_ir::dsl::*;
use kiwi_ir::interp::{NullEnv, NullObserver};
use kiwi_ir::ProgramBuilder;

fn bench_bits(c: &mut Criterion) {
    let a = Bits::from_u128(u128::MAX ^ 0xdead, 512);
    let b = Bits::from_u128(0x1234_5678_9abc_def0, 512);
    c.bench_function("bits/add_512", |bench| {
        bench.iter(|| black_box(&a).wrapping_add(black_box(&b)))
    });
    c.bench_function("bits/mul_512", |bench| {
        bench.iter(|| black_box(&a).wrapping_mul(black_box(&b)))
    });
    let x = U256::from_u64(0x55aa);
    let y = U256::from_u64(0x1234);
    c.bench_function("wide/u256_add", |bench| {
        bench.iter(|| black_box(x) + black_box(y))
    });
}

fn bench_checksum(c: &mut Criterion) {
    let frame = vec![0xa5u8; 1514];
    c.bench_function("checksum/full_1514B", |bench| {
        bench.iter(|| checksum::internet_checksum(black_box(&frame)))
    });
    c.bench_function("checksum/incremental_word", |bench| {
        bench.iter(|| checksum::update_word(black_box(0x1234), 0xaaaa, 0x5555))
    });
    let key = b"some-cache-key";
    c.bench_function("hash/pearson8", |bench| {
        bench.iter(|| checksum::pearson8(black_box(key)))
    });
}

fn counter_program() -> kiwi_ir::Program {
    let mut pb = ProgramBuilder::new("bench_counter");
    let a = pb.reg("a", 64);
    pb.thread(
        "main",
        vec![forever(vec![assign(a, add(var(a), lit(1, 64))), pause()])],
    );
    pb.build().expect("valid")
}

fn bench_backends(c: &mut Criterion) {
    let prog = counter_program();
    c.bench_function("interp/cycles_per_sec", |bench| {
        let mut m = kiwi_ir::Machine::new(kiwi_ir::flatten(&prog).expect("flat"));
        bench.iter(|| m.step_cycle(&mut NullEnv, &mut NullObserver).expect("step"));
    });
    c.bench_function("rtl/cycles_per_sec", |bench| {
        let mut m = emu_rtl::RtlMachine::new(kiwi::compile(&prog).expect("fsm"));
        bench.iter(|| m.step_cycle(&mut NullEnv, &mut NullObserver).expect("step"));
    });
}

fn bench_services(c: &mut Criterion) {
    let svc = emu_services::switch_ip_cam();
    let mut inst = svc.engine(Target::Fpga).build().expect("instantiate");
    let mut f = emu_types::Frame::ethernet(
        emu_types::MacAddr::from_u64(0xB),
        emu_types::MacAddr::from_u64(0xA),
        0x0800,
        &[0; 46],
    );
    f.in_port = 0;
    c.bench_function("services/switch_per_packet", |bench| {
        bench.iter(|| inst.process(black_box(&f)).expect("process"))
    });

    let icmp = emu_services::icmp_echo();
    let mut icmp_inst = icmp.engine(Target::Fpga).build().expect("instantiate");
    let ping = emu_services::icmp::echo_request_frame(56, 7);
    c.bench_function("services/icmp_echo_per_packet", |bench| {
        bench.iter(|| icmp_inst.process(black_box(&ping)).expect("process"))
    });
}

fn bench_compiler(c: &mut Criterion) {
    c.bench_function("kiwi/compile_memcached", |bench| {
        let prog = emu_services::memcached().program;
        bench.iter(|| kiwi::compile(black_box(&prog)).expect("compile"))
    });
    c.bench_function("kiwi/emit_verilog_switch", |bench| {
        let fsm = kiwi::compile(&emu_services::switch_ip_cam().program).expect("compile");
        bench.iter(|| kiwi::emit(black_box(&fsm)).expect("emit"))
    });
}

fn bench_host(c: &mut Criterion) {
    let profile = hoststack::HostProfile::memcached();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    c.bench_function("host/latency_sample", |bench| {
        bench.iter(|| profile.sample_latency_us(black_box(&mut rng)))
    });
}

criterion_group!(
    benches,
    bench_bits,
    bench_checksum,
    bench_backends,
    bench_services,
    bench_compiler,
    bench_host
);
criterion_main!(benches);
