//! Frame/byte/drop accounting: one counter per outcome, per shard.
//!
//! The engine maintains one [`ShardStats`] per shard, updated on the
//! thread that runs the shard's slice — sequential and parallel
//! execution touch the same counters in the same per-shard order, so
//! snapshots are byte-identical across execution modes (asserted by
//! `tests/telemetry_equiv.rs` at the workspace root).

use crate::hist::Histogram;
use crate::json::Json;

/// Why a frame was refused. Mirrors `emu_core::EngineError`'s per-frame
/// variants, without depending on that crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropKind {
    /// Input validation rejected the frame (too large for the shard's
    /// frame buffer); the core never saw it.
    Oversize,
    /// The shard's core trapped while processing the frame.
    Trap,
    /// The frame was dispatched to an already-poisoned shard.
    Poisoned,
}

/// Per-shard, per-outcome counters. All counts are frames except the
/// `*_bytes` and `busy_cycles` fields.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Frames processed successfully.
    pub frames: u64,
    /// Bytes received in successfully processed frames.
    pub rx_bytes: u64,
    /// Frames transmitted while processing.
    pub tx_frames: u64,
    /// Bytes across all transmitted frames.
    pub tx_bytes: u64,
    /// Core cycles consumed by successful frames.
    pub busy_cycles: u64,
    /// Frames refused by input validation (shard not poisoned).
    pub drop_oversize: u64,
    /// Frames on which the core trapped (each trap poisons the shard).
    pub drop_trap: u64,
    /// Frames refused because the shard was already poisoned.
    pub drop_poisoned: u64,
}

impl Counters {
    /// Total refused frames across all outcomes.
    pub fn drops(&self) -> u64 {
        self.drop_oversize + self.drop_trap + self.drop_poisoned
    }

    /// Total frames offered (processed + refused). Every offered frame
    /// is accounted exactly once: `offered() == frames + drops()`.
    pub fn offered(&self) -> u64 {
        self.frames + self.drops()
    }

    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &Counters) {
        self.frames += other.frames;
        self.rx_bytes += other.rx_bytes;
        self.tx_frames += other.tx_frames;
        self.tx_bytes += other.tx_bytes;
        self.busy_cycles += other.busy_cycles;
        self.drop_oversize += other.drop_oversize;
        self.drop_trap += other.drop_trap;
        self.drop_poisoned += other.drop_poisoned;
    }

    /// JSON form (one key per counter, plus the derived totals).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("frames", Json::from(self.frames)),
            ("rx_bytes", Json::from(self.rx_bytes)),
            ("tx_frames", Json::from(self.tx_frames)),
            ("tx_bytes", Json::from(self.tx_bytes)),
            ("busy_cycles", Json::from(self.busy_cycles)),
            ("drop_oversize", Json::from(self.drop_oversize)),
            ("drop_trap", Json::from(self.drop_trap)),
            ("drop_poisoned", Json::from(self.drop_poisoned)),
            ("drops", Json::from(self.drops())),
            ("offered", Json::from(self.offered())),
        ])
    }
}

/// One CAM table's lifecycle counters, as exported by the shard's
/// environment at snapshot time: occupancy plus lookup/write/eviction/
/// expiry totals. `prefix` is the table's signal prefix (`"fwd"`,
/// `"cam"`, ...), unique within a shard.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CamCounters {
    /// The table's signal prefix.
    pub prefix: String,
    /// Configured capacity in entries.
    pub capacity: u64,
    /// Resident entries (live + expired-but-not-yet-reclaimed).
    pub occupancy: u64,
    /// Lookup strobes observed.
    pub lookups: u64,
    /// Lookups that matched a live entry.
    pub hits: u64,
    /// Write strobes observed.
    pub writes: u64,
    /// Entries displaced live to make room.
    pub evictions: u64,
    /// Entries reclaimed after their TTL lapsed.
    pub expiries: u64,
}

impl CamCounters {
    /// Adds `other`'s flow counts into `self` (capacity/occupancy sum
    /// too: a merged view of same-prefix tables across shards describes
    /// the aggregate table).
    pub fn merge(&mut self, other: &CamCounters) {
        self.capacity += other.capacity;
        self.occupancy += other.occupancy;
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.writes += other.writes;
        self.evictions += other.evictions;
        self.expiries += other.expiries;
    }

    /// JSON form (one key per counter).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("prefix", Json::Str(self.prefix.clone())),
            ("capacity", Json::from(self.capacity)),
            ("occupancy", Json::from(self.occupancy)),
            ("lookups", Json::from(self.lookups)),
            ("hits", Json::from(self.hits)),
            ("writes", Json::from(self.writes)),
            ("evictions", Json::from(self.evictions)),
            ("expiries", Json::from(self.expiries)),
        ])
    }
}

/// One shard's telemetry: outcome counters plus the distribution of
/// per-frame core cycles (model time — deterministic across backends
/// and execution modes, unlike host wall time).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Outcome counters.
    pub counters: Counters,
    /// Per-frame cycle histogram over successful frames.
    pub cycles: Histogram,
    /// Per-CAM lifecycle counters, in the environment's attach order.
    /// Filled at snapshot time from the shard's IP-block environment.
    pub cams: Vec<CamCounters>,
}

impl ShardStats {
    /// Empty stats.
    pub fn new() -> ShardStats {
        ShardStats::default()
    }

    /// Records one successfully processed frame.
    #[inline]
    pub fn record_ok(&mut self, rx_bytes: u64, tx_frames: u64, tx_bytes: u64, cycles: u64) {
        self.counters.frames += 1;
        self.counters.rx_bytes += rx_bytes;
        self.counters.tx_frames += tx_frames;
        self.counters.tx_bytes += tx_bytes;
        self.counters.busy_cycles += cycles;
        self.cycles.record(cycles);
    }

    /// Records one refused frame.
    #[inline]
    pub fn record_drop(&mut self, kind: DropKind) {
        match kind {
            DropKind::Oversize => self.counters.drop_oversize += 1,
            DropKind::Trap => self.counters.drop_trap += 1,
            DropKind::Poisoned => self.counters.drop_poisoned += 1,
        }
    }

    /// Folds `other` into `self` (losslessly — see [`Histogram::merge`]).
    /// CAM counters merge by prefix, so the engine-wide total describes
    /// each logical table aggregated across shards.
    pub fn merge(&mut self, other: &ShardStats) {
        self.counters.merge(&other.counters);
        self.cycles.merge(&other.cycles);
        for c in &other.cams {
            match self.cams.iter_mut().find(|m| m.prefix == c.prefix) {
                Some(m) => m.merge(c),
                None => self.cams.push(c.clone()),
            }
        }
    }

    /// Resets everything to zero.
    pub fn reset(&mut self) {
        *self = ShardStats::default();
    }

    /// JSON form: the counters plus the cycle histogram summary and any
    /// CAM lifecycle counters.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("counters", self.counters.to_json()),
            ("cycles", self.cycles.to_json()),
            (
                "cams",
                Json::Arr(self.cams.iter().map(CamCounters::to_json).collect()),
            ),
        ])
    }
}

/// A whole engine's telemetry at one instant: per-shard stats in shard
/// order. Two engines that processed the same frames under the same
/// configuration produce *equal* snapshots, regardless of execution
/// mode (sequential vs parallel) or CPU backend (compiled vs
/// tree-walk).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Per-shard stats, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl EngineSnapshot {
    /// All shards merged into one (the engine-wide totals).
    pub fn total(&self) -> ShardStats {
        let mut t = ShardStats::new();
        for s in &self.shards {
            t.merge(s);
        }
        t
    }

    /// JSON form: `{"total": .., "shards": [..]}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("total", self.total().to_json()),
            (
                "shards",
                Json::Arr(self.shards.iter().map(ShardStats::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_counts_every_outcome_once() {
        let mut s = ShardStats::new();
        s.record_ok(60, 2, 120, 40);
        s.record_ok(80, 0, 0, 55);
        s.record_drop(DropKind::Oversize);
        s.record_drop(DropKind::Trap);
        s.record_drop(DropKind::Poisoned);
        s.record_drop(DropKind::Poisoned);
        assert_eq!(s.counters.frames, 2);
        assert_eq!(s.counters.drops(), 4);
        assert_eq!(s.counters.offered(), 6);
        assert_eq!(s.counters.rx_bytes, 140);
        assert_eq!(s.counters.tx_frames, 2);
        assert_eq!(s.counters.busy_cycles, 95);
        assert_eq!(s.cycles.count(), 2, "only successes enter the histogram");
    }

    #[test]
    fn snapshot_total_merges_shards() {
        let mut a = ShardStats::new();
        a.record_ok(60, 1, 60, 10);
        let mut b = ShardStats::new();
        b.record_ok(90, 1, 90, 30);
        b.record_drop(DropKind::Oversize);
        let snap = EngineSnapshot { shards: vec![a, b] };
        let t = snap.total();
        assert_eq!(t.counters.frames, 2);
        assert_eq!(t.counters.offered(), 3);
        assert_eq!(t.cycles.count(), 2);
        assert_eq!(t.cycles.min(), Some(10));
        assert_eq!(t.cycles.max(), Some(30));
    }

    #[test]
    fn json_round_trips_the_counts() {
        let mut s = ShardStats::new();
        s.record_ok(64, 1, 64, 100);
        s.record_drop(DropKind::Trap);
        let j = s.to_json();
        let c = j.get("counters").unwrap();
        assert_eq!(c.get("frames").and_then(Json::as_u64), Some(1));
        assert_eq!(c.get("drop_trap").and_then(Json::as_u64), Some(1));
        assert_eq!(c.get("offered").and_then(Json::as_u64), Some(2));
        // And it survives a print/parse cycle.
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(
            parsed
                .get("cycles")
                .and_then(|h| h.get("p50"))
                .and_then(Json::as_u64),
            Some(100)
        );
    }
}
