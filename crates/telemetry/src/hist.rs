//! Log-bucketed (HDR-style) histograms with exact quantile bounds.
//!
//! Values are `u64` (per-frame cycles by convention). Bucket layout:
//! values below 32 get one bucket each (exact); above that, each power
//! of two is split into 32 sub-buckets, so a bucket's width is at most
//! 1/32 of its lower bound — every quantile is known to within 3.125 %
//! relative error, and the bounds themselves are exact (the recorded
//! value provably lies in `[low, high]`).
//!
//! Merging is **lossless**: two histograms over disjoint sample sets
//! merge bucket-by-bucket into exactly the histogram of the union, so
//! per-shard histograms roll up into engine totals and per-run
//! histograms roll up across runs without approximation on top of the
//! bucketing. Merge is associative and commutative (proptested in
//! `tests/props.rs`).

use crate::json::Json;

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per power of two.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUBS: u64 = 1 << SUB_BITS;
/// Total bucket count: 32 exact small-value buckets plus 32 per octave
/// for exponents 5..=63.
const BUCKETS: usize = (SUBS as usize) * (64 - SUB_BITS as usize + 1);

/// Bucket index of `v`. Total order: `v <= w` implies
/// `bucket_index(v) <= bucket_index(w)`.
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let k = 63 - v.leading_zeros(); // 2^k <= v < 2^(k+1), k >= SUB_BITS
        let shift = k - SUB_BITS;
        let sub = ((v >> shift) & (SUBS - 1)) as usize;
        SUBS as usize + ((k - SUB_BITS) as usize) * SUBS as usize + sub
    }
}

/// Inclusive `[low, high]` value range of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUBS as usize {
        (i as u64, i as u64)
    } else {
        let b = i - SUBS as usize;
        let shift = (b / SUBS as usize) as u32;
        let sub = (b % SUBS as usize) as u64;
        let low = (SUBS + sub) << shift;
        (low, low + ((1u64 << shift) - 1))
    }
}

/// A log-bucketed value distribution. See the module docs for the
/// bucket layout and error bound.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Exact minimum recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact bounds `[low, high]` containing the `q`-quantile
    /// (nearest-rank: the `ceil(q·count)`-th smallest sample), `None`
    /// when empty. `high - low <= low/32`, so reporting `high` is at
    /// most 3.125 % pessimistic.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (low, high) = bucket_bounds(i);
                // The true min/max tighten the outermost buckets.
                return Some((low.max(self.min), high.min(self.max)));
            }
        }
        unreachable!("rank {rank} <= count {} must land in a bucket", self.count)
    }

    /// Upper bound of the `q`-quantile (the conservative single number
    /// reports quote), `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.quantile_bounds(q).map(|(_, high)| high)
    }

    /// Folds `other` into `self`, losslessly: the result is exactly the
    /// histogram of the union of both sample sets.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(index, low, count)` triples, in value
    /// order — the compact lossless serialization.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, bucket_bounds(i).0, c))
    }

    /// JSON form: summary quantiles plus the sparse bucket array
    /// (`[index, low, count]` triples), so merged reports stay lossless.
    pub fn to_json(&self) -> Json {
        let q = |p: f64| self.quantile(p).map_or(Json::Null, Json::from);
        Json::obj(vec![
            ("count", Json::from(self.count)),
            ("min", self.min().map_or(Json::Null, Json::from)),
            ("mean", self.mean().map_or(Json::Null, Json::from)),
            ("p50", q(0.50)),
            ("p99", q(0.99)),
            ("p999", q(0.999)),
            ("max", self.max().map_or(Json::Null, Json::from)),
            (
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .map(|(i, low, c)| {
                            Json::Arr(vec![Json::from(i as u64), Json::from(low), Json::from(c)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_have_exact_buckets() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        // Values below 64 land in single-value buckets, so quantile
        // bounds are exact.
        for v in 0..64u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_bounds(i), (v, v), "value {v}");
        }
        assert_eq!(h.quantile_bounds(0.5), Some((31, 31)));
        assert_eq!(h.quantile_bounds(1.0), Some((63, 63)));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
    }

    #[test]
    fn bucket_boundaries_round_trip() {
        // Every power of two and its neighbours, plus the extremes:
        // a value must lie in its own bucket's bounds, and bucket
        // indices must be monotone in the value.
        let mut probes = vec![0u64, 1, 31, 32, 33, 63, 64, 65, u64::MAX - 1, u64::MAX];
        for k in 1..64u32 {
            let p = 1u64 << k;
            probes.extend([p - 1, p, p + 1]);
        }
        probes.sort_unstable();
        let mut last_idx = 0usize;
        for &v in &probes {
            let i = bucket_index(v);
            let (low, high) = bucket_bounds(i);
            assert!(low <= v && v <= high, "v={v} not in [{low}, {high}]");
            assert!(i >= last_idx, "index must be monotone at v={v}");
            // Bucket endpoints map back to the same bucket.
            assert_eq!(bucket_index(low), i, "low endpoint of bucket {i}");
            assert_eq!(bucket_index(high), i, "high endpoint of bucket {i}");
            last_idx = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for i in 0..BUCKETS {
            let (low, high) = bucket_bounds(i);
            if low >= SUBS {
                assert!(
                    (high - low) as f64 / low as f64 <= 1.0 / SUBS as f64,
                    "bucket {i}: [{low}, {high}] wider than 1/32 of low"
                );
            } else {
                assert_eq!(low, high, "small-value bucket {i} must be exact");
            }
        }
    }

    #[test]
    fn quantile_bounds_contain_exact_nearest_rank() {
        // A skewed sample set with duplicates and large values.
        let mut vals: Vec<u64> = (0..500u64).map(|i| i * i % 7919 + 1).collect();
        vals.extend([100_000, 1_000_000, 1_000_000, u64::MAX / 3]);
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let (low, high) = h.quantile_bounds(q).unwrap();
            assert!(
                low <= exact && exact <= high,
                "q={q}: exact {exact} outside [{low}, {high}]"
            );
            // And the bound is tight: at most 1/32 relative slack.
            assert!(high - low <= low / 32 + 1, "q={q}: [{low}, {high}]");
        }
    }

    #[test]
    fn merge_is_lossless() {
        let (mut a, mut b, mut whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..1000u64 {
            let v = i * 37 % 4096;
            whole.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.sum(), whole.sum());
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile_bounds(0.99), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_quantile_panics() {
        Histogram::new().quantile_bounds(1.5);
    }

    #[test]
    fn json_form_has_sparse_buckets() {
        let mut h = Histogram::new();
        h.record(7);
        h.record(7);
        h.record(100);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("min").and_then(Json::as_u64), Some(7));
        let buckets = j.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 2, "two distinct buckets");
    }
}
