//! The versioned bench-report schema.
//!
//! Every bench bin emits one [`BenchReport`]: a fixed envelope —
//! schema tag, bench name, host metadata, free-form parameters — around
//! an array of row objects. Rows are bench-specific, but the envelope
//! is uniform, so tooling can diff any two reports (and CI can validate
//! a committed artifact like `BENCH_6.json`) without knowing which
//! bench produced them.
//!
//! ```
//! use emu_telemetry::{BenchReport, Json};
//!
//! let mut r = BenchReport::new("sustained").param("frames", 1000u64);
//! r.push_row(Json::obj(vec![
//!     ("service", Json::from("dns")),
//!     ("mpps", Json::from(1.25)),
//! ]));
//! let doc = Json::parse(&r.render()).unwrap();
//! BenchReport::validate(&doc).unwrap();
//! assert_eq!(doc.get("bench").and_then(Json::as_str), Some("sustained"));
//! ```

use crate::json::Json;

/// The schema tag every report carries. Bump the suffix on breaking
/// changes to the envelope.
pub const SCHEMA: &str = "emu-bench-report/v1";

/// Host metadata recorded in every report: enough to know whether two
/// throughput numbers are comparable at all.
pub fn host_info() -> Json {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    Json::obj(vec![
        ("os", Json::from(std::env::consts::OS)),
        ("arch", Json::from(std::env::consts::ARCH)),
        ("cores", Json::from(cores as u64)),
    ])
}

/// A machine-readable bench report (see the module docs).
#[derive(Debug, Clone)]
pub struct BenchReport {
    bench: String,
    params: Vec<(String, Json)>,
    rows: Vec<Json>,
}

impl BenchReport {
    /// Starts an empty report for the named bench.
    pub fn new(bench: &str) -> BenchReport {
        BenchReport {
            bench: bench.to_string(),
            params: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Records a bench parameter (frame counts, seeds, sweep axes — the
    /// knobs a reader needs to reproduce the run).
    pub fn param(mut self, key: &str, value: impl Into<Json>) -> BenchReport {
        self.params.push((key.to_string(), value.into()));
        self
    }

    /// Appends one result row (must be a JSON object).
    ///
    /// # Panics
    ///
    /// Panics if `row` is not an object — the schema requires uniform
    /// rows so reports stay diffable.
    pub fn push_row(&mut self, row: Json) {
        assert!(matches!(row, Json::Obj(_)), "report rows must be objects");
        self.rows.push(row);
    }

    /// The rows pushed so far.
    pub fn rows(&self) -> &[Json] {
        &self.rows
    }

    /// The full report as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::from(SCHEMA)),
            ("bench", Json::from(self.bench.as_str())),
            ("host", host_info()),
            ("params", Json::Obj(self.params.clone())),
            ("rows", Json::Arr(self.rows.clone())),
        ])
    }

    /// The pretty-printed document (what bins print to stdout and CI
    /// commits as `BENCH_*.json`).
    pub fn render(&self) -> String {
        self.to_json().pretty()
    }

    /// Validates the envelope of a parsed report: schema tag, bench
    /// name, host block, and object-shaped rows.
    pub fn validate(doc: &Json) -> Result<(), String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing `schema`")?;
        if schema != SCHEMA {
            return Err(format!("schema `{schema}` != `{SCHEMA}`"));
        }
        match doc.get("bench").and_then(Json::as_str) {
            Some(b) if !b.is_empty() => {}
            _ => return Err("missing or empty `bench`".into()),
        }
        let host = doc.get("host").ok_or("missing `host`")?;
        for key in ["os", "arch", "cores"] {
            if host.get(key).is_none() {
                return Err(format!("host block missing `{key}`"));
            }
        }
        if doc.get("params").and_then(Json::as_obj).is_none() {
            return Err("missing `params` object".into());
        }
        let rows = doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("missing `rows` array")?;
        for (i, row) in rows.iter().enumerate() {
            if row.as_obj().is_none() {
                return Err(format!("row {i} is not an object"));
            }
        }
        Ok(())
    }

    /// Checks that every row of a validated report has all of `keys` —
    /// the bench-specific half of validation.
    pub fn require_row_keys(doc: &Json, keys: &[&str]) -> Result<(), String> {
        let rows = doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("missing `rows` array")?;
        for (i, row) in rows.iter().enumerate() {
            for key in keys {
                if row.get(key).is_none() {
                    return Err(format!("row {i} missing `{key}`"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_validates_and_round_trips() {
        let mut r = BenchReport::new("soak").param("frames", 50_000u64);
        r.push_row(Json::obj(vec![("service", Json::from("nat"))]));
        let doc = Json::parse(&r.render()).unwrap();
        BenchReport::validate(&doc).unwrap();
        BenchReport::require_row_keys(&doc, &["service"]).unwrap();
        assert!(BenchReport::require_row_keys(&doc, &["mpps"]).is_err());
        assert_eq!(
            doc.get("params")
                .and_then(|p| p.get("frames"))
                .and_then(Json::as_u64),
            Some(50_000)
        );
    }

    #[test]
    fn validation_rejects_broken_envelopes() {
        let good = BenchReport::new("x").to_json();
        BenchReport::validate(&good).unwrap();
        for (mutate, why) in [
            (
                Json::obj(vec![("schema", Json::from("emu-bench-report/v0"))]),
                "wrong schema",
            ),
            (Json::obj(vec![]), "empty object"),
            (Json::Arr(vec![]), "not an object"),
        ] {
            assert!(BenchReport::validate(&mutate).is_err(), "{why}");
        }
        // Rows must be objects.
        let mut doc = good;
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k == "rows" {
                    *v = Json::Arr(vec![Json::from(1u64)]);
                }
            }
        }
        assert!(BenchReport::validate(&doc).is_err());
    }

    #[test]
    #[should_panic(expected = "objects")]
    fn non_object_rows_panic_at_push() {
        BenchReport::new("x").push_row(Json::from(3u64));
    }
}
