//! # `emu-telemetry` — engine-wide observability
//!
//! Every speed claim this reproduction makes — the batch refill, the
//! compiled backend, shard scale-out — is only as credible as its
//! measurement. Emulation work frames this directly: *When Should I Use
//! Network Emulation?* treats emulator credibility as a measurement
//! problem, and the Emu paper itself (Tables 4/5) is measurement-driven.
//! This crate is the one place those measurements are defined, so that
//! "p99" and "drops" mean the same thing in the engine hot path, the
//! NetSim topology, and every bench bin.
//!
//! ## Pieces
//!
//! | type | role |
//! |---|---|
//! | [`Histogram`] | log-bucketed (HDR-style) value distribution: ≤ 1/32 relative bucket error, exact quantile *bounds*, lossless merge |
//! | [`Counters`] | per-shard frame/byte/drop/trap accounting, one counter per outcome |
//! | [`ShardStats`] | one shard's counters + per-frame cycle histogram |
//! | [`EngineSnapshot`] | a whole engine's per-shard stats, mergeable into totals |
//! | [`Json`] | a dependency-free JSON value with parser and writer |
//! | [`BenchReport`] | the versioned machine-readable report schema every bench bin emits |
//!
//! ## Determinism contract
//!
//! The histogram records **model cycles per frame**, not host wall time:
//! cycle accounting is identical across the compiled and tree-walk
//! backends and across sequential and parallel shard execution, so two
//! runs over the same frames must produce *byte-identical* snapshots
//! (`EngineSnapshot: PartialEq`). Wall-clock throughput is measured by
//! the bench harnesses around the engine, never inside it.
//!
//! ## Overhead contract
//!
//! Recording one frame is a handful of u64 additions plus one
//! leading-zeros bucket index — no allocation, no branching beyond one
//! `Option` check. The `sustained` bench bin measures the end-to-end
//! cost against a telemetry-disabled engine and gates it below 5 %.

pub mod counters;
pub mod hist;
pub mod json;
pub mod report;

pub use counters::{CamCounters, Counters, DropKind, EngineSnapshot, ShardStats};
pub use hist::Histogram;
pub use json::Json;
pub use report::{host_info, BenchReport, SCHEMA};
