//! A dependency-free JSON value with writer and parser.
//!
//! The container build is offline (no serde), and the bench bins used
//! to hand-print JSON with `println!` — which is how unescaped checker
//! notes and drifting ad-hoc schemas happen. This module is the one
//! JSON implementation every report goes through: writing always
//! escapes, parsing is strict enough to validate committed artifacts
//! (`BENCH_6.json`) in CI.
//!
//! Numbers are `f64`; the counters that flow through reports are far
//! below 2^53, so round-tripping is exact in practice. Object keys keep
//! insertion order (reports diff cleanly run over run).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(f64::from(v))
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Pretty-printed form (2-space indent, trailing newline) — the
    /// format committed bench artifacts use.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(0));
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(members) => write_seq(out, indent, '{', '}', members.len(), |out, i, ind| {
                write_str(out, &members[i].0);
                out.push_str(": ");
                members[i].1.write(out, ind);
            }),
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None);
        f.write_str(&s)
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; reports must not contain them.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    match indent {
        None => {
            for i in 0..n {
                if i > 0 {
                    out.push_str(", ");
                }
                item(out, i, None);
            }
        }
        Some(level) => {
            let pad = "  ".repeat(level + 1);
            for i in 0..n {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&pad);
                item(out, i, Some(level + 1));
            }
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for report
                            // content; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The parser only ever
                    // advances past ASCII bytes or whole scalars, so
                    // `pos` is always on a character boundary.
                    let text = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = text.chars().next().ok_or("unterminated string")?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let doc = Json::obj(vec![
            ("name", Json::from("soak \"quoted\"\nline")),
            ("n", Json::from(42u64)),
            ("pi", Json::from(3.5)),
            ("neg", Json::from(-7i64)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            (
                "rows",
                Json::Arr(vec![
                    Json::from(1u64),
                    Json::obj(vec![("k", Json::from("v"))]),
                ]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        for text in [doc.to_string(), doc.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let j = Json::from("tab\there\u{1}");
        let s = j.to_string();
        assert!(s.contains("\\t") && s.contains("\\u0001"), "{s}");
        assert_eq!(Json::parse(&s).unwrap(), j);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]extra",
            "{\"a\": }",
            "[1 2]",
            "nul",
            "\"unterminated",
            "{\"a\": 1} trailing",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(1_000_000u64).to_string(), "1000000");
        assert_eq!(Json::from(0.25).to_string(), "0.25");
    }

    #[test]
    fn accessors_select_the_right_variants() {
        let j = Json::parse("{\"a\": [1, \"x\"], \"b\": true}").unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(j.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::from(1.5).as_u64(), None, "non-integers reject");
        assert_eq!(Json::from(3u64).as_u64(), Some(3));
    }
}
