//! Property tests for the telemetry primitives: histogram merge is
//! associative/commutative and lossless, quantile bounds always contain
//! the exact nearest-rank value, and counter merges are order-free.

use emu_telemetry::{Counters, DropKind, Histogram, ShardStats};
use proptest::prelude::*;

fn hist_of(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_commutative(a in proptest::collection::vec(any::<u64>(), 0..200),
                            b in proptest::collection::vec(any::<u64>(), 0..200)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in proptest::collection::vec(any::<u64>(), 0..120),
                            b in proptest::collection::vec(any::<u64>(), 0..120),
                            c in proptest::collection::vec(any::<u64>(), 0..120)) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊔ b) ⊔ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊔ (b ⊔ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_equals_whole_stream(vals in proptest::collection::vec(any::<u64>(), 1..400),
                                 split in any::<u16>()) {
        // Recording a stream in two halves and merging must equal
        // recording the whole stream — the lossless-merge contract.
        let cut = usize::from(split) % vals.len();
        let mut merged = hist_of(&vals[..cut]);
        merged.merge(&hist_of(&vals[cut..]));
        prop_assert_eq!(merged, hist_of(&vals));
    }

    #[test]
    fn quantile_bounds_contain_nearest_rank(
        vals in proptest::collection::vec(any::<u64>(), 1..300),
        qs in proptest::collection::vec(0u32..=1000, 1..8)
    ) {
        let h = hist_of(&vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in qs.iter().map(|&q| f64::from(q) / 1000.0) {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let (low, high) = h.quantile_bounds(q).expect("non-empty");
            prop_assert!(low <= exact && exact <= high,
                "q={}: exact {} outside [{}, {}]", q, exact, low, high);
        }
        // The extremes are exact, not just bounded.
        prop_assert_eq!(h.min(), sorted.first().copied());
        prop_assert_eq!(h.max(), sorted.last().copied());
        prop_assert_eq!(h.sum(), vals.iter().map(|&v| u128::from(v)).sum::<u128>());
    }

    #[test]
    fn shard_stats_merge_matches_interleaved_recording(
        events in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..200)
    ) {
        // Splitting an event stream across two ShardStats and merging
        // equals recording everything into one — counters and histogram.
        let mut whole = ShardStats::new();
        let mut left = ShardStats::new();
        let mut right = ShardStats::new();
        for (i, &(len, kind)) in events.iter().enumerate() {
            let target = if i % 2 == 0 { &mut left } else { &mut right };
            match kind % 4 {
                0 => {
                    let (rx, cyc) = (u64::from(len), u64::from(len) % 97 + 30);
                    whole.record_ok(rx, 1, rx, cyc);
                    target.record_ok(rx, 1, rx, cyc);
                }
                1 => {
                    whole.record_drop(DropKind::Oversize);
                    target.record_drop(DropKind::Oversize);
                }
                2 => {
                    whole.record_drop(DropKind::Trap);
                    target.record_drop(DropKind::Trap);
                }
                _ => {
                    whole.record_drop(DropKind::Poisoned);
                    target.record_drop(DropKind::Poisoned);
                }
            }
        }
        left.merge(&right);
        prop_assert_eq!(&left, &whole);
        prop_assert_eq!(left.counters.offered(), events.len() as u64);
    }

    #[test]
    fn counters_merge_is_commutative(
        a in (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        b in (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>())
    ) {
        let mk = |(f, rx, t, d): (u32, u32, u32, u32)| Counters {
            frames: u64::from(f),
            rx_bytes: u64::from(rx),
            tx_frames: u64::from(t),
            tx_bytes: u64::from(t) * 60,
            busy_cycles: u64::from(f) * 40,
            drop_oversize: u64::from(d) % 5,
            drop_trap: u64::from(d) % 3,
            drop_poisoned: u64::from(d) % 2,
        };
        let (ca, cb) = (mk(a), mk(b));
        let mut ab = ca;
        ab.merge(&cb);
        let mut ba = cb;
        ba.merge(&ca);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.offered(), ca.offered() + cb.offered());
    }
}
