//! The shared closed-loop request driver.
//!
//! All three protocol clients (TCP handshake, memcached, DNS) are the
//! same machine: issue one request, arm a retransmission timer, back
//! off exponentially on silence, give up after a bounded number of
//! retries, verify whatever comes back, and only then issue the next
//! request. [`Client`] owns that machine; a [`RequestProto`] supplies
//! the three protocol-specific moves (build a request, classify a
//! frame, absorb a timeout into its model of the server).
//!
//! Timers are one-shot and carry the request serial as their token;
//! there is no cancellation. A timer whose serial no longer matches the
//! outstanding request is stale and ignored — the discrete-event idiom
//! [`netsim::HostAgent`] documents.

use crate::stats::ClientStats;
use emu_telemetry::Json;
use emu_traffic::ClientOutcome;
use emu_types::Frame;
use netsim::{AgentOutput, HostAgent};
use std::any::Any;

/// Timer-token bit distinguishing "issue the next request" kicks from
/// retransmission timeouts. Arm `KICK` (serial 0's kick) at t=0 via
/// [`netsim::NetSim::arm_timer`] to start a client.
pub const KICK: u64 = 1 << 63;

/// Closed-loop pacing and reliability knobs, shared by every client.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Requests to issue before going idle.
    pub requests: u64,
    /// Base retransmission timeout; doubles per retry.
    pub rto_ns: f64,
    /// Retransmissions allowed per request before declaring a timeout.
    pub retries: u32,
    /// Think time between a resolution and the next issue.
    pub gap_ns: f64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            requests: 100,
            rto_ns: 2_000_000.0, // 2 ms
            retries: 4,
            gap_ns: 0.0,
        }
    }
}

/// The in-flight request (window is fixed at 1).
#[derive(Debug)]
pub struct Sent {
    /// Request serial.
    pub serial: u64,
    /// The exact frame, kept for retransmission.
    pub frame: Frame,
    /// Issue time of the first transmission.
    pub first_ns: f64,
    /// Retransmissions spent so far.
    pub retries: u32,
}

/// How a received frame relates to the client's outstanding request.
#[derive(Debug)]
pub enum Classify {
    /// Not addressed to this client, or not this protocol — a flood
    /// copy passing by.
    NotMine,
    /// A well-formed response whose id matches no outstanding request:
    /// a link-level duplicate or a response that outran its timeout.
    Stale,
    /// The response to the outstanding request.
    Response {
        /// Did it match the client's model of the server?
        verified: bool,
        /// Mismatch detail.
        note: Option<String>,
    },
}

/// The protocol-specific third of a closed-loop client.
pub trait RequestProto: 'static {
    /// Label for outcomes and telemetry (`"tcp"`, `"memcached"`, `"dns"`).
    fn proto(&self) -> &'static str;

    /// Builds request `serial`. Called once per serial; the driver
    /// keeps the frame for retransmission, so the request must be
    /// byte-stable under retry.
    fn build(&mut self, serial: u64) -> Frame;

    /// Classifies an incoming frame against the outstanding request.
    /// On `Response`, the protocol must also fold the observation into
    /// its own server model (e.g. collapse shadow-store uncertainty).
    fn classify(&mut self, frame: &Frame, outstanding: Option<&Sent>) -> Classify;

    /// The outstanding request exhausted its retries: absorb the
    /// uncertainty (a timed-out write may or may not have applied).
    fn on_timeout(&mut self, _serial: u64) {}
}

/// A closed-loop endpoint: the shared driver around a [`RequestProto`].
pub struct Client<P: RequestProto> {
    name: String,
    proto: P,
    cfg: ClientConfig,
    next_serial: u64,
    outstanding: Option<Sent>,
    stats: ClientStats,
}

impl<P: RequestProto> Client<P> {
    /// Wraps a protocol in the driver.
    pub fn from_proto(name: &str, proto: P, cfg: ClientConfig) -> Self {
        Client {
            name: name.to_string(),
            proto,
            cfg,
            next_serial: 0,
            outstanding: None,
            stats: ClientStats::new(),
        }
    }

    /// The accumulated client-side accounting.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Drains the per-request outcome records (feed to
    /// [`emu_traffic::ClientCheck`]).
    pub fn take_outcomes(&mut self) -> Vec<ClientOutcome> {
        std::mem::take(&mut self.stats.outcomes)
    }

    /// Protocol access (e.g. the TCP client's reassembly buffer).
    pub fn proto(&self) -> &P {
        &self.proto
    }

    /// True once every configured request has resolved.
    pub fn done(&self) -> bool {
        self.next_serial >= self.cfg.requests && self.outstanding.is_none()
    }

    fn rto_for(&self, retries: u32) -> f64 {
        self.cfg.rto_ns * (1u64 << retries.min(20)) as f64
    }

    fn issue(&mut self, now: f64) -> AgentOutput {
        let serial = self.next_serial;
        self.next_serial += 1;
        let frame = self.proto.build(serial);
        self.stats.issued += 1;
        if !self.stats.first_issue_ns.is_finite() {
            self.stats.first_issue_ns = now;
        }
        let out = AgentOutput::none()
            .send(0, frame.clone())
            .arm(now + self.rto_for(0), serial);
        self.outstanding = Some(Sent {
            serial,
            frame,
            first_ns: now,
            retries: 0,
        });
        out
    }

    /// Records a resolution and schedules the next issue.
    fn resolve(
        &mut self,
        now: f64,
        sent: Sent,
        verified: bool,
        timed_out: bool,
        note: Option<String>,
    ) -> AgentOutput {
        let rtt_ns = if verified && sent.retries == 0 {
            let rtt = (now - sent.first_ns).max(0.0) as u64;
            self.stats.rtt.record(rtt);
            Some(rtt)
        } else {
            None
        };
        match (verified, timed_out) {
            (true, _) => self.stats.completed += 1,
            (false, true) => self.stats.timeouts += 1,
            (false, false) => self.stats.mismatches += 1,
        }
        self.stats.last_resolve_ns = now;
        self.stats.outcomes.push(ClientOutcome {
            client: self.name.clone(),
            proto: self.proto.proto(),
            serial: sent.serial,
            verified,
            timed_out,
            rtt_ns,
            retries: sent.retries,
            note,
        });
        if self.next_serial < self.cfg.requests {
            AgentOutput::none().arm(now + self.cfg.gap_ns, KICK | self.next_serial)
        } else {
            AgentOutput::none()
        }
    }
}

impl<P: RequestProto> HostAgent for Client<P> {
    fn on_frame(&mut self, now: f64, _port: usize, frame: &Frame) -> AgentOutput {
        match self.proto.classify(frame, self.outstanding.as_ref()) {
            Classify::NotMine => {
                self.stats.ignored += 1;
                AgentOutput::none()
            }
            Classify::Stale => {
                self.stats.duplicates += 1;
                AgentOutput::none()
            }
            Classify::Response { verified, note } => {
                let sent = self
                    .outstanding
                    .take()
                    .expect("classify returned Response with nothing outstanding");
                if verified {
                    self.stats.response_bytes += frame.len() as u64;
                }
                self.resolve(now, sent, verified, false, note)
            }
        }
    }

    fn on_timer(&mut self, now: f64, token: u64) -> AgentOutput {
        if token & KICK != 0 {
            let serial = token & !KICK;
            if self.outstanding.is_none()
                && self.next_serial == serial
                && serial < self.cfg.requests
            {
                return self.issue(now);
            }
            return AgentOutput::none();
        }
        // Retransmission timeout: only live if it names the serial
        // still outstanding.
        match &mut self.outstanding {
            Some(sent) if sent.serial == token => {
                if sent.retries < self.cfg.retries {
                    sent.retries += 1;
                    let retries = sent.retries;
                    let frame = sent.frame.clone();
                    self.stats.retransmits += 1;
                    let rto = self.rto_for(retries);
                    AgentOutput::none().send(0, frame).arm(now + rto, token)
                } else {
                    let sent = self.outstanding.take().expect("matched above");
                    self.proto.on_timeout(sent.serial);
                    self.resolve(now, sent, false, true, None)
                }
            }
            _ => AgentOutput::none(), // stale timer: already resolved
        }
    }

    fn telemetry(&self) -> Option<Json> {
        Some(Json::obj(vec![
            ("proto", Json::Str(self.proto.proto().to_string())),
            ("stats", self.stats.to_json()),
        ]))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
