//! Seeded fat-tree topology generation: dozens of sharded engines and
//! impaired links from one spec.
//!
//! The shape is the classic edge hierarchy (EmuFog's tiered emulation
//! topologies, pruned of multipath): one core learning switch, up to
//! four aggregation switches below it, up to three edge switches per
//! aggregation, three leaf slots per edge. Every switch is the paper's
//! §4.1 learning switch compiled to the CPU backend and sharded; the
//! first three leaf slots (on distinct edges when the tree is wide
//! enough) carry the memcached, DNS, and TCP-ping service engines, and
//! every remaining slot carries a closed-loop client cycling through
//! the three protocols. The tree is deliberately loop-free — learning
//! switches flood unknown destinations, and a loop would be a
//! broadcast storm, exactly why real deployments run spanning tree.
//!
//! Determinism: everything (client op mixes, ISNs, link impairment
//! draws) derives from [`TopoSpec::seed`], so two builds of the same
//! spec replay byte-identically — including the merged telemetry
//! snapshot — regardless of engine parallelism or CPU backend.

use crate::client::{Client, ClientConfig, RequestProto, KICK};
use crate::dns::DnsClient;
use crate::mc::McClient;
use crate::tcp::TcpClient;
use emu_core::{Backend, Engine, EngineResult, Service, Target};
use emu_telemetry::Histogram;
use emu_traffic::ClientCheck;
use emu_types::{Ipv4, MacAddr};
use netsim::{Impairments, NetSim, NodeId};

/// The memcached server's address at its leaf slot.
pub const MC_SERVER_MAC: u64 = 0x02_00_00_00_a0_01;
/// The DNS server's address.
pub const DNS_SERVER_MAC: u64 = 0x02_00_00_00_a0_02;
/// The TCP-ping server's address.
pub const TCP_SERVER_MAC: u64 = 0x02_00_00_00_a0_03;

/// Everything a generated fat-tree derives from.
#[derive(Debug, Clone, Copy)]
pub struct TopoSpec {
    /// Master seed for clients and impairments.
    pub seed: u64,
    /// Aggregation switches under the core (1..=4).
    pub aggs: usize,
    /// Edge switches under each aggregation switch (1..=3).
    pub edges_per_agg: usize,
    /// Shards per engine (switches and services alike).
    pub shards: usize,
    /// Run engine shards on worker threads.
    pub parallel: bool,
    /// CPU backend for every engine.
    pub backend: Backend,
    /// Propagation delay of every link.
    pub link_delay_ns: f64,
    /// Serialization rate of every link.
    pub link_gbps: f64,
    /// Impairments applied to **every** link (each link gets its own
    /// derived RNG seed); `None` for a clean fabric.
    pub impair: Option<Impairments>,
    /// Service model time per cycle (the sustained bench's 5 ns/cycle
    /// convention); 0.0 for instantaneous services.
    pub ns_per_cycle: f64,
    /// Closed-loop pacing/reliability knobs shared by every client.
    pub client: ClientConfig,
    /// Names in the DNS zone (clients also query this many absent
    /// names, expecting NXDOMAIN).
    pub zone_names: usize,
    /// Private keys per memcached client.
    pub mc_keys: usize,
}

impl Default for TopoSpec {
    fn default() -> Self {
        TopoSpec {
            seed: 7,
            aggs: 2,
            edges_per_agg: 2,
            shards: 2,
            parallel: true,
            backend: Backend::default(),
            link_delay_ns: 1_000.0,
            link_gbps: 10.0,
            impair: None,
            ns_per_cycle: netfpga_sim::timing::NS_PER_CYCLE,
            client: ClientConfig::default(),
            zone_names: 6,
            mc_keys: 6,
        }
    }
}

/// Which protocol a generated client speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientKind {
    /// TCP handshake prober.
    Tcp,
    /// Memcached GET/SET/DELETE client.
    Mc,
    /// DNS resolver client.
    Dns,
}

/// A built fat-tree: the simulator plus a map of who is where.
pub struct Topo {
    /// The wired simulator (run it with [`netsim::NetSim::run_until`]).
    pub net: NetSim,
    /// Every switch node, core first.
    pub switches: Vec<NodeId>,
    /// The three service nodes: `(node, label)`.
    pub services: Vec<(NodeId, &'static str)>,
    /// Every client node and its protocol.
    pub clients: Vec<(NodeId, ClientKind)>,
    spec: TopoSpec,
}

/// Merged client-side accounting over a whole topology run.
#[derive(Debug, Default)]
pub struct TopoSummary {
    /// Requests issued across all clients.
    pub issued: u64,
    /// Retransmissions across all clients.
    pub retransmits: u64,
    /// Verified completions.
    pub completed: u64,
    /// Wrong responses (checker violations).
    pub mismatches: u64,
    /// Retry budgets exhausted.
    pub timeouts: u64,
    /// Duplicate / late responses suppressed.
    pub duplicates: u64,
    /// Flood copies ignored.
    pub ignored: u64,
    /// Response bytes of completions.
    pub response_bytes: u64,
    /// First request issue time across clients.
    pub first_issue_ns: f64,
    /// Last resolution time across clients.
    pub last_resolve_ns: f64,
    /// Merged clean-sample RTT distribution.
    pub rtt: Histogram,
}

impl TopoSummary {
    /// Completed requests per simulated second.
    pub fn goodput_rps(&self) -> f64 {
        let span = self.last_resolve_ns - self.first_issue_ns;
        if span.is_finite() && span > 0.0 {
            self.completed as f64 * 1e9 / span
        } else {
            0.0
        }
    }
}

fn build_engine(svc: &Service, spec: &TopoSpec) -> EngineResult<Engine> {
    svc.engine(Target::Cpu)
        .shards(spec.shards)
        .parallel(spec.parallel)
        .backend(spec.backend)
        .telemetry(true)
        .build()
}

/// A zone of `n` names `h{i}.emu.test` → `10.1.0.{i+1}`.
pub fn zone(n: usize) -> Vec<(String, Ipv4)> {
    (0..n)
        .map(|i| (format!("h{i}.emu.test"), Ipv4::new(10, 1, 0, (i + 1) as u8)))
        .collect()
}

/// Builds the fat-tree described by `spec`.
///
/// # Panics
///
/// Panics on out-of-range tree dimensions, or when reorder jitter is
/// not well below the clients' retransmission timeout (a timed-out
/// write overtaking a later request would invalidate the memcached
/// shadow model — see `crate::mc`).
pub fn fat_tree(spec: TopoSpec) -> EngineResult<Topo> {
    assert!((1..=4).contains(&spec.aggs), "1..=4 aggregation switches");
    assert!(
        (1..=3).contains(&spec.edges_per_agg),
        "1..=3 edge switches per aggregation"
    );
    if let Some(imp) = spec.impair {
        assert!(
            imp.jitter_ns <= spec.client.rto_ns / 10.0,
            "reorder jitter ({} ns) must stay well below the client RTO \
             ({} ns) for the shadow-store model to hold",
            imp.jitter_ns,
            spec.client.rto_ns
        );
    }

    let mut net = NetSim::new();
    net.set_ns_per_cycle(spec.ns_per_cycle);
    let mut switches = Vec::new();
    let mut link_idx = 0u64;

    let impaired_link =
        |net: &mut NetSim, a: NodeId, pa: usize, b: NodeId, pb: usize, idx: &mut u64| {
            let l = net.link(a, pa, b, pb, spec.link_delay_ns, spec.link_gbps);
            if let Some(imp) = spec.impair {
                let per_link = Impairments {
                    seed: imp
                        .seed
                        .wrapping_add((*idx + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    ..imp
                };
                net.impair(l, per_link);
            }
            *idx += 1;
        };

    // The switching fabric: core → aggs → edges (all 4-port switches;
    // the learning switch's broadcast mask is the low four ports).
    let switch_svc = emu_services::switch_ip_cam();
    let core = net.add_service("core", build_engine(&switch_svc, &spec)?, 4);
    switches.push(core);
    let mut edges = Vec::new();
    for a in 0..spec.aggs {
        let agg = net.add_service(&format!("agg{a}"), build_engine(&switch_svc, &spec)?, 4);
        switches.push(agg);
        impaired_link(&mut net, core, a, agg, 0, &mut link_idx);
        for e in 0..spec.edges_per_agg {
            let edge = net.add_service(
                &format!("edge{a}_{e}"),
                build_engine(&switch_svc, &spec)?,
                4,
            );
            switches.push(edge);
            impaired_link(&mut net, agg, 1 + e, edge, 0, &mut link_idx);
            edges.push(edge);
        }
    }

    // Leaf slots, port-major so the first three land on distinct edge
    // switches whenever the tree has three or more of them.
    let mut slots = Vec::new();
    for port in 1..4usize {
        for &edge in &edges {
            slots.push((edge, port));
        }
    }
    assert!(
        slots.len() >= 4,
        "tree too small: 3 service slots + at least 1 client required"
    );

    // Services on the first three slots.
    let dns_zone = zone(spec.zone_names);
    let mc_node = net.add_service(
        "mc_server",
        build_engine(&emu_services::memcached(), &spec)?,
        1,
    );
    let dns_node = net.add_service(
        "dns_server",
        build_engine(&emu_services::dns_server(dns_zone.clone()), &spec)?,
        1,
    );
    let tcp_node = net.add_service(
        "tcp_server",
        build_engine(&emu_services::tcp_ping(), &spec)?,
        1,
    );
    let services = vec![
        (mc_node, "memcached"),
        (dns_node, "dns"),
        (tcp_node, "tcp_ping"),
    ];
    for (i, &(node, _)) in services.iter().enumerate() {
        let (edge, port) = slots[i];
        impaired_link(&mut net, edge, port, node, 0, &mut link_idx);
    }

    // Clients on every remaining slot, cycling protocols.
    let mut query_names: Vec<(String, Option<Ipv4>)> = dns_zone
        .iter()
        .map(|(n, a)| (n.clone(), Some(*a)))
        .collect();
    for i in 0..spec.zone_names {
        query_names.push((format!("x{i}.emu.test"), None));
    }
    let mut clients = Vec::new();
    for (i, &(edge, port)) in slots[3..].iter().enumerate() {
        let kind = match i % 3 {
            0 => ClientKind::Mc,
            1 => ClientKind::Dns,
            _ => ClientKind::Tcp,
        };
        let name = format!("client{i}");
        let mac = MacAddr::from_u64(0x02_00_00_00_c0_00 + i as u64);
        let ip = Ipv4::new(10, 0, 1 + (i >> 8) as u8, i as u8);
        let sport = 20_000 + 17 * i as u16;
        let seed = spec
            .seed
            .wrapping_add((i as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f));
        let node = match kind {
            ClientKind::Mc => net.add_agent(
                &name,
                Box::new(McClient::new(
                    &name,
                    mac,
                    ip,
                    sport,
                    MacAddr::from_u64(MC_SERVER_MAC),
                    Ipv4::new(10, 9, 0, 1),
                    &format!("c{i}k"),
                    spec.mc_keys,
                    seed,
                    spec.client,
                )),
                1,
            ),
            ClientKind::Dns => net.add_agent(
                &name,
                Box::new(DnsClient::new(
                    &name,
                    mac,
                    ip,
                    sport,
                    MacAddr::from_u64(DNS_SERVER_MAC),
                    Ipv4::new(10, 9, 0, 2),
                    query_names.clone(),
                    seed,
                    spec.client,
                )),
                1,
            ),
            ClientKind::Tcp => net.add_agent(
                &name,
                Box::new(TcpClient::new(
                    &name,
                    mac,
                    ip,
                    sport,
                    MacAddr::from_u64(TCP_SERVER_MAC),
                    Ipv4::new(10, 9, 0, 3),
                    7, // the echo port the paper's prober targets
                    seed,
                    spec.client,
                )),
                1,
            ),
        };
        impaired_link(&mut net, edge, port, node, 0, &mut link_idx);
        clients.push((node, kind));
    }

    Ok(Topo {
        net,
        switches,
        services,
        clients,
        spec,
    })
}

impl Topo {
    /// Total engines in the fabric (switches + services).
    pub fn engines(&self) -> usize {
        self.switches.len() + self.services.len()
    }

    /// Arms every client's first kick, staggered a few ns apart so the
    /// fabric does not see a synchronized burst at t=0.
    pub fn start(&mut self) {
        for (i, &(node, _)) in self.clients.iter().enumerate() {
            self.net.arm_timer(node, i as f64 * 97.0, KICK);
        }
    }

    /// Runs until every event (including retransmission tails) drains.
    pub fn run(&mut self) -> kiwi_ir::IrResult<u64> {
        self.net.run_until(f64::MAX)
    }

    /// A physical lower bound on any measured RTT: the shortest path is
    /// client ↔ edge ↔ server, two links each way.
    pub fn rtt_floor_ns(&self) -> u64 {
        (4.0 * self.spec.link_delay_ns) as u64
    }

    /// Drains every client's outcomes into `check` and merges their
    /// stats into one summary.
    pub fn harvest(&mut self, check: &mut ClientCheck) -> TopoSummary {
        let mut sum = TopoSummary {
            first_issue_ns: f64::INFINITY,
            last_resolve_ns: f64::NEG_INFINITY,
            ..TopoSummary::default()
        };
        for &(node, kind) in &self.clients.clone() {
            match kind {
                ClientKind::Mc => {
                    harvest_one::<crate::mc::McProto>(&mut self.net, node, check, &mut sum)
                }
                ClientKind::Dns => {
                    harvest_one::<crate::dns::DnsProto>(&mut self.net, node, check, &mut sum)
                }
                ClientKind::Tcp => {
                    harvest_one::<crate::tcp::TcpProto>(&mut self.net, node, check, &mut sum)
                }
            }
        }
        sum
    }
}

fn harvest_one<P: RequestProto>(
    net: &mut NetSim,
    node: NodeId,
    check: &mut ClientCheck,
    sum: &mut TopoSummary,
) {
    let client: &mut Client<P> = net
        .agent_as::<Client<P>>(node)
        .expect("client kind matches the node");
    for o in client.take_outcomes() {
        check.observe(&o);
    }
    let s = client.stats();
    sum.issued += s.issued;
    sum.retransmits += s.retransmits;
    sum.completed += s.completed;
    sum.mismatches += s.mismatches;
    sum.timeouts += s.timeouts;
    sum.duplicates += s.duplicates;
    sum.ignored += s.ignored;
    sum.response_bytes += s.response_bytes;
    if s.first_issue_ns.is_finite() {
        sum.first_issue_ns = sum.first_issue_ns.min(s.first_issue_ns);
    }
    if s.last_resolve_ns.is_finite() {
        sum.last_resolve_ns = sum.last_resolve_ns.max(s.last_resolve_ns);
    }
    sum.rtt.merge(&s.rtt);
}
