//! # `emu-hosts` — closed-loop endpoint agents for NetSim
//!
//! Everything the engines processed before this crate was pushed
//! open-loop: a harness generated frames, streamed them in, and
//! counted what came out. Loss, reordering, and latency could change
//! *counters* but never *behavior*. The emulation literature (EmuFog;
//! Lochin et al., *When Should I Use Network Emulation?*) is blunt
//! about what that misses: temporal behavior — timeouts, retries,
//! round-trip times — is the half of fidelity that separates a demo
//! from a testbed.
//!
//! This crate supplies the missing endpoints as [`netsim::HostAgent`]s
//! that live *inside* the event loop:
//!
//! * [`TcpClient`] — the paper's §4.2 TCP-ping prober as a real state
//!   machine: SYN, retransmission timeout, exponential backoff,
//!   SYN-ACK verification; [`Reassembly`] adds in-order byte-stream
//!   assembly for data-bearing peers.
//! * [`McClient`] — a memcached client driving GET/SET/DELETE mixes
//!   against the §4.3 service, verifying every response against a
//!   shadow store that models timed-out-write uncertainty.
//! * [`DnsClient`] — a resolver client verifying A records and
//!   NXDOMAINs against the configured zone.
//! * [`Responder`] — the external peer that bounces NAT return traffic
//!   natively instead of the harness synthesizing it.
//! * [`topo`] — seeded fat-tree generation: dozens of sharded engines
//!   and impaired links from one [`topo::TopoSpec`], with merged
//!   client-side accounting ([`topo::TopoSummary`]).
//!
//! All three clients share one driver ([`Client`] over a
//! [`RequestProto`]): window-1 closed loop, per-request timers, bounded
//! retries, duplicate suppression, Karn-rule RTT sampling into
//! `emu-telemetry` histograms, and per-request
//! [`emu_traffic::ClientOutcome`] records for the
//! [`emu_traffic::ClientCheck`] invariant checker. Every quantity is
//! simulation-time, so a seed replays byte-identically.

pub mod client;
pub mod dns;
pub mod mc;
pub mod responder;
pub mod stats;
pub mod tcp;
pub mod topo;

pub use client::{Client, ClientConfig, RequestProto, KICK};
pub use dns::DnsClient;
pub use mc::McClient;
pub use responder::Responder;
pub use stats::ClientStats;
pub use tcp::{Reassembly, TcpClient};
pub use topo::{fat_tree, ClientKind, Topo, TopoSpec, TopoSummary};
