//! Closed-loop DNS client (§4.2's resolver, driven from the outside).
//!
//! Queries a seeded, weighted mix of names against the
//! `emu_services::dns_server` zone and verifies each answer end to end:
//! names the zone holds must come back `NOERROR` with exactly the
//! configured A record; names it does not must come back `NXDOMAIN`
//! with no answers. The transaction id carries the request serial, so
//! responses match requests even when link impairments duplicate or
//! reorder them.

use crate::client::{Classify, Client, ClientConfig, RequestProto, Sent};
use emu_types::proto::{ether_type, ip_proto, offset, port};
use emu_types::{bitutil, Frame, Ipv4, MacAddr};
use hoststack::dns_wire;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The protocol half of the DNS client; use [`DnsClient`].
pub struct DnsProto {
    mac: MacAddr,
    ip: Ipv4,
    sport: u16,
    server_mac: MacAddr,
    server_ip: Ipv4,
    /// `(name, expected)` — `Some(addr)` for zone names, `None` for
    /// names that must resolve to NXDOMAIN.
    names: Vec<(String, Option<Ipv4>)>,
    rng: StdRng,
    pending: Option<usize>,
}

/// A closed-loop DNS client agent.
pub type DnsClient = Client<DnsProto>;

impl DnsClient {
    /// Builds a DNS client querying `names` uniformly at random
    /// (seeded). `expected = None` marks a name the server's zone must
    /// *not* hold.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        mac: MacAddr,
        ip: Ipv4,
        sport: u16,
        server_mac: MacAddr,
        server_ip: Ipv4,
        names: Vec<(String, Option<Ipv4>)>,
        seed: u64,
        cfg: ClientConfig,
    ) -> Self {
        assert!(!names.is_empty(), "need at least one name to query");
        Client::from_proto(
            name,
            DnsProto {
                mac,
                ip,
                sport,
                server_mac,
                server_ip,
                names,
                rng: StdRng::seed_from_u64(seed ^ 0xd45_0123),
                pending: None,
            },
            cfg,
        )
    }
}

impl RequestProto for DnsProto {
    fn proto(&self) -> &'static str {
        "dns"
    }

    fn build(&mut self, serial: u64) -> Frame {
        let idx = self.rng.gen_range(0..self.names.len());
        self.pending = Some(idx);
        let qname = dns_wire(&self.names[idx].0);
        let mut dns = Vec::with_capacity(12 + qname.len() + 4);
        dns.extend_from_slice(&((serial & 0xffff) as u16).to_be_bytes());
        dns.extend_from_slice(&[0x01, 0x00]); // RD
        dns.extend_from_slice(&[0, 1, 0, 0, 0, 0, 0, 0]); // QDCOUNT=1
        dns.extend_from_slice(&qname);
        dns.extend_from_slice(&[0, 1, 0, 1]); // QTYPE A, QCLASS IN
        emu_traffic::build::udp_frame(
            self.mac,
            self.server_mac,
            self.ip,
            self.sport,
            self.server_ip,
            port::DNS,
            &dns,
            0,
        )
    }

    fn classify(&mut self, frame: &Frame, outstanding: Option<&Sent>) -> Classify {
        let b = frame.bytes();
        if frame.dst_mac() != self.mac
            || frame.ethertype() != ether_type::IPV4
            || b.len() < offset::L4 + 8 + 12
            || b[offset::IPV4_PROTO] != ip_proto::UDP
            || bitutil::get16(b, offset::L4) != port::DNS
            || bitutil::get16(b, offset::L4 + 2) != self.sport
        {
            return Classify::NotMine;
        }
        let dns = offset::L4 + 8;
        let id = bitutil::get16(b, dns);
        let Some(sent) = outstanding else {
            return Classify::Stale;
        };
        if id != (sent.serial & 0xffff) as u16 {
            return Classify::Stale;
        }
        let idx = self.pending.take().expect("outstanding implies pending");
        let (name, expected) = &self.names[idx];
        let flags = bitutil::get16(b, dns + 2);
        let rcode = flags & 0x000f;
        let ancount = bitutil::get16(b, dns + 6);
        if flags & 0x8000 == 0 {
            return Classify::Response {
                verified: false,
                note: Some(format!("{name}: QR bit clear in response")),
            };
        }
        let (verified, note) = match expected {
            Some(addr) => {
                // Answer: pointer to the question name, type A, class
                // IN, TTL, RDLENGTH 4, then the address.
                let ans = dns + 12 + dns_wire(name).len() + 4;
                if rcode != 0 || ancount != 1 {
                    (
                        false,
                        Some(format!(
                            "{name}: expected NOERROR with 1 answer, got rcode {rcode} / {ancount} answers"
                        )),
                    )
                } else if b.len() < ans + 16 || b[ans..ans + 2] != [0xc0, 0x0c] {
                    (false, Some(format!("{name}: malformed answer section")))
                } else if b[ans + 12..ans + 16] != addr.octets() {
                    (
                        false,
                        Some(format!(
                            "{name}: answered {}.{}.{}.{}, zone holds {addr}",
                            b[ans + 12],
                            b[ans + 13],
                            b[ans + 14],
                            b[ans + 15]
                        )),
                    )
                } else {
                    (true, None)
                }
            }
            None => {
                if rcode == 3 && ancount == 0 {
                    (true, None)
                } else {
                    (
                        false,
                        Some(format!(
                            "{name}: expected NXDOMAIN, got rcode {rcode} / {ancount} answers"
                        )),
                    )
                }
            }
        };
        Classify::Response { verified, note }
    }
}
