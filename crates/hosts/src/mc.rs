//! Closed-loop memcached client (ASCII-over-UDP, §4.3's workload).
//!
//! Drives the `emu_services::memcached` engine with a seeded GET / SET /
//! DELETE mix over a **private keyspace** and verifies every response
//! against a shadow store. Privacy matters twice over: it keeps the
//! shadow exact (no other client mutates our keys), and it keeps shard
//! affinity trivial — the client uses one UDP 5-tuple for its whole
//! run, so under RSS dispatch all of its requests land on the same
//! shard's store, the same key↔flow lockstep `MemcachedZipf` maintains.
//!
//! ## Timed-out writes and uncertainty
//!
//! A SET or DELETE that times out *may still have applied* — the
//! request could have reached the server with only the reply lost. The
//! shadow therefore tracks a **candidate set** per key (at most: the
//! old value and the timed-out write's result); the next verified
//! response for the key collapses it.
//!
//! DELETE gets a broader courtesy: under at-least-once delivery the
//! server may see the same DELETE twice — a retransmission whose first
//! copy's reply was lost, or a link-level *duplicate* of the request —
//! and then answers `DELETED` once and `NOT_FOUND` once. Jitter can
//! deliver either answer first, so both are legitimate on any attempt;
//! either way the key is certainly absent afterwards and the candidates
//! collapse. (SETs are idempotent and always answer `STORED`, GETs
//! duplicate into identical replies, so neither needs this.)
//!
//! This model is sound only while a timed-out request cannot *overtake*
//! a later one inside the network. Reorder jitter must therefore stay
//! well below the retransmission timeout — [`crate::topo`] asserts it.

use crate::client::{Classify, Client, ClientConfig, RequestProto, Sent};
use emu_services::memcached::reply_text;
use emu_types::proto::{ether_type, ip_proto, offset, port};
use emu_types::{bitutil, Frame, Ipv4, MacAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bytes in every stored value (the service's fixed `VALUE_BYTES`).
pub const VALUE_LEN: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Get,
    Set([u8; VALUE_LEN]),
    Del,
}

struct PendingOp {
    key: usize,
    op: Op,
}

/// The protocol half of the memcached client; use [`McClient`].
pub struct McProto {
    mac: MacAddr,
    ip: Ipv4,
    sport: u16,
    server_mac: MacAddr,
    server_ip: Ipv4,
    keys: Vec<String>,
    /// Per-key candidate sets: `None` = absent. One candidate when the
    /// key's state is certain.
    shadow: Vec<Vec<Option<[u8; VALUE_LEN]>>>,
    rng: StdRng,
    pending: Option<PendingOp>,
}

/// A closed-loop memcached client agent.
pub type McClient = Client<McProto>;

impl McProto {
    fn value_for(serial: u64) -> [u8; VALUE_LEN] {
        let s = format!("v{:07}", serial % 10_000_000);
        s.as_bytes().try_into().expect("v + 7 digits is 8 bytes")
    }
}

impl McClient {
    /// Builds a memcached client with `n_keys` private keys named
    /// `{prefix}{i}` (prefix + index must fit the service's 8-byte key
    /// cap). The `(ip, sport)` pair is the client's single flow — keep
    /// it unique per client so RSS shard affinity holds.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        mac: MacAddr,
        ip: Ipv4,
        sport: u16,
        server_mac: MacAddr,
        server_ip: Ipv4,
        key_prefix: &str,
        n_keys: usize,
        seed: u64,
        cfg: ClientConfig,
    ) -> Self {
        assert!(n_keys > 0, "need at least one key");
        let keys: Vec<String> = (0..n_keys).map(|i| format!("{key_prefix}{i}")).collect();
        for k in &keys {
            assert!(
                k.len() <= 8,
                "key {k:?} exceeds the service's 8-byte key cap"
            );
        }
        let shadow = vec![vec![None]; n_keys];
        Client::from_proto(
            name,
            McProto {
                mac,
                ip,
                sport,
                server_mac,
                server_ip,
                keys,
                shadow,
                rng: StdRng::seed_from_u64(seed ^ 0x6d63_c11e),
                pending: None,
            },
            cfg,
        )
    }
}

impl RequestProto for McProto {
    fn proto(&self) -> &'static str {
        "memcached"
    }

    fn build(&mut self, serial: u64) -> Frame {
        let key = self.rng.gen_range(0..self.keys.len());
        let roll = self.rng.gen_range(0u32..10);
        let op = match roll {
            0..=3 => Op::Set(Self::value_for(serial)),
            4..=7 => Op::Get,
            _ => Op::Del,
        };
        let body = match op {
            Op::Set(v) => format!(
                "set {} 0 0 8\r\n{}\r\n",
                self.keys[key],
                std::str::from_utf8(&v).expect("ascii value")
            ),
            Op::Get => format!("get {}\r\n", self.keys[key]),
            Op::Del => format!("delete {}\r\n", self.keys[key]),
        };
        // 8-byte memcached-UDP header: request id, seq 0, count 1.
        let mut payload = Vec::with_capacity(8 + body.len());
        payload.extend_from_slice(&((serial & 0xffff) as u16).to_be_bytes());
        payload.extend_from_slice(&[0, 0, 0, 1, 0, 0]);
        payload.extend_from_slice(body.as_bytes());
        let f = emu_traffic::build::udp_frame(
            self.mac,
            self.server_mac,
            self.ip,
            self.sport,
            self.server_ip,
            port::MEMCACHED,
            &payload,
            0,
        );
        self.pending = Some(PendingOp { key, op });
        f
    }

    fn classify(&mut self, frame: &Frame, outstanding: Option<&Sent>) -> Classify {
        let b = frame.bytes();
        if frame.dst_mac() != self.mac
            || frame.ethertype() != ether_type::IPV4
            || b.len() < offset::L4 + 8 + 8
            || b[offset::IPV4_PROTO] != ip_proto::UDP
            || bitutil::get16(b, offset::L4) != port::MEMCACHED
            || bitutil::get16(b, offset::L4 + 2) != self.sport
        {
            return Classify::NotMine;
        }
        let req_id = bitutil::get16(b, offset::L4 + 8);
        let Some(sent) = outstanding else {
            return Classify::Stale;
        };
        if req_id != (sent.serial & 0xffff) as u16 {
            return Classify::Stale;
        }
        let p = self.pending.take().expect("outstanding implies pending");
        let text = reply_text(frame);
        let cand = &mut self.shadow[p.key];
        let retried = sent.retries > 0;
        let (verified, note, collapse) = match p.op {
            Op::Set(v) => {
                if text == b"STORED\r\n" {
                    (true, None, Some(Some(v)))
                } else {
                    (
                        false,
                        Some(format!("set answered {:?}", ascii(&text))),
                        None,
                    )
                }
            }
            Op::Get => {
                if text == b"END\r\n" {
                    if cand.contains(&None) {
                        (true, None, Some(None))
                    } else {
                        (
                            false,
                            Some(format!(
                                "get missed a key the shadow holds ({})",
                                self.keys[p.key]
                            )),
                            None,
                        )
                    }
                } else {
                    let expect_prefix = format!("VALUE {} 0 8\r\n", self.keys[p.key]);
                    let pl = expect_prefix.len();
                    if text.len() == pl + VALUE_LEN + 2 + 5
                        && text.starts_with(expect_prefix.as_bytes())
                        && text.ends_with(b"\r\nEND\r\n")
                    {
                        let v: [u8; VALUE_LEN] =
                            text[pl..pl + VALUE_LEN].try_into().expect("sized above");
                        if cand.contains(&Some(v)) {
                            (true, None, Some(Some(v)))
                        } else {
                            (
                                false,
                                Some(format!(
                                    "get returned {:?}, not among the shadow candidates",
                                    ascii(&v)
                                )),
                                None,
                            )
                        }
                    } else {
                        (
                            false,
                            Some(format!("malformed get reply {:?}", ascii(&text))),
                            None,
                        )
                    }
                }
            }
            Op::Del => {
                let was_present = cand.iter().any(Option::is_some);
                if text == b"DELETED\r\n" {
                    if was_present || retried {
                        (true, None, Some(None))
                    } else {
                        // A certainly-absent key answering DELETED means
                        // the server held state we never wrote.
                        (
                            false,
                            Some("delete hit a key the shadow says is absent".into()),
                            None,
                        )
                    }
                } else if text == b"NOT_FOUND\r\n" {
                    // Legitimate even when the shadow says present: a
                    // duplicated or retransmitted DELETE already removed
                    // the key, and its two answers may arrive in either
                    // order (see the module docs).
                    (true, None, Some(None))
                } else {
                    (
                        false,
                        Some(format!("delete answered {:?}", ascii(&text))),
                        None,
                    )
                }
            }
        };
        if let Some(state) = collapse {
            *cand = vec![state];
        }
        Classify::Response { verified, note }
    }

    fn on_timeout(&mut self, _serial: u64) {
        let p = self.pending.take().expect("timeout implies pending");
        let cand = &mut self.shadow[p.key];
        // The write may or may not have applied: widen the candidates.
        match p.op {
            Op::Get => {}
            Op::Set(v) => {
                if !cand.contains(&Some(v)) {
                    cand.push(Some(v));
                }
            }
            Op::Del => {
                if !cand.contains(&None) {
                    cand.push(None);
                }
            }
        }
    }
}

fn ascii(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}
