//! Client-side end-to-end accounting.
//!
//! Engine telemetry (PR 6) observes a service from the inside; these
//! counters observe the *network* from the outside, at the only place
//! that matters to a user: the client. Everything here is in simulation
//! time, so two runs with the same seed produce byte-identical
//! snapshots — the determinism contract [`netsim::NetSim::telemetry`]
//! extends to agents.

use emu_telemetry::{Histogram, Json};
use emu_traffic::ClientOutcome;

/// What one closed-loop client measured over its run.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Requests issued (first transmissions, not counting retries).
    pub issued: u64,
    /// Retransmissions across all requests.
    pub retransmits: u64,
    /// Requests resolved with a verified response.
    pub completed: u64,
    /// Requests resolved with a *wrong* response (always a checker
    /// violation downstream).
    pub mismatches: u64,
    /// Requests that exhausted their retry budget.
    pub timeouts: u64,
    /// Responses suppressed as duplicates or late arrivals — the frame
    /// was addressed to us and well-formed, but its id matched no
    /// outstanding request (link duplication, or a response outrunning
    /// its own timeout).
    pub duplicates: u64,
    /// Frames ignored because they were not addressed to this client
    /// (flood copies from learning switches, chiefly).
    pub ignored: u64,
    /// Response bytes of completed requests — the numerator of goodput.
    pub response_bytes: u64,
    /// Simulation time of the first request issue (`NAN` before).
    pub first_issue_ns: f64,
    /// Simulation time of the last request resolution (`NAN` before).
    pub last_resolve_ns: f64,
    /// RTTs of completions that needed no retransmission (Karn's rule).
    pub rtt: Histogram,
    /// Per-request outcome records for [`emu_traffic::ClientCheck`].
    pub outcomes: Vec<ClientOutcome>,
}

impl ClientStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        ClientStats {
            first_issue_ns: f64::NAN,
            last_resolve_ns: f64::NAN,
            ..Self::default()
        }
    }

    /// Requests resolved either way.
    pub fn resolved(&self) -> u64 {
        self.completed + self.mismatches + self.timeouts
    }

    /// Completed requests per second of simulated time between the
    /// first issue and the last resolution, or 0.0 before any resolve.
    pub fn goodput_rps(&self) -> f64 {
        let span = self.last_resolve_ns - self.first_issue_ns;
        if span.is_finite() && span > 0.0 {
            self.completed as f64 * 1e9 / span
        } else {
            0.0
        }
    }

    /// Deterministic snapshot (simulation-time quantities only).
    pub fn to_json(&self) -> Json {
        let q = |p: f64| Json::Num(self.rtt.quantile(p).unwrap_or(0) as f64);
        Json::obj(vec![
            ("issued", Json::Num(self.issued as f64)),
            ("retransmits", Json::Num(self.retransmits as f64)),
            ("completed", Json::Num(self.completed as f64)),
            ("mismatches", Json::Num(self.mismatches as f64)),
            ("timeouts", Json::Num(self.timeouts as f64)),
            ("duplicates", Json::Num(self.duplicates as f64)),
            ("ignored", Json::Num(self.ignored as f64)),
            ("response_bytes", Json::Num(self.response_bytes as f64)),
            ("rtt_p50_ns", q(0.50)),
            ("rtt_p99_ns", q(0.99)),
            ("rtt_samples", Json::Num(self.rtt.count() as f64)),
        ])
    }
}
