//! Closed-loop TCP handshake client + in-order reassembly.
//!
//! The paper's TCP ping (§4.2) is "the first two steps of the three-way
//! connection setup handshake"; [`TcpClient`] is the prober's side of
//! it as a real state machine: send SYN, arm a retransmission timeout,
//! back off exponentially, verify the SYN-ACK acknowledges our ISN.
//! Each request serial is a fresh handshake on a fresh source port, so
//! the measured RTT distribution is the paper's Table 4 quantity
//! produced *closed-loop* instead of by an open-loop generator.
//!
//! [`Reassembly`] is the receive-side complement: an in-order byte
//! stream assembled from out-of-order, duplicated segments — enough
//! machinery to sit behind data-bearing peers like the
//! `emu_traffic::TcpConversations` dialogues. Data segments arriving
//! for the client's current connection are folded into its buffer.

use crate::client::{Classify, Client, ClientConfig, RequestProto, Sent};
use emu_traffic::build::{tcp_flags, tcp_frame};
use emu_types::proto::{ether_type, ip_proto, offset};
use emu_types::{bitutil, Frame, Ipv4, MacAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// In-order TCP payload reassembly: feed segments in any order, read a
/// contiguous byte stream. Duplicate and already-delivered bytes are
/// dropped; a bounded lookahead of out-of-order segments is buffered
/// until the gap fills.
#[derive(Debug, Default)]
pub struct Reassembly {
    next: u32,
    /// Out-of-order segments keyed by their offset past `next`.
    buffered: BTreeMap<u32, Vec<u8>>,
    /// The contiguous stream delivered so far.
    pub delivered: Vec<u8>,
    /// Segments that arrived ahead of the next expected byte.
    pub out_of_order: u64,
    /// Segments (or fragments) dropped as already delivered.
    pub duplicates: u64,
}

/// Lookahead window: segments more than this far past the next expected
/// byte are dropped rather than buffered.
const REASM_WINDOW: u32 = 1 << 20;

impl Reassembly {
    /// Starts a stream whose first payload byte carries sequence
    /// number `first_seq`.
    pub fn new(first_seq: u32) -> Self {
        Reassembly {
            next: first_seq,
            ..Self::default()
        }
    }

    /// Accepts one segment; returns how many bytes became contiguous.
    pub fn push(&mut self, seq: u32, payload: &[u8]) -> usize {
        if payload.is_empty() {
            return 0;
        }
        // Position relative to the next expected byte, mod 2^32.
        let rel = seq.wrapping_sub(self.next);
        if rel > REASM_WINDOW {
            // Entirely in the past (or absurdly far ahead): maybe a
            // head-overlap retransmission whose tail is still new.
            let behind = self.next.wrapping_sub(seq) as usize;
            if behind < payload.len() {
                return self.push(self.next, &payload[behind..]);
            }
            self.duplicates += 1;
            return 0;
        }
        if rel == 0 {
            let before = self.delivered.len();
            self.delivered.extend_from_slice(payload);
            self.next = self.next.wrapping_add(payload.len() as u32);
            // Drain any buffered successors the gap-fill unlocked.
            // Ring distance (not key order) picks the next candidate so
            // sequence wraparound cannot misorder the stream.
            while let Some(r_seq) = self
                .buffered
                .keys()
                .copied()
                .min_by_key(|k| k.wrapping_sub(self.next))
            {
                let rel = r_seq.wrapping_sub(self.next);
                if rel != 0 && rel <= REASM_WINDOW {
                    break; // still a gap ahead of us
                }
                let seg = self.buffered.remove(&r_seq).expect("key just seen");
                if rel == 0 {
                    self.delivered.extend_from_slice(&seg);
                    self.next = self.next.wrapping_add(seg.len() as u32);
                } else {
                    // Starts in the delivered past; keep any new tail.
                    let behind = self.next.wrapping_sub(r_seq) as usize;
                    if behind < seg.len() {
                        self.delivered.extend_from_slice(&seg[behind..]);
                        self.next = self.next.wrapping_add((seg.len() - behind) as u32);
                    } else {
                        self.duplicates += 1;
                    }
                }
            }
            self.delivered.len() - before
        } else {
            // Ahead of the stream: buffer (first copy wins).
            self.out_of_order += 1;
            match self.buffered.entry(seq) {
                Entry::Occupied(_) => self.duplicates += 1,
                Entry::Vacant(slot) => {
                    slot.insert(payload.to_vec());
                }
            }
            0
        }
    }

    /// The next expected sequence number.
    pub fn next_seq(&self) -> u32 {
        self.next
    }
}

struct PendingSyn {
    sport: u16,
    seq: u32,
}

/// The protocol half of the TCP handshake client; use [`TcpClient`].
pub struct TcpProto {
    mac: MacAddr,
    ip: Ipv4,
    server_mac: MacAddr,
    server_ip: Ipv4,
    dport: u16,
    sport_base: u16,
    rng: StdRng,
    pending: Option<PendingSyn>,
    /// Receive-side stream for data the peer sends after the
    /// handshake (keyed off the first data segment seen).
    pub reasm: Option<Reassembly>,
}

/// A closed-loop TCP handshake (SYN → SYN-ACK) client agent.
pub type TcpClient = Client<TcpProto>;

impl TcpClient {
    /// Builds a TCP handshake client probing `server_ip:dport`. Each
    /// request uses source port `sport_base + serial % 16384` and a
    /// seeded ISN.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        mac: MacAddr,
        ip: Ipv4,
        sport_base: u16,
        server_mac: MacAddr,
        server_ip: Ipv4,
        dport: u16,
        seed: u64,
        cfg: ClientConfig,
    ) -> Self {
        Client::from_proto(
            name,
            TcpProto {
                mac,
                ip,
                server_mac,
                server_ip,
                dport,
                sport_base,
                rng: StdRng::seed_from_u64(seed ^ 0x7c9_5a11),
                pending: None,
                reasm: None,
            },
            cfg,
        )
    }
}

impl RequestProto for TcpProto {
    fn proto(&self) -> &'static str {
        "tcp"
    }

    fn build(&mut self, serial: u64) -> Frame {
        let sport = self.sport_base.wrapping_add((serial % 16384) as u16);
        let seq: u32 = self.rng.gen_range(0..u32::MAX);
        self.pending = Some(PendingSyn { sport, seq });
        tcp_frame(
            self.mac,
            self.server_mac,
            self.ip,
            sport,
            self.server_ip,
            self.dport,
            seq,
            0,
            tcp_flags::SYN,
            &[],
            0,
        )
    }

    fn classify(&mut self, frame: &Frame, outstanding: Option<&Sent>) -> Classify {
        let b = frame.bytes();
        if frame.dst_mac() != self.mac
            || frame.ethertype() != ether_type::IPV4
            || b.len() < offset::L4 + 20
            || b[offset::IPV4_PROTO] != ip_proto::TCP
            || bitutil::get16(b, offset::L4) != self.dport
        {
            return Classify::NotMine;
        }
        let dst_port = bitutil::get16(b, offset::L4 + 2);
        let flags = b[offset::L4 + 13];
        // Data-bearing segment for an established stream: reassemble.
        let data_off = (b[offset::L4 + 12] >> 4) as usize * 4;
        let payload_start = offset::L4 + data_off;
        if flags & tcp_flags::SYN == 0 && b.len() > payload_start {
            let seq = bitutil::get32(b, offset::L4 + 4);
            let payload = &b[payload_start..];
            self.reasm
                .get_or_insert_with(|| Reassembly::new(seq))
                .push(seq, payload);
            return Classify::Stale;
        }
        if outstanding.is_none() {
            return Classify::Stale;
        }
        if dst_port
            != self
                .pending
                .as_ref()
                .expect("outstanding implies pending")
                .sport
        {
            return Classify::Stale; // SYN-ACK for an older handshake
        }
        let p = self.pending.take().expect("checked above");
        let ack = bitutil::get32(b, offset::L4 + 8);
        let (verified, note) = if flags != tcp_flags::SYN | tcp_flags::ACK {
            (
                false,
                Some(format!("expected SYN|ACK, got flags {flags:#04x}")),
            )
        } else if ack != p.seq.wrapping_add(1) {
            (
                false,
                Some(format!(
                    "SYN-ACK acks {ack:#010x}, our ISN+1 is {:#010x}",
                    p.seq.wrapping_add(1)
                )),
            )
        } else {
            (true, None)
        };
        Classify::Response { verified, note }
    }

    fn on_timeout(&mut self, _serial: u64) {
        self.pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reassembly_orders_shuffled_segments() {
        let stream: Vec<u8> = (0u8..200).collect();
        let mut segs = Vec::new();
        for (i, chunk) in stream.chunks(17).enumerate() {
            segs.push((1000 + (i * 17) as u32, chunk.to_vec()));
        }
        // Deterministic shuffle.
        let mut rng = StdRng::seed_from_u64(42);
        for i in (1..segs.len()).rev() {
            let j = rng.gen_range(0..(i as u64 + 1)) as usize;
            segs.swap(i, j);
        }
        let mut r = Reassembly::new(1000);
        for (seq, seg) in &segs {
            r.push(*seq, seg);
        }
        assert_eq!(r.delivered, stream);
        assert!(r.out_of_order > 0, "the shuffle must have reordered");
    }

    #[test]
    fn reassembly_drops_duplicates_and_trims_overlaps() {
        let mut r = Reassembly::new(0);
        assert_eq!(r.push(0, b"hello "), 6);
        assert_eq!(r.push(0, b"hello "), 0); // exact duplicate
        assert_eq!(r.duplicates, 1);
        // Overlapping retransmission: old head, new tail.
        assert_eq!(r.push(3, b"lo world"), 5);
        assert_eq!(r.delivered, b"hello world");
        assert_eq!(r.next_seq(), 11);
    }

    #[test]
    fn reassembly_survives_sequence_wraparound() {
        let mut r = Reassembly::new(u32::MAX - 1);
        // Arrives out of order across the wrap: [2..4) first, then the
        // head [MAX-1..2) which unlocks it.
        assert_eq!(r.push(0, b"cd"), 0);
        assert_eq!(r.push(u32::MAX - 1, b"ab"), 4);
        assert_eq!(r.delivered, b"abcd");
        assert_eq!(r.next_seq(), 2);
    }
}
