//! The external-side responder: a native peer for NAT return traffic.
//!
//! Before this crate, soak harnesses closed the NAT loop by hand —
//! drain the engine's translated outputs, synthesize peer answers with
//! `emu_traffic::build::reply_to`, push them back in. [`Responder`] is
//! that peer as a real endpoint: attach it across the NAT's external
//! port and every translated frame that reaches it is answered *inside*
//! the event loop (TCP SYNs get a SYN-ACK acknowledging the translated
//! sequence number, UDP datagrams get an echo), so inbound-translation
//! paths exercise themselves under impairments and timing like
//! everything else in the topology.

use emu_telemetry::Json;
use emu_traffic::build::reply_to;
use emu_types::proto::{ether_type, ip_proto, offset};
use emu_types::Frame;
use netsim::{AgentOutput, HostAgent};
use std::any::Any;

/// A host that answers everything routable sent at it.
#[derive(Debug, Default)]
pub struct Responder {
    /// Payload carried by UDP echoes.
    pub payload: Vec<u8>,
    /// Frames received.
    pub received: u64,
    /// Replies sent (IPv4 TCP/UDP frames only).
    pub replied: u64,
}

impl Responder {
    /// A responder echoing `payload` in UDP answers.
    pub fn new(payload: &[u8]) -> Self {
        Responder {
            payload: payload.to_vec(),
            ..Self::default()
        }
    }
}

impl HostAgent for Responder {
    fn on_frame(&mut self, _now: f64, port: usize, frame: &Frame) -> AgentOutput {
        self.received += 1;
        let b = frame.bytes();
        let answerable = frame.ethertype() == ether_type::IPV4
            && b.len() >= offset::L4 + 20
            && matches!(b[offset::IPV4_PROTO], ip_proto::TCP | ip_proto::UDP);
        if !answerable {
            return AgentOutput::none();
        }
        self.replied += 1;
        AgentOutput::none().send(port, reply_to(frame, &self.payload))
    }

    fn on_timer(&mut self, _now: f64, _token: u64) -> AgentOutput {
        AgentOutput::none()
    }

    fn telemetry(&self) -> Option<Json> {
        Some(Json::obj(vec![
            ("received", Json::Num(self.received as f64)),
            ("replied", Json::Num(self.replied as f64)),
        ]))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
