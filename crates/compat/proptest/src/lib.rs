//! Offline stand-in for the `proptest` crate.
//!
//! The container build has no network access to crates.io, so this crate
//! implements the subset of the proptest API the test suites use: the
//! `proptest!` macro with an optional `#![proptest_config(..)]` header,
//! `any::<T>()`, integer range strategies, `proptest::collection::vec`,
//! tuple strategies, and the `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! its case number, and the RNG is seeded deterministically from the test
//! path so failures reproduce exactly. Case count defaults to 64 and can
//! be overridden with the `PROPTEST_CASES` environment variable or
//! `ProptestConfig::with_cases`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Error carried out of a failing property body by `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG (xoshiro256**, seeded from the test path).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test's module path + name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, then splitmix64 to spread the state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut s = [0u64; 4];
        for slot in s.iter_mut() {
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform draw from `[0, span)` (`span > 0`).
    pub fn below(&mut self, span: u128) -> u128 {
        self.next_u128() % span
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($wide:ty; $($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Span/offset arithmetic in a 128-bit type of matching
                // signedness: negative starts must not overflow.
                let span = ((self.end as $wide).wrapping_sub(self.start as $wide)) as u128;
                ((self.start as $wide).wrapping_add(rng.below(span) as $wide)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span =
                    ((hi as $wide).wrapping_sub(lo as $wide) as u128).wrapping_add(1);
                if span == 0 {
                    // Full 128-bit domain: every draw is in range.
                    return rng.next_u128() as $t;
                }
                ((lo as $wide).wrapping_add(rng.below(span) as $wide)) as $t
            }
        }
    )*};
}
int_strategies!(u128; u8, u16, u32, u64, u128, usize);
int_strategies!(i128; i8, i16, i32, i64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types; built by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`](fn@vec): `min..=max`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s of another strategy's values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with element strategy `elem` and length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u128;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The names almost every property test wants.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the case number reported) rather than unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                lhs,
                rhs,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __proptest_rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __proptest_case in 0..config.cases {
                    $( let $pat = $crate::Strategy::sample(&($strat), &mut __proptest_rng); )+
                    #[allow(clippy::redundant_closure_call)]
                    let __proptest_outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __proptest_outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __proptest_case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(v in 10u64..20, w in 1u16..=3) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((1..=3).contains(&w));
        }

        #[test]
        fn vecs_respect_size(xs in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5, "len {}", xs.len());
        }

        #[test]
        fn tuples_sample_elementwise(t in (0u8..4, 100u64..200)) {
            prop_assert!(t.0 < 4);
            prop_assert_eq!(t.1 / 100, 1);
        }

        #[test]
        fn signed_ranges_with_negative_start(v in -5i32..5, w in -3i64..=3) {
            prop_assert!((-5..5).contains(&v));
            prop_assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn full_domain_inclusive_range_does_not_overflow() {
        let mut rng = crate::TestRng::for_test("full-domain");
        let _ = crate::Strategy::sample(&(0u128..=u128::MAX), &mut rng);
        let _ = crate::Strategy::sample(&(i64::MIN..i64::MAX), &mut rng);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_parses(x in any::<u32>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("a::b");
        let mut b = crate::TestRng::for_test("a::b");
        let mut c = crate::TestRng::for_test("a::c");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
