//! Offline stand-in for the `criterion` crate.
//!
//! The container build has no network access to crates.io, so this crate
//! provides the tiny API surface `benches/micro.rs` uses: `Criterion`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple time-boxed loop that
//! prints ns/iter — enough to track relative regressions, with none of
//! real criterion's statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark driver handed to the closure.
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly for a short, fixed time budget and records the
    /// mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..8 {
            black_box(f());
        }
        let budget = Duration::from_millis(30);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            for _ in 0..64 {
                black_box(f());
            }
            iters += 64;
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// No-op for CLI-argument compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark and prints its result.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        println!(
            "{id:<40} {:>12.1} ns/iter ({} iters)",
            b.ns_per_iter, b.iters
        );
        self
    }
}

/// Groups benchmark functions under one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u64;
        Criterion::default().bench_function("t", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }
}
