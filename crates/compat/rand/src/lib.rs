//! Offline stand-in for the `rand` crate.
//!
//! The container build has no network access to crates.io, so this crate
//! provides the (small) subset of the `rand` 0.8 API the workspace uses:
//! `Rng::{gen_range, gen_bool, fill}`, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng`. The generator is xoshiro256** seeded via splitmix64 —
//! deterministic across platforms, which the latency-model tests rely on.

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from `self`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Converts 53 random bits into a float uniform in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

macro_rules! int_range {
    ($wide:ty; $($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                // Span and offset arithmetic happen in a 128-bit type of
                // the operands' signedness, so signed ranges with
                // negative starts neither overflow nor wrap.
                let span = ((self.end as $wide).wrapping_sub(self.start as $wide)) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((self.start as $wide).wrapping_add(r as $wide)) as $t
            }
        }
    )*};
}
int_range!(u128; u8, u16, u32, u64, usize);
int_range!(i128; i8, i16, i32, i64);

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Samples uniformly from a range.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in s.iter_mut() {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!((hits as f64 / 100_000.0 - 0.9).abs() < 0.01);
    }

    #[test]
    fn fill_covers_every_byte() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn signed_ranges_with_negative_start() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_neg = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            saw_neg |= v < 0;
        }
        assert!(saw_neg, "negative half never sampled");
        // Extremes must not overflow the span arithmetic.
        let v = rng.gen_range(i64::MIN..i64::MAX);
        assert!(v < i64::MAX);
    }
}
