//! Property tests for the primitive types: `Bits` arithmetic is checked
//! against native `u128` arithmetic for widths ≤ 128, checksum updates are
//! checked against full recomputation, and codecs round-trip.

use emu_types::bits::Bits;
use emu_types::{bitutil, checksum};
use proptest::prelude::*;

fn mask(w: u16) -> u128 {
    if w == 128 {
        u128::MAX
    } else {
        (1u128 << w) - 1
    }
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u128>(), b in any::<u128>(), w in 1u16..=128) {
        let ba = Bits::from_u128(a, w);
        let bb = Bits::from_u128(b, w);
        let expect = (a & mask(w)).wrapping_add(b & mask(w)) & mask(w);
        prop_assert_eq!(ba.wrapping_add(&bb).to_u128(), expect);
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>(), w in 1u16..=128) {
        let ba = Bits::from_u128(a, w);
        let bb = Bits::from_u128(b, w);
        let expect = (a & mask(w)).wrapping_sub(b & mask(w)) & mask(w);
        prop_assert_eq!(ba.wrapping_sub(&bb).to_u128(), expect);
    }

    #[test]
    fn mul_matches_u128(a in any::<u128>(), b in any::<u128>(), w in 1u16..=128) {
        let ba = Bits::from_u128(a, w);
        let bb = Bits::from_u128(b, w);
        let expect = (a & mask(w)).wrapping_mul(b & mask(w)) & mask(w);
        prop_assert_eq!(ba.wrapping_mul(&bb).to_u128(), expect);
    }

    #[test]
    fn logic_matches_u128(a in any::<u128>(), b in any::<u128>(), w in 1u16..=128) {
        let ba = Bits::from_u128(a, w);
        let bb = Bits::from_u128(b, w);
        prop_assert_eq!(ba.and(&bb).to_u128(), a & b & mask(w));
        prop_assert_eq!(ba.or(&bb).to_u128(), (a | b) & mask(w));
        prop_assert_eq!(ba.xor(&bb).to_u128(), (a ^ b) & mask(w));
        prop_assert_eq!(ba.not().to_u128(), !a & mask(w));
    }

    #[test]
    fn shifts_match_u128(a in any::<u128>(), n in 0u32..200, w in 1u16..=128) {
        let ba = Bits::from_u128(a, w);
        let expect_shl = if n >= 128 { 0 } else { ((a & mask(w)) << n) & mask(w) };
        let expect_shr = if n >= 128 { 0 } else { (a & mask(w)) >> n };
        prop_assert_eq!(ba.shl(n).to_u128(), expect_shl);
        prop_assert_eq!(ba.shr(n).to_u128(), expect_shr);
    }

    #[test]
    fn cmp_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let ba = Bits::from_u128(a, 128);
        let bb = Bits::from_u128(b, 128);
        prop_assert_eq!(ba.cmp_u(&bb), a.cmp(&b));
    }

    #[test]
    fn be_bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 1..=64)) {
        let b = Bits::from_be_bytes(&bytes);
        prop_assert_eq!(b.to_be_bytes(), bytes);
    }

    #[test]
    fn slice_concat_inverse(a in any::<u128>(), split in 1u16..127) {
        let b = Bits::from_u128(a, 128);
        let hi = b.slice(127, split);
        let lo = b.slice(split - 1, 0);
        prop_assert_eq!(hi.concat(&lo), b);
    }

    #[test]
    fn bitutil_round_trip(off in 0usize..28, v in any::<u32>()) {
        let mut buf = [0u8; 32];
        bitutil::set32(&mut buf, off, v);
        prop_assert_eq!(bitutil::get32(&buf, off), v);
    }

    #[test]
    fn checksum_update_equals_recompute(
        mut data in proptest::collection::vec(any::<u8>(), 4..64),
        idx in 0usize..30,
        new_word in any::<u16>(),
    ) {
        // Force even length so word indices are stable.
        if data.len() % 2 == 1 { data.pop(); }
        let idx = (idx * 2) % data.len();
        let old_csum = checksum::internet_checksum(&data);
        let old_w = u16::from_be_bytes([data[idx], data[idx + 1]]);
        data[idx] = (new_word >> 8) as u8;
        data[idx + 1] = new_word as u8;
        let updated = checksum::update_word(old_csum, old_w, new_word);
        let recomputed = checksum::internet_checksum(&data);
        prop_assert_eq!(updated, recomputed);
    }

    #[test]
    fn checksum_verify_after_embedding(data in proptest::collection::vec(any::<u8>(), 2..64)) {
        // Append a checksum and verify the whole buffer folds to zero.
        let mut data = data;
        if data.len() % 2 == 1 { data.push(0); }
        let c = checksum::internet_checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        prop_assert!(checksum::verify(&data));
    }

    #[test]
    fn field_set_get(v in any::<u64>(), lo in 0u32..63, len in 1u32..16, x in any::<u64>()) {
        let hi = (lo + len - 1).min(63);
        let v2 = bitutil::set_field(v, hi, lo, x);
        let w = hi - lo + 1;
        let m = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        prop_assert_eq!(bitutil::field(v2, hi, lo), x & m);
    }
}
