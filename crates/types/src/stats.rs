//! Latency/throughput summary statistics.
//!
//! The paper reports average latency, 99th-percentile latency and
//! throughput for every service (Table 4), plus tail-to-average ratios and
//! median comparisons in §5.6. This module provides the one summary type
//! every harness uses, so that "99th percentile" means the same thing in
//! the RTL pipeline, the host-stack simulator, and the benches.

/// Summary of a sample set (latencies in nanoseconds by convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample set.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        Some(Summary {
            count,
            mean,
            min: sorted[0],
            p50: percentile_sorted(&sorted, 50.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: sorted[count - 1],
            stddev: var.sqrt(),
        })
    }

    /// Tail-to-average ratio (p99 / mean), the §5.6 predictability metric:
    /// 1.02–1.04 for Emu services vs 1.09–2.98 for host services.
    pub fn tail_to_average(&self) -> f64 {
        self.p99 / self.mean
    }
}

/// Percentile (nearest-rank) over a pre-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `0..=100`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_set() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn empty_yields_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.stddev, 0.0);
        assert!((s.tail_to_average() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_ratio_reflects_spread() {
        let tight: Vec<f64> = vec![100.0; 98].into_iter().chain([104.0, 104.0]).collect();
        let heavy: Vec<f64> = vec![100.0; 98]
            .into_iter()
            .chain([1000.0, 1000.0])
            .collect();
        let t = Summary::of(&tight).unwrap().tail_to_average();
        let h = Summary::of(&heavy).unwrap().tail_to_average();
        assert!(t < 1.05);
        assert!(h > 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile_sorted(&[], 50.0);
    }
}
