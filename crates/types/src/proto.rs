//! Protocol constants: EtherTypes, IP protocol numbers, well-known ports,
//! and header offset/length tables shared by all targets.
//!
//! These are the constants behind the paper's `EtherTypes.IPv4` style API
//! (Figure 2, line 2) and the fixed header layouts used by the protocol
//! wrappers (Figures 3 and 4).

/// EtherType values (Ethernet II framing).
pub mod ether_type {
    /// IPv4.
    pub const IPV4: u16 = 0x0800;
    /// ARP.
    pub const ARP: u16 = 0x0806;
    /// IPv6.
    pub const IPV6: u16 = 0x86dd;
    /// VLAN tag (802.1Q).
    pub const VLAN: u16 = 0x8100;
    /// Emu direction packets (§3.5): an otherwise-unused experimental
    /// EtherType carrying CASP controller commands and replies.
    pub const DIRECTION: u16 = 0x88b5;
}

/// IP protocol numbers.
pub mod ip_proto {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// TCP flag bits (low byte of the offset/flags word), used by the
/// tcp_ping service, the NAT tests, and the traffic generators.
pub mod tcp_flags {
    /// FIN.
    pub const FIN: u8 = 0x01;
    /// SYN.
    pub const SYN: u8 = 0x02;
    /// RST.
    pub const RST: u8 = 0x04;
    /// PSH.
    pub const PSH: u8 = 0x08;
    /// ACK.
    pub const ACK: u8 = 0x10;
}

/// Well-known UDP/TCP ports used by the paper's services.
pub mod port {
    /// DNS.
    pub const DNS: u16 = 53;
    /// Memcached (both ASCII and binary protocols).
    pub const MEMCACHED: u16 = 11211;
}

/// Fixed header offsets (bytes from start of frame) for untagged Ethernet II.
pub mod offset {
    /// Destination MAC.
    pub const ETH_DST: usize = 0;
    /// Source MAC.
    pub const ETH_SRC: usize = 6;
    /// EtherType.
    pub const ETH_TYPE: usize = 12;
    /// Start of the L3 payload.
    pub const L3: usize = 14;
    /// IPv4 header start (== L3 for untagged frames).
    pub const IPV4: usize = L3;
    /// IPv4 TTL.
    pub const IPV4_TTL: usize = IPV4 + 8;
    /// IPv4 protocol byte.
    pub const IPV4_PROTO: usize = IPV4 + 9;
    /// IPv4 header checksum.
    pub const IPV4_CSUM: usize = IPV4 + 10;
    /// IPv4 source address.
    pub const IPV4_SRC: usize = IPV4 + 12;
    /// IPv4 destination address.
    pub const IPV4_DST: usize = IPV4 + 16;
    /// Start of the L4 header assuming a 20-byte IPv4 header (IHL=5); the
    /// parsers recompute this from IHL for options-bearing packets.
    pub const L4: usize = IPV4 + 20;
}

/// Header lengths in bytes.
pub mod hdr_len {
    /// Ethernet II header.
    pub const ETH: usize = 14;
    /// Minimal IPv4 header (IHL = 5).
    pub const IPV4: usize = 20;
    /// UDP header.
    pub const UDP: usize = 8;
    /// TCP header without options.
    pub const TCP: usize = 20;
    /// ICMP echo header.
    pub const ICMP_ECHO: usize = 8;
    /// ARP payload for IPv4-over-Ethernet.
    pub const ARP: usize = 28;
}

/// Ethernet frame size limits.
pub mod frame {
    /// Minimum frame size (without FCS).
    pub const MIN: usize = 60;
    /// Minimum frame size on the wire (with FCS).
    pub const MIN_WIRE: usize = 64;
    /// Maximum standard frame (without FCS).
    pub const MAX: usize = 1514;
    /// Per-frame wire overhead beyond the frame bytes: preamble (7) +
    /// SFD (1) + FCS (4) + inter-frame gap (12) = 24 bytes... minus the FCS
    /// already counted in `MIN_WIRE`. For throughput arithmetic we follow
    /// the convention of the paper's 59.52 Mpps figure: a 64-byte frame
    /// occupies 64 + 20 = 84 byte times on a 10G link.
    pub const WIRE_OVERHEAD: usize = 20;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rate_arithmetic_matches_paper() {
        // Table 3 reports 59.52 Mpps for 64-byte packets across 4×10G.
        let frame_bits = (64 + frame::WIRE_OVERHEAD) * 8;
        let pps_per_port = 10_000_000_000f64 / frame_bits as f64;
        let total_mpps = 4.0 * pps_per_port / 1e6;
        assert!((total_mpps - 59.52).abs() < 0.01, "got {total_mpps}");
    }

    #[test]
    fn offsets_are_consistent() {
        assert_eq!(offset::L3, hdr_len::ETH);
        assert_eq!(offset::L4, hdr_len::ETH + hdr_len::IPV4);
        assert_eq!(offset::IPV4_DST + 4, offset::L4);
    }
}
