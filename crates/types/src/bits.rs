//! Arbitrary-width unsigned words up to 512 bits.
//!
//! The Emu paper (§3.2(iv)) notes that the largest primitive in C# is the
//! 64-bit word, while high-performance network datapaths need much wider
//! I/O busses (the NetFPGA SUME reference pipeline is 256 bits wide). Emu
//! therefore defines user types for larger words with overloads for all
//! arithmetic operators. [`Bits`] is the dynamic-width value representation
//! used across the IR interpreter and the RTL simulator; the fixed-width
//! wrapper types in [`crate::wide`] provide the operator-overloaded user
//! types of the paper.

use std::fmt;

/// Maximum supported width in bits.
pub const MAX_WIDTH: u16 = 512;

/// Number of 64-bit limbs backing a [`Bits`] value.
const LIMBS: usize = (MAX_WIDTH as usize) / 64;

/// An unsigned integer value with an explicit bit width in `1..=512`.
///
/// All arithmetic is modular in the value's width (hardware semantics:
/// results are truncated to the destination register width). Unused high
/// bits are always zero — this invariant is maintained by every operation.
///
/// # Examples
///
/// ```
/// use emu_types::Bits;
///
/// let a = Bits::from_u64(0xffff_ffff, 32);
/// let b = Bits::from_u64(1, 32);
/// assert_eq!(a.wrapping_add(&b).to_u64(), 0); // modular in 32 bits
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    width: u16,
    limbs: [u64; LIMBS],
}

impl Bits {
    /// Creates an all-zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    #[inline]
    pub fn zero(width: u16) -> Self {
        assert!((1..=MAX_WIDTH).contains(&width), "invalid width {width}");
        Bits {
            width,
            limbs: [0; LIMBS],
        }
    }

    /// Creates a value of the given width holding `1`.
    #[inline]
    pub fn one(width: u16) -> Self {
        Bits::from_u64(1, width)
    }

    /// Creates a value of the given width from a `u64`, truncating if needed.
    #[inline]
    pub fn from_u64(v: u64, width: u16) -> Self {
        let mut b = Bits::zero(width);
        b.limbs[0] = v;
        b.normalize();
        b
    }

    /// Creates a value of the given width from a `u128`, truncating if needed.
    #[inline]
    pub fn from_u128(v: u128, width: u16) -> Self {
        let mut b = Bits::zero(width);
        b.limbs[0] = v as u64;
        b.limbs[1] = (v >> 64) as u64;
        b.normalize();
        b
    }

    /// Creates a value from a boolean, with width 1.
    #[inline]
    pub fn from_bool(v: bool) -> Self {
        Bits::from_u64(u64::from(v), 1)
    }

    /// Creates a value of width `8 * bytes.len()` from big-endian bytes
    /// (network byte order, the natural order for packet fields).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty or longer than 64 bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert!(!bytes.is_empty() && bytes.len() <= 64, "bad byte length");
        let width = (bytes.len() * 8) as u16;
        let mut b = Bits::zero(width);
        for (i, &byte) in bytes.iter().rev().enumerate() {
            b.limbs[i / 8] |= u64::from(byte) << ((i % 8) * 8);
        }
        b
    }

    /// Returns the value as big-endian bytes (`width/8` rounded up).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let nbytes = usize::from(self.width).div_ceil(8);
        let mut out = vec![0u8; nbytes];
        for i in 0..nbytes {
            let byte = (self.limbs[i / 8] >> ((i % 8) * 8)) as u8;
            out[nbytes - 1 - i] = byte;
        }
        out
    }

    /// Width of the value in bits.
    #[inline]
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Low 64 bits of the value.
    #[inline]
    pub fn to_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Low 128 bits of the value.
    #[inline]
    pub fn to_u128(&self) -> u128 {
        u128::from(self.limbs[0]) | (u128::from(self.limbs[1]) << 64)
    }

    /// Interprets the value as a boolean (true iff non-zero).
    #[inline]
    pub fn to_bool(&self) -> bool {
        !self.is_zero()
    }

    /// Returns true iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Raw limbs (little-endian 64-bit words). Used by the RTL simulator's
    /// trace dump.
    #[inline]
    pub fn limbs(&self) -> &[u64; LIMBS] {
        &self.limbs
    }

    /// Masks off bits above `width`, restoring the representation invariant.
    #[inline]
    fn normalize(&mut self) {
        let w = usize::from(self.width);
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let lo = i * 64;
            if lo >= w {
                *limb = 0;
            } else if w - lo < 64 {
                *limb &= (1u64 << (w - lo)) - 1;
            }
        }
    }

    /// Returns a copy resized to `width` (zero-extend or truncate).
    pub fn resize(&self, width: u16) -> Self {
        let mut b = self.clone();
        b.width = width;
        assert!((1..=MAX_WIDTH).contains(&width), "invalid width {width}");
        b.normalize();
        b
    }

    /// Returns bit `i` (false if `i >= width`).
    #[inline]
    pub fn bit(&self, i: u16) -> bool {
        if i >= self.width {
            return false;
        }
        let i = usize::from(i);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_bit(&mut self, i: u16, v: bool) {
        assert!(i < self.width, "bit index {i} out of range");
        let i = usize::from(i);
        if v {
            self.limbs[i / 64] |= 1u64 << (i % 64);
        } else {
            self.limbs[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Extracts bits `hi..=lo` (inclusive, `hi >= lo`) as a new value of
    /// width `hi - lo + 1`. Mirrors Verilog's `x[hi:lo]`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn slice(&self, hi: u16, lo: u16) -> Self {
        assert!(hi >= lo, "slice hi {hi} < lo {lo}");
        assert!(hi < self.width, "slice hi {hi} out of range");
        let out_w = hi - lo + 1;
        let shifted = self.shr(u32::from(lo));
        shifted.resize(out_w)
    }

    /// Concatenates `self` (high bits) with `low` (low bits).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    pub fn concat(&self, low: &Bits) -> Self {
        let w = self.width + low.width;
        assert!(w <= MAX_WIDTH, "concat width {w} exceeds max");
        let mut hi = self.resize(w).shl(u32::from(low.width));
        let lo = low.resize(w);
        for i in 0..LIMBS {
            hi.limbs[i] |= lo.limbs[i];
        }
        hi
    }

    /// Modular addition in `self`'s width.
    pub fn wrapping_add(&self, rhs: &Bits) -> Self {
        let mut out = Bits::zero(self.width);
        let mut carry = 0u64;
        for i in 0..LIMBS {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        out.normalize();
        out
    }

    /// Modular subtraction in `self`'s width.
    pub fn wrapping_sub(&self, rhs: &Bits) -> Self {
        let mut out = Bits::zero(self.width);
        let mut borrow = 0u64;
        for i in 0..LIMBS {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.limbs[i] = d2;
            borrow = u64::from(b1) + u64::from(b2);
        }
        out.normalize();
        out
    }

    /// Modular multiplication (low `width` bits of the product).
    pub fn wrapping_mul(&self, rhs: &Bits) -> Self {
        let mut acc = [0u128; LIMBS + 1];
        for i in 0..LIMBS {
            if self.limbs[i] == 0 {
                continue;
            }
            for j in 0..LIMBS - i {
                let p = u128::from(self.limbs[i]) * u128::from(rhs.limbs[j]);
                let k = i + j;
                acc[k] += p & u128::from(u64::MAX);
                acc[k + 1] += p >> 64;
            }
        }
        let mut out = Bits::zero(self.width);
        let mut carry = 0u128;
        for (slot, &a) in out.limbs.iter_mut().zip(acc.iter()) {
            let v = a + carry;
            *slot = v as u64;
            carry = v >> 64;
        }
        out.normalize();
        out
    }

    /// Bitwise AND.
    pub fn and(&self, rhs: &Bits) -> Self {
        self.zip(rhs, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, rhs: &Bits) -> Self {
        self.zip(rhs, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, rhs: &Bits) -> Self {
        self.zip(rhs, |a, b| a ^ b)
    }

    /// Bitwise NOT (in `self`'s width).
    pub fn not(&self) -> Self {
        let mut out = Bits::zero(self.width);
        for i in 0..LIMBS {
            out.limbs[i] = !self.limbs[i];
        }
        out.normalize();
        out
    }

    fn zip(&self, rhs: &Bits, f: impl Fn(u64, u64) -> u64) -> Self {
        let mut out = Bits::zero(self.width);
        for i in 0..LIMBS {
            out.limbs[i] = f(self.limbs[i], rhs.limbs[i]);
        }
        out.normalize();
        out
    }

    /// Logical left shift (in `self`'s width). Shifts ≥ width yield zero.
    pub fn shl(&self, n: u32) -> Self {
        let mut out = Bits::zero(self.width);
        if n as usize >= LIMBS * 64 {
            return out;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        for i in (0..LIMBS).rev() {
            if i < limb_shift {
                break;
            }
            let mut v = self.limbs[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                v |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
            }
            out.limbs[i] = v;
        }
        out.normalize();
        out
    }

    /// Logical right shift. Shifts ≥ width yield zero.
    pub fn shr(&self, n: u32) -> Self {
        let mut out = Bits::zero(self.width);
        if n as usize >= LIMBS * 64 {
            return out;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        for i in 0..LIMBS {
            if i + limb_shift >= LIMBS {
                break;
            }
            let mut v = self.limbs[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < LIMBS {
                v |= self.limbs[i + limb_shift + 1] << (64 - bit_shift);
            }
            out.limbs[i] = v;
        }
        out.normalize();
        out
    }

    /// Unsigned comparison.
    pub fn cmp_u(&self, rhs: &Bits) -> std::cmp::Ordering {
        for i in (0..LIMBS).rev() {
            match self.limbs[i].cmp(&rhs.limbs[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Number of significant bits (position of highest set bit + 1; 0 for zero).
    pub fn significant_bits(&self) -> u16 {
        for i in (0..LIMBS).rev() {
            if self.limbs[i] != 0 {
                return (i * 64) as u16 + (64 - self.limbs[i].leading_zeros() as u16);
            }
        }
        0
    }

    /// Population count (number of set bits).
    pub fn count_ones(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Bits {
    /// Formats as `<width>'h<hex>`, Verilog style.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h", self.width)?;
        let digits = usize::from(self.width).div_ceil(4);
        let mut started = false;
        for d in (0..digits).rev() {
            let nibble = (self.limbs[d / 16] >> ((d % 16) * 4)) & 0xf;
            if nibble != 0 || started || d == 0 {
                started = true;
                write!(f, "{nibble:x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Bits::zero(32).is_zero());
        assert_eq!(Bits::one(32).to_u64(), 1);
        assert_eq!(Bits::zero(512).width(), 512);
    }

    #[test]
    #[should_panic(expected = "invalid width")]
    fn zero_width_rejected() {
        let _ = Bits::zero(0);
    }

    #[test]
    #[should_panic(expected = "invalid width")]
    fn overwide_rejected() {
        let _ = Bits::zero(513);
    }

    #[test]
    fn from_u64_truncates() {
        assert_eq!(Bits::from_u64(0x1ff, 8).to_u64(), 0xff);
        assert_eq!(Bits::from_u64(u64::MAX, 1).to_u64(), 1);
    }

    #[test]
    fn be_bytes_round_trip() {
        let b = Bits::from_be_bytes(&[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(b.width(), 32);
        assert_eq!(b.to_u64(), 0xdead_beef);
        assert_eq!(b.to_be_bytes(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn be_bytes_wide() {
        let bytes: Vec<u8> = (0..64).collect();
        let b = Bits::from_be_bytes(&bytes);
        assert_eq!(b.width(), 512);
        assert_eq!(b.to_be_bytes(), bytes);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = Bits::from_u128(u128::from(u64::MAX), 128);
        let b = Bits::one(128);
        assert_eq!(a.wrapping_add(&b).to_u128(), u128::from(u64::MAX) + 1);
    }

    #[test]
    fn add_wraps_at_width() {
        let a = Bits::from_u64(0xffff, 16);
        assert_eq!(a.wrapping_add(&Bits::one(16)).to_u64(), 0);
    }

    #[test]
    fn sub_borrows() {
        let a = Bits::from_u128(1u128 << 64, 128);
        let b = Bits::one(128);
        assert_eq!(a.wrapping_sub(&b).to_u128(), u64::MAX as u128);
    }

    #[test]
    fn sub_wraps_below_zero() {
        let a = Bits::zero(8);
        assert_eq!(a.wrapping_sub(&Bits::one(8)).to_u64(), 0xff);
    }

    #[test]
    fn mul_truncates_to_width() {
        let a = Bits::from_u64(0x1_0000, 32);
        assert_eq!(a.wrapping_mul(&a).to_u64(), 0); // 2^32 mod 2^32
        let b = Bits::from_u64(3, 32);
        let c = Bits::from_u64(7, 32);
        assert_eq!(b.wrapping_mul(&c).to_u64(), 21);
    }

    #[test]
    fn mul_wide() {
        let a = Bits::from_u128(u128::MAX, 256);
        let sq = a.wrapping_mul(&a);
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let expect = Bits::one(256)
            .shl(256)
            .wrapping_sub(&Bits::one(256).shl(129))
            .wrapping_add(&Bits::one(256));
        assert_eq!(sq, expect);
    }

    #[test]
    fn logic_ops() {
        let a = Bits::from_u64(0b1100, 4);
        let b = Bits::from_u64(0b1010, 4);
        assert_eq!(a.and(&b).to_u64(), 0b1000);
        assert_eq!(a.or(&b).to_u64(), 0b1110);
        assert_eq!(a.xor(&b).to_u64(), 0b0110);
        assert_eq!(a.not().to_u64(), 0b0011);
    }

    #[test]
    fn shifts() {
        let a = Bits::from_u64(1, 128);
        assert_eq!(a.shl(100).shr(100).to_u64(), 1);
        assert!(a.shl(127).bit(127));
        assert!(a.shl(128).is_zero());
        assert_eq!(a.shl(64).to_u128(), 1u128 << 64);
        assert!(Bits::from_u64(0xff, 8).shr(8).is_zero());
        // Shift far beyond the limb count must not panic and yields zero.
        assert!(a.shl(100_000).is_zero());
        assert!(a.shr(100_000).is_zero());
    }

    #[test]
    fn slice_matches_verilog_semantics() {
        let v = Bits::from_u64(0xabcd, 16);
        assert_eq!(v.slice(15, 8).to_u64(), 0xab);
        assert_eq!(v.slice(7, 0).to_u64(), 0xcd);
        assert_eq!(v.slice(11, 4).to_u64(), 0xbc);
        assert_eq!(v.slice(0, 0).width(), 1);
    }

    #[test]
    fn concat_is_slice_inverse() {
        let hi = Bits::from_u64(0xab, 8);
        let lo = Bits::from_u64(0xcd, 8);
        let c = hi.concat(&lo);
        assert_eq!(c.width(), 16);
        assert_eq!(c.to_u64(), 0xabcd);
        assert_eq!(c.slice(15, 8), hi);
        assert_eq!(c.slice(7, 0), lo);
    }

    #[test]
    fn bit_set_get() {
        let mut b = Bits::zero(65);
        b.set_bit(64, true);
        assert!(b.bit(64));
        assert_eq!(b.significant_bits(), 65);
        b.set_bit(64, false);
        assert!(b.is_zero());
    }

    #[test]
    fn compare_unsigned() {
        use std::cmp::Ordering;
        let a = Bits::from_u128(1u128 << 100, 128);
        let b = Bits::from_u64(u64::MAX, 128);
        assert_eq!(a.cmp_u(&b), Ordering::Greater);
        assert_eq!(b.cmp_u(&a), Ordering::Less);
        assert_eq!(a.cmp_u(&a), Ordering::Equal);
    }

    #[test]
    fn display_verilog_style() {
        assert_eq!(Bits::from_u64(0xbeef, 16).to_string(), "16'hbeef");
        assert_eq!(Bits::zero(8).to_string(), "8'h0");
        assert_eq!(Bits::from_u64(5, 3).to_string(), "3'h5");
    }

    #[test]
    fn count_ones_works() {
        assert_eq!(Bits::from_u64(0xf0f0, 16).count_ones(), 8);
        assert_eq!(Bits::zero(512).count_ones(), 0);
    }

    #[test]
    fn resize_zero_extends_and_truncates() {
        let a = Bits::from_u64(0x1ff, 16);
        assert_eq!(a.resize(8).to_u64(), 0xff);
        assert_eq!(a.resize(64).to_u64(), 0x1ff);
    }
}
