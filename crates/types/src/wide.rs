//! Fixed-width wide word types with full operator overloads.
//!
//! Reproduces Emu's user-defined wide word types (§3.2(iv)): "the largest
//! primitive datatype in C# is the 64-bit word. To achieve higher
//! performance, we require wider I/O busses. Emu defines user types for
//! larger words and provides overloads for all of the arithmetic operators
//! needed." [`U128`], [`U256`] and [`U512`] are the datapath widths that
//! matter on NetFPGA SUME (the reference pipeline bus is 256 bits).

use crate::bits::Bits;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Mul, Not, Shl, Shr, Sub};

macro_rules! wide_type {
    ($(#[$doc:meta])* $name:ident, $width:expr, $nlimbs:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name {
            limbs: [u64; $nlimbs],
        }

        impl $name {
            /// Width of this type in bits.
            pub const WIDTH: u16 = $width;

            /// The zero value.
            pub const ZERO: Self = Self { limbs: [0; $nlimbs] };

            /// Constructs from little-endian 64-bit limbs.
            pub fn from_limbs(limbs: [u64; $nlimbs]) -> Self {
                Self { limbs }
            }

            /// Returns the little-endian 64-bit limbs.
            pub fn limbs(&self) -> [u64; $nlimbs] {
                self.limbs
            }

            /// Constructs from a `u64` (zero-extended).
            pub fn from_u64(v: u64) -> Self {
                let mut limbs = [0u64; $nlimbs];
                limbs[0] = v;
                Self { limbs }
            }

            /// Low 64 bits.
            pub fn low_u64(&self) -> u64 {
                self.limbs[0]
            }

            /// Converts to the dynamic-width representation.
            pub fn to_bits(&self) -> Bits {
                let bytes: Vec<u8> = self
                    .limbs
                    .iter()
                    .rev()
                    .flat_map(|l| l.to_be_bytes())
                    .collect();
                let b = Bits::from_be_bytes(&bytes);
                debug_assert_eq!(b.width(), $width);
                b
            }

            /// Converts from the dynamic-width representation, truncating or
            /// zero-extending as needed.
            pub fn from_bits(b: &Bits) -> Self {
                let b = b.resize($width);
                let mut limbs = [0u64; $nlimbs];
                limbs.copy_from_slice(&b.limbs()[..$nlimbs]);
                Self { limbs }
            }

            /// Constructs from big-endian bytes.
            ///
            /// # Panics
            ///
            /// Panics if `bytes.len() != WIDTH / 8`.
            pub fn from_be_bytes(bytes: &[u8]) -> Self {
                assert_eq!(bytes.len(), usize::from(Self::WIDTH / 8));
                Self::from_bits(&Bits::from_be_bytes(bytes))
            }

            /// Returns the value as big-endian bytes.
            pub fn to_be_bytes(&self) -> Vec<u8> {
                self.to_bits().to_be_bytes()
            }

            /// Returns true iff zero.
            pub fn is_zero(&self) -> bool {
                self.limbs.iter().all(|&l| l == 0)
            }
        }

        impl Add for $name {
            type Output = Self;
            /// Modular addition in `WIDTH` bits (hardware semantics).
            fn add(self, rhs: Self) -> Self {
                Self::from_bits(&self.to_bits().wrapping_add(&rhs.to_bits()))
            }
        }

        impl Sub for $name {
            type Output = Self;
            /// Modular subtraction in `WIDTH` bits.
            fn sub(self, rhs: Self) -> Self {
                Self::from_bits(&self.to_bits().wrapping_sub(&rhs.to_bits()))
            }
        }

        impl Mul for $name {
            type Output = Self;
            /// Modular multiplication (low `WIDTH` bits).
            fn mul(self, rhs: Self) -> Self {
                Self::from_bits(&self.to_bits().wrapping_mul(&rhs.to_bits()))
            }
        }

        impl BitAnd for $name {
            type Output = Self;
            fn bitand(self, rhs: Self) -> Self {
                let mut limbs = self.limbs;
                for i in 0..$nlimbs {
                    limbs[i] &= rhs.limbs[i];
                }
                Self { limbs }
            }
        }

        impl BitOr for $name {
            type Output = Self;
            fn bitor(self, rhs: Self) -> Self {
                let mut limbs = self.limbs;
                for i in 0..$nlimbs {
                    limbs[i] |= rhs.limbs[i];
                }
                Self { limbs }
            }
        }

        impl BitXor for $name {
            type Output = Self;
            fn bitxor(self, rhs: Self) -> Self {
                let mut limbs = self.limbs;
                for i in 0..$nlimbs {
                    limbs[i] ^= rhs.limbs[i];
                }
                Self { limbs }
            }
        }

        impl Not for $name {
            type Output = Self;
            fn not(self) -> Self {
                let mut limbs = self.limbs;
                for i in 0..$nlimbs {
                    limbs[i] = !limbs[i];
                }
                Self { limbs }
            }
        }

        impl Shl<u32> for $name {
            type Output = Self;
            fn shl(self, n: u32) -> Self {
                Self::from_bits(&self.to_bits().shl(n))
            }
        }

        impl Shr<u32> for $name {
            type Output = Self;
            fn shr(self, n: u32) -> Self {
                Self::from_bits(&self.to_bits().shr(n))
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        impl Ord for $name {
            fn cmp(&self, other: &Self) -> Ordering {
                self.to_bits().cmp_u(&other.to_bits())
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self::from_u64(v)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.to_bits())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.to_bits())
            }
        }
    };
}

wide_type!(
    /// A 128-bit unsigned word with hardware (modular) arithmetic.
    U128,
    128,
    2
);
wide_type!(
    /// A 256-bit unsigned word — the width of one AXI4-Stream beat on the
    /// NetFPGA SUME reference pipeline.
    U256,
    256,
    4
);
wide_type!(
    /// A 512-bit unsigned word, the widest bus Emu's library supports.
    U512,
    512,
    8
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u128_matches_native() {
        let a = U128::from_limbs([u64::MAX, 0]);
        let b = U128::from_u64(1);
        let sum = a + b;
        assert_eq!(sum.limbs(), [0, 1]);
        let native: u128 = u128::from(u64::MAX) + 1;
        assert_eq!(sum.to_bits().to_u128(), native);
    }

    #[test]
    fn u256_add_wraps() {
        let max = !U256::ZERO;
        assert_eq!(max + U256::from_u64(1), U256::ZERO);
    }

    #[test]
    fn u256_mul_low() {
        let a = U256::from_u64(1) << 255;
        assert_eq!(a * U256::from_u64(2), U256::ZERO);
        assert_eq!(U256::from_u64(6) * U256::from_u64(7), U256::from_u64(42));
    }

    #[test]
    fn u512_shift_round_trip() {
        let a = U512::from_u64(0xdead);
        assert_eq!((a << 300) >> 300, a);
        assert!((a << 512).is_zero());
    }

    #[test]
    fn ordering() {
        let small = U256::from_u64(5);
        let big = U256::from_u64(1) << 200;
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big), Ordering::Equal);
    }

    #[test]
    fn be_bytes_round_trip() {
        let bytes: Vec<u8> = (0u8..32).collect();
        let v = U256::from_be_bytes(&bytes);
        assert_eq!(v.to_be_bytes(), bytes);
    }

    #[test]
    fn logic_ops() {
        let a = U128::from_u64(0xff00);
        let b = U128::from_u64(0x0ff0);
        assert_eq!((a & b).low_u64(), 0x0f00);
        assert_eq!((a | b).low_u64(), 0xfff0);
        assert_eq!((a ^ b).low_u64(), 0xf0f0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(U128::from_u64(0xab).to_string(), "128'hab");
        let dbg = format!("{:?}", U256::from_u64(1));
        assert!(dbg.starts_with("U256("));
    }
}
