//! Byte-buffer field accessors in network byte order.
//!
//! Reproduces the `BitUtil` helpers of the Emu paper (Figure 4), which the
//! protocol wrappers use to give packet bit fields names and types:
//!
//! ```csharp
//! public uint DestinationIPAddress
//! { get { return BitUtil.Get32( ips, 0); }
//!   set { BitUtil.Set32(ref ips, 0, value); } }
//! ```
//!
//! All getters return `0`-padded values when the read would run past the
//! end of the buffer, and all setters ignore out-of-range writes; hardware
//! reads past the end of a frame buffer return zeroes rather than trapping,
//! and the software target must match the hardware target byte-for-byte
//! (§3.3: one codebase over heterogeneous targets).

/// Reads a big-endian `u8` at `off`.
pub fn get8(buf: &[u8], off: usize) -> u8 {
    buf.get(off).copied().unwrap_or(0)
}

/// Reads a big-endian `u16` at `off`.
pub fn get16(buf: &[u8], off: usize) -> u16 {
    (u16::from(get8(buf, off)) << 8) | u16::from(get8(buf, off + 1))
}

/// Reads a big-endian `u32` at `off`.
pub fn get32(buf: &[u8], off: usize) -> u32 {
    (u32::from(get16(buf, off)) << 16) | u32::from(get16(buf, off + 2))
}

/// Reads a big-endian 48-bit value (e.g. a MAC address) at `off`.
pub fn get48(buf: &[u8], off: usize) -> u64 {
    (u64::from(get16(buf, off)) << 32) | u64::from(get32(buf, off + 2))
}

/// Reads a big-endian `u64` at `off`.
pub fn get64(buf: &[u8], off: usize) -> u64 {
    (u64::from(get32(buf, off)) << 32) | u64::from(get32(buf, off + 4))
}

/// Writes a `u8` at `off`; out-of-range writes are ignored.
pub fn set8(buf: &mut [u8], off: usize, v: u8) {
    if let Some(slot) = buf.get_mut(off) {
        *slot = v;
    }
}

/// Writes a big-endian `u16` at `off`.
pub fn set16(buf: &mut [u8], off: usize, v: u16) {
    set8(buf, off, (v >> 8) as u8);
    set8(buf, off + 1, v as u8);
}

/// Writes a big-endian `u32` at `off`.
pub fn set32(buf: &mut [u8], off: usize, v: u32) {
    set16(buf, off, (v >> 16) as u16);
    set16(buf, off + 2, v as u16);
}

/// Writes a big-endian 48-bit value at `off` (low 48 bits of `v`).
pub fn set48(buf: &mut [u8], off: usize, v: u64) {
    set16(buf, off, (v >> 32) as u16);
    set32(buf, off + 2, v as u32);
}

/// Writes a big-endian `u64` at `off`.
pub fn set64(buf: &mut [u8], off: usize, v: u64) {
    set32(buf, off, (v >> 32) as u32);
    set32(buf, off + 4, v as u32);
}

/// Extracts the bit field `[hi:lo]` (inclusive, Verilog order) from `v`.
///
/// # Panics
///
/// Panics if `hi < lo` or `hi > 63`.
pub fn field(v: u64, hi: u32, lo: u32) -> u64 {
    assert!(hi >= lo && hi < 64, "bad field [{hi}:{lo}]");
    let w = hi - lo + 1;
    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
    (v >> lo) & mask
}

/// Replaces the bit field `[hi:lo]` of `v` with the low bits of `x`.
///
/// # Panics
///
/// Panics if `hi < lo` or `hi > 63`.
pub fn set_field(v: u64, hi: u32, lo: u32, x: u64) -> u64 {
    assert!(hi >= lo && hi < 64, "bad field [{hi}:{lo}]");
    let w = hi - lo + 1;
    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
    (v & !(mask << lo)) | ((x & mask) << lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut buf = [0u8; 16];
        set32(&mut buf, 4, 0xdead_beef);
        assert_eq!(get32(&buf, 4), 0xdead_beef);
        assert_eq!(get16(&buf, 4), 0xdead);
        assert_eq!(get8(&buf, 7), 0xef);
        set48(&mut buf, 0, 0x0011_2233_4455);
        assert_eq!(get48(&buf, 0), 0x0011_2233_4455);
        set64(&mut buf, 8, 0x0102_0304_0506_0708);
        assert_eq!(get64(&buf, 8), 0x0102_0304_0506_0708);
    }

    #[test]
    fn network_byte_order() {
        let mut buf = [0u8; 4];
        set32(&mut buf, 0, 0x0a00_0001); // 10.0.0.1
        assert_eq!(buf, [10, 0, 0, 1]);
    }

    #[test]
    fn out_of_range_reads_return_zero_padding() {
        let buf = [0xffu8; 2];
        assert_eq!(get32(&buf, 0), 0xffff_0000);
        assert_eq!(get16(&buf, 10), 0);
        assert_eq!(get64(&buf, 1), 0xff00_0000_0000_0000);
    }

    #[test]
    fn out_of_range_writes_ignored() {
        let mut buf = [0u8; 2];
        set32(&mut buf, 0, 0xaabb_ccdd);
        assert_eq!(buf, [0xaa, 0xbb]); // tail of the write fell off the end
        set16(&mut buf, 100, 0x1234); // fully out of range: no panic
        assert_eq!(buf, [0xaa, 0xbb]);
    }

    #[test]
    fn bit_fields() {
        let v = 0xdead_beefu64;
        assert_eq!(field(v, 31, 16), 0xdead);
        assert_eq!(field(v, 15, 0), 0xbeef);
        assert_eq!(field(v, 63, 0), v);
        assert_eq!(set_field(0, 11, 4, 0xff), 0xff0);
        assert_eq!(set_field(u64::MAX, 7, 0, 0), 0xffff_ffff_ffff_ff00);
        assert_eq!(set_field(0, 63, 0, u64::MAX), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "bad field")]
    fn inverted_field_panics() {
        let _ = field(0, 3, 8);
    }
}
