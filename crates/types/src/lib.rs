//! Primitive types shared by every crate in the Emu reproduction.
//!
//! This crate is the bottom of the dependency stack: arbitrary-width words
//! ([`Bits`]), the operator-overloaded wide word types of the paper's
//! §3.2(iv) ([`U128`]/[`U256`]/[`U512`]), the `BitUtil` field accessors of
//! Figure 4 ([`bitutil`]), Internet checksum and Pearson hashing
//! ([`checksum`]), addresses ([`MacAddr`], [`Ipv4`]), protocol constants
//! ([`proto`]), and the common [`Frame`] buffer.
//!
//! Nothing here knows about the IR, the compiler, or any simulator.

pub mod addr;
pub mod bits;
pub mod bitutil;
pub mod checksum;
pub mod frame;
pub mod proto;
pub mod stats;
pub mod wide;

pub use addr::{AddrParseError, Ipv4, MacAddr};
pub use bits::Bits;
pub use frame::{hexdump, Frame};
pub use stats::Summary;
pub use wide::{U128, U256, U512};
