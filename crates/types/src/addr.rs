//! Link-layer and network-layer address types.

use std::fmt;
use std::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
///
/// # Examples
///
/// ```
/// use emu_types::MacAddr;
///
/// let m: MacAddr = "02:00:00:00:00:01".parse().unwrap();
/// assert_eq!(m.to_u64(), 0x0200_0000_0001);
/// assert!(!m.is_broadcast());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address (never valid on the wire).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds an address from the low 48 bits of `v`.
    pub fn from_u64(v: u64) -> Self {
        let b = v.to_be_bytes();
        MacAddr([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Returns the address as the low 48 bits of a `u64`.
    pub fn to_u64(self) -> u64 {
        let b = self.0;
        u64::from_be_bytes([0, 0, b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// True if the group (multicast) bit is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Returns the raw octets.
    pub fn octets(self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// Error parsing an address from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address: {}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for MacAddr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(AddrParseError(s.into()));
        }
        let mut out = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            out[i] = u8::from_str_radix(p, 16).map_err(|_| AddrParseError(s.into()))?;
        }
        Ok(MacAddr(out))
    }
}

/// An IPv4 address stored in host order for arithmetic convenience.
///
/// # Examples
///
/// ```
/// use emu_types::Ipv4;
///
/// let ip: Ipv4 = "192.168.0.1".parse().unwrap();
/// assert_eq!(ip.octets(), [192, 168, 0, 1]);
/// assert!(ip.in_subnet("192.168.0.0".parse().unwrap(), 24));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4 = Ipv4(0);

    /// The limited broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4 = Ipv4(u32::MAX);

    /// Builds an address from four octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// Returns the four octets.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// True if `self` lies in `net/prefix_len`.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn in_subnet(self, net: Ipv4, prefix_len: u8) -> bool {
        assert!(prefix_len <= 32, "bad prefix length {prefix_len}");
        if prefix_len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - u32::from(prefix_len));
        (self.0 & mask) == (net.0 & mask)
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl FromStr for Ipv4 {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(AddrParseError(s.into()));
        }
        let mut out = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            out[i] = p.parse().map_err(|_| AddrParseError(s.into()))?;
        }
        Ok(Ipv4::new(out[0], out[1], out[2], out[3]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_round_trip_u64() {
        let m = MacAddr([0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee]);
        assert_eq!(MacAddr::from_u64(m.to_u64()), m);
        assert_eq!(m.to_string(), "02:aa:bb:cc:dd:ee");
    }

    #[test]
    fn mac_parse() {
        let m: MacAddr = "ff:ff:ff:ff:ff:ff".parse().unwrap();
        assert!(m.is_broadcast());
        assert!(m.is_multicast());
        assert!("xx:00:00:00:00:00".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
    }

    #[test]
    fn mac_multicast_bit() {
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(!MacAddr([0x02, 0, 0, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn ipv4_parse_display() {
        let ip: Ipv4 = "10.1.2.3".parse().unwrap();
        assert_eq!(ip.to_string(), "10.1.2.3");
        assert_eq!(ip.0, 0x0a010203);
        assert!("10.1.2".parse::<Ipv4>().is_err());
        assert!("10.1.2.300".parse::<Ipv4>().is_err());
    }

    #[test]
    fn subnet_membership() {
        let ip: Ipv4 = "192.168.1.77".parse().unwrap();
        assert!(ip.in_subnet("192.168.1.0".parse().unwrap(), 24));
        assert!(!ip.in_subnet("192.168.2.0".parse().unwrap(), 24));
        assert!(ip.in_subnet("192.168.0.0".parse().unwrap(), 16));
        assert!(ip.in_subnet(Ipv4::UNSPECIFIED, 0));
    }
}
