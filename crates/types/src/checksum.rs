//! Internet checksum (RFC 1071) and incremental update (RFC 1624).
//!
//! Emu services that touch IPv4/ICMP/TCP/UDP must maintain checksums; the
//! paper's debugging walkthrough (§5.5) even hinges on a checksum bug found
//! with direction packets. These helpers are the software reference; the
//! IR-level checksum helpers in `emu-core` compute the same function as a
//! tree of 16-bit adds so that hardware and software targets agree exactly.

/// Running ones-complement sum used to build an Internet checksum.
///
/// # Examples
///
/// ```
/// use emu_types::checksum::Csum;
///
/// let mut c = Csum::new();
/// c.add_bytes(&[0x45, 0x00, 0x00, 0x1c]);
/// let sum = c.finish();
/// assert_ne!(sum, 0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Csum {
    acc: u32,
}

impl Csum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Csum { acc: 0 }
    }

    /// Adds one big-endian 16-bit word.
    pub fn add_word(&mut self, w: u16) {
        self.acc += u32::from(w);
    }

    /// Adds a byte slice, padding an odd tail byte with zero per RFC 1071.
    pub fn add_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(2);
        for c in &mut chunks {
            self.add_word(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.add_word(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Folds the accumulator and returns the ones-complement checksum.
    pub fn finish(self) -> u16 {
        let mut acc = self.acc;
        while acc >> 16 != 0 {
            acc = (acc & 0xffff) + (acc >> 16);
        }
        !(acc as u16)
    }
}

/// Computes the Internet checksum of `bytes` in one call.
pub fn internet_checksum(bytes: &[u8]) -> u16 {
    let mut c = Csum::new();
    c.add_bytes(bytes);
    c.finish()
}

/// Verifies a buffer whose checksum field is already in place: the folded
/// sum over the whole buffer must be zero.
pub fn verify(bytes: &[u8]) -> bool {
    internet_checksum(bytes) == 0
}

/// Incrementally updates checksum `old_csum` when a 16-bit word changes
/// from `old_word` to `new_word` (RFC 1624, eqn. 3: `HC' = ~(~HC + ~m + m')`).
pub fn update_word(old_csum: u16, old_word: u16, new_word: u16) -> u16 {
    let mut acc = u32::from(!old_csum) + u32::from(!old_word) + u32::from(new_word);
    while acc >> 16 != 0 {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// Incrementally updates a checksum for a 32-bit field change (e.g. an IPv4
/// address rewritten by NAT) by applying [`update_word`] to both halves.
pub fn update_u32(old_csum: u16, old: u32, new: u32) -> u16 {
    let c = update_word(old_csum, (old >> 16) as u16, (new >> 16) as u16);
    update_word(c, old as u16, new as u16)
}

/// Pearson's 8-bit hash, the software model of the hashing IP block whose
/// seed handshake the paper shows in Figure 5.
///
/// The table is the permutation from Pearson's original paper (CACM 1990),
/// fixed here so hardware and software targets produce identical digests.
pub fn pearson8(bytes: &[u8]) -> u8 {
    let mut h = 0u8;
    for &b in bytes {
        h = PEARSON_TABLE[usize::from(h ^ b)];
    }
    h
}

/// Pearson hash with an explicit seed byte, matching the IP block's
/// streaming mode where a seed is shifted in first (Figure 5).
pub fn pearson8_seeded(seed: u8, bytes: &[u8]) -> u8 {
    let mut h = PEARSON_TABLE[usize::from(seed)];
    for &b in bytes {
        h = PEARSON_TABLE[usize::from(h ^ b)];
    }
    h
}

/// Pearson's permutation table (a fixed permutation of 0..=255).
pub const PEARSON_TABLE: [u8; 256] = [
    98, 6, 85, 150, 36, 23, 112, 164, 135, 207, 169, 5, 26, 64, 165, 219, 61, 20, 68, 89, 130, 63,
    52, 102, 24, 229, 132, 245, 80, 216, 195, 115, 90, 168, 156, 203, 177, 120, 2, 190, 188, 7,
    100, 185, 174, 243, 162, 10, 237, 18, 253, 225, 8, 208, 172, 244, 255, 126, 101, 79, 145, 235,
    228, 121, 123, 251, 67, 250, 161, 0, 107, 97, 241, 111, 181, 82, 249, 33, 69, 55, 59, 153, 29,
    9, 213, 167, 84, 93, 30, 46, 94, 75, 151, 114, 73, 222, 197, 96, 210, 45, 16, 227, 248, 202,
    51, 152, 252, 125, 81, 206, 215, 186, 39, 158, 178, 187, 131, 136, 1, 49, 50, 17, 141, 91, 47,
    129, 60, 99, 154, 35, 86, 171, 105, 34, 38, 200, 147, 58, 77, 118, 173, 246, 76, 254, 133, 232,
    196, 144, 198, 124, 53, 4, 108, 74, 223, 234, 134, 230, 157, 139, 189, 205, 199, 128, 176, 19,
    211, 236, 127, 192, 231, 70, 233, 88, 146, 44, 183, 201, 22, 83, 13, 214, 116, 109, 159, 32,
    95, 226, 140, 220, 57, 12, 221, 31, 209, 182, 143, 92, 149, 184, 148, 62, 113, 65, 37, 27, 106,
    166, 3, 14, 204, 72, 21, 41, 56, 66, 28, 193, 40, 217, 25, 54, 179, 117, 238, 87, 240, 155,
    180, 170, 242, 212, 191, 163, 78, 218, 137, 194, 175, 110, 43, 119, 224, 71, 122, 142, 42, 160,
    104, 48, 247, 103, 15, 11, 138, 239,
];

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1071 worked example: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
    #[test]
    fn rfc1071_example() {
        let bytes = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x2ddf0, folded = 0xddf0 + 2 = 0xddf2, checksum = ~0xddf2.
        assert_eq!(internet_checksum(&bytes), 0x220d);
    }

    #[test]
    fn verify_with_embedded_checksum() {
        // A real IPv4 header (20 bytes) with a valid checksum.
        let mut hdr = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let c = internet_checksum(&hdr);
        hdr[10] = (c >> 8) as u8;
        hdr[11] = c as u8;
        assert!(verify(&hdr));
        // Known value for this classic example header.
        assert_eq!(c, 0xb861);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xab]), internet_checksum(&[0xab, 0x00]));
    }

    #[test]
    fn empty_buffer_checksum() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut hdr = [
            0x45, 0x00, 0x00, 0x54, 0x12, 0x34, 0x40, 0x00, 0x40, 0x01, 0x00, 0x00, 0x0a, 0x00,
            0x00, 0x01, 0x0a, 0x00, 0x00, 0x02,
        ];
        let c0 = internet_checksum(&hdr);
        hdr[10] = (c0 >> 8) as u8;
        hdr[11] = c0 as u8;

        // Rewrite the source address (NAT) and update incrementally.
        let old_ip = 0x0a00_0001u32;
        let new_ip = 0xc0a8_0105u32;
        let c1 = update_u32(c0, old_ip, new_ip);

        hdr[12..16].copy_from_slice(&new_ip.to_be_bytes());
        hdr[10] = 0;
        hdr[11] = 0;
        let c1_ref = internet_checksum(&hdr);
        assert_eq!(c1, c1_ref);
    }

    #[test]
    fn update_word_identity() {
        // Replacing a word with itself must not change the checksum.
        let c = 0x1234;
        assert_eq!(update_word(c, 0xabcd, 0xabcd), c);
    }

    #[test]
    fn pearson_table_is_permutation() {
        let mut seen = [false; 256];
        for &v in PEARSON_TABLE.iter() {
            assert!(!seen[usize::from(v)], "duplicate {v}");
            seen[usize::from(v)] = true;
        }
    }

    #[test]
    fn pearson_deterministic_and_spreads() {
        let a = pearson8(b"hello");
        let b = pearson8(b"hello");
        let c = pearson8(b"hellp");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pearson8(b""), 0);
    }

    #[test]
    fn pearson_seed_changes_digest() {
        assert_ne!(pearson8_seeded(1, b"key"), pearson8_seeded(2, b"key"));
        // Seed 0 goes through the table once, so it differs from unseeded.
        assert_eq!(pearson8_seeded(0, b"key"), {
            let h0 = PEARSON_TABLE[0];
            let mut h = h0;
            for &b in b"key" {
                h = PEARSON_TABLE[usize::from(h ^ b)];
            }
            h
        });
    }
}
