//! Ethernet frame buffer shared by every target.
//!
//! The Emu runtime moves frames between network logical ports and the
//! program (§3.3); `Frame` is the common in-memory representation used by
//! the RTL platform model, the host-stack simulator, and the Mininet
//! analogue, so that packets can cross target boundaries unchanged.

use crate::addr::MacAddr;
use crate::bitutil;
use crate::proto::{ether_type, frame, offset};
use std::fmt;

/// An Ethernet II frame (without FCS) plus receive metadata.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    bytes: Vec<u8>,
    /// Port index the frame arrived on (platform metadata, not on the wire).
    pub in_port: u8,
}

impl Frame {
    /// Wraps raw bytes as a frame. Frames shorter than the Ethernet minimum
    /// are padded with zeroes, as a MAC would on transmit.
    pub fn new(mut bytes: Vec<u8>) -> Self {
        if bytes.len() < frame::MIN {
            bytes.resize(frame::MIN, 0);
        }
        Frame { bytes, in_port: 0 }
    }

    /// Builds an Ethernet II frame from addresses, EtherType and payload.
    pub fn ethernet(dst: MacAddr, src: MacAddr, ethertype: u16, payload: &[u8]) -> Self {
        let mut bytes = Vec::with_capacity(14 + payload.len());
        bytes.extend_from_slice(&dst.octets());
        bytes.extend_from_slice(&src.octets());
        bytes.extend_from_slice(&ethertype.to_be_bytes());
        bytes.extend_from_slice(payload);
        Frame::new(bytes)
    }

    /// Frame length in bytes (post-padding, without FCS).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True iff the frame is empty (never true for frames built through the
    /// constructors, which pad to the Ethernet minimum).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Immutable view of the frame bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable view of the frame bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Consumes the frame, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Destination MAC address.
    pub fn dst_mac(&self) -> MacAddr {
        MacAddr::from_u64(bitutil::get48(&self.bytes, offset::ETH_DST))
    }

    /// Source MAC address.
    pub fn src_mac(&self) -> MacAddr {
        MacAddr::from_u64(bitutil::get48(&self.bytes, offset::ETH_SRC))
    }

    /// EtherType field.
    pub fn ethertype(&self) -> u16 {
        bitutil::get16(&self.bytes, offset::ETH_TYPE)
    }

    /// True iff this is a direction packet (§3.5) addressed to the embedded
    /// debug controller.
    pub fn is_direction(&self) -> bool {
        self.ethertype() == ether_type::DIRECTION
    }

    /// Wire occupancy of this frame on a link, in bytes: frame + FCS/IFG/
    /// preamble overhead. Used by the port models for line-rate pacing.
    pub fn wire_bytes(&self) -> usize {
        self.len().max(frame::MIN) + frame::WIRE_OVERHEAD
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Frame[{} -> {}, type {:#06x}, {} B, in_port {}]",
            self.src_mac(),
            self.dst_mac(),
            self.ethertype(),
            self.len(),
            self.in_port
        )
    }
}

/// Renders a classic 16-bytes-per-row hex dump, used by the debugging and
/// example binaries.
pub fn hexdump(bytes: &[u8]) -> String {
    let mut out = String::new();
    for (row, chunk) in bytes.chunks(16).enumerate() {
        out.push_str(&format!("{:04x}  ", row * 16));
        for i in 0..16 {
            match chunk.get(i) {
                Some(b) => out.push_str(&format!("{b:02x} ")),
                None => out.push_str("   "),
            }
            if i == 7 {
                out.push(' ');
            }
        }
        out.push(' ');
        for &b in chunk {
            out.push(if (0x20..0x7f).contains(&b) {
                b as char
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(x: u64) -> MacAddr {
        MacAddr::from_u64(x)
    }

    #[test]
    fn ethernet_constructor_lays_out_header() {
        let f = Frame::ethernet(mac(0x1), mac(0x2), ether_type::IPV4, &[0xaa; 50]);
        assert_eq!(f.dst_mac(), mac(0x1));
        assert_eq!(f.src_mac(), mac(0x2));
        assert_eq!(f.ethertype(), ether_type::IPV4);
        assert_eq!(f.len(), 64);
    }

    #[test]
    fn short_frames_are_padded_to_minimum() {
        let f = Frame::ethernet(mac(1), mac(2), ether_type::ARP, &[1, 2, 3]);
        assert_eq!(f.len(), frame::MIN);
        assert_eq!(f.bytes()[17], 0); // padding bytes are zero
    }

    #[test]
    fn wire_bytes_for_min_frame() {
        let f = Frame::new(vec![0u8; 60]);
        assert_eq!(f.wire_bytes(), 80); // 60 + 20 (the 64B-on-wire convention)
    }

    #[test]
    fn direction_frames_detected() {
        let f = Frame::ethernet(mac(1), mac(2), ether_type::DIRECTION, &[]);
        assert!(f.is_direction());
        let g = Frame::ethernet(mac(1), mac(2), ether_type::IPV4, &[]);
        assert!(!g.is_direction());
    }

    #[test]
    fn hexdump_shape() {
        let dump = hexdump(&[0x41; 20]);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("0000"));
        assert!(lines[1].starts_with("0010"));
        assert!(lines[0].ends_with("AAAAAAAAAAAAAAAA"));
    }
}
