//! The reference pipeline of Figure 10: ports → input arbiter → main
//! logical core → output queues → ports.
//!
//! The pipeline is simulated as a discrete-event model in nanoseconds
//! around a functionally-exact core: every frame is actually processed by
//! the compiled FSM (or a native baseline), and the cycles it consumed —
//! measured by the cycle-accurate executor — drive the timing model. This
//! split (functional model + timing model) is standard simulator practice
//! and is what lets the same harness produce Table 3's module
//! latency/throughput and Table 4's end-to-end service latencies.
//!
//! Two core timing disciplines exist, matching how the paper's designs
//! behave:
//!
//! * **iterative** — the core accepts the next frame only after finishing
//!   the current one (request/response services: ICMP echo, DNS,
//!   Memcached, NAT). Throughput is loop-limited, as in Table 4.
//! * **streaming** — Kiwi's "maximal pipelining" (§3.4) overlaps
//!   iterations; admission is limited by the 256-bit stream itself (one
//!   frame per its beat count), so the switch reaches full line rate
//!   (Table 3) while module latency stays the measured FSM path.

use crate::dataplane::{DataplaneDriver, TxFrame};
use crate::native::NativeCore;
use crate::timing;
use emu_rtl::{IpEnv, RtlMachine};
use emu_types::{Frame, Summary};
use kiwi_ir::interp::NullObserver;
use kiwi_ir::IrResult;

/// Timing discipline for an Emu core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreMode {
    /// One frame at a time; next admission after `rx_done`.
    Iterative,
    /// Pipelined admission at stream rate; latency = measured FSM cycles.
    Streaming,
}

/// Per-frame observation, the DAG-card analogue (§5.2: "all traffic is
/// captured by the DAG card and used to measure the latency of the
/// device-under-test alone").
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRecord {
    /// Arrival port.
    pub in_port: u8,
    /// First bit on the ingress wire, ns.
    pub t_in_ns: f64,
    /// Last bit off the egress wire, ns (`None`: consumed or dropped).
    pub t_out_ns: Option<f64>,
    /// Destination bitmap of the first transmission (0 if none).
    pub out_ports: u8,
    /// Core cycles consumed (module latency for this frame).
    pub core_cycles: u64,
}

enum CoreBox {
    Emu {
        driver: Box<DataplaneDriver<RtlMachine>>,
        env: IpEnv,
        mode: CoreMode,
    },
    Native(Box<dyn NativeCore>),
}

/// The simulated pipeline.
pub struct PipelineSim {
    core: CoreBox,
    core_free_ns: f64,
    out_port_free_ns: [f64; timing::NUM_PORTS],
    /// Output queue capacity in frames (per port).
    pub out_queue_frames: usize,
    records: Vec<FrameRecord>,
    /// Frames dropped at full output queues.
    pub queue_drops: u64,
}

impl PipelineSim {
    /// Builds a pipeline around a compiled Emu core.
    pub fn new_emu(driver: DataplaneDriver<RtlMachine>, env: IpEnv, mode: CoreMode) -> Self {
        PipelineSim {
            core: CoreBox::Emu {
                driver: Box::new(driver),
                env,
                mode,
            },
            core_free_ns: 0.0,
            out_port_free_ns: [0.0; timing::NUM_PORTS],
            out_queue_frames: 64,
            records: Vec::new(),
            queue_drops: 0,
        }
    }

    /// Builds a pipeline around a native baseline core.
    pub fn new_native(core: Box<dyn NativeCore>) -> Self {
        PipelineSim {
            core: CoreBox::Native(core),
            core_free_ns: 0.0,
            out_port_free_ns: [0.0; timing::NUM_PORTS],
            out_queue_frames: 64,
            records: Vec::new(),
            queue_drops: 0,
        }
    }

    /// All per-frame records.
    pub fn records(&self) -> &[FrameRecord] {
        &self.records
    }

    /// Latency samples (ns) of frames that produced output.
    pub fn latencies_ns(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(|r| r.t_out_ns.map(|o| o - r.t_in_ns))
            .collect()
    }

    /// Latency summary.
    pub fn summary(&self) -> Option<Summary> {
        Summary::of(&self.latencies_ns())
    }

    /// Achieved throughput in packets/s over the span of completed frames.
    pub fn throughput_pps(&self) -> f64 {
        let outs: Vec<f64> = self.records.iter().filter_map(|r| r.t_out_ns).collect();
        if outs.len() < 2 {
            return 0.0;
        }
        let t_first_in = self
            .records
            .iter()
            .map(|r| r.t_in_ns)
            .fold(f64::INFINITY, f64::min);
        let t_last = outs.iter().fold(0.0f64, |a, &b| a.max(b));
        (outs.len() as f64) / ((t_last - t_first_in) / 1e9)
    }

    /// Mean module latency in cycles across processed frames.
    pub fn mean_core_cycles(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.core_cycles as f64)
            .sum::<f64>()
            / self.records.len() as f64
    }

    /// Injects a frame whose first bit hits the ingress wire at `t_ns`.
    /// Frames must be injected in nondecreasing time order.
    pub fn inject(&mut self, frame: &Frame, t_ns: f64) -> IrResult<()> {
        let in_len = frame.len();
        // Frame fully received and through the MAC + arbiter.
        let t_ready = t_ns + timing::wire_ns(in_len) + timing::MAC_PHY_NS + timing::ARBITER_NS;

        let (outputs, cycles, t_core_start, t_core_done) = match &mut self.core {
            CoreBox::Emu { driver, env, mode } => {
                let out = driver.process(frame, env, &mut NullObserver)?;
                let cycles = out.cycles;
                match mode {
                    CoreMode::Iterative => {
                        let start = admit(t_ready, self.core_free_ns, timing::NS_PER_CYCLE);
                        let done = start + cycles as f64 * timing::NS_PER_CYCLE;
                        self.core_free_ns = done;
                        (out.tx, cycles, start, done)
                    }
                    CoreMode::Streaming => {
                        // Cut-through-ish: the core sees headers as beats
                        // arrive; admission is limited by the stream.
                        let t_head = t_ns + timing::MAC_PHY_NS + timing::ARBITER_NS;
                        let start = admit(t_head, self.core_free_ns, timing::NS_PER_CYCLE);
                        let ii = emu_rtl::beats_for_len(in_len) as f64 * timing::NS_PER_CYCLE;
                        self.core_free_ns = start + ii;
                        let done = start + cycles as f64 * timing::NS_PER_CYCLE;
                        (out.tx, cycles, start, done)
                    }
                }
            }
            CoreBox::Native(core) => {
                let tx = core.process(frame);
                let cyc = core.module_latency_cycles();
                let cyc_ns = 1e9 / core.clock_hz() as f64;
                let t_head = t_ns + timing::MAC_PHY_NS + timing::ARBITER_NS;
                // Snap to the *core's* clock grid (e.g. P4FPGA at 250 MHz).
                let start = admit(t_head, self.core_free_ns, cyc_ns);
                self.core_free_ns = start + core.initiation_ns(in_len);
                let done = start + cyc as f64 * cyc_ns;
                (tx, cyc, start, done)
            }
        };
        let _ = t_core_start;

        let mut rec = FrameRecord {
            in_port: frame.in_port,
            t_in_ns: t_ns,
            t_out_ns: None,
            out_ports: 0,
            core_cycles: cycles,
        };

        for tx in &outputs {
            let out = self.egress(tx, t_core_done);
            if rec.t_out_ns.is_none() {
                rec.t_out_ns = out;
                rec.out_ports = tx.ports;
            }
        }
        self.records.push(rec);
        Ok(())
    }

    /// Enqueues a transmission on each destination port; returns the wire
    /// completion time of the earliest copy.
    fn egress(&mut self, tx: &TxFrame, t_core_done: f64) -> Option<f64> {
        let len = tx.frame.len();
        let wire = timing::wire_ns(len);
        let mut first: Option<f64> = None;
        for p in 0..timing::NUM_PORTS {
            if tx.ports & (1 << p) == 0 {
                continue;
            }
            let t_q = t_core_done + timing::OUT_QUEUE_NS;
            let backlog = self.out_port_free_ns[p] - t_q;
            if backlog > self.out_queue_frames as f64 * wire {
                self.queue_drops += 1;
                continue;
            }
            let t_egress = t_q.max(self.out_port_free_ns[p]);
            self.out_port_free_ns[p] = t_egress + wire;
            let t_done = t_egress + wire + timing::MAC_PHY_NS;
            first = Some(first.map_or(t_done, |f: f64| f.min(t_done)));
        }
        first
    }
}

/// Snaps a time to the next 5 ns clock edge (the only latency "jitter" a
/// synchronous design exhibits; cf. §5.6 on hardware predictability).
fn snap(t_ns: f64) -> f64 {
    snap_to(t_ns, timing::NS_PER_CYCLE)
}

/// Snaps a time to the next edge of an arbitrary clock grid.
fn snap_to(t_ns: f64, cyc_ns: f64) -> f64 {
    (t_ns / cyc_ns).ceil() * cyc_ns
}

/// Admission time for a packet: an idle core samples the new arrival on
/// its next clock edge; a backlogged core admits as soon as it frees up
/// (the initiation interval is already clock-exact on average, so
/// re-snapping would systematically over-quantize the pipeline's rate).
fn admit(t_arrival: f64, core_free: f64, cyc_ns: f64) -> f64 {
    if core_free > t_arrival {
        core_free
    } else {
        snap_to(t_arrival, cyc_ns)
    }
}

/// A pipeline with one Emu core per port — the §5.4 multi-core Memcached
/// configuration ("using four Emu cores (one per port) further increases
/// \[throughput\] by 3.7×... SET requests must be applied to all
/// instances").
pub struct MultiCoreSim {
    cores: Vec<DataplaneDriver<RtlMachine>>,
    envs: Vec<IpEnv>,
    core_free_ns: Vec<f64>,
    completions: Vec<f64>,
    t_first_in: f64,
}

impl MultiCoreSim {
    /// Builds an n-core pipeline from per-core drivers and environments.
    pub fn new(cores: Vec<DataplaneDriver<RtlMachine>>, envs: Vec<IpEnv>) -> Self {
        let n = cores.len();
        assert_eq!(n, envs.len(), "one env per core");
        MultiCoreSim {
            cores,
            envs,
            core_free_ns: vec![0.0; n],
            completions: Vec::new(),
            t_first_in: f64::INFINITY,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Injects a request at `t_ns` on `port`. When `replicate` is set the
    /// frame is applied to *every* core (SETs must hit all instances);
    /// otherwise only `port`'s core serves it.
    pub fn inject(
        &mut self,
        frame: &Frame,
        t_ns: f64,
        port: usize,
        replicate: bool,
    ) -> IrResult<()> {
        self.t_first_in = self.t_first_in.min(t_ns);
        let t_ready = t_ns + timing::wire_ns(frame.len()) + timing::MAC_PHY_NS + timing::ARBITER_NS;
        let targets: Vec<usize> = if replicate {
            (0..self.cores.len()).collect()
        } else {
            vec![port % self.cores.len()]
        };
        let mut t_reply = 0.0f64;
        for c in targets {
            let out = self.cores[c].process(frame, &mut self.envs[c], &mut NullObserver)?;
            let start = snap(t_ready.max(self.core_free_ns[c]));
            let done = start + out.cycles as f64 * timing::NS_PER_CYCLE;
            self.core_free_ns[c] = done;
            t_reply = t_reply.max(done);
        }
        self.completions.push(
            t_reply + timing::OUT_QUEUE_NS + timing::wire_ns(frame.len()) + timing::MAC_PHY_NS,
        );
        Ok(())
    }

    /// Achieved request rate (requests/s).
    pub fn throughput_rps(&self) -> f64 {
        if self.completions.len() < 2 {
            return 0.0;
        }
        let t_last = self.completions.iter().fold(0.0f64, |a, &b| a.max(b));
        self.completions.len() as f64 / ((t_last - self.t_first_in) / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{P4FpgaCore, RefSwitchCore};
    use emu_types::MacAddr;

    fn test_frame(src: u64, dst: u64, port: u8, len: usize) -> Frame {
        let mut f = Frame::ethernet(
            MacAddr::from_u64(dst),
            MacAddr::from_u64(src),
            0x0800,
            &vec![0u8; len.saturating_sub(14)],
        );
        f.in_port = port;
        f
    }

    #[test]
    fn native_switch_single_frame_latency() {
        let mut sim = PipelineSim::new_native(Box::new(RefSwitchCore::new()));
        sim.inject(&test_frame(0xA, 0xB, 0, 64), 0.0).unwrap();
        let s = sim.summary().unwrap();
        // Wire (67.2) + 2×MAC (640) + arbiter + 6 cycles + queue + wire:
        // total should sit near 850–900 ns... the exact budget:
        // in-wire is not counted at head for native (cut-through at head),
        // so: MAC+ARB (340) + 30ns core + queue 15 + wire 67.2 + MAC 320.
        assert!(s.mean > 600.0 && s.mean < 1200.0, "mean {}", s.mean);
    }

    /// Learns MAC `100 + p` on each port `p`, then offers 64 B frames at
    /// aggregate line rate with each port sending to its neighbour's MAC,
    /// so egress load spreads evenly over all four ports.
    fn offer_line_rate(sim: &mut PipelineSim, n: u64) {
        for p in 0..4u8 {
            sim.inject(
                &test_frame(100 + u64::from(p), 0xEE, p, 64),
                f64::from(p) * 100.0,
            )
            .unwrap();
        }
        let gap = timing::wire_ns(64) / timing::NUM_PORTS as f64;
        let mut t = 1000.0;
        for i in 0..n {
            let port = (i % 4) as u8;
            let dst = 100 + (u64::from(port) + 1) % 4;
            sim.inject(&test_frame(100 + u64::from(port), dst, port, 64), t)
                .unwrap();
            t += gap;
        }
    }

    #[test]
    fn line_rate_through_reference_switch() {
        let mut sim = PipelineSim::new_native(Box::new(RefSwitchCore::new()));
        offer_line_rate(&mut sim, 4000);
        let mpps = sim.throughput_pps() / 1e6;
        assert!(mpps > 55.0 && mpps < 62.0, "got {mpps} Mpps");
        assert_eq!(sim.queue_drops, 0);
    }

    #[test]
    fn p4fpga_saturates_below_line_rate() {
        let mut sim = PipelineSim::new_native(Box::new(P4FpgaCore::default()));
        offer_line_rate(&mut sim, 4000);
        let mpps = sim.throughput_pps() / 1e6;
        assert!(mpps > 48.0 && mpps < 56.0, "got {mpps} Mpps");
    }

    #[test]
    fn p4fpga_latency_exceeds_reference() {
        let mut ref_sim = PipelineSim::new_native(Box::new(RefSwitchCore::new()));
        let mut p4_sim = PipelineSim::new_native(Box::new(P4FpgaCore::default()));
        ref_sim.inject(&test_frame(0xA, 0xB, 0, 64), 0.0).unwrap();
        p4_sim.inject(&test_frame(0xA, 0xB, 0, 64), 0.0).unwrap();
        let r = ref_sim.summary().unwrap().mean;
        let p = p4_sim.summary().unwrap().mean;
        // 85 cycles @4 ns vs 6 cycles @5 ns: ~310 ns extra.
        assert!(p > r + 250.0, "p4 {p} vs ref {r}");
    }

    #[test]
    fn snap_quantizes_to_cycle_grid() {
        assert_eq!(snap(0.0), 0.0);
        assert_eq!(snap(0.1), 5.0);
        assert_eq!(snap(5.0), 5.0);
        assert_eq!(snap(12.3), 15.0);
    }
}
