//! Timing constants for the NetFPGA SUME platform model.
//!
//! Everything here reproduces §5.1's hardware description: a Virtex-7
//! fabric clocked at 200 MHz, four 10 GbE ports, and the reference
//! pipeline of Figure 10 (input arbiter → main logical core → output
//! queues). The MAC/PHY constants are the usual figures for 10GBASE-R
//! with a store-and-forward MAC, chosen so the end-to-end RTTs land in
//! the 1.0–2.0 µs band the paper measures with the DAG card (Table 4).
//! EXPERIMENTS.md reports measured-vs-paper per service.

/// Core clock: 200 MHz (§5.1, "NetFPGA SUME's native frequency").
pub const CLOCK_HZ: u64 = 200_000_000;

/// Nanoseconds per core cycle.
pub const NS_PER_CYCLE: f64 = 1e9 / CLOCK_HZ as f64;

/// Port rate: 10 Gb/s per port.
pub const PORT_GBPS: f64 = 10.0;

/// Number of front-panel ports.
pub const NUM_PORTS: usize = 4;

/// Nanoseconds to serialize one byte on a 10G link.
pub const NS_PER_BYTE: f64 = 8.0 / PORT_GBPS;

/// One-way PHY + MAC latency per direction (10GBASE-R PCS/PMA plus a
/// store-and-forward MAC FIFO): ~320 ns, a textbook figure for this
/// generation of hardware.
pub const MAC_PHY_NS: f64 = 320.0;

/// Input arbiter grant delay: a 4-cycle round-robin decision.
pub const ARBITER_NS: f64 = 4.0 * NS_PER_CYCLE;

/// Output queue enqueue/dequeue overhead.
pub const OUT_QUEUE_NS: f64 = 3.0 * NS_PER_CYCLE;

/// Wire time of a frame (bytes on the wire including the 20-byte
/// preamble/IFG overhead convention used for the paper's 59.52 Mpps).
pub fn wire_ns(frame_bytes: usize) -> f64 {
    (frame_bytes.max(60) + emu_types::proto::frame::WIRE_OVERHEAD) as f64 * NS_PER_BYTE
}

/// Aggregate line rate in packets/s for a given frame size across all
/// four ports — 59.52 Mpps at 64 bytes.
pub fn line_rate_pps(frame_bytes: usize) -> f64 {
    NUM_PORTS as f64 * 1e9 / wire_ns(frame_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rate_matches_table3() {
        let mpps = line_rate_pps(64) / 1e6;
        assert!((mpps - 59.52).abs() < 0.01, "got {mpps}");
    }

    #[test]
    fn wire_time_of_min_frame() {
        // 84 bytes at 0.8 ns/byte = 67.2 ns.
        assert!((wire_ns(64) - 67.2).abs() < 1e-9);
        // Short frames are padded to the 64-byte minimum.
        assert_eq!(wire_ns(10), wire_ns(60));
    }

    #[test]
    fn cycle_time_is_5ns() {
        assert!((NS_PER_CYCLE - 5.0).abs() < 1e-12);
    }
}
