//! Native baseline cores: the designs Table 3 compares Emu against.
//!
//! * [`RefSwitchCore`] models the NetFPGA SUME reference learning switch —
//!   the hand-written Verilog design (reference 45) — as a streaming pipeline with a
//!   6-cycle module latency and a vendor-optimized (native) CAM.
//! * [`P4FpgaCore`] models the P4FPGA-generated switch (reference 47): a 250 MHz
//!   parse–match–action–deparse pipeline whose published characteristics
//!   (85-cycle latency, 53 Mpps at 64 B, a parser per port) are encoded as
//!   model parameters.
//!
//! Both are *models of third-party artifacts we cannot run*: their
//! functional behaviour (MAC learning, forwarding) is implemented for
//! real, their resources are computed from the same cost model as Emu
//! designs where possible, and their published timing figures are
//! parameters (see DESIGN.md's substitution table).

use crate::dataplane::TxFrame;
use crate::timing;
use emu_types::{Frame, MacAddr};
use kiwi::resources::{IpBlock, ResourceReport};
use std::collections::HashMap;

/// A hand-written (non-Emu) main logical core.
pub trait NativeCore {
    /// Design name for reports.
    fn name(&self) -> &str;
    /// Functional packet processing.
    fn process(&mut self, frame: &Frame) -> Vec<TxFrame>;
    /// Module latency in core cycles (first beat in → first beat out).
    fn module_latency_cycles(&self) -> u64;
    /// Core clock in Hz.
    fn clock_hz(&self) -> u64;
    /// Minimum time between successive packet admissions, given the frame
    /// length (the pipeline's initiation interval).
    fn initiation_ns(&self, frame_len: usize) -> f64;
    /// Utilization report.
    fn resources(&self) -> ResourceReport;
}

/// Shared learning-switch functional behaviour (used by both baselines so
/// that Table 3 compares identical functionality).
#[derive(Debug, Default)]
pub struct MacTable {
    map: HashMap<u64, u8>,
    order: Vec<u64>,
    capacity: usize,
    rr: usize,
}

impl MacTable {
    /// Creates a table with `capacity` entries (Table 3 uses 256).
    pub fn new(capacity: usize) -> Self {
        MacTable {
            map: HashMap::new(),
            order: Vec::new(),
            capacity,
            rr: 0,
        }
    }

    /// Learns `mac → port`, evicting round-robin when full.
    pub fn learn(&mut self, mac: MacAddr, port: u8) {
        let key = mac.to_u64();
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.map.entry(key) {
            e.insert(port);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.order[self.rr % self.order.len()];
            self.map.remove(&victim);
            self.order[self.rr % self.capacity] = key;
            self.rr = (self.rr + 1) % self.capacity;
        } else {
            self.order.push(key);
        }
        self.map.insert(key, port);
    }

    /// Looks up the port for `mac`.
    pub fn lookup(&self, mac: MacAddr) -> Option<u8> {
        self.map.get(&mac.to_u64()).copied()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Switch forwarding decision shared by every switch implementation,
/// with Figure 2 semantics: look up the destination first (forward to the
/// learned port or flood, never reflecting a flood to the arrival port),
/// then learn the source only if it is not already in the table.
pub fn switch_forward(table: &mut MacTable, frame: &Frame, num_ports: usize) -> Vec<TxFrame> {
    let src = frame.src_mac();
    let dst = frame.dst_mac();
    let all: u8 = ((1u16 << num_ports) - 1) as u8;
    let ports = match table.lookup(dst) {
        Some(p) if !dst.is_broadcast() => 1u8 << p,
        _ => all & !(1u8 << frame.in_port),
    };
    if !src.is_multicast() && table.lookup(src).is_none() {
        table.learn(src, frame.in_port);
    }
    if ports == 0 {
        return Vec::new();
    }
    vec![TxFrame {
        ports,
        frame: frame.clone(),
    }]
}

/// The NetFPGA SUME reference learning switch (native Verilog baseline).
pub struct RefSwitchCore {
    table: MacTable,
}

impl RefSwitchCore {
    /// Creates the reference switch with a 256-entry MAC table.
    pub fn new() -> Self {
        RefSwitchCore {
            table: MacTable::new(256),
        }
    }
}

impl Default for RefSwitchCore {
    fn default() -> Self {
        Self::new()
    }
}

impl NativeCore for RefSwitchCore {
    fn name(&self) -> &str {
        "netfpga-reference-switch"
    }

    fn process(&mut self, frame: &Frame) -> Vec<TxFrame> {
        switch_forward(&mut self.table, frame, timing::NUM_PORTS)
    }

    fn module_latency_cycles(&self) -> u64 {
        // Table 3: 6 cycles through the main logical core.
        6
    }

    fn clock_hz(&self) -> u64 {
        timing::CLOCK_HZ
    }

    fn initiation_ns(&self, frame_len: usize) -> f64 {
        // Fully streaming: a new packet every time its beats have passed.
        emu_rtl::beats_for_len(frame_len.max(60)) as f64 * timing::NS_PER_CYCLE
    }

    fn resources(&self) -> ResourceReport {
        // Component model of the hand-written design: header extraction
        // over the first beat, learn/forward control, AXI glue, plus the
        // vendor CAM. The constants are per-component LUT estimates from
        // the same cost family as `kiwi::resources`.
        let mut rep = ResourceReport::default();
        rep.add("parser", 190, 0, 160); // dst/src/ethertype extraction
        rep.add("learn-fsm", 240, 0, 96);
        rep.add("forward-mux", 90, 0, 24);
        rep.add("axi-glue", 160, 8, 128);
        let (l, m, f) = IpBlock::Cam {
            entries: 256,
            key_bits: 48,
            value_bits: 8,
            native: true,
        }
        .cost();
        rep.add("cam(native)", l, m, f);
        // Store-and-forward frame buffer (one max-size frame in BRAM).
        let (l, m, f) = IpBlock::Bram { bits: 1514 * 8 }.cost();
        rep.add("frame-buffer", l, m, f);
        rep
    }
}

/// Configuration for the P4FPGA baseline, encoding its published figures.
#[derive(Debug, Clone)]
pub struct P4FpgaConfig {
    /// Pipeline latency in cycles (Table 3: 85).
    pub latency_cycles: u64,
    /// Clock (the paper quotes 250 MHz).
    pub clock_hz: u64,
    /// Peak packet rate at 64 B (Table 3: 53 Mpps).
    pub peak_mpps_64b: f64,
    /// Parsers are replicated per port (§5.3: "a header parser for every
    /// port").
    pub parsers: usize,
    /// Match-action stages in the generated pipeline.
    pub stages: usize,
}

impl Default for P4FpgaConfig {
    fn default() -> Self {
        P4FpgaConfig {
            latency_cycles: 85,
            clock_hz: 250_000_000,
            peak_mpps_64b: 53.0,
            parsers: 4,
            stages: 4,
        }
    }
}

/// The P4FPGA-compiled switch baseline.
pub struct P4FpgaCore {
    cfg: P4FpgaConfig,
    table: MacTable,
}

impl P4FpgaCore {
    /// Creates the baseline with the published default parameters.
    pub fn new(cfg: P4FpgaConfig) -> Self {
        P4FpgaCore {
            cfg,
            table: MacTable::new(256),
        }
    }
}

impl Default for P4FpgaCore {
    fn default() -> Self {
        Self::new(P4FpgaConfig::default())
    }
}

impl NativeCore for P4FpgaCore {
    fn name(&self) -> &str {
        "p4fpga-switch"
    }

    fn process(&mut self, frame: &Frame) -> Vec<TxFrame> {
        switch_forward(&mut self.table, frame, timing::NUM_PORTS)
    }

    fn module_latency_cycles(&self) -> u64 {
        self.cfg.latency_cycles
    }

    fn clock_hz(&self) -> u64 {
        self.cfg.clock_hz
    }

    fn initiation_ns(&self, _frame_len: usize) -> f64 {
        // The deparser serializes the pipeline at the published peak rate.
        1e3 / self.cfg.peak_mpps_64b
    }

    fn resources(&self) -> ResourceReport {
        // Generated pipeline: replicated parsers, wide match stages with
        // hash units, action ALUs, deparser. Component values follow the
        // published utilization breakdown of P4FPGA-style pipelines: the
        // generated code dominates (Table 3's 24161 vs Emu's 3509).
        let mut rep = ResourceReport::default();
        for i in 0..self.cfg.parsers {
            rep.add(&format!("parser{i}"), 1450, 8, 700);
        }
        for i in 0..self.cfg.stages {
            let (l, m, f) = IpBlock::Cam {
                entries: 256,
                key_bits: 48,
                value_bits: 8,
                native: false,
            }
            .cost();
            rep.add(&format!("match{i}"), l + 900, m + 16, f);
            rep.add(&format!("action{i}"), 620, 0, 256);
        }
        rep.add("deparser", 1900, 16, 512);
        rep.add("pipeline-regs", 640, 0, 2048);
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_types::proto::ether_type;

    fn frame(src: u64, dst: u64, port: u8) -> Frame {
        let mut f = Frame::ethernet(
            MacAddr::from_u64(dst),
            MacAddr::from_u64(src),
            ether_type::IPV4,
            &[0; 46],
        );
        f.in_port = port;
        f
    }

    #[test]
    fn switch_learns_then_forwards_unicast() {
        let mut sw = RefSwitchCore::new();
        // A (port 0) -> B: flood (B unknown), learn A.
        let out = sw.process(&frame(0xA, 0xB, 0));
        assert_eq!(out[0].ports, 0b1110);
        // B (port 1) -> A: unicast to port 0, learn B.
        let out = sw.process(&frame(0xB, 0xA, 1));
        assert_eq!(out[0].ports, 0b0001);
        // A -> B now unicast to port 1.
        let out = sw.process(&frame(0xA, 0xB, 0));
        assert_eq!(out[0].ports, 0b0010);
    }

    #[test]
    fn broadcast_always_floods() {
        let mut sw = RefSwitchCore::new();
        let out = sw.process(&frame(0xA, 0xffff_ffff_ffff, 2));
        assert_eq!(out[0].ports, 0b1011);
    }

    #[test]
    fn hairpin_suppressed() {
        let mut sw = RefSwitchCore::new();
        sw.process(&frame(0xA, 0xB, 0)); // learn A@0
                                         // B -> A arriving on port 0 (A's own port): bitmap is 1<<0, which
                                         // includes the arrival port — the reference design forwards by
                                         // table blindly; flooding never reflects though.
        let out = sw.process(&frame(0xC, 0xD, 1));
        assert_eq!(out[0].ports & (1 << 1), 0, "flood must exclude arrival");
    }

    #[test]
    fn mac_table_eviction_at_capacity() {
        let mut t = MacTable::new(4);
        for i in 0..6u64 {
            t.learn(MacAddr::from_u64(i), (i % 4) as u8);
        }
        assert_eq!(t.len(), 4);
        // The first two entries were evicted round-robin.
        assert!(t.lookup(MacAddr::from_u64(0)).is_none());
        assert!(t.lookup(MacAddr::from_u64(1)).is_none());
        assert!(t.lookup(MacAddr::from_u64(5)).is_some());
    }

    #[test]
    fn multicast_source_not_learned() {
        let mut t = MacTable::new(8);
        let mcast = MacAddr([0x01, 0, 0x5e, 0, 0, 1]);
        let f = {
            let mut f = Frame::ethernet(MacAddr::from_u64(2), mcast, ether_type::IPV4, &[0; 46]);
            f.in_port = 0;
            f
        };
        switch_forward(&mut t, &f, 4);
        assert!(t.is_empty());
    }

    #[test]
    fn baseline_timing_parameters() {
        let r = RefSwitchCore::new();
        assert_eq!(r.module_latency_cycles(), 6);
        // 64-byte frame = 2 beats = 10 ns initiation: faster than the
        // 16.8 ns aggregate line rate, hence full line rate in Table 3.
        assert!((r.initiation_ns(64) - 10.0).abs() < 1e-9);

        let p = P4FpgaCore::default();
        assert_eq!(p.module_latency_cycles(), 85);
        // 53 Mpps -> 18.87 ns between packets.
        assert!((p.initiation_ns(64) - 18.867).abs() < 0.01);
    }

    #[test]
    fn baseline_resources_ordering() {
        // P4FPGA must dwarf the reference switch (Table 3: 24161 vs 2836).
        let r = RefSwitchCore::new().resources();
        let p = P4FpgaCore::default().resources();
        assert!(p.logic > 5 * r.logic, "p4 {} vs ref {}", p.logic, r.logic);
        assert!(p.memory > r.memory);
    }
}
