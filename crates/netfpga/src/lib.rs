//! NetFPGA SUME platform model.
//!
//! The paper deploys every Emu service as the "main logical core" of the
//! NetFPGA reference pipeline (Figure 10), sharing the ports, input
//! arbiter and output queues across services so that "no hardware
//! expertise" is required (§5.1). This crate reproduces that platform:
//!
//! * [`timing`] — the 200 MHz / 4×10G timing constants,
//! * [`dataplane`] — the frame/metadata contract between a program and
//!   the platform (the substrate binding of Figure 6), plus the
//!   platform-side driver,
//! * [`native`] — the Table 3 baselines: the hand-written reference
//!   switch and the P4FPGA-generated switch,
//! * [`pipeline`] — the discrete-event pipeline simulation that produces
//!   module latency, end-to-end latency and throughput, including the
//!   multi-core configuration of §5.4.

pub mod dataplane;
pub mod native;
pub mod pipeline;
pub mod timing;

pub use dataplane::{declare, CoreOutput, DataplaneDriver, DataplanePorts, TxFrame};
pub use native::{MacTable, NativeCore, P4FpgaConfig, P4FpgaCore, RefSwitchCore};
pub use pipeline::{CoreMode, FrameRecord, MultiCoreSim, PipelineSim};
