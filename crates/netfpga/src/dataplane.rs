//! The dataplane contract between an Emu program and the platform.
//!
//! This is the reproduction of the paper's Figure 6 utility surface
//! (`Get_Frame`, `Set_Frame`, `Read_Input_Port`, `Set_Output_Port`): the
//! platform DMA-copies each received frame into a byte array named
//! `frame`, presents metadata on input signals, and the program signals
//! transmission and completion on output signals. The *program-side*
//! convenience wrappers over this contract live in `emu-core::dataplane`;
//! this module owns the names, the declaration helper, and the
//! platform-side driver.
//!
//! Signal protocol, from the program's perspective:
//!
//! * in  `rx_valid`  — a frame is in the `frame` array,
//! * in  `rx_len`    — its length in bytes,
//! * in  `rx_port`   — arrival port index,
//! * out `tx_valid`  — pulse: transmit `tx_len` bytes of `frame` to the
//!   ports in the `tx_ports` bitmap,
//! * out `tx_ports`  — destination bitmap (bit per port; several bits =
//!   multicast/broadcast, as `NetFPGA.Broadcast` sets),
//! * out `tx_len`    — transmit length,
//! * out `rx_done`   — pulse: finished with this frame (platform drops
//!   `rx_valid` the same tick).

use emu_rtl::exec::ExecBackend;
use emu_types::Bits;
use emu_types::Frame;
use kiwi_ir::interp::{Env, NullObserver, Observer};
use kiwi_ir::program::{ArrId, ArrayBacking, SigId};
use kiwi_ir::{IrError, IrResult, ProgramBuilder};

/// Canonical signal / array names of the dataplane contract.
pub mod names {
    /// Frame-available input.
    pub const RX_VALID: &str = "rx_valid";
    /// Frame length input.
    pub const RX_LEN: &str = "rx_len";
    /// Arrival port input.
    pub const RX_PORT: &str = "rx_port";
    /// Completion pulse output.
    pub const RX_DONE: &str = "rx_done";
    /// Transmit pulse output.
    pub const TX_VALID: &str = "tx_valid";
    /// Transmit length output.
    pub const TX_LEN: &str = "tx_len";
    /// Destination port bitmap output.
    pub const TX_PORTS: &str = "tx_ports";
    /// The frame buffer array.
    pub const FRAME: &str = "frame";
}

/// Resolved handles to the dataplane ports of a program.
#[derive(Debug, Clone, Copy)]
pub struct DataplanePorts {
    /// `rx_valid` input.
    pub rx_valid: SigId,
    /// `rx_len` input.
    pub rx_len: SigId,
    /// `rx_port` input.
    pub rx_port: SigId,
    /// `rx_done` output.
    pub rx_done: SigId,
    /// `tx_valid` output.
    pub tx_valid: SigId,
    /// `tx_len` output.
    pub tx_len: SigId,
    /// `tx_ports` output.
    pub tx_ports: SigId,
    /// The frame buffer.
    pub frame: ArrId,
}

/// Declares the dataplane contract on a program under construction.
///
/// `frame_capacity` sizes the frame buffer; services handling only small
/// packets declare a small buffer, which is visible in the resource
/// report (the paper's designs similarly size buffers to the workload).
pub fn declare(pb: &mut ProgramBuilder, frame_capacity: usize) -> DataplanePorts {
    DataplanePorts {
        rx_valid: pb.sig_in(names::RX_VALID, 1),
        rx_len: pb.sig_in(names::RX_LEN, 16),
        rx_port: pb.sig_in(names::RX_PORT, 8),
        rx_done: pb.sig_out(names::RX_DONE, 1),
        tx_valid: pb.sig_out(names::TX_VALID, 1),
        tx_len: pb.sig_out(names::TX_LEN, 16),
        tx_ports: pb.sig_out(names::TX_PORTS, 8),
        frame: pb.array(names::FRAME, 8, frame_capacity, ArrayBacking::BlockRam),
    }
}

/// One transmitted frame with its destination bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct TxFrame {
    /// Destination port bitmap.
    pub ports: u8,
    /// The frame bytes as transmitted.
    pub frame: Frame,
}

/// Result of processing one received frame.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreOutput {
    /// Frames transmitted while handling the input.
    pub tx: Vec<TxFrame>,
    /// Core-clock cycles consumed from `rx_valid` to `rx_done`.
    pub cycles: u64,
}

struct ResolvedIds {
    rx_valid: usize,
    rx_len: usize,
    rx_port: usize,
    rx_done: usize,
    tx_valid: usize,
    tx_len: usize,
    tx_ports: usize,
    frame: usize,
}

/// Platform-side driver: feeds frames to a program over the dataplane
/// contract and collects its transmissions.
///
/// Generic over [`ExecBackend`], so the identical service program can be
/// driven on the cycle-accurate FSM (hardware target) or the sequential
/// interpreter (software target).
pub struct DataplaneDriver<B: ExecBackend> {
    backend: B,
    ids: ResolvedIds,
    /// Per-frame cycle budget before the driver declares the core hung.
    pub max_cycles_per_frame: u64,
}

impl<B: ExecBackend> DataplaneDriver<B> {
    /// Wraps a backend, resolving the contract's names.
    pub fn new(backend: B) -> IrResult<Self> {
        let prog = backend.program();
        let sig = |n: &str| {
            prog.signal_by_name(n)
                .map(|s| s.0 as usize)
                .ok_or_else(|| IrError(format!("program lacks dataplane signal `{n}`")))
        };
        let ids = ResolvedIds {
            rx_valid: sig(names::RX_VALID)?,
            rx_len: sig(names::RX_LEN)?,
            rx_port: sig(names::RX_PORT)?,
            rx_done: sig(names::RX_DONE)?,
            tx_valid: sig(names::TX_VALID)?,
            tx_len: sig(names::TX_LEN)?,
            tx_ports: sig(names::TX_PORTS)?,
            frame: prog
                .array_by_name(names::FRAME)
                .map(|a| a.0 as usize)
                .ok_or_else(|| IrError("program lacks `frame` array".into()))?,
        };
        Ok(DataplaneDriver {
            backend,
            ids,
            max_cycles_per_frame: 200_000,
        })
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the wrapped backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Frame buffer capacity of the wrapped program.
    pub fn frame_capacity(&self) -> usize {
        self.backend.machine_state().arrays[self.ids.frame].len()
    }

    /// Runs the core for `n` cycles with no frame offered (lets service
    /// background threads make progress).
    pub fn idle(&mut self, n: u64, env: &mut dyn Env, obs: &mut dyn Observer) -> IrResult<()> {
        for _ in 0..n {
            if self.backend.is_halted() {
                break;
            }
            self.backend.step(env, obs)?;
        }
        Ok(())
    }

    /// DMA-copies `frame` into the core's buffer and raises `rx_valid`.
    ///
    /// Only the prefix up to the buffer's write high-water mark (or the
    /// frame length, whichever is larger) is touched: slots beyond it are
    /// already zero, because the driver zero-fills up to the mark and both
    /// execution backends maintain [`kiwi_ir::interp::MachineState::arr_high`]
    /// on every program-side store. This is what makes back-to-back
    /// processing cheap — a 64 B frame through a 1536 B buffer writes 64
    /// slots, not 1536.
    fn load_frame(&mut self, frame: &Frame, cap: usize) {
        let st = self.backend.machine_state_mut();
        let len = frame.len();
        let fill = st.arr_high[self.ids.frame].max(len).min(cap);
        let buf = &mut st.arrays[self.ids.frame];
        for (i, slot) in buf[..fill].iter_mut().enumerate() {
            let byte = u64::from(frame.bytes().get(i).copied().unwrap_or(0));
            // Skip slots that already hold the byte: consecutive frames
            // share most header/padding bytes, so the DMA is mostly
            // no-ops and the buffer stays untouched in cache.
            if slot.width() != 8 || slot.to_u64() != byte {
                *slot = Bits::from_u64(byte, 8);
            }
        }
        // The prefix [0, len) now holds frame bytes; everything above is
        // zero again.
        st.arr_high[self.ids.frame] = len.min(cap);
        st.sigs_in[self.ids.rx_valid] = Bits::from_u64(1, 1);
        st.sigs_in[self.ids.rx_len] = Bits::from_u64(len as u64, 16);
        st.sigs_in[self.ids.rx_port] = Bits::from_u64(u64::from(frame.in_port), 8);
    }

    /// Delivers `frame` to the core and runs until the core pulses
    /// `rx_done`, collecting every `tx_valid` pulse along the way.
    pub fn process(
        &mut self,
        frame: &Frame,
        env: &mut dyn Env,
        obs: &mut dyn Observer,
    ) -> IrResult<CoreOutput> {
        let cap = self.frame_capacity();
        if frame.len() > cap {
            return Err(IrError(format!(
                "frame of {} B exceeds core buffer of {cap} B",
                frame.len()
            )));
        }

        // One frame epoch: TTL-driven table models age by frames, not
        // cycles, so idle time between frames never expires anything.
        env.frame_start();

        // DMA the frame into the buffer and raise rx_valid.
        self.load_frame(frame, cap);

        let start_cycle = self.backend.cycles();
        let mut tx = Vec::new();
        let mut prev_tx = false;
        let mut prev_done = false;

        loop {
            if self.backend.cycles() - start_cycle > self.max_cycles_per_frame {
                return Err(IrError(format!(
                    "core exceeded {} cycles on one frame",
                    self.max_cycles_per_frame
                )));
            }
            if self.backend.is_halted() {
                return Err(IrError("core halted while processing a frame".into()));
            }
            self.backend.step(env, obs)?;

            let (tx_now, done_now) = {
                let st = self.backend.machine_state();
                (
                    st.sigs_out[self.ids.tx_valid].to_bool(),
                    st.sigs_out[self.ids.rx_done].to_bool(),
                )
            };

            if tx_now && !prev_tx {
                let st = self.backend.machine_state();
                let len = (st.sigs_out[self.ids.tx_len].to_u64() as usize).min(cap);
                let ports = st.sigs_out[self.ids.tx_ports].to_u64() as u8;
                let bytes: Vec<u8> = st.arrays[self.ids.frame][..len]
                    .iter()
                    .map(|b| b.to_u64() as u8)
                    .collect();
                tx.push(TxFrame {
                    ports,
                    frame: Frame::new(bytes),
                });
            }
            prev_tx = tx_now;

            if done_now && !prev_done {
                // Drop rx_valid the same tick so the core's next loop
                // iteration sees no frame.
                let st = self.backend.machine_state_mut();
                st.sigs_in[self.ids.rx_valid] = Bits::from_u64(0, 1);
                break;
            }
            prev_done = done_now;
        }

        Ok(CoreOutput {
            tx,
            cycles: self.backend.cycles() - start_cycle,
        })
    }
}

/// Batched frame execution — the compiled CPU backend's fast path.
///
/// [`DataplaneDriver::process`] is generic over `dyn Env` / `dyn
/// Observer`, so every core cycle pays virtual dispatch and the observer
/// hooks survive as indirect calls even when the observer is
/// [`NullObserver`]. This inherent impl on the *concrete* compiled
/// backend carries a whole batch through a monomorphized copy of the
/// same loop — `step_cycle_with::<E, NullObserver>` inlines the executor
/// and compiles the observer hooks away entirely — which is what lets
/// the engine's soak path amortize per-frame dispatch overhead.
///
/// Frames execute sequentially, in order, against the same machine
/// state and environment as N scalar [`DataplaneDriver::process`] calls
/// would — the service may be stateful, so lockstep means "identical
/// observable schedule", not SIMD. Outputs, cycle counts, and error
/// strings are byte-identical to the scalar path by construction.
impl DataplaneDriver<kiwi_ir::CompiledMachine> {
    /// Processes `frames` back to back, stopping at the first error.
    ///
    /// Returns one result per frame *attempted*: a prefix of `Ok`s
    /// followed by at most one `Err`. Frames after a trap are not
    /// offered to the core (its state can no longer be trusted) — the
    /// caller decides how to report them, exactly as the engine's
    /// poisoning contract does for the scalar path.
    pub fn process_batch<E: Env + ?Sized>(
        &mut self,
        frames: &[&Frame],
        env: &mut E,
    ) -> Vec<IrResult<CoreOutput>> {
        let mut out = Vec::with_capacity(frames.len());
        for frame in frames {
            let r = self.process_compiled(frame, env);
            let failed = r.is_err();
            out.push(r);
            if failed {
                break;
            }
        }
        out
    }

    /// One frame through the monomorphized cycle loop. Mirrors
    /// [`DataplaneDriver::process`] statement for statement; only the
    /// backend calls are concrete. Any semantic change there must land
    /// here too (`batched_path_matches_scalar_path` in the equivalence
    /// suite enforces this).
    fn process_compiled<E: Env + ?Sized>(
        &mut self,
        frame: &Frame,
        env: &mut E,
    ) -> IrResult<CoreOutput> {
        let cap = self.frame_capacity();
        if frame.len() > cap {
            return Err(IrError(format!(
                "frame of {} B exceeds core buffer of {cap} B",
                frame.len()
            )));
        }

        env.frame_start();
        self.load_frame(frame, cap);

        let start_cycle = self.backend.cycle();
        let mut tx = Vec::new();
        let mut prev_tx = false;
        let mut prev_done = false;

        loop {
            if self.backend.cycle() - start_cycle > self.max_cycles_per_frame {
                return Err(IrError(format!(
                    "core exceeded {} cycles on one frame",
                    self.max_cycles_per_frame
                )));
            }
            if self.backend.halted() {
                return Err(IrError("core halted while processing a frame".into()));
            }
            self.backend.step_cycle_with(env, &mut NullObserver)?;

            let (tx_now, done_now) = {
                let st = self.backend.state();
                (
                    st.sigs_out[self.ids.tx_valid].to_bool(),
                    st.sigs_out[self.ids.rx_done].to_bool(),
                )
            };

            if tx_now && !prev_tx {
                let st = self.backend.state();
                let len = (st.sigs_out[self.ids.tx_len].to_u64() as usize).min(cap);
                let ports = st.sigs_out[self.ids.tx_ports].to_u64() as u8;
                let bytes: Vec<u8> = st.arrays[self.ids.frame][..len]
                    .iter()
                    .map(|b| b.to_u64() as u8)
                    .collect();
                tx.push(TxFrame {
                    ports,
                    frame: Frame::new(bytes),
                });
            }
            prev_tx = tx_now;

            if done_now && !prev_done {
                let st = self.backend.state_mut();
                st.sigs_in[self.ids.rx_valid] = Bits::from_u64(0, 1);
                break;
            }
            prev_done = done_now;
        }

        Ok(CoreOutput {
            tx,
            cycles: self.backend.cycle() - start_cycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_rtl::RtlMachine;
    use kiwi_ir::dsl::*;
    use kiwi_ir::interp::{NullEnv, NullObserver};
    use kiwi_ir::Machine;

    /// A mirror service: sends every frame back out of its arrival port,
    /// the "quickstart"-grade service used throughout the platform tests.
    fn mirror_program() -> kiwi_ir::Program {
        let mut pb = ProgramBuilder::new("mirror");
        let dp = declare(&mut pb, 128);
        pb.thread(
            "main",
            vec![forever(vec![
                wait_until(sig(dp.rx_valid)),
                sig_write(dp.tx_len, sig(dp.rx_len)),
                // Echo to the arrival port: bitmap = 1 << rx_port.
                sig_write(dp.tx_ports, shl(lit(1, 8), sig(dp.rx_port))),
                sig_write(dp.tx_valid, tru()),
                pause(),
                sig_write(dp.tx_valid, fls()),
                sig_write(dp.rx_done, tru()),
                pause(),
                sig_write(dp.rx_done, fls()),
            ])],
        );
        pb.build().unwrap()
    }

    #[test]
    fn mirror_on_rtl_backend() {
        let prog = mirror_program();
        let rtl = RtlMachine::new(kiwi::compile(&prog).unwrap());
        let mut drv = DataplaneDriver::new(rtl).unwrap();
        let mut f = Frame::new(vec![0xab; 64]);
        f.in_port = 2;
        let out = drv.process(&f, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(out.tx.len(), 1);
        assert_eq!(out.tx[0].ports, 1 << 2);
        assert_eq!(out.tx[0].frame.bytes(), f.bytes());
        assert!(out.cycles >= 2 && out.cycles < 32, "cycles {}", out.cycles);
    }

    #[test]
    fn mirror_on_interpreter_backend_matches_rtl() {
        let prog = mirror_program();
        let mut rtl_drv =
            DataplaneDriver::new(RtlMachine::new(kiwi::compile(&prog).unwrap())).unwrap();
        let mut sw_drv =
            DataplaneDriver::new(Machine::new(kiwi_ir::flatten(&prog).unwrap())).unwrap();
        for len in [60usize, 64, 65, 100, 127] {
            let mut f = Frame::new((0..len).map(|i| i as u8).collect());
            f.in_port = (len % 4) as u8;
            let a = rtl_drv
                .process(&f, &mut NullEnv, &mut NullObserver)
                .unwrap();
            let b = sw_drv.process(&f, &mut NullEnv, &mut NullObserver).unwrap();
            assert_eq!(a.tx, b.tx, "targets disagree at len {len}");
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let prog = mirror_program();
        let rtl = RtlMachine::new(kiwi::compile(&prog).unwrap());
        let mut drv = DataplaneDriver::new(rtl).unwrap();
        let f = Frame::new(vec![0; 500]);
        assert!(drv.process(&f, &mut NullEnv, &mut NullObserver).is_err());
    }

    #[test]
    fn missing_contract_detected() {
        let mut pb = ProgramBuilder::new("bare");
        pb.thread("main", vec![forever(vec![pause()])]);
        let prog = pb.build().unwrap();
        let rtl = RtlMachine::new(kiwi::compile(&prog).unwrap());
        assert!(DataplaneDriver::new(rtl).is_err());
    }

    #[test]
    fn hung_core_times_out() {
        // A service that never signals rx_done.
        let mut pb = ProgramBuilder::new("hang");
        let _dp = declare(&mut pb, 64);
        pb.thread("main", vec![forever(vec![pause()])]);
        let prog = pb.build().unwrap();
        let rtl = RtlMachine::new(kiwi::compile(&prog).unwrap());
        let mut drv = DataplaneDriver::new(rtl).unwrap();
        drv.max_cycles_per_frame = 100;
        let err = drv
            .process(&Frame::new(vec![0; 60]), &mut NullEnv, &mut NullObserver)
            .unwrap_err();
        assert!(err.0.contains("exceeded"));
    }

    #[test]
    fn dropping_service_produces_no_tx() {
        // Consumes frames without transmitting: an L3 filter dropping.
        let mut pb = ProgramBuilder::new("drop");
        let dp = declare(&mut pb, 64);
        pb.thread(
            "main",
            vec![forever(vec![
                wait_until(sig(dp.rx_valid)),
                sig_write(dp.rx_done, tru()),
                pause(),
                sig_write(dp.rx_done, fls()),
            ])],
        );
        let prog = pb.build().unwrap();
        let rtl = RtlMachine::new(kiwi::compile(&prog).unwrap());
        let mut drv = DataplaneDriver::new(rtl).unwrap();
        let out = drv
            .process(&Frame::new(vec![0; 60]), &mut NullEnv, &mut NullObserver)
            .unwrap();
        assert!(out.tx.is_empty());
    }
}
