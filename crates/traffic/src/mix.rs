//! Weighted composition of traffic generators: each frame is drawn
//! from one member generator chosen by weight, so a soak stream can be
//! "90 % conversations, 9 % chatter, 1 % attack" with one line per
//! ingredient. The composition is itself seeded and deterministic.

use crate::TrafficGen;
use emu_types::Frame;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A weighted mix of boxed generators.
pub struct Mix {
    rng: StdRng,
    members: Vec<(u32, Box<dyn TrafficGen>)>,
    total: u32,
}

impl Mix {
    /// Creates an empty mix seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        Mix {
            rng: StdRng::seed_from_u64(seed ^ 0x313_c0de),
            members: Vec::new(),
            total: 0,
        }
    }

    /// Adds a member with the given relative weight.
    pub fn add(mut self, weight: u32, gen: impl TrafficGen + 'static) -> Self {
        assert!(weight > 0, "zero-weight member");
        self.total += weight;
        self.members.push((weight, Box::new(gen)));
        self
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no members were added.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl TrafficGen for Mix {
    fn name(&self) -> &'static str {
        "mix"
    }

    fn next_frame(&mut self) -> Frame {
        assert!(!self.members.is_empty(), "empty mix");
        let mut pick = self.rng.gen_range(0u32..self.total);
        for (w, g) in &mut self.members {
            if pick < *w {
                return g.next_frame();
            }
            pick -= *w;
        }
        unreachable!("weights exhausted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adversarial, Background};

    #[test]
    fn weights_shape_the_blend() {
        let mut mix = Mix::new(1)
            .add(9, Background::new(2, &[0]))
            .add(1, Adversarial::new(3, &[0]));
        let n = 5_000;
        // Background is ARP/ICMP only; adversarial never emits ARP and
        // only rarely a valid ICMP-free IPv4 frame, so count ARP+ICMP.
        let mut clean = 0;
        for _ in 0..n {
            let f = mix.next_frame();
            let et = f.ethertype();
            if et == emu_types::proto::ether_type::ARP
                || (et == emu_types::proto::ether_type::IPV4
                    && crate::build::byte_at(&f, 23) == 1
                    && crate::build::ipv4_csum_ok(&f) == Some(true))
            {
                clean += 1;
            }
        }
        let ratio = clean as f64 / n as f64;
        assert!((ratio - 0.9).abs() < 0.05, "background ratio {ratio}");
    }
}
