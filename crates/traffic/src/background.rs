//! Background chatter: the ARP requests and ICMP echoes every real
//! Ethernet segment carries, regardless of which service is deployed.
//! Services that don't speak these protocols must drop them cleanly —
//! a switch floods/forwards them — so soak mixes always include a slice
//! of this generator.

use crate::build::arp_request;
#[cfg(test)]
use crate::build::byte_at;
use crate::TrafficGen;
use emu_services::icmp::echo_request_frame;
use emu_types::proto::offset;
use emu_types::{bitutil, checksum, Frame, Ipv4, MacAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// ARP/ICMP background traffic from a bounded pool of unicast hosts.
pub struct Background {
    rng: StdRng,
    in_ports: Vec<u8>,
    seq: u16,
}

impl Background {
    /// Number of distinct chattering hosts.
    pub const HOSTS: u64 = 32;

    /// Creates the stream; frames arrive on ports drawn from
    /// `in_ports`.
    pub fn new(seed: u64, in_ports: &[u8]) -> Self {
        assert!(!in_ports.is_empty());
        Background {
            rng: StdRng::seed_from_u64(seed ^ 0xb6_77e4),
            in_ports: in_ports.to_vec(),
            seq: 0,
        }
    }

    fn host_mac(i: u64) -> MacAddr {
        // Locally administered, unicast (bit 0 of the first octet clear).
        MacAddr::from_u64(0x02_00_00_00_b0_00 + i)
    }
}

impl TrafficGen for Background {
    fn name(&self) -> &'static str {
        "background"
    }

    fn next_frame(&mut self) -> Frame {
        let host = self.rng.gen_range(0u64..Self::HOSTS);
        let port = self.in_ports[self.rng.gen_range(0usize..self.in_ports.len())];
        let src_ip = Ipv4::new(10, 2, host as u8, 1);
        if self.rng.gen_bool(0.5) {
            let target = Ipv4::new(10, 2, self.rng.gen_range(0u8..32), 1);
            arp_request(Self::host_mac(host), src_ip, target, port)
        } else {
            self.seq = self.seq.wrapping_add(1);
            let len = self.rng.gen_range(8usize..64);
            let mut f = echo_request_frame(len, self.seq);
            // Re-source the echo from the chattering host (the ICMP
            // checksum does not cover the IP header, so only the IP
            // checksum needs refreshing).
            let b = f.bytes_mut();
            b[offset::IPV4_SRC..offset::IPV4_SRC + 4].copy_from_slice(&src_ip.octets());
            bitutil::set16(b, offset::IPV4_CSUM, 0);
            let c = checksum::internet_checksum(&b[offset::IPV4..offset::IPV4 + 20]);
            bitutil::set16(b, offset::IPV4_CSUM, c);
            b[offset::ETH_SRC..offset::ETH_SRC + 6].copy_from_slice(&Self::host_mac(host).octets());
            f.in_port = port;
            f
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chatter_is_arp_and_icmp_only_with_unicast_sources() {
        let mut g = Background::new(8, &[0, 1, 2, 3]);
        let (mut arp, mut icmp) = (0, 0);
        for _ in 0..400 {
            let f = g.next_frame();
            assert!(!f.src_mac().is_multicast(), "sources must be unicast");
            match f.ethertype() {
                emu_types::proto::ether_type::ARP => arp += 1,
                emu_types::proto::ether_type::IPV4 => {
                    assert_eq!(byte_at(&f, offset::IPV4_PROTO), 1, "ICMP only");
                    assert_eq!(crate::build::ipv4_csum_ok(&f), Some(true));
                    icmp += 1;
                }
                t => panic!("unexpected ethertype {t:#06x}"),
            }
        }
        assert!(arp > 100 && icmp > 100, "both kinds present: {arp}/{icmp}");
    }
}
