//! Flow-churn workloads: traffic whose *working set* turns over.
//!
//! The steady-state generators ([`crate::TcpConversations`],
//! [`crate::Background`]) keep a fixed population of flows alive
//! forever, so a stateful service's tables fill once and then idle.
//! Real deployments churn: flows arrive, live, and silently depart, and
//! the departed flows' state must age out (TTL expiry) or be evicted —
//! the million-flow regime the scaled-up tables exist for. These
//! generators manufacture that regime deterministically:
//!
//! * [`FlowChurn`] — a bounded pool of live UDP flows for NAT-style
//!   services. Senders are Zipf-picked (elephants and mice); churn
//!   events retire a random flow and admit a fresh one, so retired
//!   flows go idle and their translations expire.
//! * [`MacChurn`] — a sliding window of active stations for the
//!   learning switch. The window advances as stations fall silent, so
//!   aged-out MACs flood again until re-learned.
//!
//! Both are pure functions of their constructor arguments (same seed →
//! byte-identical stream), like every [`TrafficGen`].

use crate::build::udp_frame;
use crate::mc::Zipf;
use crate::TrafficGen;
use emu_types::proto::ether_type;
use emu_types::{Frame, Ipv4, MacAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bounded pool of live UDP flows with Zipf-skewed send rates and
/// per-frame churn, for NAT-style stateful services.
///
/// Every flow is a unique `{src_ip, sport}` pair on an internal port
/// (never the NAT's external port 0), aimed at one remote server.
/// With probability `churn_permille`/1000 per frame, one random pool
/// slot is retired and replaced by a brand-new flow; the retired flow
/// never sends again, so its mapping idles until the table's TTL
/// reclaims it. Keep `live` under the deployment's ephemeral-port
/// budget (≈ 15 000 ports per NAT shard) or allocations will exhaust.
pub struct FlowChurn {
    rng: StdRng,
    zipf: Zipf,
    /// Flow id per pool slot; ids are never reused.
    pool: Vec<u64>,
    next_id: u64,
    churn_permille: u32,
    in_ports: Vec<u8>,
}

impl FlowChurn {
    /// `live` concurrent flows, replaced at `churn_permille`/1000 per
    /// frame, sending from internal `in_ports` (must not contain 0).
    pub fn new(seed: u64, live: usize, churn_permille: u32, in_ports: &[u8]) -> Self {
        assert!(live > 0);
        assert!(churn_permille <= 1000);
        assert!(
            !in_ports.is_empty() && !in_ports.contains(&0),
            "port 0 is external"
        );
        FlowChurn {
            rng: StdRng::seed_from_u64(seed ^ 0xf10c_44e1),
            zipf: Zipf::new(live, 1.05),
            pool: (0..live as u64).collect(),
            next_id: live as u64,
            churn_permille,
            in_ports: in_ports.to_vec(),
        }
    }

    /// Distinct flows started so far (live + departed).
    pub fn flows_started(&self) -> u64 {
        self.next_id
    }

    /// The immutable 5-tuple ingredients of flow `id`: ids map to
    /// unique `{src_ip, sport}` pairs (10.0.0.0/8 hosts × 4096 ports),
    /// so fresh flows always need fresh translations.
    fn endpoint(&self, id: u64) -> (Ipv4, u16, u8) {
        let host = 0x0a00_0000 | (id as u32 & 0x00ff_ffff);
        let sport = 1024 + ((id >> 24) % 4096) as u16;
        let in_port = self.in_ports[(id % self.in_ports.len() as u64) as usize];
        (Ipv4(host), sport, in_port)
    }

    /// The frame flow `id` sends.
    fn frame_for(&self, id: u64) -> Frame {
        let (src, sport, in_port) = self.endpoint(id);
        udp_frame(
            MacAddr::from_u64(0x0200_0000_0000 | id),
            MacAddr::from_u64(0x0200_00ff_ffff),
            src,
            sport,
            Ipv4(0x0808_0808),
            443,
            b"churn-flow-payload",
            in_port,
        )
    }

    /// One frame per live pool slot, in slot order — prefill for
    /// benchmarks that need every live flow's state resident before
    /// measuring. Consumes no randomness (the stream is unchanged).
    pub fn warmup_frames(&self) -> Vec<Frame> {
        self.pool.iter().map(|&id| self.frame_for(id)).collect()
    }
}

impl TrafficGen for FlowChurn {
    fn name(&self) -> &'static str {
        "flow-churn"
    }

    fn next_frame(&mut self) -> Frame {
        if self.rng.gen_range(0u32..1000) < self.churn_permille {
            // One flow departs, a fresh one takes its slot.
            let slot = self.rng.gen_range(0..self.pool.len());
            self.pool[slot] = self.next_id;
            self.next_id += 1;
        }
        let id = self.pool[self.zipf.sample(&mut self.rng)];
        self.frame_for(id)
    }
}

/// A sliding window of active stations for the learning switch: MACs
/// enter at the head, chatter to window-mates, and fall silent when
/// the window passes them — exercising learn, forward, flood, aging,
/// and (when the window outruns the table) eviction.
pub struct MacChurn {
    rng: StdRng,
    /// The window is `[oldest, oldest + live)`; station `k`'s MAC and
    /// attachment port derive from `k`.
    oldest: u64,
    live: u64,
    churn_permille: u32,
}

impl MacChurn {
    /// `live` concurrently-active stations; the window advances at
    /// `churn_permille`/1000 per frame.
    pub fn new(seed: u64, live: usize, churn_permille: u32) -> Self {
        assert!(live > 0);
        assert!(churn_permille <= 1000);
        MacChurn {
            rng: StdRng::seed_from_u64(seed ^ 0x3ac5_0b1d),
            oldest: 0,
            live: live as u64,
            churn_permille,
        }
    }

    /// Stations that have ever been in the window.
    pub fn stations_seen(&self) -> u64 {
        self.oldest + self.live
    }

    fn mac(station: u64) -> MacAddr {
        MacAddr::from_u64(0x0600_0000_0000 | station)
    }

    /// One frame per in-window station (each station sends once, so
    /// the switch learns every live MAC) — prefill for benchmarks.
    /// Consumes no randomness (the stream is unchanged).
    pub fn warmup_frames(&self) -> Vec<Frame> {
        (self.oldest..self.oldest + self.live)
            .map(|k| {
                let dst = self.oldest + (k - self.oldest + 1) % self.live;
                let mut f =
                    Frame::ethernet(Self::mac(dst), Self::mac(k), ether_type::IPV4, &[0x5a; 46]);
                f.in_port = (k % 4) as u8;
                f
            })
            .collect()
    }
}

impl TrafficGen for MacChurn {
    fn name(&self) -> &'static str {
        "mac-churn"
    }

    fn next_frame(&mut self) -> Frame {
        if self.rng.gen_range(0u32..1000) < self.churn_permille {
            self.oldest += 1; // the oldest station falls silent
        }
        let src = self.oldest + self.rng.gen_range(0..self.live);
        // Mostly window-mates (unicast once learned); occasionally a
        // recently-silenced station, whose aged-out entry floods.
        let dst = if self.oldest > 0 && self.rng.gen_range(0u32..8) == 0 {
            self.oldest - 1 - self.rng.gen_range(0..self.oldest.min(self.live))
        } else {
            self.oldest + self.rng.gen_range(0..self.live)
        };
        let mut f = Frame::ethernet(
            Self::mac(dst),
            Self::mac(src),
            ether_type::IPV4,
            &[0x5a; 46],
        );
        f.in_port = (src % 4) as u8;
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_churn_turns_the_pool_over() {
        let mut gen = FlowChurn::new(7, 50, 200, &[1, 2, 3]);
        let frames = gen.take(2000);
        assert_eq!(frames.len(), 2000);
        // ~200/1000 × 2000 churn events started new flows.
        assert!(gen.flows_started() > 50 + 200, "{}", gen.flows_started());
        // All traffic stays on internal ports with valid checksums.
        for f in &frames {
            assert_ne!(f.in_port, 0);
            assert_eq!(crate::build::ipv4_csum_ok(f), Some(true));
            assert_eq!(crate::build::l4_csum_ok(f), Some(true));
        }
    }

    #[test]
    fn flow_churn_ids_give_unique_endpoints() {
        let gen = FlowChurn::new(1, 4, 0, &[1]);
        let mut seen = std::collections::HashSet::new();
        for id in 0..100_000u64 {
            let (ip, sport, _) = gen.endpoint(id);
            assert!(seen.insert((ip.0, sport)), "id {id} aliases an endpoint");
        }
    }

    #[test]
    fn mac_churn_slides_the_window() {
        let mut gen = MacChurn::new(9, 32, 100);
        let frames = gen.take(3000);
        assert!(gen.stations_seen() > 32 + 100);
        // Frames are plain ethernet with in_port derived from the
        // sending station.
        for f in &frames {
            assert!(f.in_port < 4);
            assert_eq!(f.ethertype(), ether_type::IPV4);
        }
    }
}
