//! Stateful TCP client conversations: SYN → ACK → data… → FIN, with
//! correct sequence/acknowledgement arithmetic and real checksums.
//!
//! Each session is one client 5-tuple cycling through the dialogue
//! forever (a new conversation reuses the tuple, as real clients reuse
//! ephemeral ports); the interleaving across sessions is drawn from the
//! seeded RNG. The tuple pool is deliberately *bounded* so stateful
//! consumers (NAT translation tables, checker models) see a bounded
//! flow count no matter how many frames are generated.

use crate::build::{tcp_flags, tcp_frame};
use crate::TrafficGen;
use emu_types::{Frame, Ipv4, MacAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, Copy)]
enum Step {
    Syn,
    Ack,
    Data(u8),
    Fin,
}

struct Session {
    client: Ipv4,
    sport: u16,
    server: Ipv4,
    dport: u16,
    in_port: u8,
    step: Step,
    seq: u32,
    srv_isn: u32,
}

/// A pool of interleaved client-side TCP conversations.
pub struct TcpConversations {
    rng: StdRng,
    sessions: Vec<Session>,
}

impl TcpConversations {
    /// Client and server MACs carried by every segment (unicast,
    /// locally administered).
    pub const CLIENT_MAC: u64 = 0x02_00_00_00_0a_01;
    /// Server-side MAC.
    pub const SERVER_MAC: u64 = 0x02_00_00_00_0a_02;

    /// Creates `sessions` interleaved conversations seeded by `seed`;
    /// each session is pinned to one of `in_ports` (frames of one flow
    /// always arrive on one physical port, as a real access port would
    /// deliver them).
    pub fn new(seed: u64, sessions: usize, in_ports: &[u8]) -> Self {
        assert!(sessions > 0 && !in_ports.is_empty());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7c9_1e55);
        let sessions = (0..sessions)
            .map(|i| {
                let isn = rng.gen_range(0u32..u32::MAX);
                Session {
                    client: Ipv4::new(192, 168, 1, (i % 200) as u8 + 2),
                    sport: 20_000 + (i as u16 % 8_000),
                    server: Ipv4::new(8, 8, (i % 4) as u8, 8),
                    dport: [80u16, 443, 8080, 22][i % 4],
                    in_port: in_ports[i % in_ports.len()],
                    step: Step::Syn,
                    seq: isn,
                    srv_isn: rng.gen_range(0u32..u32::MAX),
                }
            })
            .collect();
        TcpConversations { rng, sessions }
    }

    /// Number of distinct 5-tuples the stream will ever use.
    pub fn flow_count(&self) -> usize {
        self.sessions.len()
    }
}

impl TrafficGen for TcpConversations {
    fn name(&self) -> &'static str {
        "tcp-conversations"
    }

    fn next_frame(&mut self) -> Frame {
        let k = self.rng.gen_range(0..self.sessions.len());
        let payload_len = self.rng.gen_range(8usize..64);
        let n_data = self.rng.gen_range(1u8..5);
        let next_isn = self.rng.gen_range(0u32..u32::MAX);
        let s = &mut self.sessions[k];
        // The model is a pure client-push dialogue: the (fabricated)
        // server sends no data, so the client's ack stays at its ISN+1.
        let ack = s.srv_isn.wrapping_add(1);
        let emit = |s: &Session, flags: u8, ack: u32, payload: &[u8]| {
            tcp_frame(
                MacAddr::from_u64(Self::CLIENT_MAC),
                MacAddr::from_u64(Self::SERVER_MAC),
                s.client,
                s.sport,
                s.server,
                s.dport,
                s.seq,
                ack,
                flags,
                payload,
                s.in_port,
            )
        };
        match s.step {
            Step::Syn => {
                let f = emit(s, tcp_flags::SYN, 0, &[]);
                s.seq = s.seq.wrapping_add(1); // SYN consumes one sequence number
                s.step = Step::Ack;
                f
            }
            Step::Ack => {
                let f = emit(s, tcp_flags::ACK, ack, &[]);
                s.step = Step::Data(n_data);
                f
            }
            Step::Data(left) => {
                let payload: Vec<u8> = (0..payload_len)
                    .map(|i| (s.seq as usize + i) as u8)
                    .collect();
                let f = emit(s, tcp_flags::PSH | tcp_flags::ACK, ack, &payload);
                s.seq = s.seq.wrapping_add(payload.len() as u32);
                s.step = if left <= 1 {
                    Step::Fin
                } else {
                    Step::Data(left - 1)
                };
                f
            }
            Step::Fin => {
                let f = emit(s, tcp_flags::FIN | tcp_flags::ACK, ack, &[]);
                // Start the next conversation on the same tuple.
                s.step = Step::Syn;
                s.seq = next_isn;
                s.srv_isn = next_isn.rotate_left(13);
                f
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::l4_csum_ok;
    use emu_types::bitutil;
    use emu_types::proto::offset;

    #[test]
    fn conversations_progress_with_correct_seq_arithmetic() {
        let mut g = TcpConversations::new(3, 1, &[1]);
        // Single session: the dialogue order is SYN, ACK, data…, FIN.
        let syn = g.next_frame();
        assert_eq!(syn.bytes()[offset::L4 + 13], tcp_flags::SYN);
        let isn = bitutil::get32(syn.bytes(), offset::L4 + 4);
        let ack = g.next_frame();
        assert_eq!(ack.bytes()[offset::L4 + 13], tcp_flags::ACK);
        assert_eq!(
            bitutil::get32(ack.bytes(), offset::L4 + 4),
            isn.wrapping_add(1),
            "ACK's seq must follow the SYN"
        );
        let mut seq = isn.wrapping_add(1);
        let mut f = g.next_frame();
        while f.bytes()[offset::L4 + 13] & tcp_flags::FIN == 0 {
            assert_eq!(
                bitutil::get32(f.bytes(), offset::L4 + 4),
                seq,
                "data segment must continue the sequence space"
            );
            let total = bitutil::get16(f.bytes(), offset::IPV4 + 2) as u32;
            seq = seq.wrapping_add(total - 40); // payload bytes advance seq
            f = g.next_frame();
        }
        assert_eq!(bitutil::get32(f.bytes(), offset::L4 + 4), seq, "FIN seq");
        // Next conversation restarts with a fresh SYN on the same tuple.
        let again = g.next_frame();
        assert_eq!(again.bytes()[offset::L4 + 13], tcp_flags::SYN);
        assert_eq!(
            bitutil::get16(again.bytes(), offset::L4),
            bitutil::get16(syn.bytes(), offset::L4),
            "tuple must be reused"
        );
    }

    #[test]
    fn every_segment_has_valid_checksums() {
        let mut g = TcpConversations::new(11, 6, &[1, 2, 3]);
        for i in 0..500 {
            let f = g.next_frame();
            assert_eq!(l4_csum_ok(&f), Some(true), "frame {i}");
            assert_eq!(crate::build::ipv4_csum_ok(&f), Some(true), "frame {i}");
        }
    }

    #[test]
    fn flow_pool_is_bounded() {
        let mut g = TcpConversations::new(1, 6, &[1]);
        let tuples: std::collections::HashSet<Vec<u8>> = (0..2_000)
            .map(|_| {
                let f = g.next_frame();
                f.bytes()[offset::IPV4_SRC..offset::L4 + 4].to_vec()
            })
            .collect();
        assert!(tuples.len() <= 6, "{} tuples from 6 sessions", tuples.len());
    }
}
