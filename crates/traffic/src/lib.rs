//! # `emu-traffic` — the scenario engine for the Emu reproduction
//!
//! The ROADMAP north-star is a system serving "heavy traffic from
//! millions of users" across "as many scenarios as you can imagine";
//! this crate manufactures that traffic. Every generator is a
//! deterministic, seeded stream of [`Frame`]s — the same seed always
//! yields the same byte-exact stream, on every platform — so a failing
//! soak run is reproducible from two integers (seed, frame index), and
//! any failing window can be cut into a committed fixture with
//! [`replay::Trace`].
//!
//! ## Generators
//!
//! | generator | workload |
//! |---|---|
//! | [`TcpConversations`] | stateful SYN → ACK → data → FIN client dialogues with correct seq/ack and real checksums (NAT, tcp_ping) |
//! | [`MemcachedZipf`] | Zipf-keyed GET/SET/DELETE mixes over the ASCII-over-UDP protocol, key↔flow lockstep for shard affinity |
//! | [`DnsWeighted`] | weighted name distributions of well-formed DNS queries |
//! | [`Background`] | ARP requests and ICMP echoes — the chatter every real segment carries |
//! | [`Adversarial`] | truncated headers, bad checksums, wrong EtherTypes, oversize frames — streams that must never trap an engine |
//! | [`FlowChurn`] | a bounded pool of live UDP flows with Zipf send rates and flow arrival/departure — departed flows' NAT state must age out |
//! | [`MacChurn`] | a sliding window of active stations — silent MACs age out of the switch and flood until re-learned |
//! | [`Mix`] | weighted composition of any of the above |
//!
//! All of them implement [`TrafficGen`]; [`Mix`] composes boxed
//! generators by weight:
//!
//! ```
//! use emu_traffic::{Adversarial, Mix, TcpConversations, TrafficGen};
//!
//! let mut mix = Mix::new(7)
//!     .add(9, TcpConversations::new(1, 8, &[1, 2, 3]))
//!     .add(1, Adversarial::new(2, &[0, 1, 2, 3]));
//! let frames = mix.take(1000);
//! assert_eq!(frames.len(), 1000);
//! // Same seeds → the same stream, byte for byte.
//! let mut again = Mix::new(7)
//!     .add(9, TcpConversations::new(1, 8, &[1, 2, 3]))
//!     .add(1, Adversarial::new(2, &[0, 1, 2, 3]));
//! assert_eq!(again.take(1000), frames);
//! ```
//!
//! ## Checkers
//!
//! [`check`] holds per-service reference models — [`NatChecker`],
//! [`McModel`], [`SwitchModel`] — that consume a batch's inputs plus its
//! [`emu_core::BatchReport`] and verify service invariants frame by
//! frame (translation consistency, cache coherence, learned
//! forwarding). The `soak` bench bin (`crates/bench/src/bin/soak.rs`)
//! wires generators and checkers around sharded parallel engines at the
//! million-frame scale.
//!
//! ## Record / replay
//!
//! [`replay::Trace`] records a stream's inputs *and* the engine's
//! outputs into a compact binary format; committed fixtures under
//! `tests/fixtures/` replay byte-exact on every target, so generator or
//! service refactors cannot silently change semantics.

pub mod adversarial;
pub mod background;
pub mod build;
pub mod check;
pub mod churn;
pub mod dns;
pub mod mc;
pub mod mix;
pub mod replay;
pub mod scenarios;
pub mod tcp;

pub use adversarial::Adversarial;
pub use background::Background;
pub use check::{Checker, ClientCheck, ClientOutcome, McModel, NatChecker, SwitchModel};
pub use churn::{FlowChurn, MacChurn};
pub use dns::DnsWeighted;
pub use mc::MemcachedZipf;
pub use mix::Mix;
pub use replay::Trace;
pub use tcp::TcpConversations;

use emu_types::Frame;

/// A deterministic, seeded source of frames. Generators are infinite:
/// [`TrafficGen::next_frame`] always produces the next frame of the
/// stream, and the stream is a pure function of the constructor
/// arguments (notably the seed).
pub trait TrafficGen {
    /// Short label for logs and bench tables.
    fn name(&self) -> &'static str;

    /// Produces the next frame of the stream.
    fn next_frame(&mut self) -> Frame;

    /// Collects the next `n` frames.
    fn take(&mut self, n: usize) -> Vec<Frame>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type NamedGen = (&'static str, fn() -> Box<dyn TrafficGen>);

    /// Every shipped generator replays identically for a fixed seed.
    #[test]
    fn all_generators_are_deterministic() {
        let build: Vec<NamedGen> = vec![
            ("tcp", || Box::new(TcpConversations::new(5, 6, &[1, 2]))),
            ("mc", || Box::new(MemcachedZipf::new(5, 32, 1.1, 0.9))),
            ("dns", || {
                Box::new(DnsWeighted::new(5, &[("a.b", 3), ("example.com", 1)]))
            }),
            ("bg", || Box::new(Background::new(5, &[0, 1, 2, 3]))),
            ("adv", || Box::new(Adversarial::new(5, &[0, 1]))),
            ("flow-churn", || {
                Box::new(FlowChurn::new(5, 40, 150, &[1, 2, 3]))
            }),
            ("mac-churn", || Box::new(MacChurn::new(5, 24, 120))),
            ("mix", || {
                Box::new(
                    Mix::new(5)
                        .add(2, Background::new(1, &[0]))
                        .add(1, Adversarial::new(2, &[1])),
                )
            }),
        ];
        for (name, mk) in build {
            let mut a = mk();
            let mut b = mk();
            for i in 0..200 {
                assert_eq!(a.next_frame(), b.next_frame(), "{name} frame {i}");
            }
        }
    }
}
