//! Records the golden traffic fixtures under `tests/fixtures/`.
//!
//! Run from the workspace root after an *intentional* semantic change
//! to a generator or service, then review the diff:
//!
//! ```text
//! cargo run -p emu-traffic --bin record_fixtures [-- <out_dir>]
//! ```
//!
//! `tests/traffic_replay.rs` replays these recordings byte-exact on
//! every target; a fixture diff is the reviewable record of a semantic
//! change.

use emu_core::Target;
use emu_traffic::scenarios::fixture_scenarios;
use emu_traffic::Trace;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tests/fixtures".to_string());
    let out = std::path::Path::new(&out_dir);
    std::fs::create_dir_all(out).expect("create fixture dir");
    for s in fixture_scenarios() {
        let svc = (s.service)();
        let mut engine = svc
            .engine(Target::Cpu)
            .build()
            .expect("fixture engines are single-shard CPU");
        let inputs = (s.inputs)();
        let trace = Trace::record(&mut engine, &inputs);
        let path = out.join(format!("{}.trace", s.name));
        trace.save(&path).expect("write fixture");
        let outputs: usize = trace.entries.iter().map(|e| e.outputs.len()).sum();
        println!(
            "{}: {} inputs, {} outputs -> {}",
            s.name,
            trace.entries.len(),
            outputs,
            path.display()
        );
    }
}
