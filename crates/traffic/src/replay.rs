//! Record / replay: a pcap-style binary capture of a frame stream
//! *plus* the engine's response to every frame, so any traffic window —
//! a failing soak segment, a regression scenario — round-trips into a
//! committed fixture that replays byte-exact on every target.
//!
//! Format (`EMUTRC01`, all integers little-endian):
//!
//! ```text
//! magic[8] = "EMUTRC01"
//! count: u32
//! entry*count:
//!   status: u8            0 = processed, 1 = rejected (e.g. oversize)
//!   in_port: u8
//!   len: u32, bytes[len]  the input frame
//!   out_count: u16
//!   out*out_count:
//!     ports: u8           destination port bitmap
//!     len: u32, bytes[len]
//! ```

use emu_core::{Engine, EngineError};
use emu_types::Frame;

const MAGIC: &[u8; 8] = b"EMUTRC01";

/// One recorded input with the engine's observed response.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// The offered frame.
    pub input: Frame,
    /// Whether input validation rejected the frame (oversize).
    pub rejected: bool,
    /// Transmitted frames, as `(port bitmap, frame)`.
    pub outputs: Vec<(u8, Frame)>,
}

/// A recorded stream: inputs and byte-exact expected outputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The entries in offer order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Runs `frames` through `engine` (one batch) and records every
    /// outcome.
    ///
    /// # Panics
    ///
    /// Panics if the engine traps — a trace is a golden fixture, and a
    /// trap while recording one is a bug to fix, not to enshrine.
    pub fn record(engine: &mut Engine, frames: &[Frame]) -> Trace {
        let report = engine.process_batch(frames);
        let entries = frames
            .iter()
            .zip(&report.outputs)
            .map(|(f, r)| match r {
                Ok(out) => TraceEntry {
                    input: f.clone(),
                    rejected: false,
                    outputs: out.tx.iter().map(|t| (t.ports, t.frame.clone())).collect(),
                },
                Err(EngineError::Oversize { .. }) => TraceEntry {
                    input: f.clone(),
                    rejected: true,
                    outputs: Vec::new(),
                },
                Err(e) => panic!("engine trapped while recording a trace: {e}"),
            })
            .collect();
        Trace { entries }
    }

    /// The recorded input frames (for re-offering to another engine).
    pub fn inputs(&self) -> Vec<Frame> {
        self.entries.iter().map(|e| e.input.clone()).collect()
    }

    /// Replays the inputs through `engine` and verifies every response
    /// byte-exactly against the recording. Returns the first mismatch
    /// as an error.
    pub fn replay(&self, engine: &mut Engine) -> Result<(), String> {
        let frames = self.inputs();
        let report = engine.process_batch(&frames);
        for (i, (want, got)) in self.entries.iter().zip(&report.outputs).enumerate() {
            match got {
                Ok(out) => {
                    if want.rejected {
                        return Err(format!("frame {i}: expected rejection, got output"));
                    }
                    if out.tx.len() != want.outputs.len() {
                        return Err(format!(
                            "frame {i}: {} tx frames, recorded {}",
                            out.tx.len(),
                            want.outputs.len()
                        ));
                    }
                    for (j, (tx, (ports, frame))) in out.tx.iter().zip(&want.outputs).enumerate() {
                        if tx.ports != *ports {
                            return Err(format!(
                                "frame {i} tx {j}: ports {:#06b} != recorded {:#06b}",
                                tx.ports, ports
                            ));
                        }
                        if tx.frame.bytes() != frame.bytes() {
                            return Err(format!("frame {i} tx {j}: bytes diverged"));
                        }
                    }
                }
                Err(EngineError::Oversize { .. }) => {
                    if !want.rejected {
                        return Err(format!("frame {i}: unexpected rejection"));
                    }
                }
                Err(e) => return Err(format!("frame {i}: engine trapped: {e}")),
            }
        }
        Ok(())
    }

    /// Serializes the trace.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.push(u8::from(e.rejected));
            out.push(e.input.in_port);
            out.extend_from_slice(&(e.input.len() as u32).to_le_bytes());
            out.extend_from_slice(e.input.bytes());
            out.extend_from_slice(&(e.outputs.len() as u16).to_le_bytes());
            for (ports, f) in &e.outputs {
                out.push(*ports);
                out.extend_from_slice(&(f.len() as u32).to_le_bytes());
                out.extend_from_slice(f.bytes());
            }
        }
        out
    }

    /// Parses a serialized trace.
    pub fn from_bytes(data: &[u8]) -> Result<Trace, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = data
                .get(*pos..*pos + n)
                .ok_or_else(|| format!("truncated trace at byte {pos}", pos = *pos))?;
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 8)? != MAGIC {
            return Err("bad trace magic".into());
        }
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let rejected = take(&mut pos, 1)?[0] != 0;
            let in_port = take(&mut pos, 1)?[0];
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let mut input = Frame::new(take(&mut pos, len)?.to_vec());
            input.in_port = in_port;
            let out_count = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
            let mut outputs = Vec::with_capacity(out_count);
            for _ in 0..out_count {
                let ports = take(&mut pos, 1)?[0];
                let flen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
                outputs.push((ports, Frame::new(take(&mut pos, flen)?.to_vec())));
            }
            entries.push(TraceEntry {
                input,
                rejected,
                outputs,
            });
        }
        if pos != data.len() {
            return Err(format!("{} trailing bytes after trace", data.len() - pos));
        }
        Ok(Trace { entries })
    }

    /// Writes the trace to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a trace from `path`.
    pub fn load(path: &std::path::Path) -> Result<Trace, String> {
        let data = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Background, TrafficGen};
    use emu_core::Target;

    #[test]
    fn traces_round_trip_through_bytes() {
        let svc = emu_services::switch_ip_cam();
        let mut engine = svc.engine(Target::Cpu).build().unwrap();
        let frames = Background::new(1, &[0, 1, 2, 3]).take(24);
        let trace = Trace::record(&mut engine, &frames);
        let parsed = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(parsed, trace);
        assert!(parsed.entries.iter().any(|e| !e.outputs.is_empty()));
    }

    #[test]
    fn replay_detects_divergence() {
        let svc = emu_services::switch_ip_cam();
        let mut engine = svc.engine(Target::Cpu).build().unwrap();
        let frames = Background::new(2, &[0, 1]).take(12);
        let mut trace = Trace::record(&mut engine, &frames);
        // Fresh engine, same inputs: replay must pass.
        let mut fresh = svc.engine(Target::Cpu).build().unwrap();
        trace.replay(&mut fresh).unwrap();
        // Tamper with a recorded output: replay must fail.
        let e = trace
            .entries
            .iter_mut()
            .find(|e| !e.outputs.is_empty())
            .unwrap();
        e.outputs[0].0 ^= 0b1;
        let mut fresh = svc.engine(Target::Cpu).build().unwrap();
        assert!(trace.replay(&mut fresh).is_err());
    }

    #[test]
    fn rejected_frames_are_recorded_as_such() {
        let svc = emu_services::memcached(); // 512 B frame cap
        let mut engine = svc.engine(Target::Cpu).build().unwrap();
        let big = Frame::new(vec![0xaa; 900]);
        let trace = Trace::record(&mut engine, &[big]);
        assert!(trace.entries[0].rejected);
        let mut fresh = svc.engine(Target::Cpu).build().unwrap();
        trace.replay(&mut fresh).unwrap();
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        assert!(Trace::from_bytes(b"not a trace").is_err());
        let svc = emu_services::switch_ip_cam();
        let mut engine = svc.engine(Target::Cpu).build().unwrap();
        let trace = Trace::record(&mut engine, &Background::new(3, &[0]).take(4));
        let mut bytes = trace.to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(Trace::from_bytes(&bytes).is_err());
        bytes.extend_from_slice(&[0; 40]);
        assert!(Trace::from_bytes(&bytes).is_err());
    }
}
