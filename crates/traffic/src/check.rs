//! Per-service reference checkers: independent software models that
//! consume a batch's inputs plus its [`BatchReport`] and verify the
//! service's invariants frame by frame.
//!
//! Each checker mirrors its service's *observable contract* — not its
//! implementation — byte-reads included: a service core sees the frame
//! zero-extended to its buffer (see [`crate::build::byte_at`]), so the
//! models parse exactly the bytes the core parses, and malformed
//! traffic stays checkable.
//!
//! Every checker also enforces the engine-wide invariant that no frame
//! may *trap* a shard: [`EngineError::Trap`]/[`EngineError::Poisoned`]
//! results are violations regardless of the input (adversarial frames
//! must drop or pass, never wedge a core). `Oversize` rejections are
//! legitimate — the core never saw the frame.

use crate::build::{byte_at, ipv4_csum_ok, l4_csum_ok};
use emu_core::{BatchReport, Dispatch, EngineError, EngineResult, RssHash};
use emu_services::nat::FIRST_EPHEMERAL;
use emu_types::proto::{ether_type, ip_proto, offset};
use emu_types::{bitutil, Frame, Ipv4};
use netfpga_sim::dataplane::CoreOutput;
use std::collections::HashMap;

/// A frame-by-frame invariant checker over engine results.
pub trait Checker {
    /// Checker label for reports.
    fn name(&self) -> &'static str;

    /// Checks one input/result pair.
    fn observe(&mut self, input: &Frame, result: &EngineResult<CoreOutput>);

    /// Checks a whole batch in offer order.
    fn check_batch(&mut self, inputs: &[Frame], report: &BatchReport) {
        assert_eq!(inputs.len(), report.outputs.len(), "report/batch mismatch");
        for (f, r) in inputs.iter().zip(&report.outputs) {
            self.observe(f, r);
        }
    }

    /// Frames observed so far.
    fn frames(&self) -> u64;

    /// Invariant violations so far.
    fn violations(&self) -> u64;

    /// Human-readable descriptions of the first violations.
    fn notes(&self) -> &[String];
}

/// Shared violation bookkeeping.
#[derive(Debug, Default, Clone)]
struct Tally {
    frames: u64,
    violations: u64,
    notes: Vec<String>,
}

impl Tally {
    fn violate(&mut self, msg: String) {
        self.violations += 1;
        if self.notes.len() < 8 {
            self.notes.push(msg);
        }
    }

    /// Returns `true` if the result may be inspected further; counts
    /// traps as violations and oversize rejections as benign.
    fn admit(&mut self, i: u64, result: &EngineResult<CoreOutput>) -> bool {
        self.frames += 1;
        match result {
            Ok(_) => true,
            Err(EngineError::Oversize { .. }) => false,
            Err(e) => {
                self.violate(format!("frame {i}: engine must never trap: {e}"));
                false
            }
        }
    }
}

/// The service-side view of "is this frame translatable/parsable":
/// IPv4 EtherType, IHL 5 (the services reject options), protocol match.
fn ihl5(f: &Frame) -> bool {
    byte_at(f, offset::IPV4) & 0x0f == 5
}

fn l4_proto(f: &Frame) -> u8 {
    byte_at(f, offset::IPV4_PROTO)
}

// ---------------------------------------------------------------------
// NAT
// ---------------------------------------------------------------------

/// Reference checker for `emu_services::nat`: translation consistency
/// (one flow ↔ one stable external port), global external-port
/// uniqueness, per-shard ephemeral-range discipline under
/// `NatSteering`, header-rewrite exactness, TTL decrement, and
/// checksum-validity preservation (RFC 1624 incremental updates keep a
/// valid checksum valid).
pub struct NatChecker {
    public: Ipv4,
    shards: usize,
    /// {int_src, int_sport, proto} → allocated external port.
    fwd: HashMap<(u32, u16, u8), u16>,
    /// {ext_port, proto} → (int_src, int_sport, physical port).
    owner: HashMap<(u16, u8), (u32, u16, u8)>,
    tally: Tally,
}

impl NatChecker {
    /// Creates the checker for an engine of `shards` shards behind the
    /// given public address. `shards > 1` assumes the `NatSteering`
    /// allocation contract (shard *k* allocates `FIRST_EPHEMERAL + k`,
    /// stepping by the shard count) and checks the residue discipline.
    pub fn new(public: Ipv4, shards: usize) -> Self {
        assert!(shards >= 1);
        NatChecker {
            public,
            shards,
            fwd: HashMap::new(),
            owner: HashMap::new(),
            tally: Tally::default(),
        }
    }

    /// Live translation entries in the model.
    pub fn mappings(&self) -> usize {
        self.owner.len()
    }

    fn translatable(f: &Frame) -> bool {
        f.ethertype() == ether_type::IPV4
            && ihl5(f)
            && matches!(l4_proto(f), p if p == ip_proto::TCP || p == ip_proto::UDP)
    }

    /// Compares `got` against the input with the NAT rewrites applied
    /// and both checksum fields masked (validity is checked
    /// separately).
    fn expect_rewritten(
        &mut self,
        i: u64,
        input: &Frame,
        got: &Frame,
        rewrite: impl FnOnce(&mut [u8]),
    ) {
        let proto = l4_proto(input);
        let mut want = input.bytes().to_vec();
        want[offset::IPV4_TTL] = want[offset::IPV4_TTL].wrapping_sub(1);
        rewrite(&mut want);
        let mut got_b = got.bytes().to_vec();
        let l4_csum = if proto == ip_proto::TCP {
            offset::L4 + 16
        } else {
            offset::L4 + 6
        };
        for b in [&mut want, &mut got_b] {
            bitutil::set16(b, offset::IPV4_CSUM, 0);
            if b.len() >= l4_csum + 2 {
                bitutil::set16(b, l4_csum, 0);
            }
        }
        if want != got_b {
            self.tally
                .violate(format!("frame {i}: translated bytes diverge from model"));
        }
        // Incremental checksum updates must preserve validity.
        if ipv4_csum_ok(input) == Some(true) && ipv4_csum_ok(got) != Some(true) {
            self.tally
                .violate(format!("frame {i}: IP checksum invalidated"));
        }
        if l4_csum_ok(input) == Some(true) && l4_csum_ok(got) == Some(false) {
            self.tally
                .violate(format!("frame {i}: L4 checksum invalidated"));
        }
    }
}

impl Checker for NatChecker {
    fn name(&self) -> &'static str {
        "nat"
    }

    fn observe(&mut self, input: &Frame, result: &EngineResult<CoreOutput>) {
        let i = self.tally.frames;
        if !self.tally.admit(i, result) {
            return;
        }
        let out = result.as_ref().expect("admitted");
        if !Self::translatable(input) {
            if !out.tx.is_empty() {
                self.tally
                    .violate(format!("frame {i}: untranslatable frame transmitted"));
            }
            return;
        }
        let b = input.bytes();
        let proto = l4_proto(input);
        if input.in_port != 0 {
            // Outbound: must translate out of the external port.
            let src = bitutil::get32(b, offset::IPV4_SRC);
            let sport = bitutil::get16(b, offset::L4);
            let [tx] = &out.tx[..] else {
                self.tally
                    .violate(format!("frame {i}: outbound produced {} tx", out.tx.len()));
                return;
            };
            if tx.ports != 1 {
                self.tally.violate(format!(
                    "frame {i}: outbound left via ports {:#06b}, not the external port",
                    tx.ports
                ));
            }
            let got_ext = bitutil::get16(tx.frame.bytes(), offset::L4);
            let ext = match self.fwd.get(&(src, sport, proto)) {
                Some(&e) => {
                    if got_ext != e {
                        self.tally.violate(format!(
                            "frame {i}: flow remapped {e} → {got_ext} (translation \
                             consistency broken)"
                        ));
                    }
                    e
                }
                None => {
                    // Fresh allocation: range, uniqueness, residue.
                    if got_ext < FIRST_EPHEMERAL {
                        self.tally.violate(format!(
                            "frame {i}: allocated port {got_ext} below the ephemeral range"
                        ));
                    }
                    if self.owner.contains_key(&(got_ext, proto)) {
                        self.tally.violate(format!(
                            "frame {i}: external port {got_ext} allocated twice"
                        ));
                    }
                    if self.shards > 1 {
                        let home = RssHash.shard_of(input, self.shards);
                        let residue =
                            usize::from(got_ext.wrapping_sub(FIRST_EPHEMERAL)) % self.shards;
                        if residue != home {
                            self.tally.violate(format!(
                                "frame {i}: port {got_ext} outside shard {home}'s residue \
                                 class (ephemeral-range discipline)"
                            ));
                        }
                    }
                    self.fwd.insert((src, sport, proto), got_ext);
                    self.owner
                        .insert((got_ext, proto), (src, sport, input.in_port));
                    got_ext
                }
            };
            let public = self.public;
            self.expect_rewritten(i, input, &tx.frame, |w| {
                w[offset::IPV4_SRC..offset::IPV4_SRC + 4].copy_from_slice(&public.octets());
                bitutil::set16(w, offset::L4, ext);
            });
        } else {
            // Inbound: translate back iff the mapping exists.
            let dport = bitutil::get16(b, offset::L4 + 2);
            match self.owner.get(&(dport, proto)).copied() {
                Some((int_ip, int_port, phys)) => {
                    let [tx] = &out.tx[..] else {
                        self.tally.violate(format!(
                            "frame {i}: inbound to a live mapping produced {} tx",
                            out.tx.len()
                        ));
                        return;
                    };
                    if tx.ports != 1u8.checked_shl(phys.into()).unwrap_or(0) {
                        self.tally.violate(format!(
                            "frame {i}: reply delivered to ports {:#06b}, owner is port {phys}",
                            tx.ports
                        ));
                    }
                    self.expect_rewritten(i, input, &tx.frame, |w| {
                        w[offset::IPV4_DST..offset::IPV4_DST + 4]
                            .copy_from_slice(&Ipv4(int_ip).octets());
                        bitutil::set16(w, offset::L4 + 2, int_port);
                    });
                }
                None => {
                    if !out.tx.is_empty() {
                        self.tally.violate(format!(
                            "frame {i}: unsolicited inbound to port {dport} was not dropped"
                        ));
                    }
                }
            }
        }
    }

    fn frames(&self) -> u64 {
        self.tally.frames
    }
    fn violations(&self) -> u64 {
        self.tally.violations
    }
    fn notes(&self) -> &[String] {
        &self.tally.notes
    }
}

// ---------------------------------------------------------------------
// Memcached
// ---------------------------------------------------------------------

/// Offset of the memcached-UDP frame header in a request frame.
const MC_HDR: usize = 42;
/// Offset of the ASCII command.
const CMD: usize = 50;
/// The service's frame buffer capacity (see `emu_services::memcached`).
const MC_FRAME_CAP: usize = 512;

/// Reference model for `emu_services::memcached`: a shadow store that
/// predicts every GET/SET/DELETE reply, byte-reads mirrored from the
/// service's parser (zero-extended buffer, 8-byte key limit, skip-line
/// value scan).
///
/// **Precondition for sharded engines:** traffic must keep each key on
/// one flow (as [`crate::MemcachedZipf`] does), so per-shard stores
/// partition the keyspace and a single global model stays exact.
#[derive(Default)]
pub struct McModel {
    store: HashMap<Vec<u8>, [u8; 8]>,
    tally: Tally,
}

impl McModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keys currently live in the model.
    pub fn live_keys(&self) -> usize {
        self.store.len()
    }

    fn is_mc(f: &Frame) -> bool {
        f.ethertype() == ether_type::IPV4
            && l4_proto(f) == ip_proto::UDP
            && ihl5(f)
            && bitutil::get16(f.bytes(), offset::L4 + 2) == 11_211
    }

    /// Mirrors the service's key parser: from `idx` until space/CR,
    /// `None` when empty or over 8 bytes.
    fn parse_key(f: &Frame, idx: &mut usize) -> Option<Vec<u8>> {
        let mut key = Vec::new();
        loop {
            let b = byte_at(f, *idx);
            if b == b' ' || b == b'\r' {
                break;
            }
            if key.len() >= 8 {
                return None;
            }
            key.push(b);
            *idx += 1;
        }
        (!key.is_empty()).then_some(key)
    }

    /// Mirrors the SET value scan: skip to past the command line's
    /// `\n`, then read 8 bytes.
    fn parse_value(f: &Frame, mut idx: usize) -> [u8; 8] {
        while byte_at(f, idx) != b'\n' && idx < MC_FRAME_CAP - 9 {
            idx += 1;
        }
        idx += 1;
        std::array::from_fn(|k| byte_at(f, idx + k))
    }

    /// The reply the service must produce for `input`, or `None` for a
    /// drop. Updates the shadow store.
    fn expected_reply(&mut self, input: &Frame) -> Option<Vec<u8>> {
        if !Self::is_mc(input) {
            return None;
        }
        match byte_at(input, CMD) {
            b'g' => {
                let mut idx = CMD + 4;
                let key = Self::parse_key(input, &mut idx)?;
                Some(match self.store.get(&key) {
                    Some(v) => {
                        let mut r = b"VALUE ".to_vec();
                        r.extend_from_slice(&key);
                        r.extend_from_slice(b" 0 8\r\n");
                        r.extend_from_slice(v);
                        r.extend_from_slice(b"\r\nEND\r\n");
                        r
                    }
                    None => b"END\r\n".to_vec(),
                })
            }
            b's' => {
                let mut idx = CMD + 4;
                let key = Self::parse_key(input, &mut idx)?;
                let value = Self::parse_value(input, idx);
                self.store.insert(key, value);
                Some(b"STORED\r\n".to_vec())
            }
            b'd' => {
                let mut idx = CMD + 7;
                let key = Self::parse_key(input, &mut idx)?;
                Some(if self.store.remove(&key).is_some() {
                    b"DELETED\r\n".to_vec()
                } else {
                    b"NOT_FOUND\r\n".to_vec()
                })
            }
            _ => None,
        }
    }
}

impl Checker for McModel {
    fn name(&self) -> &'static str {
        "memcached"
    }

    fn observe(&mut self, input: &Frame, result: &EngineResult<CoreOutput>) {
        let i = self.tally.frames;
        if !self.tally.admit(i, result) {
            return;
        }
        let out = result.as_ref().expect("admitted");
        match self.expected_reply(input) {
            None => {
                if !out.tx.is_empty() {
                    self.tally
                        .violate(format!("frame {i}: non-request frame answered"));
                }
            }
            Some(want) => {
                let [tx] = &out.tx[..] else {
                    self.tally
                        .violate(format!("frame {i}: request produced {} tx", out.tx.len()));
                    return;
                };
                let got = emu_services::memcached::reply_text(&tx.frame);
                if got != want {
                    self.tally.violate(format!(
                        "frame {i}: reply {:?} != model {:?} (cache coherence)",
                        String::from_utf8_lossy(&got),
                        String::from_utf8_lossy(&want)
                    ));
                }
                if bitutil::get16(tx.frame.bytes(), MC_HDR) != bitutil::get16(input.bytes(), MC_HDR)
                {
                    self.tally
                        .violate(format!("frame {i}: request id not echoed"));
                }
                if tx.ports != 1u8.checked_shl(input.in_port.into()).unwrap_or(0) {
                    self.tally.violate(format!(
                        "frame {i}: reply left ports {:#06b}, not the arrival port",
                        tx.ports
                    ));
                }
                if ipv4_csum_ok(&tx.frame) != Some(true) {
                    self.tally
                        .violate(format!("frame {i}: reply IP checksum invalid"));
                }
            }
        }
    }

    fn frames(&self) -> u64 {
        self.tally.frames
    }
    fn violations(&self) -> u64 {
        self.tally.violations
    }
    fn notes(&self) -> &[String] {
        &self.tally.notes
    }
}

// ---------------------------------------------------------------------
// Switch
// ---------------------------------------------------------------------

/// Reference model for the learning switch: per-shard MAC tables
/// (shard state is private, so each RSS shard learns independently),
/// exact forward/flood prediction, and frame-transparency (a switch
/// must never modify bytes).
///
/// The model mirrors `emu_services::switch_ip_cam` exactly — it learns
/// any source on lookup miss — and assumes fewer than 256 distinct
/// source MACs per shard (the CAM capacity; beyond that the hardware
/// evicts and the model declares itself out of its domain).
pub struct SwitchModel {
    tables: Vec<HashMap<u64, u8>>,
    tally: Tally,
    capacity_blown: bool,
}

impl SwitchModel {
    /// CAM capacity per shard (`emu_services::switch::TABLE_ENTRIES`).
    pub const CAPACITY: usize = 256;

    /// Creates the model for an engine of `shards` shards under RSS
    /// dispatch.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1);
        SwitchModel {
            tables: vec![HashMap::new(); shards],
            tally: Tally::default(),
            capacity_blown: false,
        }
    }

    /// Total learned entries across shard models.
    pub fn learned(&self) -> usize {
        self.tables.iter().map(HashMap::len).sum()
    }
}

impl Checker for SwitchModel {
    fn name(&self) -> &'static str {
        "switch"
    }

    fn observe(&mut self, input: &Frame, result: &EngineResult<CoreOutput>) {
        let i = self.tally.frames;
        if !self.tally.admit(i, result) {
            return;
        }
        let out = result.as_ref().expect("admitted");
        let shard = if self.tables.len() == 1 {
            0
        } else {
            RssHash.shard_of(input, self.tables.len())
        };
        let table = &mut self.tables[shard];
        let dst = input.dst_mac().to_u64();
        let src = input.src_mac().to_u64();
        let want_ports = match table.get(&dst) {
            Some(&p) => 1u8.checked_shl(p.into()).unwrap_or(0),
            None => 0b1111 & !1u8.checked_shl(input.in_port.into()).unwrap_or(0),
        };
        if !table.contains_key(&src) {
            if table.len() >= Self::CAPACITY && !self.capacity_blown {
                self.capacity_blown = true;
                self.tally.violate(format!(
                    "frame {i}: model capacity exceeded ({} MACs on shard {shard}) — \
                     bound the generator's MAC pool",
                    table.len()
                ));
            }
            table.insert(src, input.in_port);
        }
        let [tx] = &out.tx[..] else {
            self.tally
                .violate(format!("frame {i}: switch produced {} tx", out.tx.len()));
            return;
        };
        if tx.ports != want_ports {
            self.tally.violate(format!(
                "frame {i}: forwarded to {:#06b}, model says {want_ports:#06b} \
                 (learned forwarding)",
                tx.ports
            ));
        }
        if tx.frame.bytes() != input.bytes() {
            self.tally
                .violate(format!("frame {i}: switch modified frame bytes"));
        }
    }

    fn frames(&self) -> u64 {
        self.tally.frames
    }
    fn violations(&self) -> u64 {
        self.tally.violations
    }
    fn notes(&self) -> &[String] {
        &self.tally.notes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adversarial, Background, MemcachedZipf, Mix, TcpConversations, TrafficGen};
    use emu_core::{NatSteering, Target};

    fn public() -> Ipv4 {
        "203.0.113.1".parse().unwrap()
    }

    #[test]
    fn nat_checker_passes_an_honest_engine_and_models_replies() {
        let svc = emu_services::nat(public());
        let mut engine = svc
            .engine(Target::Cpu)
            .shards(4)
            .dispatch(NatSteering::default())
            .build()
            .unwrap();
        let mut checker = NatChecker::new(public(), 4);
        let mut gen = Mix::new(3)
            .add(6, TcpConversations::new(1, 12, &[1, 2, 3]))
            .add(2, Background::new(2, &[1, 2, 3]))
            .add(1, Adversarial::new(4, &[0, 1, 2, 3]));
        let frames = gen.take(400);
        let report = engine.process_batch(&frames);
        checker.check_batch(&frames, &report);
        // Bounce every translated outbound frame back as a reply.
        let replies: Vec<Frame> = frames
            .iter()
            .zip(&report.outputs)
            .filter(|(f, _)| f.in_port != 0)
            .filter_map(|(_, r)| r.as_ref().ok())
            .flat_map(|o| &o.tx)
            .map(|t| crate::build::reply_to(&t.frame, b"reply-payload"))
            .collect();
        assert!(!replies.is_empty(), "soak needs inbound traffic");
        let reply_report = engine.process_batch(&replies);
        checker.check_batch(&replies, &reply_report);
        assert_eq!(checker.violations(), 0, "notes: {:?}", checker.notes());
        assert!(checker.mappings() > 0);
    }

    #[test]
    fn nat_checker_detects_a_tampered_translation() {
        let svc = emu_services::nat(public());
        let mut engine = svc.engine(Target::Cpu).build().unwrap();
        let f = emu_services::nat::udp_frame(
            "192.168.1.9".parse().unwrap(),
            4040,
            "8.8.8.8".parse().unwrap(),
            53,
            2,
        );
        let mut out = engine.process(&f).unwrap();
        // Corrupt the allocated port after the fact.
        let off = offset::L4;
        let b = out.tx[0].frame.bytes_mut();
        let v = bitutil::get16(b, off);
        bitutil::set16(b, off, v ^ 0x0101);
        let mut checker = NatChecker::new(public(), 1);
        checker.observe(&f, &Ok(out));
        assert!(checker.violations() > 0);
    }

    #[test]
    fn mc_model_agrees_with_the_service_over_a_zipf_stream() {
        let svc = emu_services::memcached();
        let mut engine = svc.engine(Target::Cpu).shards(4).build().unwrap();
        let mut model = McModel::new();
        let mut gen = MemcachedZipf::new(6, 24, 1.1, 0.7);
        for chunk in 0..4 {
            let frames = gen.take(150);
            let report = engine.process_batch(&frames);
            model.check_batch(&frames, &report);
            assert_eq!(
                model.violations(),
                0,
                "chunk {chunk}, notes: {:?}",
                model.notes()
            );
        }
        assert!(model.live_keys() > 0);
    }

    #[test]
    fn mc_model_detects_a_stale_reply() {
        let svc = emu_services::memcached();
        let mut engine = svc.engine(Target::Cpu).build().unwrap();
        let mut model = McModel::new();
        let set = emu_services::memcached::request_frame("set kk 0 0 8\r\nAAAABBBB\r\n", 1);
        let r = engine.process(&set).unwrap();
        model.observe(&set, &Ok(r));
        // The model saw the SET; feed it a forged miss for the same key.
        let get = emu_services::memcached::request_frame("get kk\r\n", 2);
        let miss = engine
            .process(&emu_services::memcached::request_frame("get zz\r\n", 2))
            .unwrap();
        model.observe(&get, &Ok(miss));
        assert!(model.violations() > 0, "stale END must be flagged");
    }

    #[test]
    fn switch_model_tracks_sharded_learning() {
        let svc = emu_services::switch_ip_cam();
        for shards in [1usize, 4] {
            let mut engine = svc.engine(Target::Cpu).shards(shards).build().unwrap();
            let mut model = SwitchModel::new(shards);
            let mut gen = Mix::new(9)
                .add(3, Background::new(4, &[0, 1, 2, 3]))
                .add(1, Adversarial::new(5, &[0, 1, 2, 3]));
            for _ in 0..3 {
                let frames = gen.take(120);
                let report = engine.process_batch(&frames);
                model.check_batch(&frames, &report);
            }
            assert_eq!(
                model.violations(),
                0,
                "{shards} shards, notes: {:?}",
                model.notes()
            );
            assert!(model.learned() > 0);
        }
    }

    #[test]
    fn checkers_flag_traps() {
        let mut checker = SwitchModel::new(1);
        checker.observe(
            &Frame::new(vec![0; 60]),
            &Err(EngineError::Trap {
                shard: 0,
                reason: "wedged".into(),
            }),
        );
        assert_eq!(checker.violations(), 1);
        // Oversize is a legitimate rejection, not a violation.
        let mut checker = SwitchModel::new(1);
        checker.observe(
            &Frame::new(vec![0; 60]),
            &Err(EngineError::Oversize {
                shard: 0,
                len: 2000,
                cap: 1536,
            }),
        );
        assert_eq!(checker.violations(), 0);
    }
}
