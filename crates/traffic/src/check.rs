//! Per-service reference checkers: independent software models that
//! consume a batch's inputs plus its [`BatchReport`] and verify the
//! service's invariants frame by frame.
//!
//! Each checker mirrors its service's *observable contract* — not its
//! implementation — byte-reads included: a service core sees the frame
//! zero-extended to its buffer (see [`crate::build::byte_at`]), so the
//! models parse exactly the bytes the core parses, and malformed
//! traffic stays checkable.
//!
//! Every checker also enforces the engine-wide invariant that no frame
//! may *trap* a shard: [`EngineError::Trap`]/[`EngineError::Poisoned`]
//! results are violations regardless of the input (adversarial frames
//! must drop or pass, never wedge a core). `Oversize` rejections are
//! legitimate — the core never saw the frame.

use crate::build::{byte_at, ipv4_csum_ok, l4_csum_ok};
use emu_core::{BatchReport, Dispatch, EngineError, EngineResult, NatSteering, RssHash};
use emu_rtl::{CamPair, CamTable};
use emu_services::nat::{nat_cam_pair, FIRST_EPHEMERAL, NAT_ENTRIES, PORT_SCAN_CAP};
use emu_services::switch::TABLE_ENTRIES;
use emu_types::proto::{ether_type, ip_proto, offset};
use emu_types::{bitutil, Bits, Frame, Ipv4};
use netfpga_sim::dataplane::CoreOutput;
use std::collections::HashMap;

/// A frame-by-frame invariant checker over engine results.
pub trait Checker {
    /// Checker label for reports.
    fn name(&self) -> &'static str;

    /// Checks one input/result pair.
    fn observe(&mut self, input: &Frame, result: &EngineResult<CoreOutput>);

    /// Checks a whole batch in offer order.
    fn check_batch(&mut self, inputs: &[Frame], report: &BatchReport) {
        assert_eq!(inputs.len(), report.outputs.len(), "report/batch mismatch");
        for (f, r) in inputs.iter().zip(&report.outputs) {
            self.observe(f, r);
        }
    }

    /// Frames observed so far.
    fn frames(&self) -> u64;

    /// Invariant violations so far.
    fn violations(&self) -> u64;

    /// Human-readable descriptions of the first violations.
    fn notes(&self) -> &[String];
}

/// Shared violation bookkeeping.
#[derive(Debug, Default, Clone)]
struct Tally {
    frames: u64,
    violations: u64,
    notes: Vec<String>,
}

impl Tally {
    fn violate(&mut self, msg: String) {
        self.violations += 1;
        if self.notes.len() < 8 {
            self.notes.push(msg);
        }
    }

    /// Returns `true` if the result may be inspected further; counts
    /// traps as violations and oversize rejections as benign.
    fn admit(&mut self, i: u64, result: &EngineResult<CoreOutput>) -> bool {
        self.frames += 1;
        match result {
            Ok(_) => true,
            Err(EngineError::Oversize { .. }) => false,
            Err(e) => {
                self.violate(format!("frame {i}: engine must never trap: {e}"));
                false
            }
        }
    }
}

/// The service-side view of "is this frame translatable/parsable":
/// IPv4 EtherType, IHL 5 (the services reject options), protocol match.
fn ihl5(f: &Frame) -> bool {
    byte_at(f, offset::IPV4) & 0x0f == 5
}

fn l4_proto(f: &Frame) -> u8 {
    byte_at(f, offset::IPV4_PROTO)
}

// ---------------------------------------------------------------------
// NAT
// ---------------------------------------------------------------------

/// One shard's shadow of the NAT state: the *same* paired fwd/rev
/// tables the service deploys (via [`nat_cam_pair`]) plus the shard's
/// ephemeral-port cursor, replayed op for op. Because the shadow ages,
/// evicts, and reclaims exactly like the engine, the checker predicts
/// the *exact* external port of every allocation — including ports
/// re-issued after TTL expiry or capacity eviction.
struct NatShadow {
    pair: CamPair,
    next_port: u16,
    base: u16,
    stride: u16,
}

/// The fwd-table key `{int_ip, int_port, proto}` (56 bits).
fn nat_fwd_key(src: u32, sport: u16, proto: u8) -> Bits {
    Bits::from_u64(
        (u64::from(src) << 24) | (u64::from(sport) << 8) | u64::from(proto),
        56,
    )
}

/// The rev-table key `{ext_port, proto}` (24 bits).
fn nat_rev_key(ext: u16, proto: u8) -> Bits {
    Bits::from_u64((u64::from(ext) << 8) | u64::from(proto), 24)
}

impl NatShadow {
    /// Replays the service's allocation probe loop: walk the cursor,
    /// probing the reverse table until a port with no live mapping
    /// turns up (each probe touches live entries and reclaims expired
    /// ones, exactly as the hardware lookup does). Returns the free
    /// port, or `None` after `PORT_SCAN_CAP` probes (range exhausted —
    /// the service drops the frame).
    fn allocate(&mut self, proto: u8) -> Option<u16> {
        for _ in 0..PORT_SCAN_CAP {
            let ext = self.next_port;
            self.next_port = if self.next_port > 0xffff - self.stride {
                self.base
            } else {
                self.next_port + self.stride
            };
            if self.pair.lookup_b(&nat_rev_key(ext, proto)).is_none() {
                return Some(ext);
            }
        }
        None
    }
}

/// Reference checker for `emu_services::nat`: translation consistency
/// (one flow ↔ one stable external port), exact ephemeral-port
/// allocation (per-shard cursor discipline under `NatSteering`,
/// including TTL reclaim and eviction), header-rewrite exactness, TTL
/// decrement, and checksum-validity preservation (RFC 1624 incremental
/// updates keep a valid checksum valid).
///
/// The checker is a full shadow dataplane: it instantiates the same
/// [`CamPair`] the service does and mirrors every table operation, so
/// it stays exact across mapping expiry (idle flows age out), capacity
/// eviction (tables overflow round-robin), and port reuse after wrap —
/// regimes where a grow-only map would drift from the engine.
pub struct NatChecker {
    public: Ipv4,
    shards: Vec<NatShadow>,
    tally: Tally,
}

impl NatChecker {
    /// Creates the checker for an engine of `shards` shards behind the
    /// given public address, with the paper-default table geometry
    /// (`NAT_ENTRIES`, no TTL). `shards > 1` assumes the `NatSteering`
    /// dispatch and allocation contract (shard *k* allocates
    /// `FIRST_EPHEMERAL + k`, stepping by the shard count).
    pub fn new(public: Ipv4, shards: usize) -> Self {
        assert!(shards >= 1);
        NatChecker {
            public,
            shards: Self::shadows(shards, NAT_ENTRIES, None),
            tally: Tally::default(),
        }
    }

    /// Re-sizes the shadow tables to match an engine built with
    /// `EngineBuilder::table_entries` / `ttl_frames`. Call before any
    /// traffic is observed (the shadows restart empty).
    pub fn with_table(mut self, entries: usize, ttl: Option<u64>) -> Self {
        let n = self.shards.len();
        self.shards = Self::shadows(n, entries, ttl);
        self
    }

    fn shadows(shards: usize, entries: usize, ttl: Option<u64>) -> Vec<NatShadow> {
        (0..shards)
            .map(|k| NatShadow {
                pair: nat_cam_pair(entries, ttl),
                next_port: FIRST_EPHEMERAL + k as u16,
                base: FIRST_EPHEMERAL + k as u16,
                stride: shards as u16,
            })
            .collect()
    }

    /// Translation entries resident in the shadow tables (live plus
    /// expired-but-not-yet-reclaimed, exactly as the engine counts
    /// occupancy).
    pub fn mappings(&self) -> usize {
        self.shards.iter().map(|s| s.pair.a.occupancy()).sum()
    }

    fn translatable(f: &Frame) -> bool {
        f.ethertype() == ether_type::IPV4
            && ihl5(f)
            && matches!(l4_proto(f), p if p == ip_proto::TCP || p == ip_proto::UDP)
    }

    /// Compares `got` against the input with the NAT rewrites applied
    /// and both checksum fields masked (validity is checked
    /// separately).
    fn expect_rewritten(
        &mut self,
        i: u64,
        input: &Frame,
        got: &Frame,
        rewrite: impl FnOnce(&mut [u8]),
    ) {
        let proto = l4_proto(input);
        let mut want = input.bytes().to_vec();
        want[offset::IPV4_TTL] = want[offset::IPV4_TTL].wrapping_sub(1);
        rewrite(&mut want);
        let mut got_b = got.bytes().to_vec();
        let l4_csum = if proto == ip_proto::TCP {
            offset::L4 + 16
        } else {
            offset::L4 + 6
        };
        for b in [&mut want, &mut got_b] {
            bitutil::set16(b, offset::IPV4_CSUM, 0);
            if b.len() >= l4_csum + 2 {
                bitutil::set16(b, l4_csum, 0);
            }
        }
        if want != got_b {
            self.tally
                .violate(format!("frame {i}: translated bytes diverge from model"));
        }
        // Incremental checksum updates must preserve validity.
        if ipv4_csum_ok(input) == Some(true) && ipv4_csum_ok(got) != Some(true) {
            self.tally
                .violate(format!("frame {i}: IP checksum invalidated"));
        }
        if l4_csum_ok(input) == Some(true) && l4_csum_ok(got) == Some(false) {
            self.tally
                .violate(format!("frame {i}: L4 checksum invalidated"));
        }
    }
}

impl Checker for NatChecker {
    fn name(&self) -> &'static str {
        "nat"
    }

    fn observe(&mut self, input: &Frame, result: &EngineResult<CoreOutput>) {
        let i = self.tally.frames;
        if !self.tally.admit(i, result) {
            return;
        }
        let out = result.as_ref().expect("admitted");
        // Every admitted frame advances its owning shard's epoch — the
        // engine ticks the shard's tables once per processed frame,
        // translatable or not — so the shadow ages in lockstep.
        let shard = NatSteering::default().shard_of(input, self.shards.len());
        self.shards[shard].pair.tick_frame();
        if !Self::translatable(input) {
            if !out.tx.is_empty() {
                self.tally
                    .violate(format!("frame {i}: untranslatable frame transmitted"));
            }
            return;
        }
        let b = input.bytes();
        let proto = l4_proto(input);
        if input.in_port != 0 {
            // Outbound: replay the service's table ops in program
            // order — fwd lookup, then (on miss) the probe/commit
            // allocation — so the shadow predicts the exact port.
            let src = bitutil::get32(b, offset::IPV4_SRC);
            let sport = bitutil::get16(b, offset::L4);
            let key = nat_fwd_key(src, sport, proto);
            let shadow = &mut self.shards[shard];
            let (want, fresh) = match shadow.pair.lookup_a(&key) {
                Some(v) => (Some(v.to_u64() as u16), false),
                None => {
                    let ext = shadow.allocate(proto);
                    if let Some(p) = ext {
                        shadow.pair.write_a(key, Bits::from_u64(u64::from(p), 16));
                        shadow.pair.write_b(
                            nat_rev_key(p, proto),
                            Bits::from_u64(
                                (u64::from(src) << 24)
                                    | (u64::from(sport) << 8)
                                    | u64::from(input.in_port),
                                56,
                            ),
                        );
                    }
                    (ext, true)
                }
            };
            let Some(ext) = want else {
                // Port-range exhaustion: the service must drop.
                if !out.tx.is_empty() {
                    self.tally.violate(format!(
                        "frame {i}: ephemeral range exhausted but frame transmitted"
                    ));
                }
                return;
            };
            let [tx] = &out.tx[..] else {
                self.tally
                    .violate(format!("frame {i}: outbound produced {} tx", out.tx.len()));
                return;
            };
            if tx.ports != 1 {
                self.tally.violate(format!(
                    "frame {i}: outbound left via ports {:#06b}, not the external port",
                    tx.ports
                ));
            }
            let got_ext = bitutil::get16(tx.frame.bytes(), offset::L4);
            if got_ext < FIRST_EPHEMERAL {
                self.tally.violate(format!(
                    "frame {i}: allocated port {got_ext} below the ephemeral range"
                ));
            }
            if got_ext != ext {
                if fresh {
                    self.tally.violate(format!(
                        "frame {i}: allocated port {got_ext}, shadow allocator says {ext} \
                         (cursor/probe divergence)"
                    ));
                } else {
                    self.tally.violate(format!(
                        "frame {i}: flow remapped {ext} → {got_ext} (translation \
                         consistency broken)"
                    ));
                }
            }
            let public = self.public;
            self.expect_rewritten(i, input, &tx.frame, |w| {
                w[offset::IPV4_SRC..offset::IPV4_SRC + 4].copy_from_slice(&public.octets());
                bitutil::set16(w, offset::L4, ext);
            });
        } else {
            // Inbound: translate back iff the mapping is live in the
            // shadow (the lookup itself refreshes the mapping's idle
            // timer, as the hardware lookup does).
            let dport = bitutil::get16(b, offset::L4 + 2);
            match self.shards[shard].pair.lookup_b(&nat_rev_key(dport, proto)) {
                Some(v) => {
                    let v = v.to_u64();
                    let int_ip = (v >> 24) as u32;
                    let int_port = (v >> 8) as u16;
                    let phys = v as u8;
                    let [tx] = &out.tx[..] else {
                        self.tally.violate(format!(
                            "frame {i}: inbound to a live mapping produced {} tx",
                            out.tx.len()
                        ));
                        return;
                    };
                    if tx.ports != 1u8.checked_shl(phys.into()).unwrap_or(0) {
                        self.tally.violate(format!(
                            "frame {i}: reply delivered to ports {:#06b}, owner is port {phys}",
                            tx.ports
                        ));
                    }
                    self.expect_rewritten(i, input, &tx.frame, |w| {
                        w[offset::IPV4_DST..offset::IPV4_DST + 4]
                            .copy_from_slice(&Ipv4(int_ip).octets());
                        bitutil::set16(w, offset::L4 + 2, int_port);
                    });
                }
                None => {
                    if !out.tx.is_empty() {
                        self.tally.violate(format!(
                            "frame {i}: inbound to dead port {dport} was not dropped"
                        ));
                    }
                }
            }
        }
    }

    fn frames(&self) -> u64 {
        self.tally.frames
    }
    fn violations(&self) -> u64 {
        self.tally.violations
    }
    fn notes(&self) -> &[String] {
        &self.tally.notes
    }
}

// ---------------------------------------------------------------------
// Memcached
// ---------------------------------------------------------------------

/// Offset of the memcached-UDP frame header in a request frame.
const MC_HDR: usize = 42;
/// Offset of the ASCII command.
const CMD: usize = 50;
/// The service's frame buffer capacity (see `emu_services::memcached`).
const MC_FRAME_CAP: usize = 512;

/// Reference model for `emu_services::memcached`: a shadow store that
/// predicts every GET/SET/DELETE reply, byte-reads mirrored from the
/// service's parser (zero-extended buffer, 8-byte key limit, skip-line
/// value scan).
///
/// **Precondition for sharded engines:** traffic must keep each key on
/// one flow (as [`crate::MemcachedZipf`] does), so per-shard stores
/// partition the keyspace and a single global model stays exact.
#[derive(Default)]
pub struct McModel {
    store: HashMap<Vec<u8>, [u8; 8]>,
    tally: Tally,
}

impl McModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keys currently live in the model.
    pub fn live_keys(&self) -> usize {
        self.store.len()
    }

    fn is_mc(f: &Frame) -> bool {
        f.ethertype() == ether_type::IPV4
            && l4_proto(f) == ip_proto::UDP
            && ihl5(f)
            && bitutil::get16(f.bytes(), offset::L4 + 2) == 11_211
    }

    /// Mirrors the service's key parser: from `idx` until space/CR,
    /// `None` when empty or over 8 bytes.
    fn parse_key(f: &Frame, idx: &mut usize) -> Option<Vec<u8>> {
        let mut key = Vec::new();
        loop {
            let b = byte_at(f, *idx);
            if b == b' ' || b == b'\r' {
                break;
            }
            if key.len() >= 8 {
                return None;
            }
            key.push(b);
            *idx += 1;
        }
        (!key.is_empty()).then_some(key)
    }

    /// Mirrors the SET value scan: skip to past the command line's
    /// `\n`, then read 8 bytes.
    fn parse_value(f: &Frame, mut idx: usize) -> [u8; 8] {
        while byte_at(f, idx) != b'\n' && idx < MC_FRAME_CAP - 9 {
            idx += 1;
        }
        idx += 1;
        std::array::from_fn(|k| byte_at(f, idx + k))
    }

    /// The reply the service must produce for `input`, or `None` for a
    /// drop. Updates the shadow store.
    fn expected_reply(&mut self, input: &Frame) -> Option<Vec<u8>> {
        if !Self::is_mc(input) {
            return None;
        }
        match byte_at(input, CMD) {
            b'g' => {
                let mut idx = CMD + 4;
                let key = Self::parse_key(input, &mut idx)?;
                Some(match self.store.get(&key) {
                    Some(v) => {
                        let mut r = b"VALUE ".to_vec();
                        r.extend_from_slice(&key);
                        r.extend_from_slice(b" 0 8\r\n");
                        r.extend_from_slice(v);
                        r.extend_from_slice(b"\r\nEND\r\n");
                        r
                    }
                    None => b"END\r\n".to_vec(),
                })
            }
            b's' => {
                let mut idx = CMD + 4;
                let key = Self::parse_key(input, &mut idx)?;
                let value = Self::parse_value(input, idx);
                self.store.insert(key, value);
                Some(b"STORED\r\n".to_vec())
            }
            b'd' => {
                let mut idx = CMD + 7;
                let key = Self::parse_key(input, &mut idx)?;
                Some(if self.store.remove(&key).is_some() {
                    b"DELETED\r\n".to_vec()
                } else {
                    b"NOT_FOUND\r\n".to_vec()
                })
            }
            _ => None,
        }
    }
}

impl Checker for McModel {
    fn name(&self) -> &'static str {
        "memcached"
    }

    fn observe(&mut self, input: &Frame, result: &EngineResult<CoreOutput>) {
        let i = self.tally.frames;
        if !self.tally.admit(i, result) {
            return;
        }
        let out = result.as_ref().expect("admitted");
        match self.expected_reply(input) {
            None => {
                if !out.tx.is_empty() {
                    self.tally
                        .violate(format!("frame {i}: non-request frame answered"));
                }
            }
            Some(want) => {
                let [tx] = &out.tx[..] else {
                    self.tally
                        .violate(format!("frame {i}: request produced {} tx", out.tx.len()));
                    return;
                };
                let got = emu_services::memcached::reply_text(&tx.frame);
                if got != want {
                    self.tally.violate(format!(
                        "frame {i}: reply {:?} != model {:?} (cache coherence)",
                        String::from_utf8_lossy(&got),
                        String::from_utf8_lossy(&want)
                    ));
                }
                if bitutil::get16(tx.frame.bytes(), MC_HDR) != bitutil::get16(input.bytes(), MC_HDR)
                {
                    self.tally
                        .violate(format!("frame {i}: request id not echoed"));
                }
                if tx.ports != 1u8.checked_shl(input.in_port.into()).unwrap_or(0) {
                    self.tally.violate(format!(
                        "frame {i}: reply left ports {:#06b}, not the arrival port",
                        tx.ports
                    ));
                }
                if ipv4_csum_ok(&tx.frame) != Some(true) {
                    self.tally
                        .violate(format!("frame {i}: reply IP checksum invalid"));
                }
            }
        }
    }

    fn frames(&self) -> u64 {
        self.tally.frames
    }
    fn violations(&self) -> u64 {
        self.tally.violations
    }
    fn notes(&self) -> &[String] {
        &self.tally.notes
    }
}

// ---------------------------------------------------------------------
// Switch
// ---------------------------------------------------------------------

/// Reference model for the learning switch: per-shard MAC tables
/// (shard state is private, so each RSS shard learns independently),
/// exact forward/flood prediction, and frame-transparency (a switch
/// must never modify bytes).
///
/// Each shard's shadow is the same [`CamTable`] the service deploys,
/// replayed in program order (destination lookup, then source
/// learn-on-miss), so the model stays exact through capacity eviction
/// and — when the engine is built with a TTL — MAC aging: an idle
/// station's entry expires in the shadow exactly when it expires in
/// the engine, and its traffic floods again until re-learned.
pub struct SwitchModel {
    tables: Vec<CamTable>,
    tally: Tally,
}

impl SwitchModel {
    /// Creates the model for an engine of `shards` shards under RSS
    /// dispatch, with the paper-default table geometry
    /// (`TABLE_ENTRIES`, no aging).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1);
        SwitchModel {
            tables: (0..shards)
                .map(|_| CamTable::new(TABLE_ENTRIES, 48, 8))
                .collect(),
            tally: Tally::default(),
        }
    }

    /// Re-sizes the shadow tables to match an engine built with
    /// `EngineBuilder::table_entries` / `ttl_frames`. Call before any
    /// traffic is observed (the shadows restart empty).
    pub fn with_table(mut self, entries: usize, ttl: Option<u64>) -> Self {
        self.tables = (0..self.tables.len())
            .map(|_| CamTable::new(entries, 48, 8).with_ttl(ttl))
            .collect();
        self
    }

    /// MAC entries resident across shard shadows (live plus
    /// expired-but-not-yet-reclaimed, matching engine occupancy).
    pub fn learned(&self) -> usize {
        self.tables.iter().map(CamTable::occupancy).sum()
    }
}

impl Checker for SwitchModel {
    fn name(&self) -> &'static str {
        "switch"
    }

    fn observe(&mut self, input: &Frame, result: &EngineResult<CoreOutput>) {
        let i = self.tally.frames;
        if !self.tally.admit(i, result) {
            return;
        }
        let out = result.as_ref().expect("admitted");
        let shard = if self.tables.len() == 1 {
            0
        } else {
            RssHash.shard_of(input, self.tables.len())
        };
        let table = &mut self.tables[shard];
        // The shard ticks its table once per processed frame; then the
        // program looks up the destination (deciding the ports),
        // transmits, and finally learns the source on a lookup miss.
        table.tick_frame();
        let dst = Bits::from_u64(input.dst_mac().to_u64(), 48);
        let src = Bits::from_u64(input.src_mac().to_u64(), 48);
        let want_ports = match table.lookup(&dst) {
            Some(p) => 1u8.checked_shl(p.to_u64() as u32).unwrap_or(0),
            None => 0b1111 & !1u8.checked_shl(input.in_port.into()).unwrap_or(0),
        };
        if table.lookup(&src).is_none() {
            table.write(src, Bits::from_u64(u64::from(input.in_port), 8));
        }
        let [tx] = &out.tx[..] else {
            self.tally
                .violate(format!("frame {i}: switch produced {} tx", out.tx.len()));
            return;
        };
        if tx.ports != want_ports {
            self.tally.violate(format!(
                "frame {i}: forwarded to {:#06b}, model says {want_ports:#06b} \
                 (learned forwarding)",
                tx.ports
            ));
        }
        if tx.frame.bytes() != input.bytes() {
            self.tally
                .violate(format!("frame {i}: switch modified frame bytes"));
        }
    }

    fn frames(&self) -> u64 {
        self.tally.frames
    }
    fn violations(&self) -> u64 {
        self.tally.violations
    }
    fn notes(&self) -> &[String] {
        &self.tally.notes
    }
}

// ---------------------------------------------------------------------
// Closed-loop client outcomes
// ---------------------------------------------------------------------

/// One closed-loop request's end-to-end outcome, as observed **at the
/// client**: did a verified response come back, how long did it take,
/// how many retransmissions did it cost. The frame-level checkers above
/// judge a service's per-frame contract; this record judges the whole
/// impaired path — client, fabric, impairments, service, and back. The
/// `emu-hosts` agents produce these; [`ClientCheck`] consumes them.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutcome {
    /// Client node name.
    pub client: String,
    /// Workload kind (`"tcp"`, `"memcached"`, `"dns"`).
    pub proto: &'static str,
    /// Per-client request serial (0, 1, 2, …).
    pub serial: u64,
    /// A response arrived and matched the client's model of what the
    /// service must answer. `false` + `timed_out == false` means a
    /// *wrong* response — always a violation.
    pub verified: bool,
    /// The request exhausted its retry budget without a response.
    pub timed_out: bool,
    /// Round-trip time (simulation ns) for responses that arrived
    /// without a retransmission (Karn's rule: a retransmitted
    /// request's RTT sample is ambiguous, so none is taken).
    pub rtt_ns: Option<u64>,
    /// Retransmissions spent on this request.
    pub retries: u32,
    /// Diagnostic detail for mismatches.
    pub note: Option<String>,
}

/// Invariant checker over [`ClientOutcome`]s — the closed-loop
/// counterpart of the frame-level [`Checker`]s, with the same
/// frames/violations/notes reporting surface:
///
/// * every outcome resolves exactly one way (verified xor timed out),
/// * a response that arrives must verify (a wrong payload is a
///   violation even on a lossy path — loss delays or kills a request,
///   it never corrupts a checksummed response into another valid one),
/// * a timeout must have spent the full retry budget (giving up early
///   is a client bug),
/// * retries never exceed the budget,
/// * measured RTTs respect the physical floor of the topology
///   ([`ClientCheck::rtt_floor_ns`], when set): nothing answers faster
///   than serialization + propagation.
#[derive(Debug, Default)]
pub struct ClientCheck {
    tally: Tally,
    retry_budget: u32,
    rtt_floor_ns: u64,
    completed: u64,
    timed_out: u64,
}

impl ClientCheck {
    /// Builds a checker for clients configured with `retry_budget`
    /// retransmissions per request.
    pub fn new(retry_budget: u32) -> Self {
        ClientCheck {
            retry_budget,
            ..Self::default()
        }
    }

    /// Sets the minimum physically possible RTT (2 × (serialization +
    /// propagation) along the shortest path); measured RTTs below it
    /// are violations.
    pub fn rtt_floor_ns(mut self, floor: u64) -> Self {
        self.rtt_floor_ns = floor;
        self
    }

    /// Consumes one outcome.
    pub fn observe(&mut self, o: &ClientOutcome) {
        self.tally.frames += 1;
        let id = format!("{}/{} #{}", o.client, o.proto, o.serial);
        match (o.verified, o.timed_out) {
            (true, true) => self
                .tally
                .violate(format!("{id}: both verified and timed out")),
            (false, false) => self.tally.violate(format!(
                "{id}: response mismatched the client model: {}",
                o.note.as_deref().unwrap_or("(no detail)")
            )),
            (true, false) => self.completed += 1,
            (false, true) => self.timed_out += 1,
        }
        if o.timed_out && o.retries != self.retry_budget {
            self.tally.violate(format!(
                "{id}: gave up after {} retries with a budget of {}",
                o.retries, self.retry_budget
            ));
        }
        if o.retries > self.retry_budget {
            self.tally.violate(format!(
                "{id}: {} retries exceed the budget of {}",
                o.retries, self.retry_budget
            ));
        }
        if let Some(rtt) = o.rtt_ns {
            if rtt < self.rtt_floor_ns {
                self.tally.violate(format!(
                    "{id}: rtt {rtt} ns beats the physical floor {} ns",
                    self.rtt_floor_ns
                ));
            }
        }
    }

    /// Consumes a batch of outcomes.
    pub fn observe_all<'a>(&mut self, outcomes: impl IntoIterator<Item = &'a ClientOutcome>) {
        for o in outcomes {
            self.observe(o);
        }
    }

    /// Checker label for reports.
    pub fn name(&self) -> &'static str {
        "client-end-to-end"
    }
    /// Outcomes observed.
    pub fn frames(&self) -> u64 {
        self.tally.frames
    }
    /// Requests that completed with a verified response.
    pub fn completed(&self) -> u64 {
        self.completed
    }
    /// Requests that exhausted their retry budget.
    pub fn timed_out(&self) -> u64 {
        self.timed_out
    }
    /// Invariant violations.
    pub fn violations(&self) -> u64 {
        self.tally.violations
    }
    /// First violation notes.
    pub fn notes(&self) -> &[String] {
        &self.tally.notes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adversarial, Background, MemcachedZipf, Mix, TcpConversations, TrafficGen};
    use emu_core::{NatSteering, Target};

    fn public() -> Ipv4 {
        "203.0.113.1".parse().unwrap()
    }

    #[test]
    fn nat_checker_passes_an_honest_engine_and_models_replies() {
        let svc = emu_services::nat(public());
        let mut engine = svc
            .engine(Target::Cpu)
            .shards(4)
            .dispatch(NatSteering::default())
            .build()
            .unwrap();
        let mut checker = NatChecker::new(public(), 4);
        let mut gen = Mix::new(3)
            .add(6, TcpConversations::new(1, 12, &[1, 2, 3]))
            .add(2, Background::new(2, &[1, 2, 3]))
            .add(1, Adversarial::new(4, &[0, 1, 2, 3]));
        let frames = gen.take(400);
        let report = engine.process_batch(&frames);
        checker.check_batch(&frames, &report);
        // Bounce every translated outbound frame back as a reply.
        let replies: Vec<Frame> = frames
            .iter()
            .zip(&report.outputs)
            .filter(|(f, _)| f.in_port != 0)
            .filter_map(|(_, r)| r.as_ref().ok())
            .flat_map(|o| &o.tx)
            .map(|t| crate::build::reply_to(&t.frame, b"reply-payload"))
            .collect();
        assert!(!replies.is_empty(), "soak needs inbound traffic");
        let reply_report = engine.process_batch(&replies);
        checker.check_batch(&replies, &reply_report);
        assert_eq!(checker.violations(), 0, "notes: {:?}", checker.notes());
        assert!(checker.mappings() > 0);
    }

    #[test]
    fn nat_checker_stays_exact_under_flow_churn_and_ttl() {
        // Churning flows against a TTL'd, scaled-down table: the
        // checker's shadow pair must track expiry and reclaim exactly
        // (ports re-issued after idle timeout are predicted, not
        // flagged).
        let svc = emu_services::nat(public());
        let mut engine = svc
            .engine(Target::Cpu)
            .shards(2)
            .dispatch(NatSteering::default())
            .table_entries(512)
            .ttl_frames(300)
            .build()
            .unwrap();
        let mut checker = NatChecker::new(public(), 2).with_table(512, Some(300));
        let mut gen = crate::FlowChurn::new(11, 64, 150, &[1, 2, 3]);
        for _ in 0..5 {
            let frames = gen.take(400);
            let report = engine.process_batch(&frames);
            checker.check_batch(&frames, &report);
        }
        assert_eq!(checker.violations(), 0, "notes: {:?}", checker.notes());
        assert!(checker.mappings() > 0);
        // Churn outran the idle timeout: departed flows' mappings were
        // reclaimed, so residency sits below the flows-ever-started.
        assert!(gen.flows_started() as usize > checker.mappings());
    }

    #[test]
    fn switch_model_tracks_mac_aging_under_churn() {
        // A 64-entry table under a 48-station sliding window: aging
        // (TTL) and round-robin eviction both fire, and the shadow
        // table must predict every flood-after-expiry exactly.
        let svc = emu_services::switch_ip_cam();
        let mut engine = svc
            .engine(Target::Cpu)
            .table_entries(64)
            .ttl_frames(200)
            .build()
            .unwrap();
        let mut model = SwitchModel::new(1).with_table(64, Some(200));
        let mut gen = crate::MacChurn::new(13, 48, 120);
        for _ in 0..5 {
            let frames = gen.take(400);
            let report = engine.process_batch(&frames);
            model.check_batch(&frames, &report);
        }
        assert_eq!(model.violations(), 0, "notes: {:?}", model.notes());
        assert!(model.learned() > 0);
        assert!(gen.stations_seen() as usize > model.learned());
    }

    #[test]
    fn nat_checker_detects_a_tampered_translation() {
        let svc = emu_services::nat(public());
        let mut engine = svc.engine(Target::Cpu).build().unwrap();
        let f = emu_services::nat::udp_frame(
            "192.168.1.9".parse().unwrap(),
            4040,
            "8.8.8.8".parse().unwrap(),
            53,
            2,
        );
        let mut out = engine.process(&f).unwrap();
        // Corrupt the allocated port after the fact.
        let off = offset::L4;
        let b = out.tx[0].frame.bytes_mut();
        let v = bitutil::get16(b, off);
        bitutil::set16(b, off, v ^ 0x0101);
        let mut checker = NatChecker::new(public(), 1);
        checker.observe(&f, &Ok(out));
        assert!(checker.violations() > 0);
    }

    #[test]
    fn mc_model_agrees_with_the_service_over_a_zipf_stream() {
        let svc = emu_services::memcached();
        let mut engine = svc.engine(Target::Cpu).shards(4).build().unwrap();
        let mut model = McModel::new();
        let mut gen = MemcachedZipf::new(6, 24, 1.1, 0.7);
        for chunk in 0..4 {
            let frames = gen.take(150);
            let report = engine.process_batch(&frames);
            model.check_batch(&frames, &report);
            assert_eq!(
                model.violations(),
                0,
                "chunk {chunk}, notes: {:?}",
                model.notes()
            );
        }
        assert!(model.live_keys() > 0);
    }

    #[test]
    fn mc_model_detects_a_stale_reply() {
        let svc = emu_services::memcached();
        let mut engine = svc.engine(Target::Cpu).build().unwrap();
        let mut model = McModel::new();
        let set = emu_services::memcached::request_frame("set kk 0 0 8\r\nAAAABBBB\r\n", 1);
        let r = engine.process(&set).unwrap();
        model.observe(&set, &Ok(r));
        // The model saw the SET; feed it a forged miss for the same key.
        let get = emu_services::memcached::request_frame("get kk\r\n", 2);
        let miss = engine
            .process(&emu_services::memcached::request_frame("get zz\r\n", 2))
            .unwrap();
        model.observe(&get, &Ok(miss));
        assert!(model.violations() > 0, "stale END must be flagged");
    }

    #[test]
    fn switch_model_tracks_sharded_learning() {
        let svc = emu_services::switch_ip_cam();
        for shards in [1usize, 4] {
            let mut engine = svc.engine(Target::Cpu).shards(shards).build().unwrap();
            let mut model = SwitchModel::new(shards);
            let mut gen = Mix::new(9)
                .add(3, Background::new(4, &[0, 1, 2, 3]))
                .add(1, Adversarial::new(5, &[0, 1, 2, 3]));
            for _ in 0..3 {
                let frames = gen.take(120);
                let report = engine.process_batch(&frames);
                model.check_batch(&frames, &report);
            }
            assert_eq!(
                model.violations(),
                0,
                "{shards} shards, notes: {:?}",
                model.notes()
            );
            assert!(model.learned() > 0);
        }
    }

    #[test]
    fn checkers_flag_traps() {
        let mut checker = SwitchModel::new(1);
        checker.observe(
            &Frame::new(vec![0; 60]),
            &Err(EngineError::Trap {
                shard: 0,
                reason: "wedged".into(),
            }),
        );
        assert_eq!(checker.violations(), 1);
        // Oversize is a legitimate rejection, not a violation.
        let mut checker = SwitchModel::new(1);
        checker.observe(
            &Frame::new(vec![0; 60]),
            &Err(EngineError::Oversize {
                shard: 0,
                len: 2000,
                cap: 1536,
            }),
        );
        assert_eq!(checker.violations(), 0);
    }

    fn outcome(verified: bool, timed_out: bool, retries: u32) -> ClientOutcome {
        ClientOutcome {
            client: "c0".into(),
            proto: "memcached",
            serial: 0,
            verified,
            timed_out,
            rtt_ns: None,
            retries,
            note: None,
        }
    }

    #[test]
    fn client_check_accepts_clean_completions_and_budgeted_timeouts() {
        let mut check = ClientCheck::new(3).rtt_floor_ns(1_000);
        check.observe(&ClientOutcome {
            rtt_ns: Some(4_200),
            ..outcome(true, false, 0)
        });
        check.observe(&outcome(false, true, 3)); // spent the whole budget
        assert_eq!(check.frames(), 2);
        assert_eq!((check.completed(), check.timed_out()), (1, 1));
        assert_eq!(check.violations(), 0, "notes: {:?}", check.notes());
    }

    #[test]
    fn client_check_flags_mismatch_early_giveup_and_impossible_rtt() {
        let mut check = ClientCheck::new(3).rtt_floor_ns(1_000);
        // Wrong response body: neither verified nor timed out.
        check.observe(&outcome(false, false, 0));
        // Gave up before exhausting the retry budget.
        check.observe(&outcome(false, true, 1));
        // Overspent the budget.
        check.observe(&outcome(true, false, 4));
        // RTT below the physical floor of the topology.
        check.observe(&ClientOutcome {
            rtt_ns: Some(10),
            ..outcome(true, false, 0)
        });
        // Contradictory resolution.
        check.observe(&outcome(true, true, 3));
        assert_eq!(check.violations(), 5, "notes: {:?}", check.notes());
    }
}
