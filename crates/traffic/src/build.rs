//! Low-level frame construction shared by the generators: IPv4/UDP/TCP
//! frames with *valid* checksums, ARP requests, and small patch helpers.
//!
//! The service crates ship fixed-shape test frames
//! (`emu_services::nat::udp_frame`, …); the generators need the general
//! forms — arbitrary addresses, ports, TCP state and payloads — so they
//! are built here once, against `emu_types` only.

use emu_types::proto::{ether_type, ip_proto, offset};
use emu_types::{bitutil, checksum, Frame, Ipv4, MacAddr};

pub use emu_types::proto::tcp_flags;

/// Builds a minimal IPv4 header (IHL 5, TTL 64, DF) with a valid
/// checksum.
fn ipv4_header(src: Ipv4, dst: Ipv4, proto: u8, payload_len: usize, ident: u16) -> Vec<u8> {
    let total = 20 + payload_len;
    let mut h = vec![
        0x45,
        0x00,
        (total >> 8) as u8,
        total as u8,
        (ident >> 8) as u8,
        ident as u8,
        0x40,
        0x00,
        64,
        proto,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
        0,
    ];
    h[12..16].copy_from_slice(&src.octets());
    h[16..20].copy_from_slice(&dst.octets());
    let c = checksum::internet_checksum(&h);
    bitutil::set16(&mut h, 10, c);
    h
}

/// Internet checksum over an L4 segment plus its IPv4 pseudo-header.
fn l4_checksum(src: Ipv4, dst: Ipv4, proto: u8, segment: &[u8]) -> u16 {
    let mut ph = Vec::with_capacity(12 + segment.len());
    ph.extend_from_slice(&src.octets());
    ph.extend_from_slice(&dst.octets());
    ph.push(0);
    ph.push(proto);
    ph.extend_from_slice(&(segment.len() as u16).to_be_bytes());
    ph.extend_from_slice(segment);
    checksum::internet_checksum(&ph)
}

/// Builds a complete UDP frame with valid IP and UDP checksums.
#[allow(clippy::too_many_arguments)]
pub fn udp_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv4,
    sport: u16,
    dst: Ipv4,
    dport: u16,
    payload: &[u8],
    in_port: u8,
) -> Frame {
    let udp_len = 8 + payload.len();
    let mut seg = vec![0u8; 8];
    bitutil::set16(&mut seg, 0, sport);
    bitutil::set16(&mut seg, 2, dport);
    bitutil::set16(&mut seg, 4, udp_len as u16);
    seg.extend_from_slice(payload);
    let c = l4_checksum(src, dst, ip_proto::UDP, &seg);
    bitutil::set16(&mut seg, 6, if c == 0 { 0xffff } else { c });
    let mut bytes = ipv4_header(src, dst, ip_proto::UDP, udp_len, sport ^ dport);
    bytes.extend_from_slice(&seg);
    let mut f = Frame::ethernet(dst_mac, src_mac, ether_type::IPV4, &bytes);
    f.in_port = in_port;
    f
}

/// Builds a complete TCP segment (no options) with valid IP and TCP
/// checksums.
#[allow(clippy::too_many_arguments)]
pub fn tcp_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv4,
    sport: u16,
    dst: Ipv4,
    dport: u16,
    seq: u32,
    ack: u32,
    flags: u8,
    payload: &[u8],
    in_port: u8,
) -> Frame {
    let mut seg = vec![0u8; 20];
    bitutil::set16(&mut seg, 0, sport);
    bitutil::set16(&mut seg, 2, dport);
    bitutil::set32(&mut seg, 4, seq);
    bitutil::set32(&mut seg, 8, ack);
    seg[12] = 5 << 4;
    seg[13] = flags;
    bitutil::set16(&mut seg, 14, 0xffff);
    seg.extend_from_slice(payload);
    let c = l4_checksum(src, dst, ip_proto::TCP, &seg);
    bitutil::set16(&mut seg, 16, c);
    let mut bytes = ipv4_header(src, dst, ip_proto::TCP, seg.len(), seq as u16);
    bytes.extend_from_slice(&seg);
    let mut f = Frame::ethernet(dst_mac, src_mac, ether_type::IPV4, &bytes);
    f.in_port = in_port;
    f
}

/// Builds an ARP who-has request, broadcast from `src_mac`.
pub fn arp_request(src_mac: MacAddr, src_ip: Ipv4, target: Ipv4, in_port: u8) -> Frame {
    let mut p = vec![
        0, 1, // htype ethernet
        8, 0, // ptype IPv4
        6, 4, // hlen, plen
        0, 1, // op request
    ];
    p.extend_from_slice(&src_mac.octets());
    p.extend_from_slice(&src_ip.octets());
    p.extend_from_slice(&[0; 6]);
    p.extend_from_slice(&target.octets());
    let mut f = Frame::ethernet(MacAddr::BROADCAST, src_mac, ether_type::ARP, &p);
    f.in_port = in_port;
    f
}

/// Builds the remote peer's answer to a NAT-translated outbound frame:
/// endpoints swapped, same protocol (a SYN-ACK echoing the translated
/// sequence number for TCP, a datagram carrying `payload` for UDP),
/// arriving on the external port 0.
pub fn reply_to(translated: &Frame, payload: &[u8]) -> Frame {
    let b = translated.bytes();
    let src = Ipv4(bitutil::get32(b, offset::IPV4_DST));
    let sport = bitutil::get16(b, offset::L4 + 2);
    let dst = Ipv4(bitutil::get32(b, offset::IPV4_SRC));
    let dport = bitutil::get16(b, offset::L4);
    let (dmac, smac) = (translated.src_mac(), translated.dst_mac());
    let mut r = if byte_at(translated, offset::IPV4_PROTO) == ip_proto::TCP {
        tcp_frame(
            smac,
            dmac,
            src,
            sport,
            dst,
            dport,
            0x5eed_0001,
            bitutil::get32(b, offset::L4 + 4).wrapping_add(1),
            tcp_flags::SYN | tcp_flags::ACK,
            &[],
            0,
        )
    } else {
        udp_frame(smac, dmac, src, sport, dst, dport, payload, 0)
    };
    r.in_port = 0;
    r
}

/// Reads the frame's byte at `i` the way a service core does: bytes past
/// the frame's end read as zero (the driver zero-fills the buffer up to
/// its write high-water mark — see `DataplaneDriver::load_frame`).
pub fn byte_at(frame: &Frame, i: usize) -> u8 {
    frame.bytes().get(i).copied().unwrap_or(0)
}

/// Verifies the IPv4 header checksum; `None` when the frame is too short
/// to carry the claimed header.
pub fn ipv4_csum_ok(frame: &Frame) -> Option<bool> {
    let b = frame.bytes();
    let ihl = usize::from(byte_at(frame, offset::IPV4) & 0x0f) * 4;
    if ihl < 20 || b.len() < offset::IPV4 + ihl {
        return None;
    }
    Some(checksum::verify(&b[offset::IPV4..offset::IPV4 + ihl]))
}

/// Verifies the L4 checksum of an IHL-5 IPv4 TCP/UDP frame against the
/// pseudo-header; `None` when the lengths don't allow a safe
/// computation (lying length fields, truncation). A UDP checksum of 0
/// counts as valid/absent.
pub fn l4_csum_ok(frame: &Frame) -> Option<bool> {
    let b = frame.bytes();
    if byte_at(frame, offset::IPV4) != 0x45 {
        return None;
    }
    let proto = byte_at(frame, offset::IPV4_PROTO);
    let total = bitutil::get16(b, offset::IPV4 + 2) as usize;
    let l4_min = if proto == ip_proto::TCP { 20 } else { 8 };
    if total < 20 + l4_min || b.len() < 14 + total {
        return None;
    }
    let seg = &b[offset::L4..14 + total];
    match proto {
        p if p == ip_proto::UDP => {
            if seg.len() < 8 {
                return None;
            }
            if bitutil::get16(seg, 6) == 0 {
                return Some(true);
            }
            let udp_len = bitutil::get16(seg, 4) as usize;
            if udp_len != seg.len() {
                return None;
            }
            let src = Ipv4(bitutil::get32(b, offset::IPV4_SRC));
            let dst = Ipv4(bitutil::get32(b, offset::IPV4_DST));
            Some(l4_checksum(src, dst, proto, seg) == 0)
        }
        p if p == ip_proto::TCP => {
            if seg.len() < 20 {
                return None;
            }
            let src = Ipv4(bitutil::get32(b, offset::IPV4_SRC));
            let dst = Ipv4(bitutil::get32(b, offset::IPV4_DST));
            Some(l4_checksum(src, dst, proto, seg) == 0)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(x: u64) -> MacAddr {
        MacAddr::from_u64(x)
    }

    #[test]
    fn udp_frames_carry_valid_checksums() {
        let f = udp_frame(
            mac(0x11),
            mac(0x22),
            Ipv4::new(10, 0, 0, 1),
            4000,
            Ipv4::new(10, 0, 0, 2),
            53,
            b"payload!",
            1,
        );
        assert_eq!(ipv4_csum_ok(&f), Some(true));
        assert_eq!(l4_csum_ok(&f), Some(true));
        assert!(emu_services::nat::udp_checksum_valid(f.bytes()));
    }

    #[test]
    fn tcp_frames_carry_valid_checksums() {
        let f = tcp_frame(
            mac(0x11),
            mac(0x22),
            Ipv4::new(192, 168, 0, 7),
            40000,
            Ipv4::new(192, 168, 0, 2),
            80,
            0xdead_beef,
            0,
            tcp_flags::SYN,
            &[],
            2,
        );
        assert_eq!(ipv4_csum_ok(&f), Some(true));
        assert_eq!(l4_csum_ok(&f), Some(true));
        assert!(emu_services::tcp_ping::tcp_checksum_valid(f.bytes()));
    }

    #[test]
    fn generated_syn_gets_answered_like_the_service_fixture() {
        // A SYN built here must be accepted by the tcp_ping service,
        // which verifies the full pseudo-header checksum in-core.
        use emu_core::Target;
        let svc = emu_services::tcp_ping();
        let mut engine = svc.engine(Target::Cpu).build().unwrap();
        let f = tcp_frame(
            mac(0x1),
            mac(0x2),
            Ipv4::new(10, 0, 0, 5),
            41000,
            Ipv4::new(10, 0, 0, 6),
            80,
            7,
            0,
            tcp_flags::SYN,
            &[],
            0,
        );
        let out = engine.process(&f).unwrap();
        assert_eq!(out.tx.len(), 1, "service rejected a generated SYN");
    }

    #[test]
    fn corrupting_a_byte_invalidates_the_checksum_helpers() {
        let mut f = udp_frame(
            mac(1),
            mac(2),
            Ipv4::new(1, 2, 3, 4),
            9,
            Ipv4::new(5, 6, 7, 8),
            10,
            b"xyz",
            0,
        );
        f.bytes_mut()[offset::IPV4_SRC] ^= 0xff;
        assert_eq!(ipv4_csum_ok(&f), Some(false));
        assert_eq!(l4_csum_ok(&f), Some(false));
    }

    #[test]
    fn arp_request_is_broadcast() {
        let f = arp_request(mac(0xa), Ipv4::new(10, 0, 0, 1), Ipv4::new(10, 0, 0, 2), 3);
        assert_eq!(f.ethertype(), ether_type::ARP);
        assert!(f.dst_mac().is_broadcast());
        assert_eq!(f.in_port, 3);
    }
}
