//! Adversarial traffic: frames crafted to hit parser edges — truncated
//! headers, lying length fields, corrupt checksums, unknown EtherTypes,
//! oversize frames, plain garbage. The engine contract under this
//! stream is *drop or pass, never trap*: an adversarial frame may be
//! rejected (`EngineError::Oversize`) or processed to a drop, but a
//! `Trap` is always a bug (asserted by `tests/differential_props.rs`).
//!
//! Source MACs and 5-tuples come from small fixed pools so stateful
//! consumers (NAT tables, switch learning, checker models) stay
//! bounded, and source MACs are always unicast so learning switches
//! behave canonically.

#[cfg(test)]
use crate::build::byte_at;
use crate::build::{tcp_flags, tcp_frame, udp_frame};
use crate::TrafficGen;
use emu_types::proto::{ether_type, offset};
use emu_types::{bitutil, Frame, Ipv4, MacAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The adversarial frame generator.
pub struct Adversarial {
    rng: StdRng,
    in_ports: Vec<u8>,
}

impl Adversarial {
    /// Distinct source endpoints the corrupt-but-parseable variants
    /// draw from (bounds any state they might allocate downstream).
    pub const POOL: u16 = 16;

    /// Creates the stream; frames arrive on ports drawn from
    /// `in_ports`.
    pub fn new(seed: u64, in_ports: &[u8]) -> Self {
        assert!(!in_ports.is_empty());
        Adversarial {
            rng: StdRng::seed_from_u64(seed ^ 0xad_5a11),
            in_ports: in_ports.to_vec(),
        }
    }

    fn mac(i: u16) -> MacAddr {
        MacAddr::from_u64(0x02_00_00_00_ad_00 + u64::from(i))
    }

    fn port(&mut self) -> u8 {
        self.in_ports[self.rng.gen_range(0usize..self.in_ports.len())]
    }

    /// A well-formed pooled UDP frame to corrupt.
    fn pooled_udp(&mut self) -> Frame {
        let k = self.rng.gen_range(0u16..Self::POOL);
        let port = self.port();
        udp_frame(
            Self::mac(k),
            Self::mac(k ^ 1),
            Ipv4::new(172, 16, 0, (k % 8) as u8 + 1),
            30_000 + k,
            Ipv4::new(198, 51, 100, 7),
            4_321,
            b"adversarial-udp",
            port,
        )
    }
}

impl TrafficGen for Adversarial {
    fn name(&self) -> &'static str {
        "adversarial"
    }

    fn next_frame(&mut self) -> Frame {
        match self.rng.gen_range(0u8..8) {
            // Truncated IPv4: the EtherType promises a header the frame
            // doesn't carry (the padded tail reads as zeros in-core).
            0 => {
                let k = self.rng.gen_range(0u16..Self::POOL);
                let port = self.port();
                let mut f = Frame::ethernet(
                    Self::mac(k ^ 1),
                    Self::mac(k),
                    ether_type::IPV4,
                    &[0x45, 0x00, 0x00],
                );
                f.in_port = port;
                f
            }
            // Options-bearing / absurd IHL.
            1 => {
                let mut f = self.pooled_udp();
                f.bytes_mut()[offset::IPV4] = 0x4f;
                f
            }
            // Corrupt IP header checksum on an otherwise valid frame.
            2 => {
                let mut f = self.pooled_udp();
                f.bytes_mut()[offset::IPV4_CSUM] ^= 0x55;
                f
            }
            // TCP SYN whose checksum lies.
            3 => {
                let k = self.rng.gen_range(0u16..Self::POOL);
                let port = self.port();
                let mut f = tcp_frame(
                    Self::mac(k),
                    Self::mac(k ^ 1),
                    Ipv4::new(172, 16, 1, (k % 8) as u8 + 1),
                    31_000 + k,
                    Ipv4::new(198, 51, 100, 9),
                    80,
                    0x600d_c0de,
                    0,
                    tcp_flags::SYN,
                    &[],
                    port,
                );
                f.bytes_mut()[offset::L4 + 16] ^= 0x80;
                f
            }
            // Unknown EtherType.
            4 => {
                let k = self.rng.gen_range(0u16..Self::POOL);
                let port = self.port();
                let len = self.rng.gen_range(4usize..80);
                let payload: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
                let mut f = Frame::ethernet(Self::mac(k ^ 1), Self::mac(k), 0x4242, &payload);
                f.in_port = port;
                f
            }
            // Oversize: beyond every service's frame buffer (1536 B max
            // across the shipped services) — must reject, not trap.
            5 => {
                let len = self.rng.gen_range(1_545usize..1_900);
                let mut bytes = vec![0xee; len];
                bytes[..6].copy_from_slice(&Self::mac(1).octets());
                bytes[6..12].copy_from_slice(&Self::mac(0).octets());
                bitutil::set16(&mut bytes, offset::ETH_TYPE, ether_type::IPV4);
                let mut f = Frame::new(bytes);
                f.in_port = self.port();
                f
            }
            // Garbage body under sane unicast MACs.
            6 => {
                let k = self.rng.gen_range(0u16..Self::POOL);
                let port = self.port();
                let len = self.rng.gen_range(60usize..300);
                let mut bytes = vec![0u8; len];
                self.rng.fill(&mut bytes[..]);
                bytes[..6].copy_from_slice(&Self::mac(k ^ 1).octets());
                bytes[6..12].copy_from_slice(&Self::mac(k).octets());
                let mut f = Frame::new(bytes);
                f.in_port = port;
                f
            }
            // UDP length field lying (larger than the datagram).
            _ => {
                let mut f = self.pooled_udp();
                bitutil::set16(f.bytes_mut(), offset::L4 + 4, 0xfff0);
                f
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{ipv4_csum_ok, l4_csum_ok};

    #[test]
    fn stream_contains_every_malformation() {
        let mut g = Adversarial::new(3, &[0, 1, 2, 3]);
        let mut saw = [false; 6];
        for _ in 0..500 {
            let f = g.next_frame();
            assert!(!f.src_mac().is_multicast(), "unicast sources only");
            if f.len() > 1_536 {
                saw[0] = true; // oversize
            }
            if f.ethertype() == 0x4242 {
                saw[1] = true; // wrong ethertype
            }
            if f.ethertype() == ether_type::IPV4 {
                if byte_at(&f, offset::IPV4) == 0x4f {
                    saw[2] = true; // options/IHL
                }
                if ipv4_csum_ok(&f) == Some(false) {
                    saw[3] = true; // bad IP csum
                }
                if l4_csum_ok(&f) == Some(false) {
                    saw[4] = true; // bad L4 csum
                }
                if f.len() == 60 && byte_at(&f, offset::IPV4 + 3) == 0 {
                    saw[5] = true; // truncated header
                }
            }
        }
        assert_eq!(saw, [true; 6], "missing variants: {saw:?}");
    }

    #[test]
    fn corrupt_but_parseable_variants_use_a_bounded_pool() {
        let mut g = Adversarial::new(7, &[1]);
        let tuples: std::collections::HashSet<(u32, u16)> = (0..2_000)
            .filter_map(|_| {
                let f = g.next_frame();
                let b = f.bytes();
                // Only translatable-looking frames allocate downstream
                // state; count their 5-tuples.
                (f.ethertype() == ether_type::IPV4
                    && byte_at(&f, offset::IPV4) == 0x45
                    && (byte_at(&f, offset::IPV4_PROTO) == 6
                        || byte_at(&f, offset::IPV4_PROTO) == 17)
                    && f.len() <= 1_536)
                    .then(|| {
                        (
                            bitutil::get32(b, offset::IPV4_SRC),
                            bitutil::get16(b, offset::L4),
                        )
                    })
            })
            .collect();
        assert!(
            tuples.len() <= 2 * usize::from(Adversarial::POOL) + 4,
            "{} flows is unbounded",
            tuples.len()
        );
    }
}
