//! The golden-fixture scenarios: small, fully deterministic streams
//! whose recorded engine responses are committed under
//! `tests/fixtures/` and replayed byte-exact by
//! `tests/traffic_replay.rs` on every target.
//!
//! The recorder bin (`cargo run -p emu-traffic --bin record_fixtures`)
//! and the replay test share these definitions, so a generator refactor
//! that changes any stream shows up as a fixture diff — never as a
//! silent semantic change.

use crate::{
    Adversarial, Background, DnsWeighted, MemcachedZipf, Mix, TcpConversations, TrafficGen,
};
use emu_core::{Service, Target};
use emu_types::{Frame, Ipv4};

/// One replayable scenario: a service and a deterministic input stream.
pub struct Scenario {
    /// Fixture stem (`<name>.trace`).
    pub name: &'static str,
    /// Builds the service under test.
    pub service: fn() -> Service,
    /// Builds the input stream (deterministic).
    pub inputs: fn() -> Vec<Frame>,
}

fn nat_public() -> Ipv4 {
    "203.0.113.1".parse().expect("valid")
}

fn nat_bidirectional_inputs() -> Vec<Frame> {
    // Outbound conversations, then the replies a remote would send —
    // computed by running the translation once on a throwaway CPU
    // engine (deterministic, so recorder and replayer agree).
    let outbound = TcpConversations::new(21, 6, &[1, 2]).take(36);
    let svc = emu_services::nat(nat_public());
    let mut probe = svc.engine(Target::Cpu).build().expect("probe engine");
    let report = probe.process_batch(&outbound);
    let replies: Vec<Frame> = report
        .outputs
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .flat_map(|o| &o.tx)
        .map(|t| crate::build::reply_to(&t.frame, b"fixture-reply"))
        .collect();
    let mut all = outbound;
    all.extend(replies);
    all
}

fn memcached_zipf_inputs() -> Vec<Frame> {
    MemcachedZipf::new(31, 24, 1.1, 0.7).take(60)
}

fn malformed_mix_inputs() -> Vec<Frame> {
    Mix::new(41)
        .add(1, Adversarial::new(42, &[0, 1, 2, 3]))
        .add(1, Background::new(43, &[0, 1, 2, 3]))
        .take(60)
}

fn dns_weighted_inputs() -> Vec<Frame> {
    DnsWeighted::new(
        51,
        &[
            ("example.com", 4),
            ("emu.cam.ac.uk", 2),
            ("miss.example", 1),
        ],
    )
    .take(48)
}

fn dns_service() -> Service {
    emu_services::dns_server(vec![
        (
            "example.com".to_string(),
            "93.184.216.34".parse().expect("valid"),
        ),
        (
            "emu.cam.ac.uk".to_string(),
            "128.232.0.20".parse().expect("valid"),
        ),
    ])
}

/// The committed fixture set.
pub fn fixture_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "nat_bidirectional",
            service: || emu_services::nat(nat_public()),
            inputs: nat_bidirectional_inputs,
        },
        Scenario {
            name: "memcached_zipf",
            service: emu_services::memcached,
            inputs: memcached_zipf_inputs,
        },
        Scenario {
            name: "malformed_mix",
            service: emu_services::switch_ip_cam,
            inputs: malformed_mix_inputs,
        },
        Scenario {
            name: "dns_weighted",
            service: dns_service,
            inputs: dns_weighted_inputs,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_inputs_are_deterministic() {
        for s in fixture_scenarios() {
            assert_eq!((s.inputs)(), (s.inputs)(), "{} drifted", s.name);
            assert!(!(s.inputs)().is_empty());
        }
    }
}
