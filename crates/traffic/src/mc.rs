//! Zipf-keyed memcached workloads: GET/SET/DELETE mixes over the
//! ASCII-over-UDP protocol, with the skew real cache traffic shows
//! (the paper benchmarks memcached with memaslap's 90/10 GET/SET mix;
//! production key popularity is famously Zipfian).
//!
//! **Shard affinity:** the client source port moves in lockstep with
//! the key index, so every operation on one key shares one 5-tuple —
//! under RSS dispatch all ops on a key land on one shard and per-shard
//! stores stay coherent. This is the documented precondition of
//! [`crate::check::McModel`].

use crate::TrafficGen;
use emu_services::memcached::request_frame;
use emu_types::{bitutil, Frame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipf-distributed sampler over `0..n` via inverse-CDF lookup.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `alpha`
    /// (`alpha = 0` is uniform; ~1 is classic web-object popularity).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Zipf-keyed memcached GET/SET/DELETE request stream.
pub struct MemcachedZipf {
    rng: StdRng,
    zipf: Zipf,
    get_ratio: f64,
    req_id: u16,
    counter: u64,
}

impl MemcachedZipf {
    /// `keys` distinct keys (≤ 1 000 000 so every key stays within the
    /// service's 8-byte limit), Zipf exponent `alpha`, and a GET
    /// fraction `get_ratio` (the remainder splits 4:1 into SETs and
    /// DELETEs).
    pub fn new(seed: u64, keys: usize, alpha: f64, get_ratio: f64) -> Self {
        assert!(keys > 0 && keys <= 1_000_000);
        assert!((0.0..=1.0).contains(&get_ratio));
        MemcachedZipf {
            rng: StdRng::seed_from_u64(seed ^ 0x5a1f_0cde),
            zipf: Zipf::new(keys, alpha),
            get_ratio,
            req_id: 0,
            counter: 0,
        }
    }

    /// The key string for rank `idx` (≤ 8 bytes by construction).
    pub fn key(idx: usize) -> String {
        format!("z{idx:04}")
    }
}

impl TrafficGen for MemcachedZipf {
    fn name(&self) -> &'static str {
        "memcached-zipf"
    }

    fn next_frame(&mut self) -> Frame {
        let idx = self.zipf.sample(&mut self.rng);
        let key = Self::key(idx);
        let op = self.rng.gen_range(0.0..1.0);
        let body = if op < self.get_ratio {
            format!("get {key}\r\n")
        } else if op < self.get_ratio + (1.0 - self.get_ratio) * 0.8 {
            self.counter += 1;
            format!("set {key} 0 0 8\r\nV{:07}\r\n", self.counter % 10_000_000)
        } else {
            format!("delete {key}\r\n")
        };
        self.req_id = self.req_id.wrapping_add(1);
        let mut f = request_frame(&body, self.req_id);
        // Key ↔ flow lockstep: the sport identifies the key, so RSS
        // keeps each key's ops on one shard (UDP checksum is absent in
        // `request_frame`, so the patch needs no checksum fix).
        bitutil::set16(
            f.bytes_mut(),
            emu_types::proto::offset::L4,
            5_000 + idx as u16,
        );
        f.in_port = self.rng.gen_range(0u8..4);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(64, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 64];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[40]);
        assert!(counts[0] > 20_000 / 16, "rank 0 must be hot");
    }

    #[test]
    fn ops_follow_the_requested_mix() {
        let mut g = MemcachedZipf::new(9, 32, 1.0, 0.9);
        let mut gets = 0;
        for _ in 0..5_000 {
            let f = g.next_frame();
            // Command byte sits at the fixed ASCII offset.
            if crate::build::byte_at(&f, 50) == b'g' {
                gets += 1;
            }
        }
        let ratio = gets as f64 / 5_000.0;
        assert!((ratio - 0.9).abs() < 0.03, "GET ratio {ratio}");
    }

    #[test]
    fn key_and_flow_move_in_lockstep() {
        let mut g = MemcachedZipf::new(2, 16, 1.0, 0.5);
        let mut seen = std::collections::HashMap::new();
        for _ in 0..2_000 {
            let f = g.next_frame();
            let sport = emu_types::bitutil::get16(f.bytes(), 34);
            // Extract the key from the ASCII command.
            let b = f.bytes();
            let text: Vec<u8> = b[50..]
                .iter()
                .copied()
                .take_while(|&c| c != b'\r')
                .collect();
            let key = String::from_utf8_lossy(&text)
                .split_whitespace()
                .nth(1)
                .unwrap()
                .to_string();
            let prev = seen.entry(key.clone()).or_insert(sport);
            assert_eq!(*prev, sport, "key {key} changed flows");
        }
    }
}
