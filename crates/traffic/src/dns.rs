//! Weighted DNS query streams: a fixed name catalogue queried with
//! caller-chosen weights (hot names, cold names, guaranteed misses),
//! transaction ids and client source ports drawn from the seeded RNG.

use crate::TrafficGen;
use emu_services::dns::query_frame;
use emu_types::{bitutil, Frame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weighted DNS query generator.
pub struct DnsWeighted {
    rng: StdRng,
    names: Vec<(String, u32)>,
    total: u32,
}

impl DnsWeighted {
    /// Builds the stream over `(name, weight)` pairs.
    pub fn new(seed: u64, names: &[(&str, u32)]) -> Self {
        assert!(!names.is_empty());
        let names: Vec<(String, u32)> = names.iter().map(|(n, w)| ((*n).to_string(), *w)).collect();
        let total = names.iter().map(|(_, w)| *w).sum();
        assert!(total > 0, "at least one positive weight");
        DnsWeighted {
            rng: StdRng::seed_from_u64(seed ^ 0xd5_0123),
            names,
            total,
        }
    }
}

impl TrafficGen for DnsWeighted {
    fn name(&self) -> &'static str {
        "dns-weighted"
    }

    fn next_frame(&mut self) -> Frame {
        let mut pick = self.rng.gen_range(0u32..self.total);
        let mut name = self.names[0].0.as_str();
        for (n, w) in &self.names {
            if pick < *w {
                name = n;
                break;
            }
            pick -= w;
        }
        let id = self.rng.gen_range(0u16..u16::MAX);
        let mut f = query_frame(name, id);
        // Spread client flows over a pool of source ports (the query's
        // UDP checksum is absent, so no fix-up is needed).
        let sport = 4_000 + self.rng.gen_range(0u16..64);
        bitutil::set16(f.bytes_mut(), emu_types::proto::offset::L4, sport);
        f.in_port = self.rng.gen_range(0u8..4);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_shape_the_name_distribution() {
        let mut g = DnsWeighted::new(4, &[("hot.example", 9), ("cold.example", 1)]);
        let mut hot = 0;
        for _ in 0..2_000 {
            let f = g.next_frame();
            // The first label length byte of "hot.example" is 3 and its
            // first character distinguishes the two names.
            if f.bytes()[55] == b'h' {
                hot += 1;
            }
        }
        let ratio = hot as f64 / 2_000.0;
        assert!((ratio - 0.9).abs() < 0.05, "hot ratio {ratio}");
    }
}
