//! The Emu standard library — the paper's primary contribution.
//!
//! "Emu provides the implementation for essential network functionality"
//! the way stdlib does for C (§1). Concretely:
//!
//! * [`dataplane`] — the Figure 6 utility surface (`Get_Frame`,
//!   `Set_Output_Port`, `Broadcast`, `EtherType_Is`, ...) over the
//!   NetFPGA dataplane contract,
//! * [`proto`] — the protocol wrappers of Figures 3–4 (Ethernet, ARP,
//!   IPv4, ICMP, UDP, TCP, DNS),
//! * [`csum`] — RFC 1071/1624 checksum arithmetic as IR expressions,
//! * [`ipblock`] — wrappers for hardware IP blocks: CAM, the Figure 5
//!   streaming hash, and the Figure 9 LRU cache,
//! * [`runner`] — the heterogeneous-target service description: one
//!   program targeting the CPU (interpreter) or FPGA (cycle-accurate
//!   FSM) backend, the RSS flow digest, and the differential-testing
//!   harness,
//! * [`engine`] — the unified execution surface: [`Service::engine`]
//!   builds an [`Engine`] of 1..N replicated pipelines behind a
//!   pluggable [`Dispatch`] policy, with sequential (cost-model) and
//!   real-thread parallel execution.
//!
//! Services built from these pieces live in `emu-services`; the Mininet
//! analogue in `netsim` provides the third target.

pub mod csum;
pub mod dataplane;
pub mod engine;
pub mod ipblock;
pub mod proto;
pub mod runner;

pub use dataplane::Dataplane;
pub use engine::{
    BatchReport, Dispatch, Engine, EngineBuilder, EngineError, EngineResult, NatSteering,
    RoundRobin, RssHash, Shard,
};
pub use ipblock::{CamDeleteIf, CamIf, HashIf, LruIf, NaughtyQIf};
pub use proto::{
    ArpWrapper, DnsWrapper, EthernetWrapper, IcmpWrapper, Ipv4Wrapper, TcpWrapper, UdpWrapper,
};
pub use runner::{
    assert_targets_agree, flow_hash, flow_key, service_builder, Backend, Service, TableConfig,
    Target, FPGA_MAX_TABLE_ENTRIES,
};
