//! Protocol wrappers: the reusable parsers of Figures 3 and 4.
//!
//! The paper instantiates one wrapper per protocol over the same frame
//! buffer:
//!
//! ```csharp
//! var eth = new EthernetWrapper(dataplane.tdata);
//! var ip  = new IPv4Wrapper(dataplane.tdata);
//! var tcp = new TCPWrapper(dataplane.tdata);
//! var arp = new ARPWrapper(dataplane.tdata);
//! ```
//!
//! Each wrapper exposes typed getters/setters over the byte array; here
//! they produce IR expressions/statements against the [`Dataplane`].
//! "Writing new parsers for custom protocols is straightforward" (§3.4) —
//! every wrapper below is a thin offset table, exactly like Figure 4.
//!
//! Fixed-offset L4 wrappers assume a 20-byte IPv4 header (IHL = 5), the
//! common case the paper's prototypes handle; `Ipv4Wrapper::has_options`
//! lets services detect and drop options-bearing packets explicitly.

use crate::dataplane::Dataplane;
use emu_types::proto::offset;
use kiwi_ir::dsl::*;
use kiwi_ir::{Expr, Stmt};

/// Ethernet II header accessors.
#[derive(Debug, Clone, Copy)]
pub struct EthernetWrapper {
    dp: Dataplane,
}

impl EthernetWrapper {
    /// Wraps the dataplane's frame buffer.
    pub fn new(dp: Dataplane) -> Self {
        EthernetWrapper { dp }
    }

    /// Destination MAC (48 bits).
    pub fn dst(&self) -> Expr {
        self.dp.dst_mac()
    }

    /// Source MAC (48 bits).
    pub fn src(&self) -> Expr {
        self.dp.src_mac()
    }

    /// EtherType.
    pub fn ethertype(&self) -> Expr {
        self.dp.ethertype()
    }

    /// Sets the destination MAC.
    pub fn set_dst(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set_dst_mac(v)
    }

    /// Sets the source MAC.
    pub fn set_src(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set_src_mac(v)
    }

    /// Sets the EtherType.
    pub fn set_ethertype(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set16(offset::ETH_TYPE, v)
    }
}

/// IPv4 header accessors (Figure 4's `DestinationIPAddress` et al.).
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Wrapper {
    dp: Dataplane,
}

impl Ipv4Wrapper {
    /// Wraps the dataplane's frame buffer.
    pub fn new(dp: Dataplane) -> Self {
        Ipv4Wrapper { dp }
    }

    /// Version field (should be 4).
    pub fn version(&self) -> Expr {
        slice(self.dp.byte(offset::IPV4), 7, 4)
    }

    /// Header length in 32-bit words.
    pub fn ihl(&self) -> Expr {
        slice(self.dp.byte(offset::IPV4), 3, 0)
    }

    /// True when the header carries options (IHL ≠ 5).
    pub fn has_options(&self) -> Expr {
        ne(self.ihl(), lit(5, 4))
    }

    /// Total length field.
    pub fn total_len(&self) -> Expr {
        self.dp.get16(offset::IPV4 + 2)
    }

    /// TTL.
    pub fn ttl(&self) -> Expr {
        self.dp.byte(offset::IPV4_TTL)
    }

    /// Sets the TTL.
    pub fn set_ttl(&self, v: Expr) -> Stmt {
        self.dp.set8(offset::IPV4_TTL, v)
    }

    /// Protocol byte.
    pub fn protocol(&self) -> Expr {
        self.dp.byte(offset::IPV4_PROTO)
    }

    /// True when the protocol byte equals `p`.
    pub fn protocol_is(&self, p: u8) -> Expr {
        eq(self.protocol(), lit(u64::from(p), 8))
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> Expr {
        self.dp.get16(offset::IPV4_CSUM)
    }

    /// Sets the header checksum field.
    pub fn set_header_checksum(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set16(offset::IPV4_CSUM, v)
    }

    /// Source address (Figure 4's `SourceIPAddress` getter).
    pub fn src(&self) -> Expr {
        self.dp.get32(offset::IPV4_SRC)
    }

    /// Destination address.
    pub fn dst(&self) -> Expr {
        self.dp.get32(offset::IPV4_DST)
    }

    /// Sets the source address (Figure 4's setter).
    pub fn set_src(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set32(offset::IPV4_SRC, v)
    }

    /// Sets the destination address.
    pub fn set_dst(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set32(offset::IPV4_DST, v)
    }

    /// Swaps source and destination addresses via a ≥32-bit scratch reg.
    pub fn swap_addrs(&self, scratch: kiwi_ir::VarId) -> Vec<Stmt> {
        let mut out = vec![assign(scratch, self.dst())];
        out.extend(self.set_dst(self.src()));
        out.extend(self.set_src(resize(var(scratch), 32)));
        out
    }
}

/// ARP (IPv4-over-Ethernet) accessors.
#[derive(Debug, Clone, Copy)]
pub struct ArpWrapper {
    dp: Dataplane,
}

impl ArpWrapper {
    /// Wraps the dataplane's frame buffer.
    pub fn new(dp: Dataplane) -> Self {
        ArpWrapper { dp }
    }

    /// Operation: 1 request, 2 reply.
    pub fn oper(&self) -> Expr {
        self.dp.get16(offset::L3 + 6)
    }

    /// Sets the operation.
    pub fn set_oper(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set16(offset::L3 + 6, v)
    }

    /// Sender MAC.
    pub fn sha(&self) -> Expr {
        self.dp.get48(offset::L3 + 8)
    }

    /// Sender IPv4.
    pub fn spa(&self) -> Expr {
        self.dp.get32(offset::L3 + 14)
    }

    /// Target MAC.
    pub fn tha(&self) -> Expr {
        self.dp.get48(offset::L3 + 18)
    }

    /// Target IPv4.
    pub fn tpa(&self) -> Expr {
        self.dp.get32(offset::L3 + 24)
    }
}

/// ICMP echo accessors (assumes IHL = 5).
#[derive(Debug, Clone, Copy)]
pub struct IcmpWrapper {
    dp: Dataplane,
}

impl IcmpWrapper {
    /// Wraps the dataplane's frame buffer.
    pub fn new(dp: Dataplane) -> Self {
        IcmpWrapper { dp }
    }

    /// Type byte (8 = echo request, 0 = echo reply).
    pub fn icmp_type(&self) -> Expr {
        self.dp.byte(offset::L4)
    }

    /// Sets the type byte.
    pub fn set_type(&self, v: Expr) -> Stmt {
        self.dp.set8(offset::L4, v)
    }

    /// Code byte.
    pub fn code(&self) -> Expr {
        self.dp.byte(offset::L4 + 1)
    }

    /// Checksum field.
    pub fn checksum(&self) -> Expr {
        self.dp.get16(offset::L4 + 2)
    }

    /// Sets the checksum field.
    pub fn set_checksum(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set16(offset::L4 + 2, v)
    }
}

/// UDP accessors (assumes IHL = 5).
#[derive(Debug, Clone, Copy)]
pub struct UdpWrapper {
    dp: Dataplane,
}

impl UdpWrapper {
    /// Wraps the dataplane's frame buffer.
    pub fn new(dp: Dataplane) -> Self {
        UdpWrapper { dp }
    }

    /// Source port.
    pub fn src_port(&self) -> Expr {
        self.dp.get16(offset::L4)
    }

    /// Destination port.
    pub fn dst_port(&self) -> Expr {
        self.dp.get16(offset::L4 + 2)
    }

    /// Datagram length.
    pub fn len(&self) -> Expr {
        self.dp.get16(offset::L4 + 4)
    }

    /// Sets the source port.
    pub fn set_src_port(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set16(offset::L4, v)
    }

    /// Sets the destination port.
    pub fn set_dst_port(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set16(offset::L4 + 2, v)
    }

    /// Sets the length field.
    pub fn set_len(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set16(offset::L4 + 4, v)
    }

    /// Zeroes the UDP checksum — legal over IPv4 (checksum optional) and
    /// the standard trick in hardware UDP responders that rewrite the
    /// payload.
    pub fn clear_checksum(&self) -> Vec<Stmt> {
        self.dp.set16(offset::L4 + 6, lit(0, 16))
    }

    /// Swaps source and destination ports via a ≥16-bit scratch register.
    pub fn swap_ports(&self, scratch: kiwi_ir::VarId) -> Vec<Stmt> {
        let mut out = vec![assign(scratch, self.dst_port())];
        out.extend(self.set_dst_port(self.src_port()));
        out.extend(self.set_src_port(resize(var(scratch), 16)));
        out
    }

    /// Offset of the UDP payload.
    pub const PAYLOAD: usize = offset::L4 + 8;
}

/// TCP accessors (assumes IHL = 5).
#[derive(Debug, Clone, Copy)]
pub struct TcpWrapper {
    dp: Dataplane,
}

impl TcpWrapper {
    /// Wraps the dataplane's frame buffer.
    pub fn new(dp: Dataplane) -> Self {
        TcpWrapper { dp }
    }

    /// Source port.
    pub fn src_port(&self) -> Expr {
        self.dp.get16(offset::L4)
    }

    /// Destination port.
    pub fn dst_port(&self) -> Expr {
        self.dp.get16(offset::L4 + 2)
    }

    /// Sequence number.
    pub fn seq(&self) -> Expr {
        self.dp.get32(offset::L4 + 4)
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> Expr {
        self.dp.get32(offset::L4 + 8)
    }

    /// Flags byte (CWR..FIN).
    pub fn flags(&self) -> Expr {
        self.dp.byte(offset::L4 + 13)
    }

    /// The data-offset/reserved byte plus flags as one 16-bit word (the
    /// unit of incremental checksum updates).
    pub fn off_flags_word(&self) -> Expr {
        self.dp.get16(offset::L4 + 12)
    }

    /// Checksum field.
    pub fn checksum(&self) -> Expr {
        self.dp.get16(offset::L4 + 16)
    }

    /// Sets the source port.
    pub fn set_src_port(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set16(offset::L4, v)
    }

    /// Sets the destination port.
    pub fn set_dst_port(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set16(offset::L4 + 2, v)
    }

    /// Sets the sequence number.
    pub fn set_seq(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set32(offset::L4 + 4, v)
    }

    /// Sets the acknowledgement number.
    pub fn set_ack(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set32(offset::L4 + 8, v)
    }

    /// Sets the flags byte.
    pub fn set_flags(&self, v: Expr) -> Stmt {
        self.dp.set8(offset::L4 + 13, v)
    }

    /// Sets the checksum field.
    pub fn set_checksum(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set16(offset::L4 + 16, v)
    }

    /// Swaps source and destination ports via a ≥16-bit scratch register.
    pub fn swap_ports(&self, scratch: kiwi_ir::VarId) -> Vec<Stmt> {
        let mut out = vec![assign(scratch, self.dst_port())];
        out.extend(self.set_dst_port(self.src_port()));
        out.extend(self.set_src_port(resize(var(scratch), 16)));
        out
    }

    /// SYN flag bit.
    pub fn syn(&self) -> Expr {
        slice(self.flags(), 1, 1)
    }

    /// ACK flag bit.
    pub fn ack_flag(&self) -> Expr {
        slice(self.flags(), 4, 4)
    }
}

/// DNS-over-UDP accessors (header at the UDP payload).
#[derive(Debug, Clone, Copy)]
pub struct DnsWrapper {
    dp: Dataplane,
}

impl DnsWrapper {
    /// Offset of the DNS header within the frame.
    pub const HDR: usize = UdpWrapper::PAYLOAD;
    /// Offset of the question section.
    pub const QUESTION: usize = Self::HDR + 12;

    /// Wraps the dataplane's frame buffer.
    pub fn new(dp: Dataplane) -> Self {
        DnsWrapper { dp }
    }

    /// Transaction id.
    pub fn id(&self) -> Expr {
        self.dp.get16(Self::HDR)
    }

    /// Flags word.
    pub fn flags(&self) -> Expr {
        self.dp.get16(Self::HDR + 2)
    }

    /// Sets the flags word.
    pub fn set_flags(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set16(Self::HDR + 2, v)
    }

    /// Question count.
    pub fn qdcount(&self) -> Expr {
        self.dp.get16(Self::HDR + 4)
    }

    /// Sets the answer count.
    pub fn set_ancount(&self, v: Expr) -> Vec<Stmt> {
        self.dp.set16(Self::HDR + 6, v)
    }

    /// Sets the RCODE nibble (keeping the response bit set): flags =
    /// 0x8180 | rcode for a standard response.
    pub fn set_response_flags(&self, rcode: u8) -> Vec<Stmt> {
        self.set_flags(lit(0x8180 | u64::from(rcode & 0xf), 16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataplane::Dataplane;
    use emu_rtl::RtlMachine;
    use emu_types::proto::{ether_type, ip_proto};
    use emu_types::{Frame, MacAddr};
    use kiwi_ir::interp::{NullEnv, NullObserver};
    use kiwi_ir::ProgramBuilder;
    use netfpga_sim::DataplaneDriver;

    /// Builds a valid ICMP echo request frame for tests.
    pub(crate) fn icmp_echo_request() -> Frame {
        let mut ip = vec![
            0x45, 0x00, 0x00, 0x54, 0x12, 0x34, 0x40, 0x00, 0x40, 0x01, 0, 0, // csum
            10, 0, 0, 1, // src
            10, 0, 0, 2, // dst
        ];
        let c = emu_types::checksum::internet_checksum(&ip);
        ip[10] = (c >> 8) as u8;
        ip[11] = c as u8;
        let mut icmp = vec![8, 0, 0, 0, 0x12, 0x34, 0x00, 0x01];
        icmp.extend_from_slice(&[0x61; 56]);
        let cc = emu_types::checksum::internet_checksum(&icmp);
        icmp[2] = (cc >> 8) as u8;
        icmp[3] = cc as u8;
        let mut payload = ip;
        payload.extend_from_slice(&icmp);
        Frame::ethernet(
            MacAddr::from_u64(0x02_00_00_00_00_01),
            MacAddr::from_u64(0x02_00_00_00_00_02),
            ether_type::IPV4,
            &payload,
        )
    }

    #[test]
    fn ipv4_wrapper_reads_real_header() {
        // A program copying parsed fields into registers for inspection.
        let mut pb = ProgramBuilder::new("parse");
        let dp = Dataplane::declare(&mut pb, 256);
        let ip = Ipv4Wrapper::new(dp);
        let v = pb.reg("ver", 4);
        let p = pb.reg("proto", 8);
        let s = pb.reg("src", 32);
        let d = pb.reg("dst", 32);
        let opt = pb.reg("opt", 1);
        pb.thread(
            "main",
            vec![forever(vec![
                dp.rx_wait(),
                assign(v, ip.version()),
                assign(p, ip.protocol()),
                assign(s, ip.src()),
                assign(d, ip.dst()),
                assign(opt, ip.has_options()),
                sig_write(dp.ports.rx_done, tru()),
                pause(),
                sig_write(dp.ports.rx_done, fls()),
            ])],
        );
        let prog = pb.build().unwrap();
        let mut drv = DataplaneDriver::new(RtlMachine::new(kiwi::compile(&prog).unwrap())).unwrap();
        drv.process(&icmp_echo_request(), &mut NullEnv, &mut NullObserver)
            .unwrap();
        let st = drv.backend().state();
        assert_eq!(st.vars[0].to_u64(), 4);
        assert_eq!(st.vars[1].to_u64(), u64::from(ip_proto::ICMP));
        assert_eq!(st.vars[2].to_u64(), 0x0a00_0001);
        assert_eq!(st.vars[3].to_u64(), 0x0a00_0002);
        assert_eq!(st.vars[4].to_u64(), 0);
    }

    #[test]
    fn ipv4_swap_addrs() {
        let mut pb = ProgramBuilder::new("swap");
        let dp = Dataplane::declare(&mut pb, 256);
        let ip = Ipv4Wrapper::new(dp);
        let scratch = pb.reg("scratch", 32);
        let mut body = vec![dp.rx_wait()];
        body.extend(ip.swap_addrs(scratch));
        body.push(dp.set_output_port(lit(0, 8)));
        body.extend(dp.transmit(dp.rx_len()));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        let prog = pb.build().unwrap();
        let mut drv = DataplaneDriver::new(RtlMachine::new(kiwi::compile(&prog).unwrap())).unwrap();
        let out = drv
            .process(&icmp_echo_request(), &mut NullEnv, &mut NullObserver)
            .unwrap();
        let b = out.tx[0].frame.bytes();
        assert_eq!(emu_types::bitutil::get32(b, 26), 0x0a00_0002); // src now .2
        assert_eq!(emu_types::bitutil::get32(b, 30), 0x0a00_0001); // dst now .1
    }

    #[test]
    fn tcp_flag_bits() {
        // SYN = 0x02, ACK = 0x10; check the slice positions.
        let mut pb = ProgramBuilder::new("flags");
        let dp = Dataplane::declare(&mut pb, 64);
        let tcp = TcpWrapper::new(dp);
        let syn = pb.reg("syn", 1);
        let ack = pb.reg("ack", 1);
        pb.thread(
            "main",
            vec![forever(vec![
                dp.rx_wait(),
                assign(syn, tcp.syn()),
                assign(ack, tcp.ack_flag()),
                sig_write(dp.ports.rx_done, tru()),
                pause(),
                sig_write(dp.ports.rx_done, fls()),
            ])],
        );
        let prog = pb.build().unwrap();
        let mut drv = DataplaneDriver::new(RtlMachine::new(kiwi::compile(&prog).unwrap())).unwrap();
        let mut bytes = vec![0u8; 60];
        bytes[14 + 20 + 13] = 0x02; // SYN
        drv.process(&Frame::new(bytes), &mut NullEnv, &mut NullObserver)
            .unwrap();
        assert_eq!(drv.backend().state().vars[0].to_u64(), 1);
        assert_eq!(drv.backend().state().vars[1].to_u64(), 0);
    }

    #[test]
    fn wrapper_offsets_are_consistent() {
        assert_eq!(UdpWrapper::PAYLOAD, 42);
        assert_eq!(DnsWrapper::HDR, 42);
        assert_eq!(DnsWrapper::QUESTION, 54);
    }
}
