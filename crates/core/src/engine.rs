//! The unified execution engine: one API from a single pipeline to a
//! parallel multi-shard scale-out.
//!
//! The paper's NetFPGA deployment scales by replicating the service
//! pipeline across parallel datapaths — §5.4 runs "four Emu cores (one
//! per port)". Earlier revisions exposed that as a *second* API next to
//! the single-instance one (`ServiceInstance` vs `ShardedEngine`); this
//! module replaces both with one [`Engine`], configured through
//! [`EngineBuilder`]:
//!
//! ```ignore
//! // Single pipeline (the old `instantiate`):
//! let mut one = svc.engine(Target::Fpga).build()?;
//!
//! // Four shards behind the RSS flow hash, executed on real threads:
//! let mut four = svc
//!     .engine(Target::Fpga)
//!     .shards(4)
//!     .dispatch(RssHash)
//!     .parallel(true)
//!     .build()?;
//! ```
//!
//! # Migration from the bifurcated API
//!
//! | old | new |
//! |---|---|
//! | `Service::instantiate(t)` | `svc.engine(t).build()` |
//! | `Service::instantiate_sharded(t, n)` | `svc.engine(t).shards(n).build()` |
//! | `ServiceInstance` | [`Engine`] (1 shard) |
//! | `ShardedEngine` | [`Engine`] (N shards) |
//! | `ServiceInstance::process_batch` → `BatchOutput` | [`Engine::process_batch`] → [`BatchReport`] |
//! | `ShardedEngine::process_batch` → `ShardedBatch` | [`Engine::process_batch`] → [`BatchReport`] |
//! | `ShardedEngine::shard_mut` → `&mut ServiceInstance` | [`Engine::shard_mut`] → `&mut` [`Shard`] |
//! | `ServiceInstance::read_reg` / `env_mut` | [`Engine::read_reg`] / [`Engine::env_mut`] (shard 0) |
//! | `ServiceInstance::into_fpga_parts` | [`Engine::into_fpga_parts`] (1-shard engines) |
//! | `NetSim::add_service(name, &svc, ports)` | `NetSim::add_service(name, engine, ports)` |
//! | `NetSim::add_service_sharded(..)` | build the engine with `.shards(n)`, then `add_service` |
//! | `NetSim::service_mut` / `sharded_mut` | `NetSim::engine_mut` |
//!
//! # Dispatch policies
//!
//! Which shard a frame runs on is a pluggable policy — the [`Dispatch`]
//! trait — rather than a property of the engine:
//!
//! * [`RssHash`] (the default): the Pearson-digest flow hash of
//!   [`crate::flow_hash`]; every frame of one 5-tuple shares a shard, so
//!   flow-keyed state (NAT mappings, learned MACs) partitions cleanly.
//! * [`RoundRobin`]: stateless spreading for services with no cross-frame
//!   state at all; ignores frame contents entirely.
//! * [`NatSteering`]: external-port-keyed steering for NAT-shaped
//!   services. Outbound frames follow the RSS hash; *inbound* frames are
//!   steered by their destination (external) port to the shard that
//!   allocated it, which plain RSS cannot do because the reply 5-tuple
//!   hashes independently of the outbound one. See [`NatSteering`] for
//!   the allocation-register contract.
//!
//! # Execution backends
//!
//! On [`Target::Cpu`] the builder additionally selects an execution
//! [`Backend`]: the **compiled** micro-op bytecode (the default — the
//! production software path) or the **tree-walking** interpreter (the
//! reference semantics). The two are byte-identical in every observable
//! and differ only in speed; `EngineBuilder::backend` pins one
//! explicitly, and the `EMU_CPU_BACKEND` environment variable flips the
//! default (CI uses it to run the whole suite on the reference
//! interpreter). The `backend_compare` bench bin reports the per-frame
//! speedup per service.
//!
//! # Execution modes
//!
//! By default shards execute **sequentially** on the calling thread under
//! the parallel-datapath *cost model* (the batch's wall-clock is the
//! busiest shard's busy cycles) — fully deterministic, the right mode for
//! tests and cycle accounting. [`EngineBuilder::parallel`] executes
//! shards on real OS threads (scoped threads, one per non-idle shard per
//! batch); outputs and failure semantics are identical by construction,
//! only host wall-clock time changes. The `scaling_parallel` bench
//! compares the two.
//!
//! # Failure isolation
//!
//! A shard whose program traps (hung core, executor error) is *poisoned*:
//! the trapping frame and every later frame dispatched to it report
//! errors, its siblings keep processing, and the error is retained on
//! [`Engine::shard_error`]. Input-validation failures (an oversized
//! frame) are rejected per frame *without* poisoning — the core never saw
//! the frame, so its state is still good. These semantics are identical
//! in sequential and parallel modes, and every error is an
//! [`EngineError`] that names the shard.
//!
//! # Telemetry
//!
//! Every engine maintains per-shard [`ShardStats`] — frames, bytes,
//! per-outcome drops, and a log-bucketed histogram of per-frame core
//! *cycles* (model time, so the numbers are byte-identical across the
//! compiled/tree-walk backends and sequential/parallel execution).
//! [`Engine::telemetry`] snapshots the whole engine; counters are
//! updated on whichever thread runs the shard's slice, so parallel
//! mode pays no synchronization. Builders can opt out with
//! [`EngineBuilder::telemetry`]`(false)` — the `sustained` bench bin
//! uses that to prove the instrumentation costs < 5 % of the hot path.

use crate::runner::{flow_hash, AnyDriver, Backend, Service, TableConfig, Target};
use emu_rtl::{IpEnv, RtlMachine};
use emu_telemetry::{DropKind, EngineSnapshot, ShardStats};
use emu_types::proto::{ether_type, ip_proto, offset};
use emu_types::{Bits, Frame};
use kiwi_ir::interp::{NullObserver, Observer};
use kiwi_ir::{IrError, IrResult};
use netfpga_sim::dataplane::CoreOutput;
use netfpga_sim::DataplaneDriver;
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// The engine's single error type: every failure names the shard it
/// happened on, and the variant tells the caller whether the shard's
/// state is still trustworthy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Building the engine failed (program flattening/compilation, a
    /// missing dataplane contract, zero shards, or a dispatch policy
    /// that could not configure its shards).
    Build(String),
    /// Input validation rejected the frame before it reached the core;
    /// the shard is *not* poisoned.
    Oversize {
        /// Shard the frame would have dispatched to.
        shard: usize,
        /// Offending frame length in bytes.
        len: usize,
        /// The shard's frame-buffer capacity in bytes.
        cap: usize,
    },
    /// The shard's core trapped while processing this frame (hung past
    /// its cycle budget, halted, executor error); the shard is now
    /// poisoned.
    Trap {
        /// Shard that trapped.
        shard: usize,
        /// The underlying executor error.
        reason: String,
    },
    /// The frame dispatched to a shard that was already poisoned by an
    /// earlier trap.
    Poisoned {
        /// The poisoned shard.
        shard: usize,
        /// The retained error of the original trap.
        reason: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Build(e) => write!(f, "engine build failed: {e}"),
            EngineError::Oversize { shard, len, cap } => {
                write!(
                    f,
                    "frame of {len} B exceeds shard {shard} buffer of {cap} B"
                )
            }
            EngineError::Trap { shard, reason } => write!(f, "shard {shard}: {reason}"),
            EngineError::Poisoned { shard, reason } => {
                write!(f, "shard {shard} is poisoned: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<IrError> for EngineError {
    fn from(e: IrError) -> Self {
        EngineError::Build(e.0)
    }
}

impl From<EngineError> for IrError {
    fn from(e: EngineError) -> Self {
        IrError(e.to_string())
    }
}

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// A shard-selection policy: decides which of `shards` replicated
/// pipelines a frame runs on, and may configure per-shard state at build
/// time (e.g. disjoint resource ranges).
///
/// Policies must be deterministic given their own state — the engine
/// calls [`Dispatch::shard_of`] exactly once per offered frame, in input
/// order, so sequential and parallel execution see the same assignment.
pub trait Dispatch: Send {
    /// Policy name (diagnostics, bench labels).
    fn name(&self) -> &'static str;

    /// Selects the shard for `frame` among `shards` shards (must return
    /// a value `< shards`).
    fn shard_of(&self, frame: &Frame, shards: usize) -> usize;

    /// Configures shard `shard` of `shards` right after instantiation
    /// (before any traffic). The default does nothing.
    fn configure(&self, shard: usize, shards: usize, inst: &mut Shard) -> IrResult<()> {
        let _ = (shard, shards, inst);
        Ok(())
    }
}

/// The default policy: RSS-style flow hashing via [`crate::flow_hash`].
/// Every frame of one 5-tuple lands on one shard, so flow-keyed state
/// partitions across shards without coordination.
#[derive(Debug, Clone, Copy, Default)]
pub struct RssHash;

impl Dispatch for RssHash {
    fn name(&self) -> &'static str {
        "rss-hash"
    }
    fn shard_of(&self, frame: &Frame, shards: usize) -> usize {
        (flow_hash(frame) % shards as u64) as usize
    }
}

/// Stateless round-robin: frame `i` goes to shard `i % N`, regardless of
/// contents. Only correct for services with **no cross-frame state** (a
/// mirror, a stateless filter): it deliberately ignores flows, so two
/// frames of one connection will usually land on different shards. Each
/// call to [`Dispatch::shard_of`] advances the rotor — it is a dispatch
/// *decision*, not a pure query.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: AtomicUsize,
}

impl RoundRobin {
    /// A fresh rotor starting at shard 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Dispatch for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }
    fn shard_of(&self, _frame: &Frame, shards: usize) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % shards
    }
}

/// External-port-keyed dispatch for NAT-shaped services, closing the gap
/// RSS cannot: a NAT reply's 5-tuple (remote → public:ext_port) hashes
/// independently of the outbound tuple that allocated the mapping, so
/// plain RSS strands return traffic on the wrong shard where the reverse
/// lookup misses and the frame is dropped.
///
/// `NatSteering` steers:
///
/// * **outbound** frames (arriving on any port other than
///   [`NatSteering::external_port`]) by the RSS flow hash — stable per
///   flow, so the allocating shard also sees every later outbound frame;
/// * **inbound** IPv4 TCP/UDP frames on the external port by their
///   destination port: shard `(dport - first_ephemeral) % N`.
///
/// That inversion works because `configure` partitions the ephemeral
/// range across shards — shard *k* allocates `first_ephemeral + k`,
/// stepping by *N* — so external ports are globally unique and their
/// residue identifies the owner. The policy programs this through the
/// service's allocation registers:
///
/// | register | written to |
/// |---|---|
/// | `next_port` | `first_ephemeral + shard` |
/// | `port_base` | `first_ephemeral + shard` (wrap-around restart) |
/// | `port_stride` | shard count |
///
/// `emu_services::nat` declares exactly this contract. Building an
/// engine errors if the service declares only *some* of the registers;
/// a service with none of them (e.g. a stateless service in a dispatch
/// comparison) is left untouched, but then only the steering half of the
/// policy applies.
///
/// Inbound frames whose destination port is below `first_ephemeral`
/// (never allocated) fall back to the RSS hash; every shard drops them
/// identically, so their placement is immaterial.
#[derive(Debug, Clone, Copy)]
pub struct NatSteering {
    /// The port index of the external (public) side. The NAT service
    /// convention is port 0.
    pub external_port: u8,
    /// First ephemeral port of the allocation range.
    pub first_ephemeral: u16,
}

impl Default for NatSteering {
    fn default() -> Self {
        NatSteering {
            external_port: 0,
            first_ephemeral: 50_000,
        }
    }
}

impl NatSteering {
    /// The registers of the allocation contract.
    const REGS: [&'static str; 3] = ["next_port", "port_base", "port_stride"];

    /// Extracts the L4 destination port of an IPv4 TCP/UDP frame.
    fn l4_dport(frame: &Frame) -> Option<u16> {
        let b = frame.bytes();
        if frame.ethertype() != ether_type::IPV4 || b.len() < offset::L4 {
            return None;
        }
        let proto = b[offset::IPV4_PROTO];
        if proto != ip_proto::TCP && proto != ip_proto::UDP {
            return None;
        }
        let l4 = offset::IPV4 + usize::from(b[offset::IPV4] & 0x0f) * 4;
        if b.len() < l4 + 4 {
            return None;
        }
        Some(emu_types::bitutil::get16(b, l4 + 2))
    }
}

impl Dispatch for NatSteering {
    fn name(&self) -> &'static str {
        "nat-steering"
    }

    fn shard_of(&self, frame: &Frame, shards: usize) -> usize {
        if frame.in_port == self.external_port {
            if let Some(dport) = Self::l4_dport(frame) {
                if dport >= self.first_ephemeral {
                    return usize::from(dport - self.first_ephemeral) % shards;
                }
            }
        }
        RssHash.shard_of(frame, shards)
    }

    fn configure(&self, shard: usize, shards: usize, inst: &mut Shard) -> IrResult<()> {
        let present = Self::REGS
            .iter()
            .filter(|r| inst.read_reg(r).is_some())
            .count();
        if present == 0 {
            // No allocation contract: nothing to partition.
            return Ok(());
        }
        if present < Self::REGS.len() {
            return Err(IrError(format!(
                "NatSteering: service declares only {present} of the allocation \
                 registers {:?}",
                Self::REGS
            )));
        }
        let base = u64::from(self.first_ephemeral) + shard as u64;
        inst.write_reg("next_port", base);
        inst.write_reg("port_base", base);
        inst.write_reg("port_stride", shards as u64);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Shard
// ---------------------------------------------------------------------

/// One replicated pipeline of an [`Engine`]: a driver plus its private
/// IP-block environment.
///
/// Traffic goes through the engine (which owns dispatch and poisoning);
/// the shard handle exposes the inspection/configuration surface used by
/// tests, debug tooling, and [`Dispatch::configure`].
pub struct Shard {
    driver: AnyDriver,
    env: IpEnv,
    /// Per-shard telemetry, `None` when the engine was built with
    /// telemetry disabled. Boxed: the histogram's bucket array should
    /// not bloat `Shard` moves.
    stats: Option<Box<ShardStats>>,
    /// Whether batch slices take the compiled backend's monomorphized
    /// fast path (set from [`EngineBuilder::batching`]).
    batching: bool,
}

impl Shard {
    fn new(
        service: &Service,
        target: Target,
        backend: Backend,
        telemetry: bool,
        tables: &TableConfig,
        passes: Option<&[kiwi_ir::Pass]>,
        batching: bool,
    ) -> IrResult<Self> {
        Ok(Shard {
            driver: AnyDriver::new(service, target, backend, passes)?,
            env: (service.make_env)(tables),
            stats: telemetry.then(|| Box::new(ShardStats::new())),
            batching,
        })
    }

    /// This shard's telemetry, `None` when disabled at build time.
    pub fn stats(&self) -> Option<&ShardStats> {
        self.stats.as_deref()
    }

    /// Records a refused frame against this shard's telemetry.
    #[inline]
    fn record_drop(&mut self, kind: DropKind) {
        if let Some(s) = self.stats.as_deref_mut() {
            s.record_drop(kind);
        }
    }

    /// Records a successfully processed frame against this shard's
    /// telemetry.
    #[inline]
    fn record_ok(&mut self, frame: &Frame, out: &CoreOutput) {
        if let Some(s) = self.stats.as_deref_mut() {
            let tx_bytes: u64 = out.tx.iter().map(|t| t.frame.len() as u64).sum();
            s.record_ok(
                frame.len() as u64,
                out.tx.len() as u64,
                tx_bytes,
                out.cycles,
            );
        }
    }

    /// Reads a register by name (debug/verification convenience).
    pub fn read_reg(&self, name: &str) -> Option<Bits> {
        let prog = self.driver.program();
        let idx = prog.var_by_name(name)?.0 as usize;
        Some(self.driver.machine_state().vars[idx].clone())
    }

    /// Writes a register by name, truncating `value` to the register's
    /// width. Returns `false` (and writes nothing) if the program has no
    /// such register. This is the configuration hook dispatch policies
    /// use at build time; mid-traffic writes are for fault injection.
    pub fn write_reg(&mut self, name: &str, value: u64) -> bool {
        let meta = {
            let prog = self.driver.program();
            prog.var_by_name(name)
                .and_then(|id| prog.var(id).map(|d| (id.0 as usize, d.width)))
        };
        let Some((idx, width)) = meta else {
            return false;
        };
        self.driver.machine_state_mut().vars[idx] = Bits::from_u64(value, width);
        true
    }

    /// The shard's IP-block environment (attaching extra models in
    /// tests).
    pub fn env_mut(&mut self) -> &mut IpEnv {
        &mut self.env
    }

    /// Frame buffer capacity of the underlying program.
    pub fn frame_capacity(&self) -> usize {
        self.driver.frame_capacity()
    }

    fn process(&mut self, frame: &Frame, obs: &mut dyn Observer) -> IrResult<CoreOutput> {
        self.driver.process(frame, &mut self.env, obs)
    }

    /// Runs a batch slice: the monomorphized fast path when batching is
    /// enabled, otherwise scalar `process` calls — semantics are
    /// identical either way (stop at the first error, one result per
    /// frame attempted).
    fn process_batch(&mut self, frames: &[&Frame]) -> Vec<IrResult<CoreOutput>> {
        if self.batching {
            return self.driver.process_batch(frames, &mut self.env);
        }
        let mut out = Vec::with_capacity(frames.len());
        for f in frames {
            let r = self.driver.process(f, &mut self.env, &mut NullObserver);
            let failed = r.is_err();
            out.push(r);
            if failed {
                break;
            }
        }
        out
    }

    fn idle(&mut self, n: u64) -> IrResult<()> {
        self.driver.idle(n, &mut self.env, &mut NullObserver)
    }
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

impl Service {
    /// Starts building an [`Engine`] for this service on `target`.
    ///
    /// The default configuration — one shard, [`RssHash`] dispatch,
    /// sequential execution — is the exact single-pipeline fast path of
    /// the old `instantiate`.
    pub fn engine(&self, target: Target) -> EngineBuilder<'_> {
        EngineBuilder {
            service: self,
            target,
            backend: None,
            shards: 1,
            dispatch: Box::new(RssHash),
            parallel: false,
            max_cycles_per_frame: None,
            telemetry: true,
            tables: TableConfig::default(),
            passes: None,
            batching: true,
        }
    }
}

/// Configures and instantiates an [`Engine`]; obtained from
/// [`Service::engine`].
pub struct EngineBuilder<'a> {
    service: &'a Service,
    target: Target,
    backend: Option<Backend>,
    shards: usize,
    dispatch: Box<dyn Dispatch>,
    parallel: bool,
    max_cycles_per_frame: Option<u64>,
    telemetry: bool,
    tables: TableConfig,
    passes: Option<Vec<kiwi_ir::Pass>>,
    batching: bool,
}

impl EngineBuilder<'_> {
    /// Number of replicated pipelines (default 1; must be ≥ 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Selects the CPU execution backend (default [`Backend::Compiled`];
    /// ignored on [`Target::Fpga`]). An explicit call here always wins
    /// over the `EMU_CPU_BACKEND` environment override, so differential
    /// tests can pin both sides even under a forced-tree-walk CI run.
    pub fn backend(mut self, b: Backend) -> Self {
        self.backend = Some(b);
        self
    }

    /// Pins the compiled backend's optimization pass pipeline (ignored
    /// by [`Backend::TreeWalk`] and [`Target::Fpga`], which have no
    /// pass pipeline). An explicit call here always wins over the
    /// `EMU_CPU_PASSES` environment override — the builder-side mirror
    /// of that knob — so differential tests can pin both sides even
    /// under a passes-disabled CI run. Default: defer to
    /// `EMU_CPU_PASSES`, falling back to
    /// [`kiwi_ir::default_pipeline`].
    pub fn passes(mut self, passes: &[kiwi_ir::Pass]) -> Self {
        self.passes = Some(passes.to_vec());
        self
    }

    /// Whether [`Engine::process_batch`] runs compiled shards through
    /// the monomorphized batch fast path (default `true`). Disabling
    /// forces scalar per-frame execution — the PR-5 behaviour — which
    /// is what the `backend_compare` bench's `compiled-scalar` column
    /// measures. Results are byte-identical either way; only host
    /// wall-clock time changes.
    pub fn batching(mut self, yes: bool) -> Self {
        self.batching = yes;
        self
    }

    /// The dispatch policy steering frames to shards (default
    /// [`RssHash`]).
    pub fn dispatch(mut self, policy: impl Dispatch + 'static) -> Self {
        self.dispatch = Box::new(policy);
        self
    }

    /// Execute batch shards on real OS threads instead of sequentially
    /// under the cost model (default `false`). Results are identical;
    /// only host wall-clock time changes.
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Per-frame cycle budget after which a shard is declared hung
    /// (fault-injection tests tighten this to trip wedged cores fast).
    pub fn max_cycles_per_frame(mut self, n: u64) -> Self {
        self.max_cycles_per_frame = Some(n);
        self
    }

    /// Maintain per-shard telemetry (default `true`). Disabling skips
    /// every counter and histogram update; [`Engine::telemetry`] then
    /// returns `None`. Exists so the overhead of the instrumentation
    /// itself can be measured — leave it on otherwise.
    pub fn telemetry(mut self, yes: bool) -> Self {
        self.telemetry = yes;
        self
    }

    /// Overrides each stateful table's capacity (per shard, in
    /// entries). Cpu engines accept up to millions of entries; the
    /// Fpga target rejects anything beyond
    /// [`crate::FPGA_MAX_TABLE_ENTRIES`] at build time, so the
    /// cycle-accurate reference stays within the paper's BRAM budget.
    /// Services built with a fixed-size environment recipe ignore this.
    pub fn table_entries(mut self, n: usize) -> Self {
        self.tables.entries = Some(n);
        self
    }

    /// Sets the idle timeout, in frame epochs, after which TTL-aware
    /// tables expire an untouched entry (NAT mapping timeout, switch
    /// MAC aging). Default: no expiry.
    pub fn ttl_frames(mut self, frames: u64) -> Self {
        self.tables.ttl_frames = Some(frames);
        self
    }

    /// Sets the idle timeout in **wall-clock paper units** — seconds of
    /// simulated time expressed as nanoseconds — bridged onto the frame
    /// epoch [`EngineBuilder::ttl_frames`] counts in.
    ///
    /// The engine's tables age by *frames processed*, not by a clock:
    /// every frame offered to a shard advances its epoch by one. At a
    /// sustained offered rate the two are equivalent — a flow idle for
    /// `ttl_ns` of simulated time is idle for `ttl_ns / ns_per_frame`
    /// epochs, where `ns_per_frame` is the mean inter-frame gap the
    /// deployment expects (e.g. `1e9 / rate_fps`, or in a NetSim run
    /// the scenario's send interval). The bridge rounds **up**, so a
    /// mapping never expires *before* its wall-clock TTL at the stated
    /// rate; under burstier-than-stated traffic entries age faster in
    /// wall time (frames arrive sooner), exactly as a frame-count epoch
    /// implies. This is how NAT's mapping timeout and the switch's MAC
    /// aging — specified in seconds in the paper — are configured
    /// inside NetSim scenarios.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are finite and positive.
    pub fn ttl_ns(self, ttl_ns: f64, ns_per_frame: f64) -> Self {
        assert!(
            ttl_ns > 0.0 && ttl_ns.is_finite(),
            "ttl_ns must be finite and positive"
        );
        assert!(
            ns_per_frame > 0.0 && ns_per_frame.is_finite(),
            "ns_per_frame must be finite and positive"
        );
        self.ttl_frames((ttl_ns / ns_per_frame).ceil() as u64)
    }

    /// Instantiates the engine: `shards` copies of the service on the
    /// target, each configured by the dispatch policy.
    pub fn build(self) -> EngineResult<Engine> {
        if self.shards == 0 {
            return Err(EngineError::Build(
                "an engine needs at least one shard".into(),
            ));
        }
        if self.target == Target::Fpga {
            if let Some(n) = self.tables.entries {
                if n > crate::runner::FPGA_MAX_TABLE_ENTRIES {
                    return Err(EngineError::Build(format!(
                        "Fpga tables are BRAM-bounded: {n} entries exceeds the \
                         {max}-entry budget (use Target::Cpu for scaled-up tables)",
                        max = crate::runner::FPGA_MAX_TABLE_ENTRIES
                    )));
                }
            }
        }
        let backend = self.backend.unwrap_or_else(Backend::env_default);
        let mut shards = Vec::with_capacity(self.shards);
        for k in 0..self.shards {
            let mut shard = Shard::new(
                self.service,
                self.target,
                backend,
                self.telemetry,
                &self.tables,
                self.passes.as_deref(),
                self.batching,
            )?;
            if let Some(n) = self.max_cycles_per_frame {
                shard.driver.set_max_cycles_per_frame(n);
            }
            self.dispatch.configure(k, self.shards, &mut shard)?;
            shards.push(shard);
        }
        let poisoned = shards.iter().map(|_| None).collect();
        Ok(Engine {
            shards,
            poisoned,
            dispatch: self.dispatch,
            parallel: self.parallel,
        })
    }
}

// ---------------------------------------------------------------------
// Batch report
// ---------------------------------------------------------------------

/// Per-input-frame results of one [`Engine::process_batch`] call — the
/// single report type for every engine shape (1 shard or N, sequential
/// or parallel).
///
/// Results are per-frame `Result`s: a trapped shard fails its own frames
/// and leaves every other shard's results intact (the failure-isolation
/// contract exercised by `tests/failure_injection.rs`).
#[derive(Debug)]
pub struct BatchReport {
    /// Per-frame outcome, in the order the frames were offered.
    pub outputs: Vec<EngineResult<CoreOutput>>,
    /// Busy core-cycles consumed by each shard during this batch.
    pub shard_cycles: Vec<u64>,
}

impl BatchReport {
    /// Wall-clock cycles of the batch under the parallel-datapath model:
    /// shards run concurrently, so the batch takes as long as its busiest
    /// shard. This is the denominator of the scaling benchmarks.
    pub fn wall_cycles(&self) -> u64 {
        self.shard_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Total busy cycles summed over all shards (the single-pipeline
    /// equivalent cost).
    pub fn total_cycles(&self) -> u64 {
        self.shard_cycles.iter().sum()
    }

    /// Number of frames that processed successfully.
    pub fn ok_count(&self) -> usize {
        self.outputs.iter().filter(|o| o.is_ok()).count()
    }

    /// Total frames transmitted across the batch.
    pub fn tx_count(&self) -> usize {
        self.outputs
            .iter()
            .filter_map(|o| o.as_ref().ok())
            .map(|o| o.tx.len())
            .sum()
    }
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// N replicated pipelines of one service behind a pluggable dispatcher —
/// the single execution surface for every deployment shape, from the
/// paper's single-core software target to §5.4's one-core-per-port
/// hardware scale-out. Build one with [`Service::engine`].
pub struct Engine {
    shards: Vec<Shard>,
    poisoned: Vec<Option<String>>,
    dispatch: Box<dyn Dispatch>,
    parallel: bool,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("shards", &self.shards.len())
            .field("healthy", &self.healthy_shards())
            .field("dispatch", &self.dispatch.name())
            .field("parallel", &self.parallel)
            .finish()
    }
}

/// Outcome of running one shard's slice of a batch.
struct ShardRun {
    /// `(input index, result)` pairs, in that shard's arrival order.
    results: Vec<(usize, EngineResult<CoreOutput>)>,
    /// Busy cycles this shard consumed.
    cycles: u64,
    /// The retained trap, if the shard poisoned itself mid-slice.
    trap: Option<String>,
}

/// Processes `idxs` (indices into `frames`) through one shard,
/// poisoning it on the first trap: later frames of the slice report
/// [`EngineError::Poisoned`]. Shared verbatim by the sequential and
/// parallel executors so their semantics cannot drift.
fn run_shard(k: usize, shard: &mut Shard, frames: &[Frame], idxs: &[usize]) -> ShardRun {
    let mut run = ShardRun {
        results: Vec::with_capacity(idxs.len()),
        cycles: 0,
        trap: None,
    };
    // The whole slice goes to the driver in one call (the batch fast
    // path when enabled). It stops at the first error, returning one
    // result per frame *attempted* — an `Ok` prefix plus at most one
    // `Err` — so the telemetry and poisoning bookkeeping below is
    // byte-identical to processing the slice one scalar call at a time.
    let slice: Vec<&Frame> = idxs.iter().map(|&i| &frames[i]).collect();
    let mut outcomes = shard.process_batch(&slice).into_iter();
    for &i in idxs {
        if let Some(reason) = &run.trap {
            shard.record_drop(DropKind::Poisoned);
            run.results.push((
                i,
                Err(EngineError::Poisoned {
                    shard: k,
                    reason: reason.clone(),
                }),
            ));
            continue;
        }
        match outcomes
            .next()
            .expect("one batch outcome per pre-trap frame")
        {
            Ok(out) => {
                run.cycles += out.cycles;
                shard.record_ok(&frames[i], &out);
                run.results.push((i, Ok(out)));
            }
            Err(e) => {
                shard.record_drop(DropKind::Trap);
                run.trap = Some(e.0.clone());
                run.results.push((
                    i,
                    Err(EngineError::Trap {
                        shard: k,
                        reason: e.0,
                    }),
                ));
            }
        }
    }
    run
}

impl Engine {
    /// Number of shards (replicated pipelines).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether batches execute shards on real threads.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Name of the active dispatch policy.
    pub fn dispatch_name(&self) -> &'static str {
        self.dispatch.name()
    }

    /// The shard index `frame` dispatches to. For stateful policies
    /// ([`RoundRobin`]) every call is a fresh dispatch decision.
    ///
    /// # Panics
    ///
    /// Panics if the dispatch policy violates its contract by returning
    /// an index `>= num_shards()` — silently rerouting such frames would
    /// turn a policy bug into subtle state corruption on one shard.
    pub fn shard_of(&self, frame: &Frame) -> usize {
        let n = self.shards.len();
        if n == 1 {
            return 0;
        }
        let k = self.dispatch.shard_of(frame, n);
        assert!(
            k < n,
            "dispatch policy `{}` returned shard {k} of {n}",
            self.dispatch.name()
        );
        k
    }

    /// Number of shards still accepting traffic.
    pub fn healthy_shards(&self) -> usize {
        self.poisoned.iter().filter(|p| p.is_none()).count()
    }

    /// The retained error of a poisoned shard, if any.
    pub fn shard_error(&self, shard: usize) -> Option<&str> {
        self.poisoned[shard].as_deref()
    }

    /// One shard's handle (register inspection in tests and debug
    /// tooling).
    pub fn shard(&self, shard: usize) -> &Shard {
        &self.shards[shard]
    }

    /// Mutable access to one shard's handle.
    pub fn shard_mut(&mut self, shard: usize) -> &mut Shard {
        &mut self.shards[shard]
    }

    /// Sets every shard's per-frame cycle budget.
    pub fn set_max_cycles_per_frame(&mut self, n: u64) {
        for s in &mut self.shards {
            s.driver.set_max_cycles_per_frame(n);
        }
    }

    /// Frame buffer capacity of the underlying program (uniform across
    /// shards — they run the same program).
    pub fn frame_capacity(&self) -> usize {
        self.shards[0].frame_capacity()
    }

    /// Reads a register by name on shard 0 — the single-pipeline
    /// convenience; use [`Engine::shard`] to address other shards.
    pub fn read_reg(&self, name: &str) -> Option<Bits> {
        self.shards[0].read_reg(name)
    }

    /// Shard 0's IP-block environment — the single-pipeline convenience.
    pub fn env_mut(&mut self) -> &mut IpEnv {
        self.shards[0].env_mut()
    }

    /// Lets every healthy shard run `n` cycles without traffic (service
    /// background threads make progress).
    ///
    /// A shard whose core traps while idling is poisoned exactly as if
    /// it had trapped on a frame; the remaining shards still idle, and
    /// the first trap is returned.
    pub fn idle(&mut self, n: u64) -> EngineResult<()> {
        let mut first_trap = None;
        for (k, s) in self.shards.iter_mut().enumerate() {
            if self.poisoned[k].is_none() {
                if let Err(e) = s.idle(n) {
                    self.poisoned[k] = Some(e.0.clone());
                    first_trap.get_or_insert(EngineError::Trap {
                        shard: k,
                        reason: e.0,
                    });
                }
            }
        }
        match first_trap {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Processes one frame on its flow's shard.
    ///
    /// Input-validation failures (an oversized frame) error without
    /// touching the core and do *not* poison the shard; an error out of
    /// the core itself (hung, halted, executor trap) does, because the
    /// core's state can no longer be trusted.
    pub fn process(&mut self, frame: &Frame) -> EngineResult<CoreOutput> {
        self.process_observed(frame, &mut NullObserver)
    }

    /// Processes one frame under an observer (debug tooling).
    pub fn process_observed(
        &mut self,
        frame: &Frame,
        obs: &mut dyn Observer,
    ) -> EngineResult<CoreOutput> {
        let k = self.shard_of(frame);
        if let Some(reason) = &self.poisoned[k] {
            self.shards[k].record_drop(DropKind::Poisoned);
            return Err(EngineError::Poisoned {
                shard: k,
                reason: reason.clone(),
            });
        }
        let cap = self.shards[k].frame_capacity();
        if frame.len() > cap {
            self.shards[k].record_drop(DropKind::Oversize);
            return Err(EngineError::Oversize {
                shard: k,
                len: frame.len(),
                cap,
            });
        }
        match self.shards[k].process(frame, obs) {
            Ok(out) => {
                self.shards[k].record_ok(frame, &out);
                Ok(out)
            }
            Err(e) => {
                self.shards[k].record_drop(DropKind::Trap);
                self.poisoned[k] = Some(e.0.clone());
                Err(EngineError::Trap {
                    shard: k,
                    reason: e.0,
                })
            }
        }
    }

    /// Processes a batch: frames are dispatched up front (one
    /// [`Dispatch::shard_of`] call each, in input order), each shard
    /// processes its slice in arrival order, and results come back in
    /// input order. A shard failure poisons only that shard — the
    /// trapping frame and that shard's later frames report the error,
    /// every other frame completes normally. Oversized frames fail
    /// individually without poisoning, exactly as in
    /// [`Engine::process`].
    ///
    /// With [`EngineBuilder::parallel`] the per-shard slices run on
    /// scoped OS threads; outputs, cycle accounting, and poisoning are
    /// identical to sequential execution by construction.
    pub fn process_batch(&mut self, frames: &[Frame]) -> BatchReport {
        let n = self.shards.len();
        let mut outputs: Vec<Option<EngineResult<CoreOutput>>> = Vec::new();
        outputs.resize_with(frames.len(), || None);
        let mut plan: Vec<Vec<usize>> = vec![Vec::new(); n];

        // Dispatch + validation pass, in input order. Drops rejected
        // here are recorded on the owning shard's stats before its
        // slice ever runs, so telemetry is identical whether the
        // execution pass below is sequential or threaded.
        for (i, f) in frames.iter().enumerate() {
            let k = self.shard_of(f);
            if let Some(reason) = &self.poisoned[k] {
                self.shards[k].record_drop(DropKind::Poisoned);
                outputs[i] = Some(Err(EngineError::Poisoned {
                    shard: k,
                    reason: reason.clone(),
                }));
                continue;
            }
            let cap = self.shards[k].frame_capacity();
            if f.len() > cap {
                self.shards[k].record_drop(DropKind::Oversize);
                outputs[i] = Some(Err(EngineError::Oversize {
                    shard: k,
                    len: f.len(),
                    cap,
                }));
                continue;
            }
            plan[k].push(i);
        }

        // Execution pass: one slice per shard, sequential or threaded.
        let mut shard_cycles = vec![0u64; n];
        let runs: Vec<(usize, ShardRun)> = if self.parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(plan.iter())
                    .enumerate()
                    .filter(|(_, (_, idxs))| !idxs.is_empty())
                    .map(|(k, (shard, idxs))| {
                        scope.spawn(move || (k, run_shard(k, shard, frames, idxs)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
        } else {
            self.shards
                .iter_mut()
                .zip(plan.iter())
                .enumerate()
                .filter(|(_, (_, idxs))| !idxs.is_empty())
                .map(|(k, (shard, idxs))| (k, run_shard(k, shard, frames, idxs)))
                .collect()
        };

        for (k, run) in runs {
            shard_cycles[k] = run.cycles;
            self.poisoned[k] = self.poisoned[k].take().or(run.trap);
            for (i, r) in run.results {
                outputs[i] = Some(r);
            }
        }

        BatchReport {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("every frame planned or rejected"))
                .collect(),
            shard_cycles,
        }
    }

    /// Snapshot of every shard's telemetry, or `None` when the engine
    /// was built with [`EngineBuilder::telemetry`]`(false)`.
    ///
    /// The snapshot is deterministic: it counts frames and **model
    /// cycles**, never wall time, so two engines fed the same frames
    /// produce byte-identical snapshots regardless of execution mode
    /// (sequential vs parallel) or backend (compiled vs tree-walk).
    pub fn telemetry(&self) -> Option<EngineSnapshot> {
        let shards: Option<Vec<ShardStats>> = self
            .shards
            .iter()
            .map(|s| {
                s.stats().cloned().map(|mut stats| {
                    // CAM lifecycle counters live in the shard's
                    // environment; fold them in at snapshot time.
                    stats.cams = s
                        .env
                        .cam_snapshots()
                        .into_iter()
                        .map(|c| emu_telemetry::CamCounters {
                            prefix: c.prefix,
                            capacity: c.capacity as u64,
                            occupancy: c.occupancy as u64,
                            lookups: c.stats.lookups,
                            hits: c.stats.hits,
                            writes: c.stats.writes,
                            evictions: c.stats.evictions,
                            expiries: c.stats.expiries,
                        })
                        .collect();
                    stats
                })
            })
            .collect();
        shards.map(|shards| EngineSnapshot { shards })
    }

    /// Zeroes every shard's telemetry (a bench's warm-up frames should
    /// not pollute its measured histogram). No-op when disabled. CAM
    /// *statistics* reset too; table contents are untouched.
    pub fn reset_telemetry(&mut self) {
        for s in &mut self.shards {
            if let Some(stats) = s.stats.as_deref_mut() {
                stats.reset();
            }
            s.env.reset_cam_stats();
        }
    }

    /// Consumes a **1-shard FPGA** engine, returning the raw driver and
    /// environment for the NetFPGA pipeline simulator. `None` for CPU
    /// engines or multi-shard engines (the pipeline model replicates
    /// cores itself).
    pub fn into_fpga_parts(self) -> Option<(DataplaneDriver<RtlMachine>, IpEnv)> {
        if self.shards.len() != 1 {
            return None;
        }
        let shard = self.shards.into_iter().next().expect("one shard");
        match shard.driver {
            AnyDriver::Fpga(d) => Some((d, shard.env)),
            AnyDriver::Cpu(_) | AnyDriver::CpuCompiled(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::service_builder;
    use kiwi_ir::dsl::*;

    fn port_mirror() -> Service {
        let (mut pb, dp) = service_builder("mirror", 128);
        let mut body = vec![dp.rx_wait(), dp.set_output_port(dp.input_port())];
        body.extend(dp.transmit(dp.rx_len()));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        Service::new(pb.build().unwrap())
    }

    fn flow_frame(src_mac: u64, sport: u16, len: usize) -> Frame {
        use emu_types::{bitutil, MacAddr};
        let mut ip = vec![
            0x45, 0, 0, 40, 0, 0, 0x40, 0, 64, 17, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2,
        ];
        let mut udp = vec![0u8; 8];
        bitutil::set16(&mut udp, 0, sport);
        bitutil::set16(&mut udp, 2, 53);
        ip.extend_from_slice(&udp);
        ip.resize(len.max(28), 0xaa);
        Frame::ethernet(
            MacAddr::from_u64(0xB),
            MacAddr::from_u64(src_mac),
            0x0800,
            &ip,
        )
    }

    #[test]
    fn read_reg_by_name() {
        let (mut pb, dp) = service_builder("counter", 64);
        let count = pb.reg("rx_count", 32);
        let mut body = vec![dp.rx_wait(), assign(count, add(var(count), lit(1, 32)))];
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        let svc = Service::new(pb.build().unwrap());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        for _ in 0..5 {
            inst.process(&Frame::new(vec![0; 60])).unwrap();
        }
        assert_eq!(inst.read_reg("rx_count").unwrap().to_u64(), 5);
        assert!(inst.read_reg("nonexistent").is_none());
    }

    #[test]
    fn write_reg_round_trips_and_rejects_unknown() {
        let (mut pb, dp) = service_builder("counter", 64);
        let _count = pb.reg("rx_count", 32);
        let mut body = vec![dp.rx_wait()];
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        let svc = Service::new(pb.build().unwrap());
        let mut inst = svc.engine(Target::Cpu).build().unwrap();
        assert!(inst.shard_mut(0).write_reg("rx_count", 42));
        assert_eq!(inst.read_reg("rx_count").unwrap().to_u64(), 42);
        assert!(!inst.shard_mut(0).write_reg("missing", 1));
    }

    #[test]
    fn sharded_engine_matches_single_instance_on_stateless_service() {
        let svc = port_mirror();
        let frames: Vec<Frame> = (0..32)
            .map(|i| flow_frame(i % 5, i as u16 * 7, 60))
            .collect();
        let mut single = svc.engine(Target::Fpga).build().unwrap();
        let mut engine = svc.engine(Target::Fpga).shards(4).build().unwrap();
        let batch = engine.process_batch(&frames);
        assert_eq!(batch.ok_count(), frames.len());
        for (f, out) in frames.iter().zip(&batch.outputs) {
            let want = single.process(f).unwrap();
            assert_eq!(out.as_ref().unwrap().tx, want.tx);
        }
        assert!(batch.wall_cycles() > 0);
        assert!(batch.wall_cycles() <= batch.total_cycles());
    }

    #[test]
    fn parallel_mode_matches_sequential_exactly() {
        let svc = port_mirror();
        let frames: Vec<Frame> = (0..48)
            .map(|i| flow_frame(i % 7, i as u16 * 13, 60 + (i as usize % 40)))
            .collect();
        let mut seq = svc.engine(Target::Fpga).shards(4).build().unwrap();
        let mut par = svc
            .engine(Target::Fpga)
            .shards(4)
            .parallel(true)
            .build()
            .unwrap();
        assert!(par.is_parallel() && !seq.is_parallel());
        let a = seq.process_batch(&frames);
        let b = par.process_batch(&frames);
        assert_eq!(a.shard_cycles, b.shard_cycles);
        for (x, y) in a.outputs.iter().zip(&b.outputs) {
            assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
        }
    }

    #[test]
    fn telemetry_counts_frames_and_matches_across_modes() {
        let svc = port_mirror();
        let frames: Vec<Frame> = (0..40)
            .map(|i| flow_frame(i % 6, i as u16 * 11, 60 + (i as usize % 30)))
            .collect();
        let mut seq = svc.engine(Target::Fpga).shards(4).build().unwrap();
        let mut par = svc
            .engine(Target::Fpga)
            .shards(4)
            .parallel(true)
            .build()
            .unwrap();
        seq.process_batch(&frames);
        par.process_batch(&frames);
        let (a, b) = (seq.telemetry().unwrap(), par.telemetry().unwrap());
        assert_eq!(a, b, "telemetry must not depend on execution mode");
        let total = a.total();
        assert_eq!(total.counters.frames, frames.len() as u64);
        assert_eq!(total.counters.drops(), 0);
        assert_eq!(
            total.counters.rx_bytes,
            frames.iter().map(|f| f.len() as u64).sum::<u64>()
        );
        assert_eq!(total.cycles.count(), frames.len() as u64);
        // A mirror transmits every frame back out unmodified.
        assert_eq!(total.counters.tx_frames, frames.len() as u64);
        assert_eq!(total.counters.tx_bytes, total.counters.rx_bytes);
        seq.reset_telemetry();
        assert_eq!(seq.telemetry().unwrap().total().counters.offered(), 0);
    }

    #[test]
    fn telemetry_records_oversize_drops_and_can_be_disabled() {
        let svc = port_mirror();
        let mut engine = svc.engine(Target::Cpu).build().unwrap();
        let cap = engine.frame_capacity();
        let big = Frame::new(vec![0; cap + 1]);
        assert!(matches!(
            engine.process(&big),
            Err(EngineError::Oversize { .. })
        ));
        engine.process_batch(&[big, Frame::new(vec![0; 60])]);
        let total = engine.telemetry().unwrap().total();
        assert_eq!(total.counters.drop_oversize, 2);
        assert_eq!(total.counters.frames, 1);
        assert_eq!(total.counters.offered(), 3);

        let off = svc.engine(Target::Cpu).telemetry(false).build().unwrap();
        assert!(off.telemetry().is_none());
    }

    #[test]
    fn batch_equals_frame_by_frame() {
        let svc = port_mirror();
        let frames: Vec<Frame> = (0..10).map(|i| flow_frame(3, i as u16, 80)).collect();
        let mut a = svc.engine(Target::Fpga).build().unwrap();
        let mut b = svc.engine(Target::Fpga).build().unwrap();
        let batch = a.process_batch(&frames);
        let single: Vec<CoreOutput> = frames.iter().map(|f| b.process(f).unwrap()).collect();
        assert_eq!(
            batch
                .outputs
                .iter()
                .map(|o| o.as_ref().unwrap().clone())
                .collect::<Vec<_>>(),
            single
        );
        assert_eq!(
            batch.total_cycles(),
            single.iter().map(|o| o.cycles).sum::<u64>(),
            "no idle cycles between back-to-back frames"
        );
    }

    #[test]
    fn round_robin_rotates() {
        let svc = port_mirror();
        let engine = svc
            .engine(Target::Cpu)
            .shards(3)
            .dispatch(RoundRobin::new())
            .build()
            .unwrap();
        let f = Frame::new(vec![0; 60]);
        assert_eq!(engine.dispatch_name(), "round-robin");
        assert_eq!(engine.shard_of(&f), 0);
        assert_eq!(engine.shard_of(&f), 1);
        assert_eq!(engine.shard_of(&f), 2);
        assert_eq!(engine.shard_of(&f), 0);
    }

    #[test]
    fn nat_steering_keys_inbound_on_external_port() {
        let steer = NatSteering::default();
        // Inbound on the external port: dport picks the shard residue.
        for (dport, want) in [(50_000u16, 0usize), (50_001, 1), (50_006, 2), (50_011, 3)] {
            let mut f = flow_frame(9, 53, 40);
            emu_types::bitutil::set16(f.bytes_mut(), offset::L4 + 2, dport);
            f.in_port = 0;
            assert_eq!(steer.shard_of(&f, 4), want, "dport {dport}");
        }
        // Outbound (internal port): RSS, stable per flow.
        let mut out1 = flow_frame(7, 4000, 40);
        out1.in_port = 2;
        let mut out2 = flow_frame(7, 4000, 200);
        out2.in_port = 2;
        assert_eq!(steer.shard_of(&out1, 4), steer.shard_of(&out2, 4));
        // Below-range inbound falls back to RSS (and is dropped by NAT).
        let mut low = flow_frame(9, 53, 40);
        emu_types::bitutil::set16(low.bytes_mut(), offset::L4 + 2, 80);
        low.in_port = 0;
        assert_eq!(steer.shard_of(&low, 4), RssHash.shard_of(&low, 4));
    }

    #[test]
    fn cpu_backends_are_interchangeable() {
        // The compiled default and the tree-walk reference must agree on
        // outputs AND cycle accounting, sharded or not.
        let svc = port_mirror();
        let frames: Vec<Frame> = (0..24)
            .map(|i| flow_frame(i % 5, i as u16 * 11, 60 + (i as usize % 50)))
            .collect();
        let mut compiled = svc
            .engine(Target::Cpu)
            .backend(Backend::Compiled)
            .shards(3)
            .build()
            .unwrap();
        let mut treewalk = svc
            .engine(Target::Cpu)
            .backend(Backend::TreeWalk)
            .shards(3)
            .build()
            .unwrap();
        let a = compiled.process_batch(&frames);
        let b = treewalk.process_batch(&frames);
        assert_eq!(a.shard_cycles, b.shard_cycles);
        for (x, y) in a.outputs.iter().zip(&b.outputs) {
            assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
        }
    }

    #[test]
    fn zero_shards_rejected() {
        let err = port_mirror()
            .engine(Target::Cpu)
            .shards(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::Build(_)), "{err}");
    }

    #[test]
    fn into_fpga_parts_only_for_single_shard_fpga() {
        let svc = port_mirror();
        assert!(svc
            .engine(Target::Cpu)
            .build()
            .unwrap()
            .into_fpga_parts()
            .is_none());
        assert!(svc
            .engine(Target::Fpga)
            .shards(2)
            .build()
            .unwrap()
            .into_fpga_parts()
            .is_none());
        assert!(svc
            .engine(Target::Fpga)
            .build()
            .unwrap()
            .into_fpga_parts()
            .is_some());
    }

    #[test]
    fn builder_applies_cycle_budget() {
        // A service that never signals rx_done: the builder's budget must
        // trip it (the default 200k-cycle budget would take far longer).
        let (mut pb, dp) = service_builder("hang", 64);
        let _ = dp;
        pb.thread("main", vec![forever(vec![pause()])]);
        let svc = Service::new(pb.build().unwrap());
        let mut inst = svc
            .engine(Target::Cpu)
            .max_cycles_per_frame(50)
            .build()
            .unwrap();
        let err = inst.process(&Frame::new(vec![0; 60])).unwrap_err();
        assert!(matches!(err, EngineError::Trap { shard: 0, .. }), "{err}");
        assert_eq!(inst.healthy_shards(), 0);
    }
}
