//! The multi-target runner: one program, three execution targets —
//! plus the sharded scale-out engine.
//!
//! This is contribution 2 of the paper: "an execution environment that
//! supports running a single codebase over heterogeneous targets,
//! including CPUs, network simulators, and FPGAs." A [`Service`] bundles
//! a program with a recipe for its IP-block environment; [`Target`]
//! selects the backend. The Mininet-analogue target lives in the `netsim`
//! crate (it embeds the same CPU backend in a network simulation).
//!
//! The paper's NetFPGA deployment scales by replicating the service
//! pipeline across parallel datapaths — §5.4 runs "four Emu cores (one
//! per port)". [`ShardedEngine`] is that replication made first-class:
//! N instances of one [`Service`], an RSS-style flow hash dispatching
//! frames so that every frame of one flow lands on the same instance,
//! and a batch API ([`ServiceInstance::process_batch`]) that amortizes
//! per-frame setup. See [`flow_hash`] for the dispatch function and
//! [`ShardedEngine::process_batch`] for the failure-isolation contract.

use crate::dataplane::Dataplane;
use emu_rtl::{ExecBackend, IpEnv, RtlMachine};
use emu_types::proto::{ether_type, ip_proto, offset};
use emu_types::{checksum, Frame};
use kiwi::CostModel;
use kiwi_ir::interp::{NullObserver, Observer};
use kiwi_ir::{IrError, IrResult, Machine, Program};
use netfpga_sim::dataplane::{BatchOutput, CoreOutput};
use netfpga_sim::DataplaneDriver;

/// Execution target selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Sequential interpreter — the paper's x86 process target.
    Cpu,
    /// Cycle-accurate compiled FSM — the FPGA target.
    Fpga,
}

/// A deployable service: program + IP-block environment recipe.
pub struct Service {
    /// The service program (must declare the dataplane contract).
    pub program: Program,
    /// Builds the IP-block environment the program expects.
    pub make_env: Box<dyn Fn() -> IpEnv>,
    /// Compiler cost model for the FPGA target.
    pub cost_model: CostModel,
}

impl Service {
    /// Wraps a program that needs no IP blocks.
    pub fn new(program: Program) -> Self {
        Service {
            program,
            make_env: Box::new(IpEnv::new),
            cost_model: CostModel::default(),
        }
    }

    /// Wraps a program with an IP-block environment recipe.
    pub fn with_env(program: Program, make_env: impl Fn() -> IpEnv + 'static) -> Self {
        Service {
            program,
            make_env: Box::new(make_env),
            cost_model: CostModel::default(),
        }
    }

    /// Instantiates the service as `shards` replicated pipelines behind a
    /// flow-hashing dispatcher — the multi-datapath deployment of §5.4.
    ///
    /// Each shard is an independent [`ServiceInstance`] with its own
    /// IP-block environment, so stateful services keep per-shard state;
    /// see [`ShardedEngine`] for the flow-affinity contract that makes
    /// that correct.
    pub fn instantiate_sharded(&self, target: Target, shards: usize) -> IrResult<ShardedEngine> {
        ShardedEngine::new(self, target, shards)
    }

    /// Instantiates the service on a target.
    pub fn instantiate(&self, target: Target) -> IrResult<ServiceInstance> {
        let env = (self.make_env)();
        let driver = match target {
            Target::Cpu => {
                let m = Machine::new(kiwi_ir::flatten(&self.program)?);
                AnyDriver::Cpu(DataplaneDriver::new(m)?)
            }
            Target::Fpga => {
                let fsm = kiwi::compile_with(&self.program, self.cost_model.clone())?;
                AnyDriver::Fpga(DataplaneDriver::new(RtlMachine::new(fsm))?)
            }
        };
        Ok(ServiceInstance { driver, env })
    }
}

/// Target-erased dataplane driver.
pub enum AnyDriver {
    /// Interpreter-backed.
    Cpu(DataplaneDriver<Machine>),
    /// FSM-backed.
    Fpga(DataplaneDriver<RtlMachine>),
}

impl AnyDriver {
    /// Processes a batch of frames on whichever backend is live.
    pub fn process_batch(
        &mut self,
        frames: &[Frame],
        env: &mut IpEnv,
        obs: &mut dyn Observer,
    ) -> IrResult<BatchOutput> {
        match self {
            AnyDriver::Cpu(d) => d.process_batch(frames, env, obs),
            AnyDriver::Fpga(d) => d.process_batch(frames, env, obs),
        }
    }

    /// Sets the per-frame cycle budget after which the driver declares
    /// the core hung.
    pub fn set_max_cycles_per_frame(&mut self, n: u64) {
        match self {
            AnyDriver::Cpu(d) => d.max_cycles_per_frame = n,
            AnyDriver::Fpga(d) => d.max_cycles_per_frame = n,
        }
    }

    /// Frame buffer capacity of the wrapped program.
    pub fn frame_capacity(&self) -> usize {
        match self {
            AnyDriver::Cpu(d) => d.frame_capacity(),
            AnyDriver::Fpga(d) => d.frame_capacity(),
        }
    }
}

/// A running service on some target.
pub struct ServiceInstance {
    driver: AnyDriver,
    env: IpEnv,
}

impl ServiceInstance {
    /// Processes one frame, returning transmissions and cycles consumed.
    pub fn process(&mut self, frame: &Frame) -> IrResult<CoreOutput> {
        self.process_observed(frame, &mut NullObserver)
    }

    /// Processes `frames` back-to-back, amortizing per-frame setup.
    ///
    /// Equivalent to calling [`ServiceInstance::process`] once per frame
    /// and collecting the outputs (the sharding test suite asserts the
    /// equivalence exactly); additionally reports the batch's total cycle
    /// cost. Fails fast on the first frame that errors.
    pub fn process_batch(&mut self, frames: &[Frame]) -> IrResult<BatchOutput> {
        self.driver
            .process_batch(frames, &mut self.env, &mut NullObserver)
    }

    /// Sets the per-frame cycle budget after which processing errors out
    /// (fault-injection tests tighten this to trip hung cores quickly).
    pub fn set_max_cycles_per_frame(&mut self, n: u64) {
        self.driver.set_max_cycles_per_frame(n);
    }

    /// Frame buffer capacity of the underlying program.
    pub fn frame_capacity(&self) -> usize {
        self.driver.frame_capacity()
    }

    /// Processes one frame under an observer (debug tooling).
    pub fn process_observed(
        &mut self,
        frame: &Frame,
        obs: &mut dyn Observer,
    ) -> IrResult<CoreOutput> {
        match &mut self.driver {
            AnyDriver::Cpu(d) => d.process(frame, &mut self.env, obs),
            AnyDriver::Fpga(d) => d.process(frame, &mut self.env, obs),
        }
    }

    /// Lets the core run `n` cycles without traffic.
    pub fn idle(&mut self, n: u64) -> IrResult<()> {
        match &mut self.driver {
            AnyDriver::Cpu(d) => d.idle(n, &mut self.env, &mut NullObserver),
            AnyDriver::Fpga(d) => d.idle(n, &mut self.env, &mut NullObserver),
        }
    }

    /// Reads a register by name (debug/verification convenience).
    pub fn read_reg(&self, name: &str) -> Option<emu_types::Bits> {
        let (prog, st) = match &self.driver {
            AnyDriver::Cpu(d) => (d.backend().program(), d.backend().machine_state()),
            AnyDriver::Fpga(d) => (d.backend().program(), d.backend().machine_state()),
        };
        prog.var_by_name(name)
            .map(|v| st.vars[v.0 as usize].clone())
    }

    /// The IP-block environment (for attaching more models in tests).
    pub fn env_mut(&mut self) -> &mut IpEnv {
        &mut self.env
    }

    /// Consumes the instance, returning the FPGA driver if this instance
    /// runs on the FPGA target (used by the pipeline simulator).
    pub fn into_fpga_parts(self) -> Option<(DataplaneDriver<RtlMachine>, IpEnv)> {
        match self.driver {
            AnyDriver::Fpga(d) => Some((d, self.env)),
            AnyDriver::Cpu(_) => None,
        }
    }
}

/// Runs the same frames through both targets and asserts identical
/// transmissions — the differential harness used across the test suite.
pub fn assert_targets_agree(service: &Service, frames: &[Frame]) -> IrResult<()> {
    let mut cpu = service.instantiate(Target::Cpu)?;
    let mut fpga = service.instantiate(Target::Fpga)?;
    for (i, f) in frames.iter().enumerate() {
        let a = cpu.process(f)?;
        let b = fpga.process(f)?;
        if a.tx != b.tx {
            return Err(kiwi_ir::IrError(format!(
                "target divergence on frame {i}: cpu {:?} vs fpga {:?}",
                a.tx, b.tx
            )));
        }
    }
    Ok(())
}

/// Extracts the RSS-style flow key of a frame: src/dst MAC, plus src/dst
/// IPv4 addresses when the frame is IPv4, plus protocol and L4 ports when
/// it carries TCP or UDP.
///
/// Frames of one flow (one 5-tuple) always produce the same key whatever
/// their payload, which is what gives [`ShardedEngine`] its flow-affinity
/// guarantee. Non-IP frames hash on MAC addresses alone.
pub fn flow_key(frame: &Frame) -> [u8; 26] {
    let b = frame.bytes();
    let mut key = [0u8; 26];
    let mut used = 12;
    key[..12].copy_from_slice(&b[..12]); // dst MAC ++ src MAC
    if frame.ethertype() == ether_type::IPV4 && b.len() >= offset::L4 {
        key[used..used + 8].copy_from_slice(&b[offset::IPV4_SRC..offset::IPV4_SRC + 8]);
        used += 8;
        let proto = b[offset::IPV4_PROTO];
        let ihl = usize::from(b[offset::IPV4] & 0x0f) * 4;
        let l4 = offset::IPV4 + ihl;
        if (proto == ip_proto::TCP || proto == ip_proto::UDP) && b.len() >= l4 + 4 {
            key[used] = proto;
            key[used + 1..used + 5].copy_from_slice(&b[l4..l4 + 4]); // sport ++ dport
            used += 5;
        }
    }
    // Trailing bytes stay zero; `used` itself is folded in so a short key
    // cannot collide with a longer key that happens to end in zeros.
    key[25] = used as u8;
    key
}

/// RSS-style flow hash over [`flow_key`], built from four independently
/// seeded passes of the Pearson hash the platform's hashing IP block
/// models (Figure 5) — the same digest function on every target.
pub fn flow_hash(frame: &Frame) -> u64 {
    let key = flow_key(frame);
    let mut h = 0u64;
    for seed in 1..=4u8 {
        h = (h << 8) | u64::from(checksum::pearson8_seeded(seed, &key));
    }
    h
}

/// Per-input-frame results of a sharded batch.
///
/// Unlike the single-pipeline [`BatchOutput`], results are per-frame
/// `Result`s: a trapped shard fails its own frames and leaves every other
/// shard's results intact (the failure-isolation contract exercised by
/// `tests/failure_injection.rs`).
#[derive(Debug)]
pub struct ShardedBatch {
    /// Per-frame outcome, in the order the frames were offered.
    pub outputs: Vec<IrResult<CoreOutput>>,
    /// Busy core-cycles consumed by each shard during this batch.
    pub shard_cycles: Vec<u64>,
}

impl ShardedBatch {
    /// Wall-clock cycles of the batch under the parallel-datapath model:
    /// shards run concurrently, so the batch takes as long as its busiest
    /// shard. This is the denominator of the scaling benchmarks.
    pub fn wall_cycles(&self) -> u64 {
        self.shard_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Number of frames that processed successfully.
    pub fn ok_count(&self) -> usize {
        self.outputs.iter().filter(|o| o.is_ok()).count()
    }
}

/// N replicated pipelines of one service behind an RSS-style dispatcher.
///
/// This models the paper's multi-datapath NetFPGA deployment (§5.4, "one
/// core per port") as a first-class engine: [`flow_hash`] steers each
/// frame to `hash % N`, so all frames of one 5-tuple share one shard and
/// per-flow state (NAT mappings, learned MACs, cached values) stays
/// consistent without cross-shard coordination.
///
/// # Flow affinity and stateful services
///
/// Per-shard state is *partitioned*, not shared. That is correct for any
/// service whose state is keyed by flow (NAT's translation tables) and
/// for stateless services trivially; services with *global* state reached
/// by many flows (a learning switch, memcached SETs) either tolerate
/// partitioning (per-shard MAC tables re-learn independently) or need
/// replicated writes, as §5.4 does for memcached SET traffic — see
/// `netfpga_sim::MultiCoreSim` for that strategy. `emu_services::nat`
/// documents the service-side view of this contract.
///
/// # Failure isolation
///
/// A shard whose program traps (hung core, executor error) is poisoned:
/// its frames report errors, its siblings keep processing, and the error
/// text is retained on [`ShardedEngine::shard_error`]. Recoverable
/// input-validation failures (an oversized frame) are rejected per frame
/// *without* poisoning — the core never saw the frame, so its state is
/// still good.
pub struct ShardedEngine {
    shards: Vec<ServiceInstance>,
    poisoned: Vec<Option<String>>,
}

impl ShardedEngine {
    /// Builds `shards` instances of `service` on `target`.
    pub fn new(service: &Service, target: Target, shards: usize) -> IrResult<Self> {
        if shards == 0 {
            return Err(IrError("a sharded engine needs at least one shard".into()));
        }
        let shards = (0..shards)
            .map(|_| service.instantiate(target))
            .collect::<IrResult<Vec<_>>>()?;
        let poisoned = shards.iter().map(|_| None).collect();
        Ok(ShardedEngine { shards, poisoned })
    }

    /// Number of shards (replicated pipelines).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `frame` dispatches to.
    pub fn shard_of(&self, frame: &Frame) -> usize {
        (flow_hash(frame) % self.shards.len() as u64) as usize
    }

    /// Number of shards still accepting traffic.
    pub fn healthy_shards(&self) -> usize {
        self.poisoned.iter().filter(|p| p.is_none()).count()
    }

    /// The retained error of a poisoned shard, if any.
    pub fn shard_error(&self, shard: usize) -> Option<&str> {
        self.poisoned[shard].as_deref()
    }

    /// Direct access to one shard's instance (register inspection in
    /// tests and debug tooling).
    pub fn shard_mut(&mut self, shard: usize) -> &mut ServiceInstance {
        &mut self.shards[shard]
    }

    /// Sets every shard's per-frame cycle budget.
    pub fn set_max_cycles_per_frame(&mut self, n: u64) {
        for s in &mut self.shards {
            s.set_max_cycles_per_frame(n);
        }
    }

    /// Processes one frame on its flow's shard.
    ///
    /// Input-validation failures (an oversized frame) error without
    /// touching the core and do *not* poison the shard; an error out of
    /// the core itself (hung, halted, executor trap) does, because the
    /// core's state can no longer be trusted.
    pub fn process(&mut self, frame: &Frame) -> IrResult<CoreOutput> {
        let k = self.shard_of(frame);
        if let Some(err) = &self.poisoned[k] {
            return Err(IrError(format!("shard {k} is poisoned: {err}")));
        }
        let cap = self.shards[k].frame_capacity();
        if frame.len() > cap {
            return Err(IrError(format!(
                "frame of {} B exceeds shard {k} buffer of {cap} B",
                frame.len()
            )));
        }
        self.shards[k].process(frame).map_err(|e| {
            self.poisoned[k] = Some(e.0.clone());
            IrError(format!("shard {k}: {}", e.0))
        })
    }

    /// Processes a batch: contiguous runs of same-shard frames go through
    /// that shard's batch path (no copying), and results come back in
    /// input order. A shard failure poisons only that shard — the failing
    /// run's frames report the error, every other frame completes
    /// normally. Oversized frames fail individually without poisoning,
    /// exactly as in [`ShardedEngine::process`].
    pub fn process_batch(&mut self, frames: &[Frame]) -> ShardedBatch {
        let n = self.shards.len();
        let mut outputs: Vec<IrResult<CoreOutput>> = Vec::with_capacity(frames.len());
        let mut shard_cycles = vec![0u64; n];

        let mut i = 0;
        while i < frames.len() {
            let k = self.shard_of(&frames[i]);
            if let Some(err) = &self.poisoned[k] {
                outputs.push(Err(IrError(format!("shard {k} is poisoned: {err}"))));
                i += 1;
                continue;
            }
            let cap = self.shards[k].frame_capacity();
            if frames[i].len() > cap {
                outputs.push(Err(IrError(format!(
                    "frame of {} B exceeds shard {k} buffer of {cap} B",
                    frames[i].len()
                ))));
                i += 1;
                continue;
            }
            // Extend the run while frames keep hashing to this shard and
            // pass validation, then hand the sub-slice to the shard.
            let mut j = i + 1;
            while j < frames.len() && frames[j].len() <= cap && self.shard_of(&frames[j]) == k {
                j += 1;
            }
            match self.shards[k].process_batch(&frames[i..j]) {
                Ok(batch) => {
                    shard_cycles[k] += batch.cycles;
                    outputs.extend(batch.outputs.into_iter().map(Ok));
                }
                Err(e) => {
                    self.poisoned[k] = Some(e.0.clone());
                    let msg = format!("shard {k}: {}", e.0);
                    outputs.extend((i..j).map(|_| Err(IrError(msg.clone()))));
                }
            }
            i = j;
        }

        ShardedBatch {
            outputs,
            shard_cycles,
        }
    }
}

/// A convenience used by services and examples: declare the dataplane and
/// hand back both the builder and the handle.
pub fn service_builder(name: &str, frame_capacity: usize) -> (kiwi_ir::ProgramBuilder, Dataplane) {
    let mut pb = kiwi_ir::ProgramBuilder::new(name);
    let dp = Dataplane::declare(&mut pb, frame_capacity);
    (pb, dp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiwi_ir::dsl::*;

    fn port_mirror() -> Service {
        let (mut pb, dp) = service_builder("mirror", 128);
        let mut body = vec![dp.rx_wait(), dp.set_output_port(dp.input_port())];
        body.extend(dp.transmit(dp.rx_len()));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        Service::new(pb.build().unwrap())
    }

    #[test]
    fn both_targets_run_and_agree() {
        let svc = port_mirror();
        let frames: Vec<Frame> = (0..10)
            .map(|i| {
                let mut f = Frame::new(vec![i as u8; 60 + i * 3]);
                f.in_port = (i % 4) as u8;
                f
            })
            .collect();
        assert_targets_agree(&svc, &frames).unwrap();
    }

    #[test]
    fn read_reg_by_name() {
        let (mut pb, dp) = service_builder("counter", 64);
        let count = pb.reg("rx_count", 32);
        let mut body = vec![dp.rx_wait(), assign(count, add(var(count), lit(1, 32)))];
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        let svc = Service::new(pb.build().unwrap());
        let mut inst = svc.instantiate(Target::Fpga).unwrap();
        for _ in 0..5 {
            inst.process(&Frame::new(vec![0; 60])).unwrap();
        }
        assert_eq!(inst.read_reg("rx_count").unwrap().to_u64(), 5);
        assert!(inst.read_reg("nonexistent").is_none());
    }

    #[test]
    fn divergence_detection_works() {
        // A service reading an *uninitialized input signal* that only the
        // environment drives would diverge if envs differed; here targets
        // agree, so the harness must pass — this guards the harness itself.
        let svc = port_mirror();
        assert!(assert_targets_agree(&svc, &[Frame::new(vec![0; 60])]).is_ok());
    }

    fn flow_frame(src_mac: u64, sport: u16, len: usize) -> Frame {
        use emu_types::{bitutil, MacAddr};
        let mut ip = vec![
            0x45, 0, 0, 40, 0, 0, 0x40, 0, 64, 17, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2,
        ];
        let mut udp = vec![0u8; 8];
        bitutil::set16(&mut udp, 0, sport);
        bitutil::set16(&mut udp, 2, 53);
        ip.extend_from_slice(&udp);
        ip.resize(len.max(28), 0xaa);
        Frame::ethernet(
            MacAddr::from_u64(0xB),
            MacAddr::from_u64(src_mac),
            0x0800,
            &ip,
        )
    }

    #[test]
    fn flow_hash_ignores_payload_but_not_ports() {
        let a = flow_hash(&flow_frame(1, 1000, 40));
        let b = flow_hash(&flow_frame(1, 1000, 200)); // same flow, longer payload
        let c = flow_hash(&flow_frame(1, 2000, 40)); // different sport
        let d = flow_hash(&flow_frame(2, 1000, 40)); // different src MAC
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn flow_hash_spreads_across_shards() {
        let mut seen = [0u32; 4];
        for sport in 0..256u16 {
            let h = flow_hash(&flow_frame(1, sport, 40)) % 4;
            seen[h as usize] += 1;
        }
        for (k, &count) in seen.iter().enumerate() {
            assert!(count > 24, "shard {k} starved: {seen:?}");
        }
    }

    #[test]
    fn sharded_engine_matches_single_instance_on_stateless_service() {
        let svc = port_mirror();
        let frames: Vec<Frame> = (0..32)
            .map(|i| flow_frame(i % 5, i as u16 * 7, 60))
            .collect();
        let mut single = svc.instantiate(Target::Fpga).unwrap();
        let mut engine = svc.instantiate_sharded(Target::Fpga, 4).unwrap();
        let batch = engine.process_batch(&frames);
        assert_eq!(batch.ok_count(), frames.len());
        for (f, out) in frames.iter().zip(&batch.outputs) {
            let want = single.process(f).unwrap();
            assert_eq!(out.as_ref().unwrap().tx, want.tx);
        }
        assert!(batch.wall_cycles() > 0);
    }

    #[test]
    fn batch_equals_frame_by_frame() {
        let svc = port_mirror();
        let frames: Vec<Frame> = (0..10).map(|i| flow_frame(3, i as u16, 80)).collect();
        let mut a = svc.instantiate(Target::Fpga).unwrap();
        let mut b = svc.instantiate(Target::Fpga).unwrap();
        let batch = a.process_batch(&frames).unwrap();
        let single: Vec<CoreOutput> = frames.iter().map(|f| b.process(f).unwrap()).collect();
        assert_eq!(batch.outputs, single);
        assert_eq!(
            batch.cycles,
            single.iter().map(|o| o.cycles).sum::<u64>(),
            "no idle cycles between back-to-back frames"
        );
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(port_mirror().instantiate_sharded(Target::Cpu, 0).is_err());
    }

    #[test]
    fn into_fpga_parts_only_for_fpga() {
        let svc = port_mirror();
        assert!(svc
            .instantiate(Target::Cpu)
            .unwrap()
            .into_fpga_parts()
            .is_none());
        assert!(svc
            .instantiate(Target::Fpga)
            .unwrap()
            .into_fpga_parts()
            .is_some());
    }
}
