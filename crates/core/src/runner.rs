//! The multi-target service description: one program, several execution
//! targets.
//!
//! This is contribution 2 of the paper: "an execution environment that
//! supports running a single codebase over heterogeneous targets,
//! including CPUs, network simulators, and FPGAs." A [`Service`] bundles
//! a program with a recipe for its IP-block environment; [`Target`]
//! selects the backend. Execution goes through the unified engine in
//! [`crate::engine`]: `service.engine(target).build()` yields an
//! [`crate::Engine`] whether the deployment is a single pipeline or a
//! sharded scale-out (§5.4's "one core per port"). The Mininet-analogue
//! target lives in the `netsim` crate (it embeds the same CPU backend in
//! a network simulation).
//!
//! This module also owns the RSS-style flow digest ([`flow_key`] /
//! [`flow_hash`]) the default dispatch policy uses, and the
//! [`assert_targets_agree`] differential harness.

use crate::dataplane::Dataplane;
use emu_rtl::IpEnv;
use emu_types::proto::{ether_type, ip_proto, offset};
use emu_types::{checksum, Frame};
use kiwi::CostModel;
use kiwi_ir::interp::Observer;
use kiwi_ir::{IrResult, Machine, Program};
use netfpga_sim::dataplane::CoreOutput;
use netfpga_sim::DataplaneDriver;

/// Execution target selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Software execution — the paper's x86 process target. Which CPU
    /// backend runs it is selected by [`Backend`] (compiled micro-ops
    /// by default).
    Cpu,
    /// Cycle-accurate compiled FSM — the FPGA target.
    Fpga,
}

/// CPU execution backend selector (ignored by [`Target::Fpga`]).
///
/// Both backends execute the identical flattened op stream with
/// byte-identical semantics — state, outputs, observer callbacks, cycle
/// and op counts, trap messages — which the differential suites assert.
/// They differ only in speed:
///
/// * [`Backend::Compiled`] (the default): each thread is lowered to a
///   pre-decoded micro-op bytecode through the optimization pipeline in
///   `kiwi_ir::opt` and run by a tight non-recursive loop with a `u64`
///   fast path — the production software backend.
/// * [`Backend::TreeWalk`]: the recursive `Box<Expr>` interpreter — the
///   slow, obviously-correct reference. CI forces it once over the whole
///   test suite (`EMU_CPU_BACKEND=treewalk`) so it cannot rot.
///
/// An explicit [`crate::EngineBuilder::backend`] call always wins; the
/// `EMU_CPU_BACKEND` environment variable (`compiled` / `treewalk`)
/// overrides only the *default*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Pre-decoded micro-op bytecode (fast path; the default).
    #[default]
    Compiled,
    /// Recursive tree-walking interpreter (reference semantics).
    TreeWalk,
}

impl Backend {
    /// The default backend after consulting `EMU_CPU_BACKEND`.
    ///
    /// Panics on an unrecognized non-empty value: the variable exists so
    /// CI can force the reference interpreter over the whole suite, and
    /// a typo silently running the compiled backend instead would defeat
    /// exactly that run.
    pub fn env_default() -> Backend {
        match std::env::var("EMU_CPU_BACKEND").as_deref() {
            Ok("treewalk") | Ok("tree-walk") => Backend::TreeWalk,
            Ok("compiled") | Ok("") | Err(_) => Backend::Compiled,
            Ok(other) => panic!("EMU_CPU_BACKEND must be `compiled` or `treewalk`, got `{other}`"),
        }
    }

    /// Human-readable backend label (bench and report rows).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Compiled => "compiled",
            Backend::TreeWalk => "treewalk",
        }
    }
}

/// Table sizing/lifecycle configuration handed to a service's
/// environment recipe at engine-build time.
///
/// The defaults (`None` everywhere) reproduce the paper's Table-3
/// geometry: BRAM-sized tables, no expiry. A Cpu deployment may raise
/// `entries` to millions; the Fpga target refuses anything beyond
/// [`FPGA_MAX_TABLE_ENTRIES`] so the hardware reference stays
/// BRAM-honest (see `EngineBuilder::table_entries`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableConfig {
    /// Override for each stateful table's capacity in entries. `None`
    /// keeps the service's paper-sized default.
    pub entries: Option<usize>,
    /// Idle timeout in frame epochs for TTL-aware tables (NAT mapping
    /// timeout, switch MAC aging). `None` disables expiry. Services
    /// whose tables are key-value stores with explicit deletes (e.g.
    /// memcached) ignore this.
    pub ttl_frames: Option<u64>,
}

/// Largest per-table capacity the Fpga target accepts: the BRAM budget
/// of the paper's NetFPGA SUME reference. Cpu deployments may exceed
/// it; the cycle-accurate target must not pretend to hardware that
/// doesn't exist.
pub const FPGA_MAX_TABLE_ENTRIES: usize = 4096;

/// A deployable service: program + IP-block environment recipe.
///
/// A `Service` is a *description*; to run it, build an engine:
///
/// ```ignore
/// let mut engine = svc.engine(Target::Fpga).shards(4).build()?;
/// ```
pub struct Service {
    /// The service program (must declare the dataplane contract).
    pub program: Program,
    /// Builds the IP-block environment the program expects, sized per
    /// the engine's [`TableConfig`]. Recipes that predate configurable
    /// tables (built via [`Service::with_env`]) ignore the config.
    pub make_env: Box<dyn Fn(&TableConfig) -> IpEnv>,
    /// Compiler cost model for the FPGA target.
    pub cost_model: CostModel,
}

impl Service {
    /// Wraps a program that needs no IP blocks.
    pub fn new(program: Program) -> Self {
        Service {
            program,
            make_env: Box::new(|_| IpEnv::new()),
            cost_model: CostModel::default(),
        }
    }

    /// Wraps a program with a fixed-size IP-block environment recipe
    /// (the recipe ignores the engine's table configuration).
    pub fn with_env(program: Program, make_env: impl Fn() -> IpEnv + 'static) -> Self {
        Service {
            program,
            make_env: Box::new(move |_| make_env()),
            cost_model: CostModel::default(),
        }
    }

    /// Wraps a program with a table-size-aware environment recipe: the
    /// engine's [`TableConfig`] (capacity override, TTL) is passed
    /// through at build time.
    pub fn with_sized_env(
        program: Program,
        make_env: impl Fn(&TableConfig) -> IpEnv + 'static,
    ) -> Self {
        Service {
            program,
            make_env: Box::new(make_env),
            cost_model: CostModel::default(),
        }
    }
}

/// Target-erased dataplane driver (internal: the public execution
/// surface is [`crate::Engine`]).
pub(crate) enum AnyDriver {
    /// Tree-walking interpreter (the reference CPU backend).
    Cpu(DataplaneDriver<Machine>),
    /// Compiled micro-op bytecode (the fast CPU backend).
    CpuCompiled(DataplaneDriver<kiwi_ir::CompiledMachine>),
    /// FSM-backed.
    Fpga(DataplaneDriver<emu_rtl::RtlMachine>),
}

impl AnyDriver {
    /// Instantiates the driver for `service` on `target`, using
    /// `backend` when the target is software. `passes` pins the
    /// compiled backend's optimization pipeline; `None` defers to
    /// `EMU_CPU_PASSES` / the default pipeline (ignored by the other
    /// backends, which have no pass pipeline).
    pub(crate) fn new(
        service: &Service,
        target: Target,
        backend: Backend,
        passes: Option<&[kiwi_ir::Pass]>,
    ) -> IrResult<Self> {
        Ok(match (target, backend) {
            (Target::Cpu, Backend::TreeWalk) => {
                let m = Machine::new(kiwi_ir::flatten(&service.program)?);
                AnyDriver::Cpu(DataplaneDriver::new(m)?)
            }
            (Target::Cpu, Backend::Compiled) => {
                let flat = kiwi_ir::flatten(&service.program)?;
                let cp = match passes {
                    Some(p) => kiwi_ir::compile_with_passes(&flat, p)?,
                    None => kiwi_ir::compile(&flat)?,
                };
                AnyDriver::CpuCompiled(DataplaneDriver::new(kiwi_ir::CompiledMachine::new(cp))?)
            }
            (Target::Fpga, _) => {
                let fsm = kiwi::compile_with(&service.program, service.cost_model.clone())?;
                AnyDriver::Fpga(DataplaneDriver::new(emu_rtl::RtlMachine::new(fsm))?)
            }
        })
    }

    pub(crate) fn process(
        &mut self,
        frame: &Frame,
        env: &mut IpEnv,
        obs: &mut dyn Observer,
    ) -> IrResult<CoreOutput> {
        match self {
            AnyDriver::Cpu(d) => d.process(frame, env, obs),
            AnyDriver::CpuCompiled(d) => d.process(frame, env, obs),
            AnyDriver::Fpga(d) => d.process(frame, env, obs),
        }
    }

    /// Processes `frames` back to back, stopping at the first error
    /// (one result per frame attempted: an `Ok` prefix plus at most one
    /// `Err`). The compiled backend runs its monomorphized batch fast
    /// path; the tree-walker and FPGA backends fall back to scalar
    /// [`AnyDriver::process`] calls with identical semantics.
    pub(crate) fn process_batch(
        &mut self,
        frames: &[&Frame],
        env: &mut IpEnv,
    ) -> Vec<IrResult<CoreOutput>> {
        if let AnyDriver::CpuCompiled(d) = self {
            return d.process_batch(frames, env);
        }
        let mut out = Vec::with_capacity(frames.len());
        for f in frames {
            let r = self.process(f, env, &mut kiwi_ir::NullObserver);
            let failed = r.is_err();
            out.push(r);
            if failed {
                break;
            }
        }
        out
    }

    pub(crate) fn idle(&mut self, n: u64, env: &mut IpEnv, obs: &mut dyn Observer) -> IrResult<()> {
        match self {
            AnyDriver::Cpu(d) => d.idle(n, env, obs),
            AnyDriver::CpuCompiled(d) => d.idle(n, env, obs),
            AnyDriver::Fpga(d) => d.idle(n, env, obs),
        }
    }

    pub(crate) fn set_max_cycles_per_frame(&mut self, n: u64) {
        match self {
            AnyDriver::Cpu(d) => d.max_cycles_per_frame = n,
            AnyDriver::CpuCompiled(d) => d.max_cycles_per_frame = n,
            AnyDriver::Fpga(d) => d.max_cycles_per_frame = n,
        }
    }

    pub(crate) fn frame_capacity(&self) -> usize {
        match self {
            AnyDriver::Cpu(d) => d.frame_capacity(),
            AnyDriver::CpuCompiled(d) => d.frame_capacity(),
            AnyDriver::Fpga(d) => d.frame_capacity(),
        }
    }

    pub(crate) fn program(&self) -> &Program {
        use emu_rtl::ExecBackend;
        match self {
            AnyDriver::Cpu(d) => d.backend().program(),
            AnyDriver::CpuCompiled(d) => d.backend().program(),
            AnyDriver::Fpga(d) => d.backend().program(),
        }
    }

    pub(crate) fn machine_state(&self) -> &kiwi_ir::interp::MachineState {
        use emu_rtl::ExecBackend;
        match self {
            AnyDriver::Cpu(d) => d.backend().machine_state(),
            AnyDriver::CpuCompiled(d) => d.backend().machine_state(),
            AnyDriver::Fpga(d) => d.backend().machine_state(),
        }
    }

    pub(crate) fn machine_state_mut(&mut self) -> &mut kiwi_ir::interp::MachineState {
        use emu_rtl::ExecBackend;
        match self {
            AnyDriver::Cpu(d) => d.backend_mut().machine_state_mut(),
            AnyDriver::CpuCompiled(d) => d.backend_mut().machine_state_mut(),
            AnyDriver::Fpga(d) => d.backend_mut().machine_state_mut(),
        }
    }
}

/// Runs the same frames through every execution backend — tree-walking
/// CPU, compiled CPU (scalar *and* batched), and the FPGA FSM — and
/// asserts identical transmissions, outputs, and telemetry. The
/// differential harness used across the test suite.
pub fn assert_targets_agree(service: &Service, frames: &[Frame]) -> IrResult<()> {
    let mut treewalk = service
        .engine(Target::Cpu)
        .backend(Backend::TreeWalk)
        .build()?;
    let mut compiled = service
        .engine(Target::Cpu)
        .backend(Backend::Compiled)
        .build()?;
    let mut fpga = service.engine(Target::Fpga).build()?;
    let mut scalar_outputs = Vec::with_capacity(frames.len());
    for (i, f) in frames.iter().enumerate() {
        let a = treewalk.process(f)?;
        let c = compiled.process(f)?;
        let b = fpga.process(f)?;
        if a.tx != b.tx {
            return Err(kiwi_ir::IrError(format!(
                "target divergence on frame {i}: cpu {:?} vs fpga {:?}",
                a.tx, b.tx
            )));
        }
        if a != c {
            return Err(kiwi_ir::IrError(format!(
                "backend divergence on frame {i}: treewalk {a:?} vs compiled {c:?}"
            )));
        }
        scalar_outputs.push(c);
    }
    // The batched fast path must reproduce the scalar compiled run
    // byte for byte: outputs, cycle counts, and telemetry snapshot.
    let mut batched = service
        .engine(Target::Cpu)
        .backend(Backend::Compiled)
        .batching(true)
        .build()?;
    let report = batched.process_batch(frames);
    for (i, r) in report.outputs.iter().enumerate() {
        match r {
            Ok(out) if *out == scalar_outputs[i] => {}
            other => {
                return Err(kiwi_ir::IrError(format!(
                    "batched divergence on frame {i}: scalar {:?} vs batched {other:?}",
                    scalar_outputs[i]
                )));
            }
        }
    }
    if batched.telemetry() != compiled.telemetry() {
        return Err(kiwi_ir::IrError(format!(
            "batched telemetry diverges: scalar {:?} vs batched {:?}",
            compiled.telemetry(),
            batched.telemetry()
        )));
    }
    Ok(())
}

/// Extracts the RSS-style flow key of a frame: src/dst MAC, plus src/dst
/// IPv4 addresses when the frame is IPv4, plus protocol and L4 ports when
/// it carries TCP or UDP.
///
/// Frames of one flow (one 5-tuple) always produce the same key whatever
/// their payload, which is what gives the [`crate::RssHash`] dispatch
/// policy its flow-affinity guarantee. Non-IP frames hash on MAC
/// addresses alone.
pub fn flow_key(frame: &Frame) -> [u8; 26] {
    let b = frame.bytes();
    let mut key = [0u8; 26];
    let mut used = 12;
    key[..12].copy_from_slice(&b[..12]); // dst MAC ++ src MAC
    if frame.ethertype() == ether_type::IPV4 && b.len() >= offset::L4 {
        key[used..used + 8].copy_from_slice(&b[offset::IPV4_SRC..offset::IPV4_SRC + 8]);
        used += 8;
        let proto = b[offset::IPV4_PROTO];
        let ihl = usize::from(b[offset::IPV4] & 0x0f) * 4;
        let l4 = offset::IPV4 + ihl;
        if (proto == ip_proto::TCP || proto == ip_proto::UDP) && b.len() >= l4 + 4 {
            key[used] = proto;
            key[used + 1..used + 5].copy_from_slice(&b[l4..l4 + 4]); // sport ++ dport
            used += 5;
        }
    }
    // Trailing bytes stay zero; `used` itself is folded in so a short key
    // cannot collide with a longer key that happens to end in zeros.
    key[25] = used as u8;
    key
}

/// RSS-style flow hash over [`flow_key`], built from four independently
/// seeded passes of the Pearson hash the platform's hashing IP block
/// models (Figure 5) — the same digest function on every target.
pub fn flow_hash(frame: &Frame) -> u64 {
    let key = flow_key(frame);
    let mut h = 0u64;
    for seed in 1..=4u8 {
        h = (h << 8) | u64::from(checksum::pearson8_seeded(seed, &key));
    }
    h
}

/// A convenience used by services and examples: declare the dataplane and
/// hand back both the builder and the handle.
pub fn service_builder(name: &str, frame_capacity: usize) -> (kiwi_ir::ProgramBuilder, Dataplane) {
    let mut pb = kiwi_ir::ProgramBuilder::new(name);
    let dp = Dataplane::declare(&mut pb, frame_capacity);
    (pb, dp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiwi_ir::dsl::*;

    fn port_mirror() -> Service {
        let (mut pb, dp) = service_builder("mirror", 128);
        let mut body = vec![dp.rx_wait(), dp.set_output_port(dp.input_port())];
        body.extend(dp.transmit(dp.rx_len()));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        Service::new(pb.build().unwrap())
    }

    #[test]
    fn both_targets_run_and_agree() {
        let svc = port_mirror();
        let frames: Vec<Frame> = (0..10)
            .map(|i| {
                let mut f = Frame::new(vec![i as u8; 60 + i * 3]);
                f.in_port = (i % 4) as u8;
                f
            })
            .collect();
        assert_targets_agree(&svc, &frames).unwrap();
    }

    #[test]
    fn divergence_detection_works() {
        // A service reading an *uninitialized input signal* that only the
        // environment drives would diverge if envs differed; here targets
        // agree, so the harness must pass — this guards the harness itself.
        let svc = port_mirror();
        assert!(assert_targets_agree(&svc, &[Frame::new(vec![0; 60])]).is_ok());
    }

    fn flow_frame(src_mac: u64, sport: u16, len: usize) -> Frame {
        use emu_types::{bitutil, MacAddr};
        let mut ip = vec![
            0x45, 0, 0, 40, 0, 0, 0x40, 0, 64, 17, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2,
        ];
        let mut udp = vec![0u8; 8];
        bitutil::set16(&mut udp, 0, sport);
        bitutil::set16(&mut udp, 2, 53);
        ip.extend_from_slice(&udp);
        ip.resize(len.max(28), 0xaa);
        Frame::ethernet(
            MacAddr::from_u64(0xB),
            MacAddr::from_u64(src_mac),
            0x0800,
            &ip,
        )
    }

    #[test]
    fn flow_hash_ignores_payload_but_not_ports() {
        let a = flow_hash(&flow_frame(1, 1000, 40));
        let b = flow_hash(&flow_frame(1, 1000, 200)); // same flow, longer payload
        let c = flow_hash(&flow_frame(1, 2000, 40)); // different sport
        let d = flow_hash(&flow_frame(2, 1000, 40)); // different src MAC
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn flow_hash_spreads_across_shards() {
        let mut seen = [0u32; 4];
        for sport in 0..256u16 {
            let h = flow_hash(&flow_frame(1, sport, 40)) % 4;
            seen[h as usize] += 1;
        }
        for (k, &count) in seen.iter().enumerate() {
            assert!(count > 24, "shard {k} starved: {seen:?}");
        }
    }
}
