//! The multi-target runner: one program, three execution targets.
//!
//! This is contribution 2 of the paper: "an execution environment that
//! supports running a single codebase over heterogeneous targets,
//! including CPUs, network simulators, and FPGAs." A [`Service`] bundles
//! a program with a recipe for its IP-block environment; [`Target`]
//! selects the backend. The Mininet-analogue target lives in the `netsim`
//! crate (it embeds the same CPU backend in a network simulation).

use crate::dataplane::Dataplane;
use emu_rtl::{ExecBackend, IpEnv, RtlMachine};
use emu_types::Frame;
use kiwi::CostModel;
use kiwi_ir::interp::{NullObserver, Observer};
use kiwi_ir::{IrResult, Machine, Program};
use netfpga_sim::dataplane::CoreOutput;
use netfpga_sim::DataplaneDriver;

/// Execution target selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Sequential interpreter — the paper's x86 process target.
    Cpu,
    /// Cycle-accurate compiled FSM — the FPGA target.
    Fpga,
}

/// A deployable service: program + IP-block environment recipe.
pub struct Service {
    /// The service program (must declare the dataplane contract).
    pub program: Program,
    /// Builds the IP-block environment the program expects.
    pub make_env: Box<dyn Fn() -> IpEnv>,
    /// Compiler cost model for the FPGA target.
    pub cost_model: CostModel,
}

impl Service {
    /// Wraps a program that needs no IP blocks.
    pub fn new(program: Program) -> Self {
        Service {
            program,
            make_env: Box::new(IpEnv::new),
            cost_model: CostModel::default(),
        }
    }

    /// Wraps a program with an IP-block environment recipe.
    pub fn with_env(program: Program, make_env: impl Fn() -> IpEnv + 'static) -> Self {
        Service {
            program,
            make_env: Box::new(make_env),
            cost_model: CostModel::default(),
        }
    }

    /// Instantiates the service on a target.
    pub fn instantiate(&self, target: Target) -> IrResult<ServiceInstance> {
        let env = (self.make_env)();
        let driver = match target {
            Target::Cpu => {
                let m = Machine::new(kiwi_ir::flatten(&self.program)?);
                AnyDriver::Cpu(DataplaneDriver::new(m)?)
            }
            Target::Fpga => {
                let fsm = kiwi::compile_with(&self.program, self.cost_model.clone())?;
                AnyDriver::Fpga(DataplaneDriver::new(RtlMachine::new(fsm))?)
            }
        };
        Ok(ServiceInstance { driver, env })
    }
}

/// Target-erased dataplane driver.
pub enum AnyDriver {
    /// Interpreter-backed.
    Cpu(DataplaneDriver<Machine>),
    /// FSM-backed.
    Fpga(DataplaneDriver<RtlMachine>),
}

/// A running service on some target.
pub struct ServiceInstance {
    driver: AnyDriver,
    env: IpEnv,
}

impl ServiceInstance {
    /// Processes one frame, returning transmissions and cycles consumed.
    pub fn process(&mut self, frame: &Frame) -> IrResult<CoreOutput> {
        self.process_observed(frame, &mut NullObserver)
    }

    /// Processes one frame under an observer (debug tooling).
    pub fn process_observed(
        &mut self,
        frame: &Frame,
        obs: &mut dyn Observer,
    ) -> IrResult<CoreOutput> {
        match &mut self.driver {
            AnyDriver::Cpu(d) => d.process(frame, &mut self.env, obs),
            AnyDriver::Fpga(d) => d.process(frame, &mut self.env, obs),
        }
    }

    /// Lets the core run `n` cycles without traffic.
    pub fn idle(&mut self, n: u64) -> IrResult<()> {
        match &mut self.driver {
            AnyDriver::Cpu(d) => d.idle(n, &mut self.env, &mut NullObserver),
            AnyDriver::Fpga(d) => d.idle(n, &mut self.env, &mut NullObserver),
        }
    }

    /// Reads a register by name (debug/verification convenience).
    pub fn read_reg(&self, name: &str) -> Option<emu_types::Bits> {
        let (prog, st) = match &self.driver {
            AnyDriver::Cpu(d) => (d.backend().program(), d.backend().machine_state()),
            AnyDriver::Fpga(d) => (d.backend().program(), d.backend().machine_state()),
        };
        prog.var_by_name(name)
            .map(|v| st.vars[v.0 as usize].clone())
    }

    /// The IP-block environment (for attaching more models in tests).
    pub fn env_mut(&mut self) -> &mut IpEnv {
        &mut self.env
    }

    /// Consumes the instance, returning the FPGA driver if this instance
    /// runs on the FPGA target (used by the pipeline simulator).
    pub fn into_fpga_parts(self) -> Option<(DataplaneDriver<RtlMachine>, IpEnv)> {
        match self.driver {
            AnyDriver::Fpga(d) => Some((d, self.env)),
            AnyDriver::Cpu(_) => None,
        }
    }
}

/// Runs the same frames through both targets and asserts identical
/// transmissions — the differential harness used across the test suite.
pub fn assert_targets_agree(service: &Service, frames: &[Frame]) -> IrResult<()> {
    let mut cpu = service.instantiate(Target::Cpu)?;
    let mut fpga = service.instantiate(Target::Fpga)?;
    for (i, f) in frames.iter().enumerate() {
        let a = cpu.process(f)?;
        let b = fpga.process(f)?;
        if a.tx != b.tx {
            return Err(kiwi_ir::IrError(format!(
                "target divergence on frame {i}: cpu {:?} vs fpga {:?}",
                a.tx, b.tx
            )));
        }
    }
    Ok(())
}

/// A convenience used by services and examples: declare the dataplane and
/// hand back both the builder and the handle.
pub fn service_builder(name: &str, frame_capacity: usize) -> (kiwi_ir::ProgramBuilder, Dataplane) {
    let mut pb = kiwi_ir::ProgramBuilder::new(name);
    let dp = Dataplane::declare(&mut pb, frame_capacity);
    (pb, dp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiwi_ir::dsl::*;

    fn port_mirror() -> Service {
        let (mut pb, dp) = service_builder("mirror", 128);
        let mut body = vec![dp.rx_wait(), dp.set_output_port(dp.input_port())];
        body.extend(dp.transmit(dp.rx_len()));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        Service::new(pb.build().unwrap())
    }

    #[test]
    fn both_targets_run_and_agree() {
        let svc = port_mirror();
        let frames: Vec<Frame> = (0..10)
            .map(|i| {
                let mut f = Frame::new(vec![i as u8; 60 + i * 3]);
                f.in_port = (i % 4) as u8;
                f
            })
            .collect();
        assert_targets_agree(&svc, &frames).unwrap();
    }

    #[test]
    fn read_reg_by_name() {
        let (mut pb, dp) = service_builder("counter", 64);
        let count = pb.reg("rx_count", 32);
        let mut body = vec![dp.rx_wait(), assign(count, add(var(count), lit(1, 32)))];
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        let svc = Service::new(pb.build().unwrap());
        let mut inst = svc.instantiate(Target::Fpga).unwrap();
        for _ in 0..5 {
            inst.process(&Frame::new(vec![0; 60])).unwrap();
        }
        assert_eq!(inst.read_reg("rx_count").unwrap().to_u64(), 5);
        assert!(inst.read_reg("nonexistent").is_none());
    }

    #[test]
    fn divergence_detection_works() {
        // A service reading an *uninitialized input signal* that only the
        // environment drives would diverge if envs differed; here targets
        // agree, so the harness must pass — this guards the harness itself.
        let svc = port_mirror();
        assert!(assert_targets_agree(&svc, &[Frame::new(vec![0; 60])]).is_ok());
    }

    #[test]
    fn into_fpga_parts_only_for_fpga() {
        let svc = port_mirror();
        assert!(svc
            .instantiate(Target::Cpu)
            .unwrap()
            .into_fpga_parts()
            .is_none());
        assert!(svc
            .instantiate(Target::Fpga)
            .unwrap()
            .into_fpga_parts()
            .is_some());
    }
}
