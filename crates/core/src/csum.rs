//! IR-level Internet checksum helpers.
//!
//! Checksums are where hardware network functions most often go wrong —
//! the paper's own debugging walkthrough (§5.5) chased "a bug in the
//! checksum implementation" with direction packets. These helpers generate
//! expression trees computing the RFC 1071/1624 arithmetic, so that the
//! hardware and software targets produce bit-identical results (the
//! software reference lives in `emu_types::checksum`, and property tests
//! pin the two together).

use kiwi_ir::dsl::*;
use kiwi_ir::Expr;

/// Ones-complement of a 16-bit value, as a 16-bit expression.
pub fn not16(e: Expr) -> Expr {
    resize(not(resize(e, 16)), 16)
}

/// Folds a ≤32-bit ones-complement accumulator into 16 bits.
///
/// Two folding rounds suffice for sums of ≤ 2^16 words, mirroring the
/// classic `while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16)`.
pub fn fold16(acc: Expr) -> Expr {
    let acc = resize(acc, 32);
    let once = add(band(acc.clone(), lit(0xffff, 32)), shr(acc, lit(16, 8)));
    let twice = add(band(once.clone(), lit(0xffff, 32)), shr(once, lit(16, 8)));
    resize(twice, 16)
}

/// RFC 1624 incremental update: the new checksum after a 16-bit word
/// changes from `m_old` to `m_new` under checksum `old` —
/// `HC' = ~(~HC + ~m + m')`.
pub fn csum_update_word(old: Expr, m_old: Expr, m_new: Expr) -> Expr {
    let sum = add(
        add(resize(not16(old), 32), resize(not16(m_old), 32)),
        resize(m_new, 32),
    );
    not16(fold16(sum))
}

/// Incremental update for a 32-bit field change (e.g. a NAT address
/// rewrite): applies [`csum_update_word`] to both halves.
pub fn csum_update_u32(old: Expr, v_old: Expr, v_new: Expr) -> Expr {
    let hi = csum_update_word(
        old,
        slice(v_old.clone(), 31, 16),
        slice(v_new.clone(), 31, 16),
    );
    csum_update_word(hi, slice(v_old, 15, 0), slice(v_new, 15, 0))
}

/// Sums a list of 16-bit word expressions and returns the final Internet
/// checksum (`~fold(Σ)`), as a tree of adds — one cycle of combinational
/// logic for a fixed header, the way a hardware checksum unit computes it.
pub fn csum_of_words<I: IntoIterator<Item = Expr>>(words: I) -> Expr {
    let mut acc: Option<Expr> = None;
    for w in words {
        let w32 = resize(w, 32);
        acc = Some(match acc {
            None => w32,
            Some(a) => add(a, w32),
        });
    }
    let acc = acc.expect("csum_of_words needs at least one word");
    not16(fold16(acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_types::checksum;
    use kiwi_ir::interp::{eval, MachineState};
    use kiwi_ir::ProgramBuilder;

    fn eval_const(e: &Expr) -> u64 {
        let prog = ProgramBuilder::new("t").build().unwrap();
        let st = MachineState::init(&prog);
        eval(e, &prog, &st).to_u64()
    }

    #[test]
    fn fold16_matches_reference() {
        for acc in [0u32, 0xffff, 0x1_0000, 0x2_ddf0, 0xffff_ffff] {
            let mut r = acc;
            while r >> 16 != 0 {
                r = (r & 0xffff) + (r >> 16);
            }
            let got = eval_const(&fold16(lit(u64::from(acc), 32)));
            assert_eq!(got, u64::from(r), "acc {acc:#x}");
        }
    }

    #[test]
    fn update_word_matches_software() {
        let cases = [
            (0x1234u16, 0xabcd_u16, 0x0000_u16),
            (0xb861, 0x0a00, 0xc0a8),
            (0x0000, 0xffff, 0x0001),
            (0xffff, 0x0000, 0x0000),
        ];
        for (old, m, m2) in cases {
            let expect = checksum::update_word(old, m, m2);
            let got = eval_const(&csum_update_word(
                lit(u64::from(old), 16),
                lit(u64::from(m), 16),
                lit(u64::from(m2), 16),
            ));
            assert_eq!(got, u64::from(expect), "case {old:#x} {m:#x} {m2:#x}");
        }
    }

    #[test]
    fn update_u32_matches_software() {
        let old = 0xb861u16;
        let a = 0x0a00_0001u32;
        let b = 0xc0a8_0105u32;
        let expect = checksum::update_u32(old, a, b);
        let got = eval_const(&csum_update_u32(
            lit(u64::from(old), 16),
            lit(u64::from(a), 32),
            lit(u64::from(b), 32),
        ));
        assert_eq!(got, u64::from(expect));
    }

    #[test]
    fn csum_of_words_matches_bytes() {
        // The classic IPv4 header example, checksum field zeroed.
        let hdr: [u16; 10] = [
            0x4500, 0x0073, 0x0000, 0x4000, 0x4011, 0x0000, 0xc0a8, 0x0001, 0xc0a8, 0x00c7,
        ];
        let bytes: Vec<u8> = hdr.iter().flat_map(|w| w.to_be_bytes()).collect();
        let expect = checksum::internet_checksum(&bytes);
        let got = eval_const(&csum_of_words(hdr.iter().map(|&w| lit(u64::from(w), 16))));
        assert_eq!(got, u64::from(expect));
        assert_eq!(got, 0xb861);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn empty_word_list_panics() {
        let _ = csum_of_words([]);
    }
}
