//! Program-side dataplane utilities — the paper's Figure 6 API.
//!
//! These helpers generate IR fragments against the platform contract
//! defined in `netfpga-sim::dataplane`. They are the direct analogues of
//! the utility functions the paper shows:
//!
//! ```csharp
//! public static void Get_Frame (NetFPGA_Data src, ref byte[] dst) ...
//! public static uint Read_Input_Port (NetFPGA_Data dataplane) ...
//! public static void Set_Output_Port (ref NetFPGA_Data dataplane, ulong value) ...
//! ```
//!
//! plus the `Broadcast` and `EtherType_Is` calls of Figure 2. Because the
//! frame lives in a byte array owned by the program, field access compiles
//! to array reads/writes — the same structure the paper's `BitUtil`
//! accessors produce (Figure 4).

use kiwi_ir::dsl::*;
use kiwi_ir::{Expr, ProgramBuilder, Stmt};
use netfpga_sim::dataplane::DataplanePorts;

/// Program-side handle to the dataplane: ports plus frame-field access.
#[derive(Debug, Clone, Copy)]
pub struct Dataplane {
    /// The underlying contract ports.
    pub ports: DataplanePorts,
}

impl Dataplane {
    /// Declares the dataplane contract and returns the program-side handle.
    pub fn declare(pb: &mut ProgramBuilder, frame_capacity: usize) -> Self {
        Dataplane {
            ports: netfpga_sim::declare(pb, frame_capacity),
        }
    }

    // -- frame byte/field access -------------------------------------

    /// Frame byte at a dynamic offset.
    pub fn byte_dyn(&self, off: Expr) -> Expr {
        arr_read(self.ports.frame, off)
    }

    /// Frame byte at a constant offset.
    pub fn byte(&self, off: usize) -> Expr {
        self.byte_dyn(lit(off as u64, 16))
    }

    /// Big-endian 16-bit field at a constant offset.
    pub fn get16(&self, off: usize) -> Expr {
        concat(self.byte(off), self.byte(off + 1))
    }

    /// Big-endian 32-bit field at a constant offset.
    pub fn get32(&self, off: usize) -> Expr {
        concat_all([
            self.byte(off),
            self.byte(off + 1),
            self.byte(off + 2),
            self.byte(off + 3),
        ])
    }

    /// Big-endian 48-bit field at a constant offset (MAC addresses).
    pub fn get48(&self, off: usize) -> Expr {
        concat_all((0..6).map(|i| self.byte(off + i)))
    }

    /// Big-endian 64-bit field at a constant offset.
    pub fn get64(&self, off: usize) -> Expr {
        concat_all((0..8).map(|i| self.byte(off + i)))
    }

    /// Big-endian 16-bit field at a dynamic offset.
    pub fn get16_dyn(&self, off: Expr) -> Expr {
        concat(
            self.byte_dyn(off.clone()),
            self.byte_dyn(add(off, lit(1, 16))),
        )
    }

    /// Writes a byte at a constant offset.
    pub fn set8(&self, off: usize, v: Expr) -> Stmt {
        arr_write(self.ports.frame, lit(off as u64, 16), v)
    }

    /// Writes a byte at a dynamic offset.
    pub fn set8_dyn(&self, off: Expr, v: Expr) -> Stmt {
        arr_write(self.ports.frame, off, v)
    }

    /// Writes a big-endian 16-bit field at a constant offset.
    ///
    /// The value expression is evaluated once per byte written; when `v`
    /// *reads the field being written* (incremental checksum updates do),
    /// use [`Dataplane::set16_via`] instead, which materializes the value
    /// in a register first.
    pub fn set16(&self, off: usize, v: Expr) -> Vec<Stmt> {
        vec![
            self.set8(off, slice(v.clone(), 15, 8)),
            self.set8(off + 1, slice(v, 7, 0)),
        ]
    }

    /// Writes a big-endian 16-bit field through a scratch register, making
    /// the write safe when `v` depends on the field's current content
    /// (e.g. RFC 1624 checksum updates reading the old checksum).
    pub fn set16_via(&self, tmp: kiwi_ir::VarId, off: usize, v: Expr) -> Vec<Stmt> {
        let mut out = vec![assign(tmp, v)];
        out.extend(self.set16(off, resize(var(tmp), 16)));
        out
    }

    /// Writes a big-endian 32-bit field at a constant offset.
    pub fn set32(&self, off: usize, v: Expr) -> Vec<Stmt> {
        (0..4)
            .map(|i| {
                let hi = 31 - 8 * i as u16;
                self.set8(off + i, slice(v.clone(), hi, hi - 7))
            })
            .collect()
    }

    /// Writes a big-endian 48-bit field at a constant offset.
    pub fn set48(&self, off: usize, v: Expr) -> Vec<Stmt> {
        (0..6)
            .map(|i| {
                let hi = 47 - 8 * i as u16;
                self.set8(off + i, slice(v.clone(), hi, hi - 7))
            })
            .collect()
    }

    /// Writes a big-endian 64-bit field at a constant offset.
    pub fn set64(&self, off: usize, v: Expr) -> Vec<Stmt> {
        (0..8)
            .map(|i| {
                let hi = 63 - 8 * i as u16;
                self.set8(off + i, slice(v.clone(), hi, hi - 7))
            })
            .collect()
    }

    // -- Ethernet header, Figure 2 style -----------------------------

    /// The EtherType field.
    pub fn ethertype(&self) -> Expr {
        self.get16(emu_types::proto::offset::ETH_TYPE)
    }

    /// `dataplane.tdata.EtherType_Is(EtherTypes.IPv4)` (Figure 2, line 2).
    pub fn ethertype_is(&self, et: u16) -> Expr {
        eq(self.ethertype(), lit(u64::from(et), 16))
    }

    /// Destination MAC as a 48-bit expression.
    pub fn dst_mac(&self) -> Expr {
        self.get48(emu_types::proto::offset::ETH_DST)
    }

    /// Source MAC as a 48-bit expression.
    pub fn src_mac(&self) -> Expr {
        self.get48(emu_types::proto::offset::ETH_SRC)
    }

    /// Sets the destination MAC.
    pub fn set_dst_mac(&self, v: Expr) -> Vec<Stmt> {
        self.set48(emu_types::proto::offset::ETH_DST, v)
    }

    /// Sets the source MAC.
    pub fn set_src_mac(&self, v: Expr) -> Vec<Stmt> {
        self.set48(emu_types::proto::offset::ETH_SRC, v)
    }

    /// Swaps source and destination MACs through the given scratch
    /// register (which must be ≥48 bits wide).
    pub fn swap_macs(&self, scratch: kiwi_ir::VarId) -> Vec<Stmt> {
        let mut out = vec![assign(scratch, self.dst_mac())];
        out.extend(self.set_dst_mac(self.src_mac()));
        out.extend(self.set_src_mac(resize(var(scratch), 48)));
        out
    }

    // -- platform interaction (Figure 6) ------------------------------

    /// Blocks until a frame is available (`rx_valid`).
    pub fn rx_wait(&self) -> Stmt {
        wait_until(sig(self.ports.rx_valid))
    }

    /// `Read_Input_Port`: the arrival port index.
    pub fn input_port(&self) -> Expr {
        sig(self.ports.rx_port)
    }

    /// Received frame length.
    pub fn rx_len(&self) -> Expr {
        sig(self.ports.rx_len)
    }

    /// `Set_Output_Port`: unicast to a port index.
    pub fn set_output_port(&self, port: Expr) -> Stmt {
        sig_write(self.ports.tx_ports, shl(lit(1, 8), port))
    }

    /// `Broadcast`: all ports except the arrival port (Figure 2, line 8).
    pub fn broadcast(&self) -> Stmt {
        sig_write(
            self.ports.tx_ports,
            band(lit(0b1111, 8), not(shl(lit(1, 8), sig(self.ports.rx_port)))),
        )
    }

    /// Transmits `len` bytes of the frame buffer to the ports previously
    /// selected: pulses `tx_valid` for one cycle.
    pub fn transmit(&self, len: Expr) -> Vec<Stmt> {
        vec![
            sig_write(self.ports.tx_len, len),
            sig_write(self.ports.tx_valid, tru()),
            pause(),
            sig_write(self.ports.tx_valid, fls()),
        ]
    }

    /// Finishes the current frame: pulses `rx_done` for one cycle.
    pub fn done(&self) -> Vec<Stmt> {
        vec![
            sig_write(self.ports.rx_done, tru()),
            pause(),
            sig_write(self.ports.rx_done, fls()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_rtl::RtlMachine;
    use emu_types::proto::{ether_type, offset};
    use emu_types::{Frame, MacAddr};
    use kiwi_ir::interp::{NullEnv, NullObserver};
    use netfpga_sim::DataplaneDriver;

    /// An echo service built only from the Figure 6-style helpers: swaps
    /// MACs and reflects the frame to its arrival port.
    fn macswap_service() -> kiwi_ir::Program {
        let mut pb = ProgramBuilder::new("macswap");
        let dp = Dataplane::declare(&mut pb, 128);
        let scratch = pb.reg("scratch", 48);
        let mut body = vec![dp.rx_wait()];
        body.extend(dp.swap_macs(scratch));
        body.push(dp.set_output_port(dp.input_port()));
        body.extend(dp.transmit(dp.rx_len()));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        pb.build().unwrap()
    }

    #[test]
    fn macswap_round_trip_on_rtl() {
        let prog = macswap_service();
        let mut drv = DataplaneDriver::new(RtlMachine::new(kiwi::compile(&prog).unwrap())).unwrap();
        let mut f = Frame::ethernet(
            MacAddr::from_u64(0x0a0b0c0d0e0f),
            MacAddr::from_u64(0x010203040506),
            ether_type::IPV4,
            &[0x42; 46],
        );
        f.in_port = 1;
        let out = drv.process(&f, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(out.tx.len(), 1);
        let reply = &out.tx[0].frame;
        assert_eq!(reply.dst_mac(), MacAddr::from_u64(0x010203040506));
        assert_eq!(reply.src_mac(), MacAddr::from_u64(0x0a0b0c0d0e0f));
        assert_eq!(out.tx[0].ports, 1 << 1);
        // Payload untouched.
        assert_eq!(&reply.bytes()[14..60], &[0x42; 46]);
    }

    #[test]
    fn field_accessors_round_trip() {
        // A one-shot program that rewrites fields then transmits.
        let mut pb = ProgramBuilder::new("fields");
        let dp = Dataplane::declare(&mut pb, 64);
        let mut body = vec![dp.rx_wait()];
        body.extend(dp.set16(20, lit(0xbeef, 16)));
        body.extend(dp.set32(24, lit(0xdead_beef, 32)));
        body.extend(dp.set64(32, lit(0x0102_0304_0506_0708, 64)));
        body.push(dp.set8(40, lit(0x7f, 8)));
        body.push(dp.set_output_port(lit(0, 8)));
        body.extend(dp.transmit(dp.rx_len()));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        let prog = pb.build().unwrap();
        let mut drv = DataplaneDriver::new(RtlMachine::new(kiwi::compile(&prog).unwrap())).unwrap();
        let out = drv
            .process(&Frame::new(vec![0; 60]), &mut NullEnv, &mut NullObserver)
            .unwrap();
        let b = out.tx[0].frame.bytes();
        assert_eq!(emu_types::bitutil::get16(b, 20), 0xbeef);
        assert_eq!(emu_types::bitutil::get32(b, 24), 0xdead_beef);
        assert_eq!(emu_types::bitutil::get64(b, 32), 0x0102_0304_0506_0708);
        assert_eq!(b[40], 0x7f);
    }

    #[test]
    fn ethertype_is_discriminates() {
        // Forward IPv4, drop everything else (Figure 2's implicit drop).
        let mut pb = ProgramBuilder::new("ipv4_only");
        let dp = Dataplane::declare(&mut pb, 64);
        let mut fwd = vec![dp.set_output_port(lit(2, 8))];
        fwd.extend(dp.transmit(dp.rx_len()));
        let mut body = vec![dp.rx_wait()];
        body.push(if_then(dp.ethertype_is(ether_type::IPV4), fwd));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        let prog = pb.build().unwrap();
        let mut drv = DataplaneDriver::new(RtlMachine::new(kiwi::compile(&prog).unwrap())).unwrap();

        let ipv4 = Frame::ethernet(MacAddr::ZERO, MacAddr::ZERO, ether_type::IPV4, &[0; 46]);
        let arp = Frame::ethernet(MacAddr::ZERO, MacAddr::ZERO, ether_type::ARP, &[0; 46]);
        let out1 = drv.process(&ipv4, &mut NullEnv, &mut NullObserver).unwrap();
        let out2 = drv.process(&arp, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(out1.tx.len(), 1);
        assert!(out2.tx.is_empty());
    }

    #[test]
    fn broadcast_excludes_input_port() {
        let mut pb = ProgramBuilder::new("bcast");
        let dp = Dataplane::declare(&mut pb, 64);
        let mut body = vec![dp.rx_wait(), dp.broadcast()];
        body.extend(dp.transmit(dp.rx_len()));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        let prog = pb.build().unwrap();
        let mut drv = DataplaneDriver::new(RtlMachine::new(kiwi::compile(&prog).unwrap())).unwrap();
        for port in 0..4u8 {
            let mut f = Frame::new(vec![0; 60]);
            f.in_port = port;
            let out = drv.process(&f, &mut NullEnv, &mut NullObserver).unwrap();
            assert_eq!(out.tx[0].ports, 0b1111 & !(1 << port), "port {port}");
        }
    }

    #[test]
    fn dyn_offset_access() {
        // Copy the byte at offset `frame[14]` (as an index) to offset 15.
        let mut pb = ProgramBuilder::new("dyn");
        let dp = Dataplane::declare(&mut pb, 64);
        let mut body = vec![dp.rx_wait()];
        body.push(dp.set8_dyn(lit(15, 16), dp.byte_dyn(resize(dp.byte(14), 16))));
        body.push(dp.set_output_port(lit(0, 8)));
        body.extend(dp.transmit(dp.rx_len()));
        body.extend(dp.done());
        pb.thread("main", vec![forever(body)]);
        let prog = pb.build().unwrap();
        let mut drv = DataplaneDriver::new(RtlMachine::new(kiwi::compile(&prog).unwrap())).unwrap();
        let mut bytes = vec![0u8; 60];
        bytes[14] = 20; // index
        bytes[20] = 0x99; // value to fetch
        let out = drv
            .process(&Frame::new(bytes), &mut NullEnv, &mut NullObserver)
            .unwrap();
        assert_eq!(out.tx[0].frame.bytes()[15], 0x99);
    }

    #[test]
    fn mac_field_offsets_match_proto_constants() {
        let mut pb = ProgramBuilder::new("t");
        let dp = Dataplane::declare(&mut pb, 64);
        // Structural check: dst_mac reads offsets 0..6, src 6..12.
        let mut offs = Vec::new();
        dp.dst_mac().visit(&mut |e| {
            if let kiwi_ir::Expr::ArrRead(_, idx) = e {
                if let kiwi_ir::Expr::Const(b) = idx.as_ref() {
                    offs.push(b.to_u64());
                }
            }
        });
        assert_eq!(offs, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(offset::ETH_SRC, 6);
    }
}
