//! Program-side IP block wrappers: CAM, streaming hash, and the Figure 9
//! LRU cache.
//!
//! §3.4: "While C# provides an easy development environment, to maximize
//! the performance of a design it is sometimes recommended to use
//! specialized IP blocks... These blocks are accessible through the
//! facilities of Kiwi." Each wrapper declares the block's boundary
//! signals on the program and generates the statement sequences that
//! drive its protocol; the matching behavioural models live in
//! `emu-rtl::ipblocks` and are attached to the environment at run time.

use kiwi_ir::dsl::*;
use kiwi_ir::{Expr, ProgramBuilder, SigId, Stmt, VarId};

/// Program-side interface to a CAM block.
#[derive(Debug, Clone, Copy)]
pub struct CamIf {
    lookup_en: SigId,
    lookup_key: SigId,
    write_en: SigId,
    write_key: SigId,
    write_value: SigId,
    matched: SigId,
    value: SigId,
    key_bits: u16,
    value_bits: u16,
}

impl CamIf {
    /// Declares the CAM ports under `prefix`.
    pub fn declare(pb: &mut ProgramBuilder, prefix: &str, key_bits: u16, value_bits: u16) -> Self {
        CamIf {
            lookup_en: pb.sig_out(&format!("{prefix}_lookup_en"), 1),
            lookup_key: pb.sig_out(&format!("{prefix}_lookup_key"), key_bits),
            write_en: pb.sig_out(&format!("{prefix}_write_en"), 1),
            write_key: pb.sig_out(&format!("{prefix}_write_key"), key_bits),
            write_value: pb.sig_out(&format!("{prefix}_write_value"), value_bits),
            matched: pb.sig_in(&format!("{prefix}_match"), 1),
            value: pb.sig_in(&format!("{prefix}_value"), value_bits),
            key_bits,
            value_bits,
        }
    }

    /// Key width in bits.
    pub fn key_bits(&self) -> u16 {
        self.key_bits
    }

    /// Value width in bits.
    pub fn value_bits(&self) -> u16 {
        self.value_bits
    }

    /// Launches a lookup for `key`; results are valid after the embedded
    /// pause (read them with [`CamIf::matched`] / [`CamIf::value`]).
    pub fn lookup(&self, key: Expr) -> Vec<Stmt> {
        vec![
            sig_write(self.lookup_key, key),
            sig_write(self.lookup_en, tru()),
            pause(),
            sig_write(self.lookup_en, fls()),
        ]
    }

    /// Match flag of the most recent lookup.
    pub fn matched(&self) -> Expr {
        sig(self.matched)
    }

    /// Value of the most recent lookup.
    pub fn value(&self) -> Expr {
        sig(self.value)
    }

    /// Inserts `key → value` (replaces in place on key match, else fills
    /// a free slot, else evicts round-robin; see `emu-rtl`'s model).
    pub fn write(&self, key: Expr, value: Expr) -> Vec<Stmt> {
        vec![
            sig_write(self.write_key, key),
            sig_write(self.write_value, value),
            sig_write(self.write_en, tru()),
            pause(),
            sig_write(self.write_en, fls()),
        ]
    }
}

/// Optional delete extension of the CAM protocol (used by Memcached's
/// DELETE command). Declared separately so CAM users without deletion
/// pay nothing.
#[derive(Debug, Clone, Copy)]
pub struct CamDeleteIf {
    delete_en: SigId,
    delete_key: SigId,
}

impl CamDeleteIf {
    /// Declares the delete strobe/key under the same `prefix` as the CAM.
    pub fn declare(pb: &mut ProgramBuilder, prefix: &str, key_bits: u16) -> Self {
        CamDeleteIf {
            delete_en: pb.sig_out(&format!("{prefix}_delete_en"), 1),
            delete_key: pb.sig_out(&format!("{prefix}_delete_key"), key_bits),
        }
    }

    /// Removes `key` from the CAM (no-op when absent).
    pub fn delete(&self, key: Expr) -> Vec<Stmt> {
        vec![
            sig_write(self.delete_key, key),
            sig_write(self.delete_en, tru()),
            pause(),
            sig_write(self.delete_en, fls()),
        ]
    }
}

/// Program-side interface to the streaming Pearson hash unit.
#[derive(Debug, Clone, Copy)]
pub struct HashIf {
    data_in: SigId,
    init_enable: SigId,
    feed_en: SigId,
    clear: SigId,
    init_ready: SigId,
    digest: SigId,
}

impl HashIf {
    /// Declares the hash unit's ports under `prefix`.
    pub fn declare(pb: &mut ProgramBuilder, prefix: &str) -> Self {
        HashIf {
            data_in: pb.sig_out(&format!("{prefix}_data_in"), 8),
            init_enable: pb.sig_out(&format!("{prefix}_init_enable"), 1),
            feed_en: pb.sig_out(&format!("{prefix}_feed_en"), 1),
            clear: pb.sig_out(&format!("{prefix}_clear"), 1),
            init_ready: pb.sig_in(&format!("{prefix}_init_ready"), 1),
            digest: pb.sig_in(&format!("{prefix}_digest"), 8),
        }
    }

    /// The seed protocol of Figure 5, transliterated:
    ///
    /// ```csharp
    /// while (init_hash_ready) { Kiwi.Pause(); }
    /// PearsonHash.data_in = data_in;
    /// init_hash_enable = true;  Kiwi.Pause();
    /// while (!init_hash_ready) { Kiwi.Pause(); }  Kiwi.Pause();
    /// init_hash_enable = false; Kiwi.Pause();
    /// ```
    pub fn seed(&self, data: Expr) -> Vec<Stmt> {
        vec![
            wait_until(lnot(sig(self.init_ready))),
            sig_write(self.data_in, data),
            sig_write(self.init_enable, tru()),
            pause(),
            wait_until(sig(self.init_ready)),
            pause(),
            sig_write(self.init_enable, fls()),
            pause(),
        ]
    }

    /// Feeds one byte into the digest (one cycle).
    pub fn feed(&self, data: Expr) -> Vec<Stmt> {
        vec![
            sig_write(self.data_in, data),
            sig_write(self.feed_en, tru()),
            pause(),
            sig_write(self.feed_en, fls()),
        ]
    }

    /// Clears the digest (one cycle).
    pub fn clear(&self) -> Vec<Stmt> {
        vec![
            sig_write(self.clear, tru()),
            pause(),
            sig_write(self.clear, fls()),
        ]
    }

    /// The current digest value.
    pub fn digest(&self) -> Expr {
        sig(self.digest)
    }
}

/// Program-side interface to the NaughtyQ slot store (Figure 9).
#[derive(Debug, Clone, Copy)]
pub struct NaughtyQIf {
    op: SigId,
    value_in: SigId,
    idx_in: SigId,
    idx_out: SigId,
    value_out: SigId,
    evicted: SigId,
    evicted_idx: SigId,
}

impl NaughtyQIf {
    /// Declares the block's ports under `prefix`.
    pub fn declare(pb: &mut ProgramBuilder, prefix: &str, width: u16) -> Self {
        NaughtyQIf {
            op: pb.sig_out(&format!("{prefix}_op"), 2),
            value_in: pb.sig_out(&format!("{prefix}_value_in"), width),
            idx_in: pb.sig_out(&format!("{prefix}_idx_in"), 16),
            idx_out: pb.sig_in(&format!("{prefix}_idx_out"), 16),
            value_out: pb.sig_in(&format!("{prefix}_value_out"), width),
            evicted: pb.sig_in(&format!("{prefix}_evicted"), 1),
            evicted_idx: pb.sig_in(&format!("{prefix}_evicted_idx"), 16),
        }
    }

    /// `NaughtyQ.Enlist(value)`: allocates a slot; index readable via
    /// [`NaughtyQIf::idx_out`] after the pause.
    pub fn enlist(&self, value: Expr) -> Vec<Stmt> {
        vec![
            sig_write(self.value_in, value),
            sig_write(self.op, lit(1, 2)),
            pause(),
            sig_write(self.op, lit(0, 2)),
        ]
    }

    /// `NaughtyQ.Read(idx)`: value readable via [`NaughtyQIf::value_out`]
    /// after the pause.
    pub fn read(&self, idx: Expr) -> Vec<Stmt> {
        vec![
            sig_write(self.idx_in, idx),
            sig_write(self.op, lit(2, 2)),
            pause(),
            sig_write(self.op, lit(0, 2)),
        ]
    }

    /// `NaughtyQ.BackOfQ(idx)`: marks the slot most recently used.
    pub fn back_of_q(&self, idx: Expr) -> Vec<Stmt> {
        vec![
            sig_write(self.idx_in, idx),
            sig_write(self.op, lit(3, 2)),
            pause(),
            sig_write(self.op, lit(0, 2)),
        ]
    }

    /// Slot index returned by the last enlist.
    pub fn idx_out(&self) -> Expr {
        sig(self.idx_out)
    }

    /// Value returned by the last read.
    pub fn value_out(&self) -> Expr {
        sig(self.value_out)
    }

    /// Whether the last enlist evicted a slot.
    pub fn evicted(&self) -> Expr {
        sig(self.evicted)
    }

    /// The evicted slot index.
    pub fn evicted_idx(&self) -> Expr {
        sig(self.evicted_idx)
    }
}

/// The look-aside LRU cache of Figure 9, assembled from a HashCAM and a
/// NaughtyQ exactly as the paper's C# does.
#[derive(Debug, Clone, Copy)]
pub struct LruIf {
    /// Key → slot-index CAM ("HashCAM").
    pub cam: CamIf,
    /// Slot store + recency queue.
    pub q: NaughtyQIf,
}

impl LruIf {
    /// Declares both sub-blocks under `prefix`.
    pub fn declare(pb: &mut ProgramBuilder, prefix: &str, key_bits: u16, value_bits: u16) -> Self {
        LruIf {
            cam: CamIf::declare(pb, &format!("{prefix}_cam"), key_bits, 16),
            q: NaughtyQIf::declare(pb, &format!("{prefix}_q"), value_bits),
        }
    }

    /// `LRU.Lookup(key)` (Figure 9): sets `matched` and `result`, touching
    /// the entry on hit:
    ///
    /// ```csharp
    /// ulong idx = HashCAM.Read(key_in);
    /// if (HashCAM.matched) {
    ///     res.result = NaughtyQ.Read(idx);
    ///     NaughtyQ.BackOfQ(idx);
    /// }
    /// ```
    pub fn lookup(
        &self,
        key: Expr,
        matched: VarId,
        result: VarId,
        idx_scratch: VarId,
    ) -> Vec<Stmt> {
        let mut out = self.cam.lookup(key);
        out.push(assign(matched, self.cam.matched()));
        out.push(assign(idx_scratch, self.cam.value()));
        let mut hit = self.q.read(resize(var(idx_scratch), 16));
        hit.push(assign(result, self.q.value_out()));
        hit.extend(self.q.back_of_q(resize(var(idx_scratch), 16)));
        out.push(if_then(var(matched), hit));
        out
    }

    /// `LRU.Cache(key, value)` (Figure 9):
    ///
    /// ```csharp
    /// ulong idx = NaughtyQ.Enlist(value_in);
    /// HashCAM.Write(key_in, idx);
    /// ```
    pub fn cache(&self, key: Expr, value: Expr, idx_scratch: VarId) -> Vec<Stmt> {
        let mut out = self.q.enlist(value);
        out.push(assign(idx_scratch, self.q.idx_out()));
        out.extend(self.cam.write(key, resize(var(idx_scratch), 16)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_rtl::{CamModel, IpEnv, NaughtyQModel, PearsonHashModel, RtlMachine};
    use kiwi_ir::interp::NullObserver;

    #[test]
    fn cam_if_round_trip_on_rtl() {
        let mut pb = ProgramBuilder::new("t");
        let cam = CamIf::declare(&mut pb, "cam", 48, 16);
        let m = pb.reg("m", 1);
        let v = pb.reg("v", 16);
        let mut body = cam.write(lit(0xABCD, 48), lit(321, 16));
        body.extend(cam.lookup(lit(0xABCD, 48)));
        body.push(assign(m, cam.matched()));
        body.push(assign(v, cam.value()));
        body.push(halt());
        pb.thread("main", body);
        let prog = pb.build().unwrap();
        let mut rtl = RtlMachine::new(kiwi::compile(&prog).unwrap());
        let mut env = IpEnv::new();
        env.attach(Box::new(CamModel::new("cam", 8, 48, 16, false)));
        rtl.run_cycles(50, &mut env, &mut NullObserver).unwrap();
        assert!(rtl.halted());
        assert_eq!(rtl.state().vars[0].to_u64(), 1);
        assert_eq!(rtl.state().vars[1].to_u64(), 321);
    }

    #[test]
    fn hash_if_digest_matches_reference() {
        let mut pb = ProgramBuilder::new("t");
        let h = HashIf::declare(&mut pb, "h");
        let d = pb.reg("d", 8);
        let mut body = h.seed(lit(7, 8));
        for byte in b"net" {
            body.extend(h.feed(lit(u64::from(*byte), 8)));
        }
        body.push(assign(d, h.digest()));
        body.push(halt());
        pb.thread("main", body);
        let prog = pb.build().unwrap();
        let mut rtl = RtlMachine::new(kiwi::compile(&prog).unwrap());
        let mut env = IpEnv::new();
        env.attach(Box::new(PearsonHashModel::new("h")));
        rtl.run_cycles(100, &mut env, &mut NullObserver).unwrap();
        assert!(rtl.halted());
        let expect = emu_types::checksum::pearson8_seeded(7, b"net");
        assert_eq!(rtl.state().vars[0].to_u64(), u64::from(expect));
    }

    #[test]
    fn lru_figure9_semantics() {
        // Cache k1→v1, k2→v2 (capacity 2), look up k1 (hit, touches it),
        // cache k3→v3 (evicts k2's slot), then: k1 still readable, k3
        // readable.
        let mut pb = ProgramBuilder::new("lru");
        let lru = LruIf::declare(&mut pb, "lru", 64, 64);
        let m = pb.reg("m", 1);
        let r = pb.reg("r", 64);
        let idx = pb.reg("idx", 16);
        let m2 = pb.reg("m2", 1);
        let r2 = pb.reg("r2", 64);

        let mut body = lru.cache(lit(1, 64), lit(0x11, 64), idx);
        body.extend(lru.cache(lit(2, 64), lit(0x22, 64), idx));
        body.extend(lru.lookup(lit(1, 64), m, r, idx));
        body.extend(lru.cache(lit(3, 64), lit(0x33, 64), idx));
        body.extend(lru.lookup(lit(3, 64), m2, r2, idx));
        body.push(halt());
        pb.thread("main", body);
        let prog = pb.build().unwrap();
        let mut rtl = RtlMachine::new(kiwi::compile(&prog).unwrap());
        let mut env = IpEnv::new();
        env.attach(Box::new(CamModel::new("lru_cam", 4, 64, 16, false)));
        env.attach(Box::new(NaughtyQModel::new("lru_q", 2, 64)));
        rtl.run_cycles(200, &mut env, &mut NullObserver).unwrap();
        assert!(rtl.halted());
        let st = rtl.state();
        assert_eq!(st.vars[0].to_u64(), 1, "k1 lookup must hit");
        assert_eq!(st.vars[1].to_u64(), 0x11);
        assert_eq!(st.vars[3].to_u64(), 1, "k3 lookup must hit");
        assert_eq!(st.vars[4].to_u64(), 0x33);
    }
}
