//! Behavioural models of hardware IP blocks.
//!
//! §3.4 of the paper: "to maximize the performance of a design, it is
//! sometimes recommended to use specialized IP blocks that take advantage
//! of the hardware capabilities, such as content addressable memory". Emu
//! programs talk to IP blocks over explicit signal protocols (Figure 5
//! shows the hash unit's seed handshake); because the protocol lives in
//! ordinary program code, "this enables us to interface with any IP
//! block".
//!
//! Each model here binds to program boundary signals by name, using a
//! `<prefix>_<port>` convention, and advances one cycle per [`Env::tick`].
//! The same models serve every target: the sequential interpreter ticks
//! them at each `pause()`, the RTL executor at each clock edge.
//!
//! All protocols are level-based (request/ready), so they tolerate the
//! extra states inserted by the scheduler's budget cuts.

use emu_types::checksum::PEARSON_TABLE;
use emu_types::Bits;
use kiwi::resources::IpBlock;
use kiwi_ir::interp::{Env, MachineState};
use kiwi_ir::program::Program;
use std::collections::VecDeque;

/// A steppable IP block bound to a signal prefix.
///
/// Models must be [`Send`] so a service instance (and its environment)
/// can move to a worker thread — the engine's parallel execution mode
/// runs each shard's pipeline on its own thread.
pub trait IpBlockModel: Send {
    /// One clock cycle: sample the program's outputs, drive its inputs.
    fn step(&mut self, prog: &Program, st: &mut MachineState);
    /// Resource accounting entry for `kiwi::resources::estimate`.
    fn resources(&self) -> IpBlock;
}

fn out_val(prog: &Program, st: &MachineState, name: &str) -> Bits {
    st.signal(prog, name)
        .cloned()
        .unwrap_or_else(|| Bits::zero(1))
}

/// An environment hosting a set of IP blocks.
#[derive(Default)]
pub struct IpEnv {
    blocks: Vec<Box<dyn IpBlockModel>>,
}

impl IpEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a block.
    pub fn attach(&mut self, b: Box<dyn IpBlockModel>) -> &mut Self {
        self.blocks.push(b);
        self
    }

    /// Resource entries for all attached blocks.
    pub fn resources(&self) -> Vec<IpBlock> {
        self.blocks.iter().map(|b| b.resources()).collect()
    }
}

impl Env for IpEnv {
    fn tick(&mut self, _cycle: u64, prog: &Program, st: &mut MachineState) {
        for b in &mut self.blocks {
            b.step(prog, st);
        }
    }
}

/// Chains two environments: `first` ticks before `second`.
pub struct ChainEnv<'a> {
    /// Ticked first (typically the platform).
    pub first: &'a mut dyn Env,
    /// Ticked second (typically the IP blocks).
    pub second: &'a mut dyn Env,
}

impl Env for ChainEnv<'_> {
    fn tick(&mut self, cycle: u64, prog: &Program, st: &mut MachineState) {
        self.first.tick(cycle, prog, st);
        self.second.tick(cycle, prog, st);
    }
}

// ---------------------------------------------------------------------
// CAM
// ---------------------------------------------------------------------

/// Content-addressable memory with single-cycle lookup.
///
/// Ports (program side): out `{p}_lookup_en`, `{p}_lookup_key`,
/// `{p}_write_en`, `{p}_write_key`, `{p}_write_value`; in `{p}_match`,
/// `{p}_value`.
///
/// A lookup launched in cycle *n* presents `match`/`value` during cycle
/// *n + 1*. Writes replace an existing key in place, otherwise fill a free
/// slot, otherwise overwrite round-robin (how the NetFPGA reference switch
/// handles MAC-table overflow).
pub struct CamModel {
    prefix: String,
    key_bits: u16,
    value_bits: u16,
    entries: Vec<Option<(Bits, Bits)>>,
    rr: usize,
    native: bool,
    /// Lifetime statistics: (lookups, hits, writes, evictions).
    pub stats: CamStats,
}

/// CAM lifetime statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CamStats {
    /// Lookup strobes observed.
    pub lookups: u64,
    /// Lookups that matched.
    pub hits: u64,
    /// Write strobes observed.
    pub writes: u64,
    /// Writes that displaced a live entry.
    pub evictions: u64,
}

impl CamModel {
    /// Creates a CAM bound to `prefix` with the given geometry.
    pub fn new(prefix: &str, entries: usize, key_bits: u16, value_bits: u16, native: bool) -> Self {
        CamModel {
            prefix: prefix.to_string(),
            key_bits,
            value_bits,
            entries: vec![None; entries],
            rr: 0,
            native,
            stats: CamStats::default(),
        }
    }

    /// Declares the CAM's ports on a program builder; returns nothing, the
    /// program looks signals up by name.
    pub fn declare_ports(
        pb: &mut kiwi_ir::ProgramBuilder,
        prefix: &str,
        key_bits: u16,
        value_bits: u16,
    ) {
        pb.sig_out(&format!("{prefix}_lookup_en"), 1);
        pb.sig_out(&format!("{prefix}_lookup_key"), key_bits);
        pb.sig_out(&format!("{prefix}_write_en"), 1);
        pb.sig_out(&format!("{prefix}_write_key"), key_bits);
        pb.sig_out(&format!("{prefix}_write_value"), value_bits);
        pb.sig_in(&format!("{prefix}_match"), 1);
        pb.sig_in(&format!("{prefix}_value"), value_bits);
    }

    /// Number of live entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Preloads an entry (control-plane table population, e.g. a DNS
    /// resolution table or static NAT mappings).
    pub fn insert(&mut self, key: Bits, value: Bits) {
        let key = key.resize(self.key_bits);
        let value = value.resize(self.value_bits);
        if let Some(slot) = self
            .entries
            .iter_mut()
            .find(|e| e.as_ref().is_some_and(|(k, _)| *k == key))
        {
            *slot = Some((key, value));
        } else if let Some(slot) = self.entries.iter_mut().find(|e| e.is_none()) {
            *slot = Some((key, value));
        } else {
            let n = self.entries.len();
            self.entries[self.rr % n] = Some((key, value));
            self.rr = (self.rr + 1) % n;
        }
    }
}

impl IpBlockModel for CamModel {
    fn step(&mut self, prog: &Program, st: &mut MachineState) {
        let p = &self.prefix;
        // Optional delete strobe (programs that never declare the signal
        // read back zero, so legacy CAM users are unaffected).
        if out_val(prog, st, &format!("{p}_delete_en")).to_bool() {
            let key = out_val(prog, st, &format!("{p}_delete_key")).resize(self.key_bits);
            for slot in self.entries.iter_mut() {
                if slot.as_ref().is_some_and(|(k, _)| *k == key) {
                    *slot = None;
                }
            }
        }
        if out_val(prog, st, &format!("{p}_write_en")).to_bool() {
            self.stats.writes += 1;
            let key = out_val(prog, st, &format!("{p}_write_key")).resize(self.key_bits);
            let val = out_val(prog, st, &format!("{p}_write_value")).resize(self.value_bits);
            if let Some(slot) = self
                .entries
                .iter_mut()
                .find(|e| e.as_ref().is_some_and(|(k, _)| *k == key))
            {
                *slot = Some((key, val));
            } else if let Some(slot) = self.entries.iter_mut().find(|e| e.is_none()) {
                *slot = Some((key, val));
            } else {
                self.stats.evictions += 1;
                let n = self.entries.len();
                self.entries[self.rr % n] = Some((key, val));
                self.rr = (self.rr + 1) % n;
            }
        }
        if out_val(prog, st, &format!("{p}_lookup_en")).to_bool() {
            self.stats.lookups += 1;
            let key = out_val(prog, st, &format!("{p}_lookup_key")).resize(self.key_bits);
            let hit = self
                .entries
                .iter()
                .flatten()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone());
            self.stats.hits += u64::from(hit.is_some());
            st.drive(prog, &format!("{p}_match"), Bits::from_bool(hit.is_some()));
            st.drive(
                prog,
                &format!("{p}_value"),
                hit.unwrap_or_else(|| Bits::zero(self.value_bits)),
            );
        }
    }

    fn resources(&self) -> IpBlock {
        IpBlock::Cam {
            entries: self.entries.len(),
            key_bits: self.key_bits,
            value_bits: self.value_bits,
            native: self.native,
        }
    }
}

// ---------------------------------------------------------------------
// Pearson hash (Figure 5)
// ---------------------------------------------------------------------

/// Streaming Pearson hash unit with the Figure 5 seed handshake.
///
/// Ports: out `{p}_data_in` (8), `{p}_init_enable`, `{p}_feed_en`,
/// `{p}_clear`; in `{p}_init_ready`, `{p}_digest` (8).
///
/// Seeding (paper Figure 5): the program waits for `init_ready` low, puts
/// the seed on `data_in`, raises `init_enable`; the unit latches the seed,
/// raises `init_ready`; the program drops `init_enable`; the unit drops
/// `init_ready` and is seeded. Feeding: each cycle with `feed_en` high
/// absorbs one byte from `data_in`. `clear` resets the digest.
pub struct PearsonHashModel {
    prefix: String,
    h: u8,
    init_ready: bool,
    /// Bytes absorbed since the last clear/seed.
    pub fed: u64,
}

impl PearsonHashModel {
    /// Creates a hash unit bound to `prefix`.
    pub fn new(prefix: &str) -> Self {
        PearsonHashModel {
            prefix: prefix.to_string(),
            h: 0,
            init_ready: false,
            fed: 0,
        }
    }

    /// Declares the unit's ports.
    pub fn declare_ports(pb: &mut kiwi_ir::ProgramBuilder, prefix: &str) {
        pb.sig_out(&format!("{prefix}_data_in"), 8);
        pb.sig_out(&format!("{prefix}_init_enable"), 1);
        pb.sig_out(&format!("{prefix}_feed_en"), 1);
        pb.sig_out(&format!("{prefix}_clear"), 1);
        pb.sig_in(&format!("{prefix}_init_ready"), 1);
        pb.sig_in(&format!("{prefix}_digest"), 8);
    }
}

impl IpBlockModel for PearsonHashModel {
    fn step(&mut self, prog: &Program, st: &mut MachineState) {
        let p = &self.prefix;
        let data = out_val(prog, st, &format!("{p}_data_in")).to_u64() as u8;
        let init_en = out_val(prog, st, &format!("{p}_init_enable")).to_bool();
        let feed_en = out_val(prog, st, &format!("{p}_feed_en")).to_bool();
        let clear = out_val(prog, st, &format!("{p}_clear")).to_bool();

        if clear {
            self.h = 0;
            self.fed = 0;
        }
        if init_en && !self.init_ready {
            // Latch seed, acknowledge.
            self.h = PEARSON_TABLE[usize::from(data)];
            self.fed = 0;
            self.init_ready = true;
        } else if !init_en && self.init_ready {
            self.init_ready = false;
        } else if feed_en {
            self.h = PEARSON_TABLE[usize::from(self.h ^ data)];
            self.fed += 1;
        }

        st.drive(
            prog,
            &format!("{p}_init_ready"),
            Bits::from_bool(self.init_ready),
        );
        st.drive(
            prog,
            &format!("{p}_digest"),
            Bits::from_u64(u64::from(self.h), 8),
        );
    }

    fn resources(&self) -> IpBlock {
        IpBlock::Hash
    }
}

// ---------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------

/// A synchronous FIFO.
///
/// Ports: out `{p}_push`, `{p}_push_data`, `{p}_pop`; in `{p}_pop_data`,
/// `{p}_empty`, `{p}_full`. `pop_data` always shows the head; a `pop`
/// strobe consumes it. Pushing into a full FIFO drops the element (as an
/// overflowing output queue drops frames, §5's output-queue model).
pub struct FifoModel {
    prefix: String,
    width: u16,
    depth: usize,
    q: VecDeque<Bits>,
    /// Elements dropped on overflow.
    pub drops: u64,
}

impl FifoModel {
    /// Creates a FIFO bound to `prefix`.
    pub fn new(prefix: &str, depth: usize, width: u16) -> Self {
        FifoModel {
            prefix: prefix.to_string(),
            width,
            depth,
            q: VecDeque::new(),
            drops: 0,
        }
    }

    /// Declares the FIFO's ports.
    pub fn declare_ports(pb: &mut kiwi_ir::ProgramBuilder, prefix: &str, width: u16) {
        pb.sig_out(&format!("{prefix}_push"), 1);
        pb.sig_out(&format!("{prefix}_push_data"), width);
        pb.sig_out(&format!("{prefix}_pop"), 1);
        pb.sig_in(&format!("{prefix}_pop_data"), width);
        pb.sig_in(&format!("{prefix}_empty"), 1);
        pb.sig_in(&format!("{prefix}_full"), 1);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

impl IpBlockModel for FifoModel {
    fn step(&mut self, prog: &Program, st: &mut MachineState) {
        let p = &self.prefix;
        if out_val(prog, st, &format!("{p}_pop")).to_bool() {
            self.q.pop_front();
        }
        if out_val(prog, st, &format!("{p}_push")).to_bool() {
            if self.q.len() >= self.depth {
                self.drops += 1;
            } else {
                self.q
                    .push_back(out_val(prog, st, &format!("{p}_push_data")).resize(self.width));
            }
        }
        let head = self
            .q
            .front()
            .cloned()
            .unwrap_or_else(|| Bits::zero(self.width));
        st.drive(prog, &format!("{p}_pop_data"), head);
        st.drive(
            prog,
            &format!("{p}_empty"),
            Bits::from_bool(self.q.is_empty()),
        );
        st.drive(
            prog,
            &format!("{p}_full"),
            Bits::from_bool(self.q.len() >= self.depth),
        );
    }

    fn resources(&self) -> IpBlock {
        IpBlock::Fifo {
            depth: self.depth,
            width: self.width,
        }
    }
}

// ---------------------------------------------------------------------
// NaughtyQ (the LRU recency queue of Figure 9)
// ---------------------------------------------------------------------

/// The slot-store + recency-queue block behind the paper's LRU cache
/// (Figure 9: `NaughtyQ.Enlist`, `NaughtyQ.Read`, `NaughtyQ.BackOfQ`).
///
/// Ports: out `{p}_op` (2: 0 idle, 1 enlist, 2 read, 3 back-of-q),
/// `{p}_value_in`, `{p}_idx_in`; in `{p}_idx_out`, `{p}_value_out`,
/// `{p}_evicted` (1), `{p}_evicted_idx`.
///
/// `Enlist` allocates a slot for a value (evicting the least-recently-used
/// slot when full — the eviction logic that would have to live in the
/// control plane under P4, §4.4) and reports the slot index. `Read`
/// returns a slot's value. `BackOfQ` marks a slot most-recently-used.
pub struct NaughtyQModel {
    prefix: String,
    width: u16,
    slots: Vec<Option<Bits>>,
    /// Recency order: front = least recently used.
    order: VecDeque<usize>,
}

impl NaughtyQModel {
    /// Creates a queue bound to `prefix` with `cap` slots.
    pub fn new(prefix: &str, cap: usize, width: u16) -> Self {
        NaughtyQModel {
            prefix: prefix.to_string(),
            width,
            slots: vec![None; cap],
            order: VecDeque::new(),
        }
    }

    /// Declares the block's ports.
    pub fn declare_ports(pb: &mut kiwi_ir::ProgramBuilder, prefix: &str, width: u16) {
        pb.sig_out(&format!("{prefix}_op"), 2);
        pb.sig_out(&format!("{prefix}_value_in"), width);
        pb.sig_out(&format!("{prefix}_idx_in"), 16);
        pb.sig_in(&format!("{prefix}_idx_out"), 16);
        pb.sig_in(&format!("{prefix}_value_out"), width);
        pb.sig_in(&format!("{prefix}_evicted"), 1);
        pb.sig_in(&format!("{prefix}_evicted_idx"), 16);
    }

    /// Live slot count.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

impl IpBlockModel for NaughtyQModel {
    fn step(&mut self, prog: &Program, st: &mut MachineState) {
        let p = &self.prefix;
        let op = out_val(prog, st, &format!("{p}_op")).to_u64();
        let mut evicted = false;
        let mut evicted_idx = 0usize;
        match op {
            1 => {
                // Enlist.
                let v = out_val(prog, st, &format!("{p}_value_in")).resize(self.width);
                let idx = if let Some(free) = self.slots.iter().position(|s| s.is_none()) {
                    free
                } else {
                    let lru = self.order.pop_front().unwrap_or(0);
                    evicted = true;
                    evicted_idx = lru;
                    lru
                };
                self.slots[idx] = Some(v);
                self.order.retain(|&i| i != idx);
                self.order.push_back(idx);
                st.drive(
                    prog,
                    &format!("{p}_idx_out"),
                    Bits::from_u64(idx as u64, 16),
                );
            }
            2 => {
                // Read.
                let idx = out_val(prog, st, &format!("{p}_idx_in")).to_u64() as usize;
                let v = self
                    .slots
                    .get(idx)
                    .and_then(|s| s.clone())
                    .unwrap_or_else(|| Bits::zero(self.width));
                st.drive(prog, &format!("{p}_value_out"), v);
            }
            3 => {
                // BackOfQ.
                let idx = out_val(prog, st, &format!("{p}_idx_in")).to_u64() as usize;
                if idx < self.slots.len() {
                    self.order.retain(|&i| i != idx);
                    self.order.push_back(idx);
                }
            }
            _ => {}
        }
        st.drive(prog, &format!("{p}_evicted"), Bits::from_bool(evicted));
        st.drive(
            prog,
            &format!("{p}_evicted_idx"),
            Bits::from_u64(evicted_idx as u64, 16),
        );
    }

    fn resources(&self) -> IpBlock {
        IpBlock::Fifo {
            depth: self.slots.len(),
            width: self.width,
        }
    }
}

// ---------------------------------------------------------------------
// BRAM
// ---------------------------------------------------------------------

/// Single-port block RAM with one-cycle read latency — the "on-chip
/// memory" scaling option of §5.4's optimizations discussion.
///
/// Ports: out `{p}_addr` (32), `{p}_wdata`, `{p}_we`; in `{p}_rdata`.
pub struct BramModel {
    prefix: String,
    width: u16,
    data: Vec<Bits>,
}

impl BramModel {
    /// Creates a RAM bound to `prefix` with `words` entries.
    pub fn new(prefix: &str, words: usize, width: u16) -> Self {
        BramModel {
            prefix: prefix.to_string(),
            width,
            data: vec![Bits::zero(width); words],
        }
    }

    /// Declares the RAM's ports.
    pub fn declare_ports(pb: &mut kiwi_ir::ProgramBuilder, prefix: &str, width: u16) {
        pb.sig_out(&format!("{prefix}_addr"), 32);
        pb.sig_out(&format!("{prefix}_wdata"), width);
        pb.sig_out(&format!("{prefix}_we"), 1);
        pb.sig_in(&format!("{prefix}_rdata"), width);
    }
}

impl IpBlockModel for BramModel {
    fn step(&mut self, prog: &Program, st: &mut MachineState) {
        let p = &self.prefix;
        let addr = out_val(prog, st, &format!("{p}_addr")).to_u64() as usize;
        if out_val(prog, st, &format!("{p}_we")).to_bool() {
            if let Some(slot) = self.data.get_mut(addr) {
                *slot = out_val(prog, st, &format!("{p}_wdata")).resize(self.width);
            }
        }
        let rd = self
            .data
            .get(addr)
            .cloned()
            .unwrap_or_else(|| Bits::zero(self.width));
        st.drive(prog, &format!("{p}_rdata"), rd);
    }

    fn resources(&self) -> IpBlock {
        IpBlock::Bram {
            bits: self.data.len() as u64 * u64::from(self.width),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiwi_ir::dsl::*;
    use kiwi_ir::interp::NullObserver;
    use kiwi_ir::{Machine, ProgramBuilder};

    #[test]
    fn cam_write_then_lookup_hits() {
        let mut pb = ProgramBuilder::new("t");
        let lookup_en = pb.sig_out("cam_lookup_en", 1);
        let lookup_key = pb.sig_out("cam_lookup_key", 48);
        let write_en = pb.sig_out("cam_write_en", 1);
        let write_key = pb.sig_out("cam_write_key", 48);
        let write_value = pb.sig_out("cam_write_value", 16);
        let m_in = pb.sig_in("cam_match", 1);
        let v_in = pb.sig_in("cam_value", 16);
        let matched = pb.reg("matched", 1);
        let value = pb.reg("value", 16);
        pb.thread(
            "main",
            vec![
                // Write 0xAABB -> 7.
                sig_write(write_key, lit(0xAABB, 48)),
                sig_write(write_value, lit(7, 16)),
                sig_write(write_en, lit(1, 1)),
                pause(),
                sig_write(write_en, lit(0, 1)),
                // Look it up.
                sig_write(lookup_key, lit(0xAABB, 48)),
                sig_write(lookup_en, lit(1, 1)),
                pause(),
                sig_write(lookup_en, lit(0, 1)),
                assign(matched, sig(m_in)),
                assign(value, sig(v_in)),
                halt(),
            ],
        );
        let prog = pb.build().unwrap();
        let mut m = Machine::new(kiwi_ir::flatten(&prog).unwrap());
        let mut env = IpEnv::new();
        env.attach(Box::new(CamModel::new("cam", 16, 48, 16, false)));
        m.run_cycles(10, &mut env, &mut NullObserver).unwrap();
        assert!(m.halted());
        assert_eq!(m.state().vars[0].to_u64(), 1, "lookup must match");
        assert_eq!(m.state().vars[1].to_u64(), 7);
    }

    #[test]
    fn cam_miss_reports_no_match() {
        let mut pb = ProgramBuilder::new("t");
        let lookup_en = pb.sig_out("cam_lookup_en", 1);
        let lookup_key = pb.sig_out("cam_lookup_key", 48);
        pb.sig_out("cam_write_en", 1);
        pb.sig_out("cam_write_key", 48);
        pb.sig_out("cam_write_value", 16);
        let m_in = pb.sig_in("cam_match", 1);
        pb.sig_in("cam_value", 16);
        let matched = pb.reg_init("matched", 1, Bits::from_u64(1, 1));
        pb.thread(
            "main",
            vec![
                sig_write(lookup_key, lit(0x1234, 48)),
                sig_write(lookup_en, lit(1, 1)),
                pause(),
                assign(matched, sig(m_in)),
                halt(),
            ],
        );
        let prog = pb.build().unwrap();
        let mut m = Machine::new(kiwi_ir::flatten(&prog).unwrap());
        let mut env = IpEnv::new();
        env.attach(Box::new(CamModel::new("cam", 4, 48, 16, false)));
        m.run_cycles(10, &mut env, &mut NullObserver).unwrap();
        assert_eq!(m.state().vars[0].to_u64(), 0);
    }

    #[test]
    fn cam_model_direct_eviction_round_robin() {
        // Drive the model directly (no program) to test replacement.
        let mut pb = ProgramBuilder::new("t");
        CamModel::declare_ports(&mut pb, "c", 8, 8);
        pb.thread("main", vec![halt()]);
        let prog = pb.build().unwrap();
        let mut st = kiwi_ir::MachineState::init(&prog);
        let mut cam = CamModel::new("c", 2, 8, 8, true);

        let we = prog.signal_by_name("c_write_en").unwrap();
        let wk = prog.signal_by_name("c_write_key").unwrap();
        let wv = prog.signal_by_name("c_write_value").unwrap();
        for i in 0..3u64 {
            st.sigs_out[we.0 as usize] = Bits::from_u64(1, 1);
            st.sigs_out[wk.0 as usize] = Bits::from_u64(i, 8);
            st.sigs_out[wv.0 as usize] = Bits::from_u64(i * 10, 8);
            cam.step(&prog, &mut st);
        }
        assert_eq!(cam.occupancy(), 2);
        assert_eq!(cam.stats.writes, 3);
        assert_eq!(cam.stats.evictions, 1);
    }

    #[test]
    fn hash_handshake_matches_software_pearson() {
        // Program follows Figure 5: seed with 0x5A, then feed "ab".
        let mut pb = ProgramBuilder::new("t");
        let data_in = pb.sig_out("h_data_in", 8);
        let init_en = pb.sig_out("h_init_enable", 1);
        let feed_en = pb.sig_out("h_feed_en", 1);
        pb.sig_out("h_clear", 1);
        let ready = pb.sig_in("h_init_ready", 1);
        let digest = pb.sig_in("h_digest", 8);
        let out = pb.reg("out", 8);
        pb.thread(
            "main",
            vec![
                // Seed(0x5A), transliterating Figure 5.
                wait_until(lnot(sig(ready))),
                sig_write(data_in, lit(0x5A, 8)),
                sig_write(init_en, lit(1, 1)),
                pause(),
                wait_until(sig(ready)),
                pause(),
                sig_write(init_en, lit(0, 1)),
                pause(),
                // Feed 'a' then 'b'.
                sig_write(data_in, lit(b'a' as u64, 8)),
                sig_write(feed_en, lit(1, 1)),
                pause(),
                sig_write(data_in, lit(b'b' as u64, 8)),
                pause(),
                sig_write(feed_en, lit(0, 1)),
                pause(),
                assign(out, sig(digest)),
                halt(),
            ],
        );
        let prog = pb.build().unwrap();
        let mut m = Machine::new(kiwi_ir::flatten(&prog).unwrap());
        let mut env = IpEnv::new();
        env.attach(Box::new(PearsonHashModel::new("h")));
        m.run_cycles(40, &mut env, &mut NullObserver).unwrap();
        assert!(m.halted());
        let expect = emu_types::checksum::pearson8_seeded(0x5A, b"ab");
        assert_eq!(m.state().vars[0].to_u64(), u64::from(expect));
    }

    #[test]
    fn fifo_round_trip_and_overflow() {
        let mut pb = ProgramBuilder::new("t");
        FifoModel::declare_ports(&mut pb, "q", 16);
        pb.thread("main", vec![halt()]);
        let prog = pb.build().unwrap();
        let mut st = kiwi_ir::MachineState::init(&prog);
        let mut q = FifoModel::new("q", 2, 16);

        let push = prog.signal_by_name("q_push").unwrap();
        let pd = prog.signal_by_name("q_push_data").unwrap();
        let pop = prog.signal_by_name("q_pop").unwrap();

        for i in 1..=3u64 {
            st.sigs_out[push.0 as usize] = Bits::from_u64(1, 1);
            st.sigs_out[pd.0 as usize] = Bits::from_u64(i, 16);
            q.step(&prog, &mut st);
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.drops, 1);
        st.sigs_out[push.0 as usize] = Bits::from_u64(0, 1);

        // Head must be 1; pop it; head becomes 2.
        assert_eq!(st.signal(&prog, "q_pop_data").unwrap().to_u64(), 1);
        st.sigs_out[pop.0 as usize] = Bits::from_u64(1, 1);
        q.step(&prog, &mut st);
        assert_eq!(st.signal(&prog, "q_pop_data").unwrap().to_u64(), 2);
    }

    #[test]
    fn naughtyq_lru_eviction_order() {
        let mut pb = ProgramBuilder::new("t");
        NaughtyQModel::declare_ports(&mut pb, "nq", 32);
        pb.thread("main", vec![halt()]);
        let prog = pb.build().unwrap();
        let mut st = kiwi_ir::MachineState::init(&prog);
        let mut nq = NaughtyQModel::new("nq", 2, 32);

        let op = prog.signal_by_name("nq_op").unwrap();
        let vin = prog.signal_by_name("nq_value_in").unwrap();
        let iin = prog.signal_by_name("nq_idx_in").unwrap();

        // Enlist A, B (fills both slots).
        st.sigs_out[op.0 as usize] = Bits::from_u64(1, 2);
        st.sigs_out[vin.0 as usize] = Bits::from_u64(0xA, 32);
        nq.step(&prog, &mut st);
        let idx_a = st.signal(&prog, "nq_idx_out").unwrap().to_u64();
        st.sigs_out[vin.0 as usize] = Bits::from_u64(0xB, 32);
        nq.step(&prog, &mut st);

        // Touch A (BackOfQ) so B becomes LRU.
        st.sigs_out[op.0 as usize] = Bits::from_u64(3, 2);
        st.sigs_out[iin.0 as usize] = Bits::from_u64(idx_a, 16);
        nq.step(&prog, &mut st);

        // Enlist C: must evict B's slot, not A's.
        st.sigs_out[op.0 as usize] = Bits::from_u64(1, 2);
        st.sigs_out[vin.0 as usize] = Bits::from_u64(0xC, 32);
        nq.step(&prog, &mut st);
        assert_eq!(st.signal(&prog, "nq_evicted").unwrap().to_u64(), 1);

        // Read A's slot: still 0xA.
        st.sigs_out[op.0 as usize] = Bits::from_u64(2, 2);
        st.sigs_out[iin.0 as usize] = Bits::from_u64(idx_a, 16);
        nq.step(&prog, &mut st);
        assert_eq!(st.signal(&prog, "nq_value_out").unwrap().to_u64(), 0xA);
    }

    #[test]
    fn bram_read_write() {
        let mut pb = ProgramBuilder::new("t");
        BramModel::declare_ports(&mut pb, "m", 64);
        pb.thread("main", vec![halt()]);
        let prog = pb.build().unwrap();
        let mut st = kiwi_ir::MachineState::init(&prog);
        let mut ram = BramModel::new("m", 16, 64);

        let addr = prog.signal_by_name("m_addr").unwrap();
        let wd = prog.signal_by_name("m_wdata").unwrap();
        let we = prog.signal_by_name("m_we").unwrap();

        st.sigs_out[addr.0 as usize] = Bits::from_u64(5, 32);
        st.sigs_out[wd.0 as usize] = Bits::from_u64(0xFEED, 64);
        st.sigs_out[we.0 as usize] = Bits::from_u64(1, 1);
        ram.step(&prog, &mut st);
        st.sigs_out[we.0 as usize] = Bits::from_u64(0, 1);
        ram.step(&prog, &mut st);
        assert_eq!(st.signal(&prog, "m_rdata").unwrap().to_u64(), 0xFEED);

        // Out-of-range address reads zero and writes are dropped.
        st.sigs_out[addr.0 as usize] = Bits::from_u64(999, 32);
        ram.step(&prog, &mut st);
        assert_eq!(st.signal(&prog, "m_rdata").unwrap().to_u64(), 0);
    }
}
