//! Behavioural models of hardware IP blocks.
//!
//! §3.4 of the paper: "to maximize the performance of a design, it is
//! sometimes recommended to use specialized IP blocks that take advantage
//! of the hardware capabilities, such as content addressable memory". Emu
//! programs talk to IP blocks over explicit signal protocols (Figure 5
//! shows the hash unit's seed handshake); because the protocol lives in
//! ordinary program code, "this enables us to interface with any IP
//! block".
//!
//! Each model here binds to program boundary signals by name, using a
//! `<prefix>_<port>` convention, and advances one cycle per [`Env::tick`].
//! The same models serve every target: the sequential interpreter ticks
//! them at each `pause()`, the RTL executor at each clock edge.
//!
//! All protocols are level-based (request/ready), so they tolerate the
//! extra states inserted by the scheduler's budget cuts.

use crate::cam::{CamPair, CamTable};
pub use crate::cam::{CamSnapshot, CamStats};
use emu_types::checksum::PEARSON_TABLE;
use emu_types::Bits;
use kiwi::resources::IpBlock;
use kiwi_ir::interp::{Env, MachineState};
use kiwi_ir::program::{Program, SigDir};
use std::collections::VecDeque;

/// A steppable IP block bound to a signal prefix.
///
/// Models must be [`Send`] so a service instance (and its environment)
/// can move to a worker thread — the engine's parallel execution mode
/// runs each shard's pipeline on its own thread.
pub trait IpBlockModel: Send {
    /// One clock cycle: sample the program's outputs, drive its inputs.
    fn step(&mut self, prog: &Program, st: &mut MachineState);
    /// Resource accounting entry for `kiwi::resources::estimate`.
    fn resources(&self) -> IpBlock;
    /// All resource entries; blocks that model several hardware tables
    /// (e.g. [`PairedCamModel`]) override this. Defaults to
    /// `vec![self.resources()]`.
    fn resources_all(&self) -> Vec<IpBlock> {
        vec![self.resources()]
    }
    /// One frame epoch: called once per delivered frame, before the
    /// frame enters the pipeline. TTL-expiring tables age here; idle
    /// cycles between frames never age anything.
    fn frame_start(&mut self) {}
    /// Telemetry snapshots of any CAM tables this block hosts.
    fn cam_snapshots(&self) -> Vec<CamSnapshot> {
        Vec::new()
    }
    /// Zeroes any CAM statistics (table contents untouched).
    fn reset_cam_stats(&mut self) {}
}

fn out_val(prog: &Program, st: &MachineState, name: &str) -> Bits {
    st.signal(prog, name)
        .cloned()
        .unwrap_or_else(|| Bits::zero(1))
}

/// An environment hosting a set of IP blocks.
#[derive(Default)]
pub struct IpEnv {
    blocks: Vec<Box<dyn IpBlockModel>>,
}

impl IpEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a block.
    pub fn attach(&mut self, b: Box<dyn IpBlockModel>) -> &mut Self {
        self.blocks.push(b);
        self
    }

    /// Resource entries for all attached blocks.
    pub fn resources(&self) -> Vec<IpBlock> {
        self.blocks.iter().flat_map(|b| b.resources_all()).collect()
    }

    /// Telemetry snapshots of every CAM table hosted by any block.
    pub fn cam_snapshots(&self) -> Vec<CamSnapshot> {
        self.blocks.iter().flat_map(|b| b.cam_snapshots()).collect()
    }

    /// Zeroes every block's CAM statistics (table contents untouched).
    pub fn reset_cam_stats(&mut self) {
        for b in &mut self.blocks {
            b.reset_cam_stats();
        }
    }
}

impl Env for IpEnv {
    fn tick(&mut self, _cycle: u64, prog: &Program, st: &mut MachineState) {
        for b in &mut self.blocks {
            b.step(prog, st);
        }
    }

    fn frame_start(&mut self) {
        for b in &mut self.blocks {
            b.frame_start();
        }
    }
}

/// Chains two environments: `first` ticks before `second`.
pub struct ChainEnv<'a> {
    /// Ticked first (typically the platform).
    pub first: &'a mut dyn Env,
    /// Ticked second (typically the IP blocks).
    pub second: &'a mut dyn Env,
}

impl Env for ChainEnv<'_> {
    fn tick(&mut self, cycle: u64, prog: &Program, st: &mut MachineState) {
        self.first.tick(cycle, prog, st);
        self.second.tick(cycle, prog, st);
    }

    fn frame_start(&mut self) {
        self.first.frame_start();
        self.second.frame_start();
    }
}

// ---------------------------------------------------------------------
// CAM
// ---------------------------------------------------------------------

/// Resolved signal indices for one CAM port set. Signal lookup by name
/// is a linear scan over the program's declarations, so the models
/// resolve each port once on first `step` and index the state arrays
/// directly afterwards — the table operations themselves are O(1), and
/// port binding must not reintroduce a per-cycle scan.
#[derive(Clone, Copy, Default)]
struct CamPorts {
    lookup_en: Option<usize>,
    lookup_key: Option<usize>,
    write_en: Option<usize>,
    write_key: Option<usize>,
    write_value: Option<usize>,
    delete_en: Option<usize>,
    delete_key: Option<usize>,
    matched: Option<(usize, u16)>,
    value: Option<(usize, u16)>,
}

impl CamPorts {
    fn resolve(prog: &Program, prefix: &str) -> Self {
        let out = |suffix: &str| {
            let id = prog.signal_by_name(&format!("{prefix}_{suffix}"))?;
            let d = prog.signal(id)?;
            (d.dir == SigDir::Out).then_some(id.0 as usize)
        };
        let inp = |suffix: &str| {
            let id = prog.signal_by_name(&format!("{prefix}_{suffix}"))?;
            let d = prog.signal(id)?;
            (d.dir == SigDir::In).then_some((id.0 as usize, d.width))
        };
        CamPorts {
            lookup_en: out("lookup_en"),
            lookup_key: out("lookup_key"),
            write_en: out("write_en"),
            write_key: out("write_key"),
            write_value: out("write_value"),
            delete_en: out("delete_en"),
            delete_key: out("delete_key"),
            matched: inp("match"),
            value: inp("value"),
        }
    }

    fn strobe(&self, st: &MachineState, port: Option<usize>) -> bool {
        port.is_some_and(|i| st.sigs_out[i].to_bool())
    }

    fn sample(&self, st: &MachineState, port: Option<usize>, width: u16) -> Bits {
        match port {
            Some(i) => st.sigs_out[i].clone().resize(width),
            None => Bits::zero(width),
        }
    }

    fn drive(&self, st: &mut MachineState, port: Option<(usize, u16)>, v: Bits) {
        if let Some((i, w)) = port {
            st.sigs_in[i] = v.resize(w);
        }
    }
}

/// Content-addressable memory with single-cycle lookup, backed by a
/// hashed [`CamTable`] (see [`crate::cam`] for the
/// capacity/expiry/eviction contract).
///
/// Ports (program side): out `{p}_lookup_en`, `{p}_lookup_key`,
/// `{p}_write_en`, `{p}_write_key`, `{p}_write_value`, optional
/// `{p}_delete_en`/`{p}_delete_key`; in `{p}_match`, `{p}_value`.
///
/// A lookup launched in cycle *n* presents `match`/`value` during cycle
/// *n + 1*. Writes replace an existing key in place, otherwise fill a
/// free slot, otherwise reclaim an expired entry, otherwise overwrite
/// round-robin (how the NetFPGA reference switch handles MAC-table
/// overflow).
pub struct CamModel {
    prefix: String,
    native: bool,
    table: CamTable,
    ports: Option<CamPorts>,
}

impl CamModel {
    /// Creates a CAM bound to `prefix` with the given geometry and no
    /// expiry.
    pub fn new(prefix: &str, entries: usize, key_bits: u16, value_bits: u16, native: bool) -> Self {
        CamModel {
            prefix: prefix.to_string(),
            native,
            table: CamTable::new(entries, key_bits, value_bits),
            ports: None,
        }
    }

    /// Sets the idle timeout in frame epochs (`None` disables expiry).
    pub fn with_ttl(mut self, ttl: Option<u64>) -> Self {
        self.table = self.table.with_ttl(ttl);
        self
    }

    /// Declares the CAM's ports on a program builder; returns nothing, the
    /// program looks signals up by name.
    pub fn declare_ports(
        pb: &mut kiwi_ir::ProgramBuilder,
        prefix: &str,
        key_bits: u16,
        value_bits: u16,
    ) {
        pb.sig_out(&format!("{prefix}_lookup_en"), 1);
        pb.sig_out(&format!("{prefix}_lookup_key"), key_bits);
        pb.sig_out(&format!("{prefix}_write_en"), 1);
        pb.sig_out(&format!("{prefix}_write_key"), key_bits);
        pb.sig_out(&format!("{prefix}_write_value"), value_bits);
        pb.sig_in(&format!("{prefix}_match"), 1);
        pb.sig_in(&format!("{prefix}_value"), value_bits);
    }

    /// Resident entries (live + expired-but-not-yet-reclaimed).
    pub fn occupancy(&self) -> usize {
        self.table.occupancy()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &CamStats {
        &self.table.stats
    }

    /// Preloads an entry (control-plane table population, e.g. a DNS
    /// resolution table or static NAT mappings). Accounts writes and
    /// evictions exactly like the dataplane write strobe.
    pub fn insert(&mut self, key: Bits, value: Bits) {
        self.table.write(key, value);
        self.table.clear_removed();
    }

    /// Telemetry snapshot of the backing table.
    pub fn snapshot(&self) -> CamSnapshot {
        CamSnapshot {
            prefix: self.prefix.clone(),
            capacity: self.table.capacity(),
            occupancy: self.table.occupancy(),
            stats: self.table.stats,
        }
    }
}

impl IpBlockModel for CamModel {
    fn step(&mut self, prog: &Program, st: &mut MachineState) {
        let ports = *self
            .ports
            .get_or_insert_with(|| CamPorts::resolve(prog, &self.prefix));
        // Optional delete strobe (programs that never declare the signal
        // have no port here, so legacy CAM users are unaffected).
        if ports.strobe(st, ports.delete_en) {
            let key = ports.sample(st, ports.delete_key, self.table.key_bits());
            self.table.delete(&key);
        }
        if ports.strobe(st, ports.write_en) {
            let key = ports.sample(st, ports.write_key, self.table.key_bits());
            let val = ports.sample(st, ports.write_value, self.table.value_bits());
            self.table.write(key, val);
        }
        if ports.strobe(st, ports.lookup_en) {
            let key = ports.sample(st, ports.lookup_key, self.table.key_bits());
            let hit = self.table.lookup(&key);
            ports.drive(st, ports.matched, Bits::from_bool(hit.is_some()));
            let vw = self.table.value_bits();
            ports.drive(st, ports.value, hit.unwrap_or_else(|| Bits::zero(vw)));
        }
        // Unpaired CAM: nobody consumes removal reports.
        self.table.clear_removed();
    }

    fn resources(&self) -> IpBlock {
        IpBlock::Cam {
            entries: self.table.capacity(),
            key_bits: self.table.key_bits(),
            value_bits: self.table.value_bits(),
            native: self.native,
        }
    }

    fn frame_start(&mut self) {
        self.table.tick_frame();
        self.table.clear_removed();
    }

    fn cam_snapshots(&self) -> Vec<CamSnapshot> {
        vec![self.snapshot()]
    }

    fn reset_cam_stats(&mut self) {
        self.table.reset_stats();
    }
}

/// Two CAM port sets bound to one [`CamPair`]: entries on the two sides
/// exist in 1:1 correspondence, and any eviction or expiry on one side
/// atomically removes the partner entry from the other — the fix for
/// the paired-table desync where a round-robin overwrite in one table
/// left a half-dead mapping in its twin.
///
/// Each side speaks the same port protocol as [`CamModel`] under its
/// own prefix, so programs are unchanged.
pub struct PairedCamModel {
    prefix_a: String,
    prefix_b: String,
    native: bool,
    pair: CamPair,
    ports: Option<(CamPorts, CamPorts)>,
}

impl PairedCamModel {
    /// Binds `pair` to two port prefixes (side A, side B).
    pub fn new(prefix_a: &str, prefix_b: &str, pair: CamPair, native: bool) -> Self {
        PairedCamModel {
            prefix_a: prefix_a.to_string(),
            prefix_b: prefix_b.to_string(),
            native,
            pair,
            ports: None,
        }
    }

    /// The paired tables.
    pub fn pair(&self) -> &CamPair {
        &self.pair
    }

    /// Mutable access (preloads, tests).
    pub fn pair_mut(&mut self) -> &mut CamPair {
        &mut self.pair
    }

    fn snapshot_of(&self, prefix: &str, t: &CamTable) -> CamSnapshot {
        CamSnapshot {
            prefix: prefix.to_string(),
            capacity: t.capacity(),
            occupancy: t.occupancy(),
            stats: t.stats,
        }
    }
}

impl IpBlockModel for PairedCamModel {
    fn step(&mut self, prog: &Program, st: &mut MachineState) {
        let (pa, pb) = *self.ports.get_or_insert_with(|| {
            (
                CamPorts::resolve(prog, &self.prefix_a),
                CamPorts::resolve(prog, &self.prefix_b),
            )
        });
        if pa.strobe(st, pa.delete_en) {
            let key = pa.sample(st, pa.delete_key, self.pair.a.key_bits());
            self.pair.delete_a(&key);
        }
        if pa.strobe(st, pa.write_en) {
            let key = pa.sample(st, pa.write_key, self.pair.a.key_bits());
            let val = pa.sample(st, pa.write_value, self.pair.a.value_bits());
            self.pair.write_a(key, val);
        }
        if pa.strobe(st, pa.lookup_en) {
            let key = pa.sample(st, pa.lookup_key, self.pair.a.key_bits());
            let hit = self.pair.lookup_a(&key);
            pa.drive(st, pa.matched, Bits::from_bool(hit.is_some()));
            let vw = self.pair.a.value_bits();
            pa.drive(st, pa.value, hit.unwrap_or_else(|| Bits::zero(vw)));
        }
        if pb.strobe(st, pb.delete_en) {
            let key = pb.sample(st, pb.delete_key, self.pair.b.key_bits());
            self.pair.delete_b(&key);
        }
        if pb.strobe(st, pb.write_en) {
            let key = pb.sample(st, pb.write_key, self.pair.b.key_bits());
            let val = pb.sample(st, pb.write_value, self.pair.b.value_bits());
            self.pair.write_b(key, val);
        }
        if pb.strobe(st, pb.lookup_en) {
            let key = pb.sample(st, pb.lookup_key, self.pair.b.key_bits());
            let hit = self.pair.lookup_b(&key);
            pb.drive(st, pb.matched, Bits::from_bool(hit.is_some()));
            let vw = self.pair.b.value_bits();
            pb.drive(st, pb.value, hit.unwrap_or_else(|| Bits::zero(vw)));
        }
    }

    fn resources(&self) -> IpBlock {
        IpBlock::Cam {
            entries: self.pair.a.capacity(),
            key_bits: self.pair.a.key_bits(),
            value_bits: self.pair.a.value_bits(),
            native: self.native,
        }
    }

    fn resources_all(&self) -> Vec<IpBlock> {
        vec![
            IpBlock::Cam {
                entries: self.pair.a.capacity(),
                key_bits: self.pair.a.key_bits(),
                value_bits: self.pair.a.value_bits(),
                native: self.native,
            },
            IpBlock::Cam {
                entries: self.pair.b.capacity(),
                key_bits: self.pair.b.key_bits(),
                value_bits: self.pair.b.value_bits(),
                native: self.native,
            },
        ]
    }

    fn frame_start(&mut self) {
        self.pair.tick_frame();
    }

    fn cam_snapshots(&self) -> Vec<CamSnapshot> {
        vec![
            self.snapshot_of(&self.prefix_a, &self.pair.a),
            self.snapshot_of(&self.prefix_b, &self.pair.b),
        ]
    }

    fn reset_cam_stats(&mut self) {
        self.pair.a.reset_stats();
        self.pair.b.reset_stats();
    }
}

// ---------------------------------------------------------------------
// Pearson hash (Figure 5)
// ---------------------------------------------------------------------

/// Streaming Pearson hash unit with the Figure 5 seed handshake.
///
/// Ports: out `{p}_data_in` (8), `{p}_init_enable`, `{p}_feed_en`,
/// `{p}_clear`; in `{p}_init_ready`, `{p}_digest` (8).
///
/// Seeding (paper Figure 5): the program waits for `init_ready` low, puts
/// the seed on `data_in`, raises `init_enable`; the unit latches the seed,
/// raises `init_ready`; the program drops `init_enable`; the unit drops
/// `init_ready` and is seeded. Feeding: each cycle with `feed_en` high
/// absorbs one byte from `data_in`. `clear` resets the digest.
pub struct PearsonHashModel {
    prefix: String,
    h: u8,
    init_ready: bool,
    /// Bytes absorbed since the last clear/seed.
    pub fed: u64,
}

impl PearsonHashModel {
    /// Creates a hash unit bound to `prefix`.
    pub fn new(prefix: &str) -> Self {
        PearsonHashModel {
            prefix: prefix.to_string(),
            h: 0,
            init_ready: false,
            fed: 0,
        }
    }

    /// Declares the unit's ports.
    pub fn declare_ports(pb: &mut kiwi_ir::ProgramBuilder, prefix: &str) {
        pb.sig_out(&format!("{prefix}_data_in"), 8);
        pb.sig_out(&format!("{prefix}_init_enable"), 1);
        pb.sig_out(&format!("{prefix}_feed_en"), 1);
        pb.sig_out(&format!("{prefix}_clear"), 1);
        pb.sig_in(&format!("{prefix}_init_ready"), 1);
        pb.sig_in(&format!("{prefix}_digest"), 8);
    }
}

impl IpBlockModel for PearsonHashModel {
    fn step(&mut self, prog: &Program, st: &mut MachineState) {
        let p = &self.prefix;
        let data = out_val(prog, st, &format!("{p}_data_in")).to_u64() as u8;
        let init_en = out_val(prog, st, &format!("{p}_init_enable")).to_bool();
        let feed_en = out_val(prog, st, &format!("{p}_feed_en")).to_bool();
        let clear = out_val(prog, st, &format!("{p}_clear")).to_bool();

        if clear {
            self.h = 0;
            self.fed = 0;
        }
        if init_en && !self.init_ready {
            // Latch seed, acknowledge.
            self.h = PEARSON_TABLE[usize::from(data)];
            self.fed = 0;
            self.init_ready = true;
        } else if !init_en && self.init_ready {
            self.init_ready = false;
        } else if feed_en {
            self.h = PEARSON_TABLE[usize::from(self.h ^ data)];
            self.fed += 1;
        }

        st.drive(
            prog,
            &format!("{p}_init_ready"),
            Bits::from_bool(self.init_ready),
        );
        st.drive(
            prog,
            &format!("{p}_digest"),
            Bits::from_u64(u64::from(self.h), 8),
        );
    }

    fn resources(&self) -> IpBlock {
        IpBlock::Hash
    }
}

// ---------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------

/// A synchronous FIFO.
///
/// Ports: out `{p}_push`, `{p}_push_data`, `{p}_pop`; in `{p}_pop_data`,
/// `{p}_empty`, `{p}_full`. `pop_data` always shows the head; a `pop`
/// strobe consumes it. Pushing into a full FIFO drops the element (as an
/// overflowing output queue drops frames, §5's output-queue model).
pub struct FifoModel {
    prefix: String,
    width: u16,
    depth: usize,
    q: VecDeque<Bits>,
    /// Elements dropped on overflow.
    pub drops: u64,
}

impl FifoModel {
    /// Creates a FIFO bound to `prefix`.
    pub fn new(prefix: &str, depth: usize, width: u16) -> Self {
        FifoModel {
            prefix: prefix.to_string(),
            width,
            depth,
            q: VecDeque::new(),
            drops: 0,
        }
    }

    /// Declares the FIFO's ports.
    pub fn declare_ports(pb: &mut kiwi_ir::ProgramBuilder, prefix: &str, width: u16) {
        pb.sig_out(&format!("{prefix}_push"), 1);
        pb.sig_out(&format!("{prefix}_push_data"), width);
        pb.sig_out(&format!("{prefix}_pop"), 1);
        pb.sig_in(&format!("{prefix}_pop_data"), width);
        pb.sig_in(&format!("{prefix}_empty"), 1);
        pb.sig_in(&format!("{prefix}_full"), 1);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

impl IpBlockModel for FifoModel {
    fn step(&mut self, prog: &Program, st: &mut MachineState) {
        let p = &self.prefix;
        if out_val(prog, st, &format!("{p}_pop")).to_bool() {
            self.q.pop_front();
        }
        if out_val(prog, st, &format!("{p}_push")).to_bool() {
            if self.q.len() >= self.depth {
                self.drops += 1;
            } else {
                self.q
                    .push_back(out_val(prog, st, &format!("{p}_push_data")).resize(self.width));
            }
        }
        let head = self
            .q
            .front()
            .cloned()
            .unwrap_or_else(|| Bits::zero(self.width));
        st.drive(prog, &format!("{p}_pop_data"), head);
        st.drive(
            prog,
            &format!("{p}_empty"),
            Bits::from_bool(self.q.is_empty()),
        );
        st.drive(
            prog,
            &format!("{p}_full"),
            Bits::from_bool(self.q.len() >= self.depth),
        );
    }

    fn resources(&self) -> IpBlock {
        IpBlock::Fifo {
            depth: self.depth,
            width: self.width,
        }
    }
}

// ---------------------------------------------------------------------
// NaughtyQ (the LRU recency queue of Figure 9)
// ---------------------------------------------------------------------

/// The slot-store + recency-queue block behind the paper's LRU cache
/// (Figure 9: `NaughtyQ.Enlist`, `NaughtyQ.Read`, `NaughtyQ.BackOfQ`).
///
/// Ports: out `{p}_op` (2: 0 idle, 1 enlist, 2 read, 3 back-of-q),
/// `{p}_value_in`, `{p}_idx_in`; in `{p}_idx_out`, `{p}_value_out`,
/// `{p}_evicted` (1), `{p}_evicted_idx`.
///
/// `Enlist` allocates a slot for a value (evicting the least-recently-used
/// slot when full — the eviction logic that would have to live in the
/// control plane under P4, §4.4) and reports the slot index. `Read`
/// returns a slot's value. `BackOfQ` marks a slot most-recently-used.
pub struct NaughtyQModel {
    prefix: String,
    width: u16,
    slots: Vec<Option<Bits>>,
    /// Recency order: front = least recently used.
    order: VecDeque<usize>,
}

impl NaughtyQModel {
    /// Creates a queue bound to `prefix` with `cap` slots.
    pub fn new(prefix: &str, cap: usize, width: u16) -> Self {
        NaughtyQModel {
            prefix: prefix.to_string(),
            width,
            slots: vec![None; cap],
            order: VecDeque::new(),
        }
    }

    /// Declares the block's ports.
    pub fn declare_ports(pb: &mut kiwi_ir::ProgramBuilder, prefix: &str, width: u16) {
        pb.sig_out(&format!("{prefix}_op"), 2);
        pb.sig_out(&format!("{prefix}_value_in"), width);
        pb.sig_out(&format!("{prefix}_idx_in"), 16);
        pb.sig_in(&format!("{prefix}_idx_out"), 16);
        pb.sig_in(&format!("{prefix}_value_out"), width);
        pb.sig_in(&format!("{prefix}_evicted"), 1);
        pb.sig_in(&format!("{prefix}_evicted_idx"), 16);
    }

    /// Live slot count.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

impl IpBlockModel for NaughtyQModel {
    fn step(&mut self, prog: &Program, st: &mut MachineState) {
        let p = &self.prefix;
        let op = out_val(prog, st, &format!("{p}_op")).to_u64();
        let mut evicted = false;
        let mut evicted_idx = 0usize;
        match op {
            1 => {
                // Enlist.
                let v = out_val(prog, st, &format!("{p}_value_in")).resize(self.width);
                let idx = if let Some(free) = self.slots.iter().position(|s| s.is_none()) {
                    free
                } else {
                    let lru = self.order.pop_front().unwrap_or(0);
                    evicted = true;
                    evicted_idx = lru;
                    lru
                };
                self.slots[idx] = Some(v);
                self.order.retain(|&i| i != idx);
                self.order.push_back(idx);
                st.drive(
                    prog,
                    &format!("{p}_idx_out"),
                    Bits::from_u64(idx as u64, 16),
                );
            }
            2 => {
                // Read.
                let idx = out_val(prog, st, &format!("{p}_idx_in")).to_u64() as usize;
                let v = self
                    .slots
                    .get(idx)
                    .and_then(|s| s.clone())
                    .unwrap_or_else(|| Bits::zero(self.width));
                st.drive(prog, &format!("{p}_value_out"), v);
            }
            3 => {
                // BackOfQ.
                let idx = out_val(prog, st, &format!("{p}_idx_in")).to_u64() as usize;
                if idx < self.slots.len() {
                    self.order.retain(|&i| i != idx);
                    self.order.push_back(idx);
                }
            }
            _ => {}
        }
        st.drive(prog, &format!("{p}_evicted"), Bits::from_bool(evicted));
        st.drive(
            prog,
            &format!("{p}_evicted_idx"),
            Bits::from_u64(evicted_idx as u64, 16),
        );
    }

    fn resources(&self) -> IpBlock {
        IpBlock::Fifo {
            depth: self.slots.len(),
            width: self.width,
        }
    }
}

// ---------------------------------------------------------------------
// BRAM
// ---------------------------------------------------------------------

/// Single-port block RAM with one-cycle read latency — the "on-chip
/// memory" scaling option of §5.4's optimizations discussion.
///
/// Ports: out `{p}_addr` (32), `{p}_wdata`, `{p}_we`; in `{p}_rdata`.
pub struct BramModel {
    prefix: String,
    width: u16,
    data: Vec<Bits>,
}

impl BramModel {
    /// Creates a RAM bound to `prefix` with `words` entries.
    pub fn new(prefix: &str, words: usize, width: u16) -> Self {
        BramModel {
            prefix: prefix.to_string(),
            width,
            data: vec![Bits::zero(width); words],
        }
    }

    /// Declares the RAM's ports.
    pub fn declare_ports(pb: &mut kiwi_ir::ProgramBuilder, prefix: &str, width: u16) {
        pb.sig_out(&format!("{prefix}_addr"), 32);
        pb.sig_out(&format!("{prefix}_wdata"), width);
        pb.sig_out(&format!("{prefix}_we"), 1);
        pb.sig_in(&format!("{prefix}_rdata"), width);
    }
}

impl IpBlockModel for BramModel {
    fn step(&mut self, prog: &Program, st: &mut MachineState) {
        let p = &self.prefix;
        let addr = out_val(prog, st, &format!("{p}_addr")).to_u64() as usize;
        if out_val(prog, st, &format!("{p}_we")).to_bool() {
            if let Some(slot) = self.data.get_mut(addr) {
                *slot = out_val(prog, st, &format!("{p}_wdata")).resize(self.width);
            }
        }
        let rd = self
            .data
            .get(addr)
            .cloned()
            .unwrap_or_else(|| Bits::zero(self.width));
        st.drive(prog, &format!("{p}_rdata"), rd);
    }

    fn resources(&self) -> IpBlock {
        IpBlock::Bram {
            bits: self.data.len() as u64 * u64::from(self.width),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiwi_ir::dsl::*;
    use kiwi_ir::interp::NullObserver;
    use kiwi_ir::{Machine, ProgramBuilder};

    #[test]
    fn cam_write_then_lookup_hits() {
        let mut pb = ProgramBuilder::new("t");
        let lookup_en = pb.sig_out("cam_lookup_en", 1);
        let lookup_key = pb.sig_out("cam_lookup_key", 48);
        let write_en = pb.sig_out("cam_write_en", 1);
        let write_key = pb.sig_out("cam_write_key", 48);
        let write_value = pb.sig_out("cam_write_value", 16);
        let m_in = pb.sig_in("cam_match", 1);
        let v_in = pb.sig_in("cam_value", 16);
        let matched = pb.reg("matched", 1);
        let value = pb.reg("value", 16);
        pb.thread(
            "main",
            vec![
                // Write 0xAABB -> 7.
                sig_write(write_key, lit(0xAABB, 48)),
                sig_write(write_value, lit(7, 16)),
                sig_write(write_en, lit(1, 1)),
                pause(),
                sig_write(write_en, lit(0, 1)),
                // Look it up.
                sig_write(lookup_key, lit(0xAABB, 48)),
                sig_write(lookup_en, lit(1, 1)),
                pause(),
                sig_write(lookup_en, lit(0, 1)),
                assign(matched, sig(m_in)),
                assign(value, sig(v_in)),
                halt(),
            ],
        );
        let prog = pb.build().unwrap();
        let mut m = Machine::new(kiwi_ir::flatten(&prog).unwrap());
        let mut env = IpEnv::new();
        env.attach(Box::new(CamModel::new("cam", 16, 48, 16, false)));
        m.run_cycles(10, &mut env, &mut NullObserver).unwrap();
        assert!(m.halted());
        assert_eq!(m.state().vars[0].to_u64(), 1, "lookup must match");
        assert_eq!(m.state().vars[1].to_u64(), 7);
    }

    #[test]
    fn cam_miss_reports_no_match() {
        let mut pb = ProgramBuilder::new("t");
        let lookup_en = pb.sig_out("cam_lookup_en", 1);
        let lookup_key = pb.sig_out("cam_lookup_key", 48);
        pb.sig_out("cam_write_en", 1);
        pb.sig_out("cam_write_key", 48);
        pb.sig_out("cam_write_value", 16);
        let m_in = pb.sig_in("cam_match", 1);
        pb.sig_in("cam_value", 16);
        let matched = pb.reg_init("matched", 1, Bits::from_u64(1, 1));
        pb.thread(
            "main",
            vec![
                sig_write(lookup_key, lit(0x1234, 48)),
                sig_write(lookup_en, lit(1, 1)),
                pause(),
                assign(matched, sig(m_in)),
                halt(),
            ],
        );
        let prog = pb.build().unwrap();
        let mut m = Machine::new(kiwi_ir::flatten(&prog).unwrap());
        let mut env = IpEnv::new();
        env.attach(Box::new(CamModel::new("cam", 4, 48, 16, false)));
        m.run_cycles(10, &mut env, &mut NullObserver).unwrap();
        assert_eq!(m.state().vars[0].to_u64(), 0);
    }

    #[test]
    fn cam_model_direct_eviction_round_robin() {
        // Drive the model directly (no program) to test replacement.
        let mut pb = ProgramBuilder::new("t");
        CamModel::declare_ports(&mut pb, "c", 8, 8);
        pb.thread("main", vec![halt()]);
        let prog = pb.build().unwrap();
        let mut st = kiwi_ir::MachineState::init(&prog);
        let mut cam = CamModel::new("c", 2, 8, 8, true);

        let we = prog.signal_by_name("c_write_en").unwrap();
        let wk = prog.signal_by_name("c_write_key").unwrap();
        let wv = prog.signal_by_name("c_write_value").unwrap();
        for i in 0..3u64 {
            st.sigs_out[we.0 as usize] = Bits::from_u64(1, 1);
            st.sigs_out[wk.0 as usize] = Bits::from_u64(i, 8);
            st.sigs_out[wv.0 as usize] = Bits::from_u64(i * 10, 8);
            cam.step(&prog, &mut st);
        }
        assert_eq!(cam.occupancy(), 2);
        assert_eq!(cam.stats().writes, 3);
        assert_eq!(cam.stats().evictions, 1);
    }

    #[test]
    fn cam_insert_accounts_stats_like_the_dataplane_path() {
        // The control-plane preload path must not be invisible to the
        // write/eviction counters.
        let mut cam = CamModel::new("c", 2, 8, 8, true);
        for i in 0..3u64 {
            cam.insert(Bits::from_u64(i, 8), Bits::from_u64(i * 10, 8));
        }
        assert_eq!(cam.occupancy(), 2);
        assert_eq!(cam.stats().writes, 3);
        assert_eq!(cam.stats().evictions, 1, "rr overwrite must count");
        // Replacing in place is a write, not an eviction.
        cam.insert(Bits::from_u64(2, 8), Bits::from_u64(99, 8));
        assert_eq!(cam.stats().writes, 4);
        assert_eq!(cam.stats().evictions, 1);
    }

    #[test]
    fn hash_handshake_matches_software_pearson() {
        // Program follows Figure 5: seed with 0x5A, then feed "ab".
        let mut pb = ProgramBuilder::new("t");
        let data_in = pb.sig_out("h_data_in", 8);
        let init_en = pb.sig_out("h_init_enable", 1);
        let feed_en = pb.sig_out("h_feed_en", 1);
        pb.sig_out("h_clear", 1);
        let ready = pb.sig_in("h_init_ready", 1);
        let digest = pb.sig_in("h_digest", 8);
        let out = pb.reg("out", 8);
        pb.thread(
            "main",
            vec![
                // Seed(0x5A), transliterating Figure 5.
                wait_until(lnot(sig(ready))),
                sig_write(data_in, lit(0x5A, 8)),
                sig_write(init_en, lit(1, 1)),
                pause(),
                wait_until(sig(ready)),
                pause(),
                sig_write(init_en, lit(0, 1)),
                pause(),
                // Feed 'a' then 'b'.
                sig_write(data_in, lit(b'a' as u64, 8)),
                sig_write(feed_en, lit(1, 1)),
                pause(),
                sig_write(data_in, lit(b'b' as u64, 8)),
                pause(),
                sig_write(feed_en, lit(0, 1)),
                pause(),
                assign(out, sig(digest)),
                halt(),
            ],
        );
        let prog = pb.build().unwrap();
        let mut m = Machine::new(kiwi_ir::flatten(&prog).unwrap());
        let mut env = IpEnv::new();
        env.attach(Box::new(PearsonHashModel::new("h")));
        m.run_cycles(40, &mut env, &mut NullObserver).unwrap();
        assert!(m.halted());
        let expect = emu_types::checksum::pearson8_seeded(0x5A, b"ab");
        assert_eq!(m.state().vars[0].to_u64(), u64::from(expect));
    }

    #[test]
    fn fifo_round_trip_and_overflow() {
        let mut pb = ProgramBuilder::new("t");
        FifoModel::declare_ports(&mut pb, "q", 16);
        pb.thread("main", vec![halt()]);
        let prog = pb.build().unwrap();
        let mut st = kiwi_ir::MachineState::init(&prog);
        let mut q = FifoModel::new("q", 2, 16);

        let push = prog.signal_by_name("q_push").unwrap();
        let pd = prog.signal_by_name("q_push_data").unwrap();
        let pop = prog.signal_by_name("q_pop").unwrap();

        for i in 1..=3u64 {
            st.sigs_out[push.0 as usize] = Bits::from_u64(1, 1);
            st.sigs_out[pd.0 as usize] = Bits::from_u64(i, 16);
            q.step(&prog, &mut st);
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.drops, 1);
        st.sigs_out[push.0 as usize] = Bits::from_u64(0, 1);

        // Head must be 1; pop it; head becomes 2.
        assert_eq!(st.signal(&prog, "q_pop_data").unwrap().to_u64(), 1);
        st.sigs_out[pop.0 as usize] = Bits::from_u64(1, 1);
        q.step(&prog, &mut st);
        assert_eq!(st.signal(&prog, "q_pop_data").unwrap().to_u64(), 2);
    }

    #[test]
    fn naughtyq_lru_eviction_order() {
        let mut pb = ProgramBuilder::new("t");
        NaughtyQModel::declare_ports(&mut pb, "nq", 32);
        pb.thread("main", vec![halt()]);
        let prog = pb.build().unwrap();
        let mut st = kiwi_ir::MachineState::init(&prog);
        let mut nq = NaughtyQModel::new("nq", 2, 32);

        let op = prog.signal_by_name("nq_op").unwrap();
        let vin = prog.signal_by_name("nq_value_in").unwrap();
        let iin = prog.signal_by_name("nq_idx_in").unwrap();

        // Enlist A, B (fills both slots).
        st.sigs_out[op.0 as usize] = Bits::from_u64(1, 2);
        st.sigs_out[vin.0 as usize] = Bits::from_u64(0xA, 32);
        nq.step(&prog, &mut st);
        let idx_a = st.signal(&prog, "nq_idx_out").unwrap().to_u64();
        st.sigs_out[vin.0 as usize] = Bits::from_u64(0xB, 32);
        nq.step(&prog, &mut st);

        // Touch A (BackOfQ) so B becomes LRU.
        st.sigs_out[op.0 as usize] = Bits::from_u64(3, 2);
        st.sigs_out[iin.0 as usize] = Bits::from_u64(idx_a, 16);
        nq.step(&prog, &mut st);

        // Enlist C: must evict B's slot, not A's.
        st.sigs_out[op.0 as usize] = Bits::from_u64(1, 2);
        st.sigs_out[vin.0 as usize] = Bits::from_u64(0xC, 32);
        nq.step(&prog, &mut st);
        assert_eq!(st.signal(&prog, "nq_evicted").unwrap().to_u64(), 1);

        // Read A's slot: still 0xA.
        st.sigs_out[op.0 as usize] = Bits::from_u64(2, 2);
        st.sigs_out[iin.0 as usize] = Bits::from_u64(idx_a, 16);
        nq.step(&prog, &mut st);
        assert_eq!(st.signal(&prog, "nq_value_out").unwrap().to_u64(), 0xA);
    }

    #[test]
    fn bram_read_write() {
        let mut pb = ProgramBuilder::new("t");
        BramModel::declare_ports(&mut pb, "m", 64);
        pb.thread("main", vec![halt()]);
        let prog = pb.build().unwrap();
        let mut st = kiwi_ir::MachineState::init(&prog);
        let mut ram = BramModel::new("m", 16, 64);

        let addr = prog.signal_by_name("m_addr").unwrap();
        let wd = prog.signal_by_name("m_wdata").unwrap();
        let we = prog.signal_by_name("m_we").unwrap();

        st.sigs_out[addr.0 as usize] = Bits::from_u64(5, 32);
        st.sigs_out[wd.0 as usize] = Bits::from_u64(0xFEED, 64);
        st.sigs_out[we.0 as usize] = Bits::from_u64(1, 1);
        ram.step(&prog, &mut st);
        st.sigs_out[we.0 as usize] = Bits::from_u64(0, 1);
        ram.step(&prog, &mut st);
        assert_eq!(st.signal(&prog, "m_rdata").unwrap().to_u64(), 0xFEED);

        // Out-of-range address reads zero and writes are dropped.
        st.sigs_out[addr.0 as usize] = Bits::from_u64(999, 32);
        ram.step(&prog, &mut st);
        assert_eq!(st.signal(&prog, "m_rdata").unwrap().to_u64(), 0);
    }
}
