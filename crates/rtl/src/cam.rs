//! Hashed CAM state with TTL expiry and atomic pairing.
//!
//! [`CamTable`] is the storage engine behind the behavioural CAM models
//! in [`crate::ipblocks`]: a slot store plus a hashed key index, so
//! lookup/write/delete are O(1) regardless of capacity — the paper's
//! Table-3 BRAM geometries and a million-entry software deployment run
//! the same code. The port protocol the programs speak is unchanged;
//! only the model behind it scales.
//!
//! # Capacity / expiry / eviction contract
//!
//! * Slots grow on demand up to `capacity`; memory tracks resident
//!   entries, not the configured ceiling.
//! * With a TTL (in *frame epochs* — see [`CamTable::tick_frame`]), an
//!   entry whose last touch is more than `ttl` frames old is dead: a
//!   lookup of it misses (and reclaims it, counted in
//!   [`CamStats::expiries`]); a bounded sweep also reclaims a few
//!   oldest expired entries per frame.
//! * A write into a full table reclaims an expired entry first and only
//!   round-robin-evicts live entries ([`CamStats::evictions`]) when
//!   none has expired.
//! * Lookups and writes *touch* (re-stamp) their entry; expiry is
//!   therefore an idle timeout, like a NAT mapping timeout or MAC
//!   aging.
//!
//! [`CamPair`] binds two tables whose entries exist in 1:1
//! correspondence (NAT's `fwd`/`rev`): any eviction or expiry on one
//! side atomically removes the partner entry from the other (counted
//! under the same cause in the sibling's stats), and touches propagate,
//! so the pair ages in lockstep and half-dead mappings cannot exist.

use emu_types::Bits;
use std::collections::{HashMap, VecDeque};

/// Expired entries reclaimed per frame by the background sweep.
const TICK_RECLAIM: usize = 4;

/// CAM lifetime statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CamStats {
    /// Lookup strobes observed.
    pub lookups: u64,
    /// Lookups that matched a live entry.
    pub hits: u64,
    /// Write strobes observed.
    pub writes: u64,
    /// Entries displaced live (round-robin overwrite at capacity, or a
    /// partner removed because its pair twin was evicted).
    pub evictions: u64,
    /// Entries reclaimed after their TTL lapsed (on lookup, on the
    /// per-frame sweep, on a write into a full table, or as a pair
    /// twin).
    pub expiries: u64,
}

/// Why an entry left a [`CamTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoveCause {
    /// TTL lapsed.
    Expired,
    /// Displaced live to make room.
    Evicted,
}

/// An involuntarily removed entry, reported so callers (pair twins,
/// checker shadows) can react.
#[derive(Debug, Clone)]
pub struct Removed {
    /// The removed entry's key.
    pub key: Bits,
    /// The removed entry's value.
    pub value: Bits,
    /// Why it was removed.
    pub cause: RemoveCause,
}

/// Effect of a [`CamTable::write`] on the written key itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteEffect {
    /// The key was not resident; a new entry was created.
    Fresh,
    /// The key was resident; its value was replaced (old value inside).
    Replaced(Bits),
}

/// One point-in-time view of a CAM model's table, exported through
/// engine telemetry snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CamSnapshot {
    /// The model's signal prefix (`"fwd"`, `"cam"`, ...).
    pub prefix: String,
    /// Configured capacity in entries.
    pub capacity: usize,
    /// Resident entries (live + expired-but-not-yet-reclaimed).
    pub occupancy: usize,
    /// Lifetime counters.
    pub stats: CamStats,
}

#[derive(Debug)]
struct Entry {
    key: Bits,
    value: Bits,
    /// Frame epoch of the last touch.
    stamp: u64,
}

/// Hashed, TTL-aware CAM storage (see the module docs for the
/// capacity/expiry/eviction contract).
#[derive(Debug)]
pub struct CamTable {
    capacity: usize,
    key_bits: u16,
    value_bits: u16,
    ttl: Option<u64>,
    now: u64,
    slots: Vec<Option<Entry>>,
    index: HashMap<Bits, u32>,
    free: Vec<u32>,
    rr: usize,
    /// (slot, stamp) records in stamp order; a record is valid iff the
    /// slot still holds an entry with that exact stamp, so the
    /// front-most valid record always names the oldest-stamped resident
    /// entry — amortized-O(1) oldest-first reclaim.
    exp_q: VecDeque<(u32, u64)>,
    removed: Vec<Removed>,
    /// Lifetime statistics.
    pub stats: CamStats,
}

impl CamTable {
    /// Creates an empty table with the given geometry and no TTL.
    pub fn new(capacity: usize, key_bits: u16, value_bits: u16) -> Self {
        assert!(capacity > 0, "a CAM needs at least one entry");
        CamTable {
            capacity,
            key_bits,
            value_bits,
            ttl: None,
            now: 0,
            slots: Vec::new(),
            index: HashMap::new(),
            free: Vec::new(),
            rr: 0,
            exp_q: VecDeque::new(),
            removed: Vec::new(),
            stats: CamStats::default(),
        }
    }

    /// Sets the idle timeout in frame epochs (`None` disables expiry).
    pub fn with_ttl(mut self, ttl: Option<u64>) -> Self {
        self.ttl = ttl;
        self
    }

    /// Configured capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Key width in bits.
    pub fn key_bits(&self) -> u16 {
        self.key_bits
    }

    /// Value width in bits.
    pub fn value_bits(&self) -> u16 {
        self.value_bits
    }

    /// Resident entries (live + expired-but-not-yet-reclaimed).
    pub fn occupancy(&self) -> usize {
        self.index.len()
    }

    /// The current frame epoch.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Zeroes the lifetime counters (table contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CamStats::default();
    }

    /// Drains the involuntary removals since the last drain.
    pub fn take_removed(&mut self) -> Vec<Removed> {
        std::mem::take(&mut self.removed)
    }

    /// Discards pending removal reports (callers that don't track
    /// pairs or shadows).
    pub fn clear_removed(&mut self) {
        self.removed.clear();
    }

    fn is_expired(&self, stamp: u64) -> bool {
        self.ttl.is_some_and(|t| self.now.saturating_sub(stamp) > t)
    }

    /// Re-stamps `slot` to the current epoch (at most one queue record
    /// per slot per frame, so held strobes stay idempotent).
    fn restamp(&mut self, slot: u32) {
        let now = self.now;
        let e = self.slots[slot as usize].as_mut().expect("occupied slot");
        if e.stamp != now {
            e.stamp = now;
            if self.ttl.is_some() {
                self.exp_q.push_back((slot, now));
            }
        }
    }

    fn remove_slot(&mut self, slot: u32, cause: Option<RemoveCause>) -> (Bits, Bits) {
        let e = self.slots[slot as usize].take().expect("occupied slot");
        self.index.remove(&e.key);
        self.free.push(slot);
        match cause {
            Some(RemoveCause::Expired) => self.stats.expiries += 1,
            Some(RemoveCause::Evicted) => self.stats.evictions += 1,
            None => {}
        }
        (e.key, e.value)
    }

    fn report(&mut self, key: Bits, value: Bits, cause: RemoveCause) {
        self.removed.push(Removed { key, value, cause });
    }

    /// Pops stale queue records; if the front-most valid record names an
    /// expired entry, reclaims it and returns its freed slot.
    fn reclaim_oldest_expired(&mut self) -> Option<u32> {
        while let Some(&(slot, stamp)) = self.exp_q.front() {
            let valid = self.slots[slot as usize]
                .as_ref()
                .is_some_and(|e| e.stamp == stamp);
            if !valid {
                self.exp_q.pop_front();
                continue;
            }
            if !self.is_expired(stamp) {
                return None;
            }
            self.exp_q.pop_front();
            let (k, v) = self.remove_slot(slot, Some(RemoveCause::Expired));
            self.report(k, v, RemoveCause::Expired);
            return Some(slot);
        }
        None
    }

    /// Advances the frame epoch and reclaims up to `TICK_RECLAIM`
    /// expired entries. Call once per delivered frame.
    pub fn tick_frame(&mut self) {
        self.now += 1;
        if self.ttl.is_some() {
            for _ in 0..TICK_RECLAIM {
                if self.reclaim_oldest_expired().is_none() {
                    break;
                }
            }
        }
    }

    /// Looks `key` up; a live hit is touched (re-stamped), an expired
    /// resident entry is reclaimed and reported as a miss.
    pub fn lookup(&mut self, key: &Bits) -> Option<Bits> {
        self.stats.lookups += 1;
        let slot = *self.index.get(key)?;
        let stamp = self.slots[slot as usize].as_ref().expect("indexed").stamp;
        if self.is_expired(stamp) {
            let (k, v) = self.remove_slot(slot, Some(RemoveCause::Expired));
            self.report(k, v, RemoveCause::Expired);
            return None;
        }
        self.stats.hits += 1;
        self.restamp(slot);
        Some(
            self.slots[slot as usize]
                .as_ref()
                .expect("live")
                .value
                .clone(),
        )
    }

    /// Is `key` resident and live? No touch, no stats, no reclaim.
    pub fn peek(&self, key: &Bits) -> Option<&Bits> {
        let slot = *self.index.get(key)?;
        let e = self.slots[slot as usize].as_ref().expect("indexed");
        (!self.is_expired(e.stamp)).then_some(&e.value)
    }

    /// Re-stamps `key` if resident (pair-twin touch propagation).
    pub fn touch(&mut self, key: &Bits) {
        if let Some(&slot) = self.index.get(key) {
            self.restamp(slot);
        }
    }

    /// Writes `key → value`: replaces in place on key match, else fills
    /// a free slot, else (at capacity) reclaims the oldest expired
    /// entry, else evicts round-robin.
    pub fn write(&mut self, key: Bits, value: Bits) -> WriteEffect {
        self.stats.writes += 1;
        let key = key.resize(self.key_bits);
        let value = value.resize(self.value_bits);
        if let Some(&slot) = self.index.get(&key) {
            let e = self.slots[slot as usize].as_mut().expect("indexed");
            let old = std::mem::replace(&mut e.value, value);
            self.restamp(slot);
            return WriteEffect::Replaced(old);
        }
        let slot = if let Some(s) = self.free.pop() {
            s
        } else if self.slots.len() < self.capacity {
            self.slots.push(None);
            (self.slots.len() - 1) as u32
        } else if let Some(s) = self.reclaim_oldest_expired() {
            self.free.pop();
            s
        } else {
            // All resident and live: round-robin overwrite, like the
            // NetFPGA reference switch on MAC-table overflow.
            let victim = (self.rr % self.slots.len()) as u32;
            self.rr = (self.rr + 1) % self.slots.len();
            let (k, v) = self.remove_slot(victim, Some(RemoveCause::Evicted));
            self.report(k, v, RemoveCause::Evicted);
            self.free.pop();
            victim
        };
        let stamp = self.now;
        self.slots[slot as usize] = Some(Entry {
            key: key.clone(),
            value,
            stamp,
        });
        self.index.insert(key, slot);
        if self.ttl.is_some() {
            self.exp_q.push_back((slot, stamp));
        }
        WriteEffect::Fresh
    }

    /// Removes `key` if resident (live or expired); returns the entry.
    /// Explicit deletes count in no statistic.
    pub fn delete(&mut self, key: &Bits) -> Option<(Bits, Bits)> {
        let slot = *self.index.get(key)?;
        Some(self.remove_slot(slot, None))
    }

    /// Removes `key` on behalf of a pair twin, charging `cause` to this
    /// table's stats. Does not report (no propagation loops).
    fn remove_for_pair(&mut self, key: &Bits, cause: RemoveCause) {
        if let Some(&slot) = self.index.get(key) {
            self.remove_slot(slot, Some(cause));
        }
    }
}

/// Derives the partner table's key from one side's `(key, value)`.
pub type PartnerKeyFn = fn(&Bits, &Bits) -> Bits;

/// Two [`CamTable`]s whose entries exist in 1:1 correspondence; every
/// involuntary removal on one side atomically removes the partner, and
/// touches propagate (see the module docs).
#[derive(Debug)]
pub struct CamPair {
    /// Side A (NAT: the forward table).
    pub a: CamTable,
    /// Side B (NAT: the reverse table).
    pub b: CamTable,
    a_to_b: PartnerKeyFn,
    b_to_a: PartnerKeyFn,
}

impl CamPair {
    /// Binds two tables with their partner-key derivations.
    pub fn new(a: CamTable, b: CamTable, a_to_b: PartnerKeyFn, b_to_a: PartnerKeyFn) -> Self {
        CamPair {
            a,
            b,
            a_to_b,
            b_to_a,
        }
    }

    fn propagate_a(&mut self) {
        for r in self.a.take_removed() {
            let pk = (self.a_to_b)(&r.key, &r.value);
            self.b.remove_for_pair(&pk, r.cause);
        }
    }

    fn propagate_b(&mut self) {
        for r in self.b.take_removed() {
            let pk = (self.b_to_a)(&r.key, &r.value);
            self.a.remove_for_pair(&pk, r.cause);
        }
    }

    /// Advances both sides' frame epochs; expired entries take their
    /// partners with them.
    pub fn tick_frame(&mut self) {
        self.a.tick_frame();
        self.propagate_a();
        self.b.tick_frame();
        self.propagate_b();
    }

    /// Looks up side A; a hit touches the B partner too.
    pub fn lookup_a(&mut self, key: &Bits) -> Option<Bits> {
        let r = self.a.lookup(key);
        if let Some(v) = &r {
            let pk = (self.a_to_b)(key, v);
            self.b.touch(&pk);
        }
        self.propagate_a();
        r
    }

    /// Looks up side B; a hit touches the A partner too.
    pub fn lookup_b(&mut self, key: &Bits) -> Option<Bits> {
        let r = self.b.lookup(key);
        if let Some(v) = &r {
            let pk = (self.b_to_a)(key, v);
            self.a.touch(&pk);
        }
        self.propagate_b();
        r
    }

    /// Writes into side A; an eviction takes the B partner with it.
    pub fn write_a(&mut self, key: Bits, value: Bits) {
        let effect = self.a.write(key.clone(), value.clone());
        match effect {
            WriteEffect::Replaced(old) if old != value => {
                // The mapping changed: the old value's partner is now
                // orphaned — drop it as displaced.
                let pk = (self.a_to_b)(&key, &old);
                self.b.remove_for_pair(&pk, RemoveCause::Evicted);
            }
            WriteEffect::Replaced(_) => {
                let pk = (self.a_to_b)(&key, &value);
                self.b.touch(&pk);
            }
            WriteEffect::Fresh => {}
        }
        self.propagate_a();
    }

    /// Writes into side B; an eviction takes the A partner with it.
    pub fn write_b(&mut self, key: Bits, value: Bits) {
        let effect = self.b.write(key.clone(), value.clone());
        match effect {
            WriteEffect::Replaced(old) if old != value => {
                let pk = (self.b_to_a)(&key, &old);
                self.a.remove_for_pair(&pk, RemoveCause::Evicted);
            }
            WriteEffect::Replaced(_) => {
                let pk = (self.b_to_a)(&key, &value);
                self.a.touch(&pk);
            }
            WriteEffect::Fresh => {}
        }
        self.propagate_b();
    }

    /// Deletes from side A, taking the B partner with it.
    pub fn delete_a(&mut self, key: &Bits) {
        if let Some((k, v)) = self.a.delete(key) {
            let pk = (self.a_to_b)(&k, &v);
            self.b.delete(&pk);
        }
    }

    /// Deletes from side B, taking the A partner with it.
    pub fn delete_b(&mut self, key: &Bits) {
        if let Some((k, v)) = self.b.delete(key) {
            let pk = (self.b_to_a)(&k, &v);
            self.a.delete(&pk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u64, w: u16) -> Bits {
        Bits::from_u64(v, w)
    }

    #[test]
    fn write_lookup_delete_round_trip() {
        let mut t = CamTable::new(4, 16, 8);
        assert_eq!(t.write(b(10, 16), b(1, 8)), WriteEffect::Fresh);
        assert_eq!(t.lookup(&b(10, 16)), Some(b(1, 8)));
        assert_eq!(t.lookup(&b(11, 16)), None);
        assert_eq!(t.write(b(10, 16), b(2, 8)), WriteEffect::Replaced(b(1, 8)));
        assert_eq!(t.delete(&b(10, 16)), Some((b(10, 16), b(2, 8))));
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.stats.lookups, 2);
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.writes, 2);
        assert_eq!(t.stats.evictions, 0);
    }

    #[test]
    fn full_table_evicts_round_robin_oldest_slot_first() {
        let mut t = CamTable::new(2, 8, 8);
        t.write(b(1, 8), b(0x11, 8));
        t.write(b(2, 8), b(0x22, 8));
        t.write(b(3, 8), b(0x33, 8)); // evicts slot 0 (key 1)
        assert_eq!(t.occupancy(), 2);
        assert_eq!(t.stats.evictions, 1);
        assert!(t.peek(&b(1, 8)).is_none());
        assert_eq!(t.peek(&b(2, 8)), Some(&b(0x22, 8)));
        assert_eq!(t.peek(&b(3, 8)), Some(&b(0x33, 8)));
        let removed = t.take_removed();
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].key, b(1, 8));
        assert_eq!(removed[0].cause, RemoveCause::Evicted);
    }

    #[test]
    fn ttl_expires_idle_entries_and_touches_keep_them_alive() {
        let mut t = CamTable::new(8, 8, 8).with_ttl(Some(2));
        t.write(b(1, 8), b(0xAA, 8));
        t.write(b(2, 8), b(0xBB, 8));
        for _ in 0..2 {
            t.tick_frame();
            // Touch key 1 every frame; key 2 idles.
            assert!(t.lookup(&b(1, 8)).is_some());
        }
        t.tick_frame(); // key 2's stamp is now 3 epochs old: dead.
        assert_eq!(t.lookup(&b(2, 8)), None, "expired entry must miss");
        assert_eq!(t.stats.expiries, 1);
        assert!(t.lookup(&b(1, 8)).is_some(), "touched entry stays live");
    }

    #[test]
    fn sweep_reclaims_expired_entries_without_lookups() {
        let mut t = CamTable::new(64, 8, 8).with_ttl(Some(1));
        for k in 0..8 {
            t.write(b(k, 8), b(k, 8));
        }
        assert_eq!(t.occupancy(), 8);
        t.tick_frame();
        t.tick_frame();
        // All 8 are now expired; the bounded sweep drains them over the
        // next frames.
        t.tick_frame();
        assert!(t.occupancy() <= 8 - 4);
        t.tick_frame();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.stats.expiries, 8);
    }

    #[test]
    fn full_table_reclaims_expired_before_evicting_live() {
        let mut t = CamTable::new(2, 8, 8).with_ttl(Some(1));
        t.write(b(1, 8), b(0x11, 8));
        t.tick_frame();
        t.tick_frame(); // key 1 expired (sweep budget may reclaim it)
        t.write(b(2, 8), b(0x22, 8));
        t.write(b(3, 8), b(0x33, 8)); // full: must reclaim 1, not evict 2
        assert_eq!(t.stats.evictions, 0, "live entry must survive");
        assert!(t.peek(&b(2, 8)).is_some());
        assert!(t.peek(&b(3, 8)).is_some());
        assert!(t.stats.expiries >= 1);
    }

    #[test]
    fn pair_removals_and_touches_propagate() {
        // a: key k → value v; partner key in b is v; b: value is k.
        fn a2b(_k: &Bits, v: &Bits) -> Bits {
            v.clone().resize(8)
        }
        fn b2a(_k: &Bits, v: &Bits) -> Bits {
            v.clone().resize(8)
        }
        let mk = || {
            CamPair::new(
                CamTable::new(2, 8, 8).with_ttl(Some(10)),
                CamTable::new(2, 8, 8).with_ttl(Some(10)),
                a2b,
                b2a,
            )
        };

        // Eviction in a removes the partner in b.
        let mut p = mk();
        for k in 1..=3u64 {
            p.write_a(b(k, 8), b(0x10 + k, 8));
            p.write_b(b(0x10 + k, 8), b(k, 8));
        }
        // k=3's write_a evicted a's k=1 → b's 0x11 partner must be gone.
        assert_eq!(p.a.occupancy(), 2);
        assert_eq!(p.b.occupancy(), 2);
        assert!(p.a.peek(&b(1, 8)).is_none());
        assert!(p.b.peek(&b(0x11, 8)).is_none(), "partner must die too");
        assert_eq!(p.b.stats.evictions, 1, "same-cause stat in sibling");

        // Touch on one side keeps the partner alive past its TTL.
        let mut p = mk();
        p.write_a(b(1, 8), b(0x11, 8));
        p.write_b(b(0x11, 8), b(1, 8));
        for _ in 0..20 {
            p.tick_frame();
            assert!(p.lookup_a(&b(1, 8)).is_some());
        }
        assert!(p.b.peek(&b(0x11, 8)).is_some(), "touch must propagate");

        // Expiry removes both sides.
        let mut p = mk();
        p.write_a(b(1, 8), b(0x11, 8));
        p.write_b(b(0x11, 8), b(1, 8));
        for _ in 0..12 {
            p.tick_frame();
        }
        assert_eq!(p.a.occupancy(), 0);
        assert_eq!(p.b.occupancy(), 0);
        assert_eq!(p.a.stats.expiries + p.b.stats.expiries, 2);
    }

    #[test]
    fn held_strobe_replay_is_idempotent() {
        // Re-running a write/lookup with identical operands (an FSM
        // holding a strobe across a budget cut) must not change state.
        let mut t = CamTable::new(2, 8, 8).with_ttl(Some(5));
        t.write(b(1, 8), b(7, 8));
        let occ = t.occupancy();
        let q_len = t.exp_q.len();
        t.write(b(1, 8), b(7, 8));
        t.lookup(&b(1, 8));
        t.lookup(&b(1, 8));
        assert_eq!(t.occupancy(), occ);
        assert_eq!(t.exp_q.len(), q_len, "no duplicate queue records");
        assert_eq!(t.peek(&b(1, 8)), Some(&b(7, 8)));
    }
}
