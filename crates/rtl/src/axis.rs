//! AXI4-Stream framing: the bus the NetFPGA SUME reference pipeline uses.
//!
//! The SUME datapath moves packets as 256-bit beats at 200 MHz (§5.1),
//! giving 51.2 Gb/s of core bandwidth for 4×10G of line bandwidth — which
//! is why the Emu switch sustains full line rate (Table 3). A 64-byte
//! frame is exactly two beats; beat counts feed the latency and throughput
//! models in `netfpga-sim`.

use emu_types::{Frame, U256};

/// Width of one beat in bytes.
pub const BEAT_BYTES: usize = 32;

/// One AXI4-Stream transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Beat {
    /// 256 bits of data, first wire byte in the most-significant position.
    pub tdata: U256,
    /// Byte-enable mask: bit *i* covers byte *i* (0 = first wire byte).
    pub tkeep: u32,
    /// Last beat of the packet.
    pub tlast: bool,
    /// Sideband metadata (the SUME pipeline carries source/destination
    /// port bitmaps here).
    pub tuser: u64,
}

/// Splits a frame into beats.
pub fn frame_to_beats(f: &Frame) -> Vec<Beat> {
    let bytes = f.bytes();
    let n = bytes.len().div_ceil(BEAT_BYTES).max(1);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let chunk = &bytes[i * BEAT_BYTES..((i + 1) * BEAT_BYTES).min(bytes.len())];
        let mut padded = [0u8; BEAT_BYTES];
        padded[..chunk.len()].copy_from_slice(chunk);
        out.push(Beat {
            tdata: U256::from_be_bytes(&padded),
            tkeep: if chunk.len() == BEAT_BYTES {
                u32::MAX
            } else {
                (1u32 << chunk.len()) - 1
            },
            tlast: i == n - 1,
            tuser: u64::from(f.in_port),
        });
    }
    out
}

/// Reassembles a frame from beats.
///
/// Returns `None` when the beat sequence is malformed (empty, missing
/// `tlast`, or a non-final partial beat) — the failure-injection tests
/// exercise these paths.
pub fn beats_to_frame(beats: &[Beat]) -> Option<Frame> {
    if beats.is_empty() || !beats.last()?.tlast {
        return None;
    }
    let mut bytes = Vec::with_capacity(beats.len() * BEAT_BYTES);
    for (i, b) in beats.iter().enumerate() {
        let full = b.tkeep == u32::MAX;
        if !full && i != beats.len() - 1 {
            return None;
        }
        if b.tlast != (i == beats.len() - 1) {
            return None;
        }
        let nbytes = b.tkeep.count_ones() as usize;
        // tkeep must be contiguous from byte 0.
        if b.tkeep != u32::MAX && b.tkeep != (1u32 << nbytes) - 1 {
            return None;
        }
        let data = b.tdata.to_be_bytes();
        bytes.extend_from_slice(&data[..nbytes]);
    }
    let mut f = Frame::new(bytes);
    f.in_port = beats[0].tuser as u8;
    Some(f)
}

/// Number of beats a frame of `len` bytes occupies.
pub fn beats_for_len(len: usize) -> u64 {
    (len.div_ceil(BEAT_BYTES).max(1)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_types::MacAddr;

    #[test]
    fn min_frame_is_two_beats() {
        let f = Frame::new(vec![0xaa; 60]);
        let beats = frame_to_beats(&f);
        assert_eq!(beats.len(), 2);
        assert!(beats[1].tlast);
        assert!(!beats[0].tlast);
        assert_eq!(beats[0].tkeep, u32::MAX);
        assert_eq!(beats[1].tkeep, (1 << 28) - 1); // 60 - 32 = 28 bytes
    }

    #[test]
    fn round_trip_preserves_bytes_and_port() {
        let mut f = Frame::ethernet(
            MacAddr::from_u64(1),
            MacAddr::from_u64(2),
            0x0800,
            &(0u8..100).collect::<Vec<_>>(),
        );
        f.in_port = 3;
        let beats = frame_to_beats(&f);
        let g = beats_to_frame(&beats).unwrap();
        assert_eq!(g.bytes(), f.bytes());
        assert_eq!(g.in_port, 3);
    }

    #[test]
    fn malformed_sequences_rejected() {
        let f = Frame::new(vec![1; 64]);
        let mut beats = frame_to_beats(&f);
        // Missing tlast.
        beats.last_mut().unwrap().tlast = false;
        assert!(beats_to_frame(&beats).is_none());
        // Empty.
        assert!(beats_to_frame(&[]).is_none());
        // Early tlast.
        let mut beats2 = frame_to_beats(&Frame::new(vec![1; 96]));
        beats2[0].tlast = true;
        assert!(beats_to_frame(&beats2).is_none());
        // Holey tkeep.
        let mut beats3 = frame_to_beats(&f);
        beats3[1].tkeep = 0b101;
        assert!(beats_to_frame(&beats3).is_none());
    }

    #[test]
    fn beat_arithmetic() {
        assert_eq!(beats_for_len(1), 1);
        assert_eq!(beats_for_len(32), 1);
        assert_eq!(beats_for_len(33), 2);
        assert_eq!(beats_for_len(64), 2);
        assert_eq!(beats_for_len(1514), 48);
    }
}
