//! Cycle-accurate execution of compiled FSMs.
//!
//! This is the reproduction's stand-in for running the synthesized design
//! on the NetFPGA SUME: each call to [`RtlMachine::step_cycle`] is one
//! 5 ns clock edge of the 200 MHz fabric (§5.1). The executor advances
//! every thread by exactly one FSM state per cycle, then steps the
//! environment (ports, arbiter, IP blocks) once — the same [`Env`]
//! contract the sequential interpreter uses, so the *identical program*
//! runs on both targets (§1, contribution 2). Timing differs; behaviour
//! must not, and the differential tests in `/tests` assert exactly that.

use kiwi::fsm::Fsm;
use kiwi_ir::flat::Op;
use kiwi_ir::interp::{eval, Env, MachineState, Observer};
use kiwi_ir::{IrError, IrResult};
use std::collections::HashMap;

/// A uniform stepping interface over the execution backends.
///
/// The NetFPGA platform driver and the Mininet-analogue nodes are generic
/// over this trait, which is what lets one service program run unchanged
/// on the tree-walking interpreter (reference software semantics), the
/// compiled micro-op backend (fast software semantics), and the
/// cycle-accurate FSM (hardware semantics) — the heterogeneous-target
/// property of §1.
pub trait ExecBackend {
    /// Advances one cycle (interpreter: one pause-to-pause slice).
    fn step(&mut self, env: &mut dyn Env, obs: &mut dyn Observer) -> IrResult<()>;
    /// The program's declarations.
    fn program(&self) -> &kiwi_ir::Program;
    /// Machine state for environment-side access.
    fn machine_state(&self) -> &MachineState;
    /// Mutable machine state.
    fn machine_state_mut(&mut self) -> &mut MachineState;
    /// Elapsed cycles.
    fn cycles(&self) -> u64;
    /// True when all threads halted.
    fn is_halted(&self) -> bool;
}

impl ExecBackend for RtlMachine {
    fn step(&mut self, env: &mut dyn Env, obs: &mut dyn Observer) -> IrResult<()> {
        self.step_cycle(env, obs)
    }
    fn program(&self) -> &kiwi_ir::Program {
        &self.fsm.prog
    }
    fn machine_state(&self) -> &MachineState {
        self.state()
    }
    fn machine_state_mut(&mut self) -> &mut MachineState {
        self.state_mut()
    }
    fn cycles(&self) -> u64 {
        self.cycle()
    }
    fn is_halted(&self) -> bool {
        self.halted()
    }
}

impl ExecBackend for kiwi_ir::Machine {
    fn step(&mut self, env: &mut dyn Env, obs: &mut dyn Observer) -> IrResult<()> {
        self.step_cycle(env, obs)
    }
    fn program(&self) -> &kiwi_ir::Program {
        kiwi_ir::Machine::program(self)
    }
    fn machine_state(&self) -> &MachineState {
        self.state()
    }
    fn machine_state_mut(&mut self) -> &mut MachineState {
        self.state_mut()
    }
    fn cycles(&self) -> u64 {
        self.cycle()
    }
    fn is_halted(&self) -> bool {
        self.halted()
    }
}

impl ExecBackend for kiwi_ir::CompiledMachine {
    fn step(&mut self, env: &mut dyn Env, obs: &mut dyn Observer) -> IrResult<()> {
        self.step_cycle(env, obs)
    }
    fn program(&self) -> &kiwi_ir::Program {
        kiwi_ir::CompiledMachine::program(self)
    }
    fn machine_state(&self) -> &MachineState {
        self.state()
    }
    fn machine_state_mut(&mut self) -> &mut MachineState {
        self.state_mut()
    }
    fn cycles(&self) -> u64 {
        self.cycle()
    }
    fn is_halted(&self) -> bool {
        self.halted()
    }
}

/// Per-thread execution context.
#[derive(Debug, Clone)]
struct ThreadCtx {
    pc: usize,
    halted: bool,
}

/// Cycle-accurate executor for a compiled [`Fsm`].
pub struct RtlMachine {
    fsm: Fsm,
    state: MachineState,
    threads: Vec<ThreadCtx>,
    cycle: u64,
    /// Cycles spent in each (thread, state-entry pc): the state-occupancy
    /// profile behind Emu's profiling support (§2: "where time goes").
    occupancy: HashMap<(usize, usize), u64>,
}

impl RtlMachine {
    /// Instantiates the design in its reset state.
    pub fn new(fsm: Fsm) -> Self {
        let state = MachineState::init(&fsm.prog);
        let threads = fsm
            .threads
            .iter()
            .map(|t| ThreadCtx {
                pc: t.entry_pc,
                halted: false,
            })
            .collect();
        RtlMachine {
            fsm,
            state,
            threads,
            cycle: 0,
            occupancy: HashMap::new(),
        }
    }

    /// The compiled design.
    pub fn fsm(&self) -> &Fsm {
        &self.fsm
    }

    /// Elapsed cycles since reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Elapsed simulated time in nanoseconds.
    pub fn time_ns(&self) -> f64 {
        self.cycle as f64 * self.fsm.model.ns_per_cycle()
    }

    /// Immutable machine state.
    pub fn state(&self) -> &MachineState {
        &self.state
    }

    /// Mutable machine state (environment pokes between cycles).
    pub fn state_mut(&mut self) -> &mut MachineState {
        &mut self.state
    }

    /// True when every thread has halted.
    pub fn halted(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// The state-occupancy profile: (thread index, state pc) → cycles.
    pub fn occupancy(&self) -> &HashMap<(usize, usize), u64> {
        &self.occupancy
    }

    /// Renders the occupancy profile sorted by descending cycle count.
    pub fn occupancy_report(&self) -> String {
        let mut rows: Vec<_> = self.occupancy.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1));
        let mut out = String::new();
        for ((ti, pc), cycles) in rows {
            let share = 100.0 * *cycles as f64 / self.cycle.max(1) as f64;
            out.push_str(&format!(
                "thread {} state@pc{:<5} {:>10} cycles ({share:5.1}%)\n",
                self.fsm.threads[*ti].name, pc, cycles
            ));
        }
        out
    }

    /// Advances the design by one clock edge.
    pub fn step_cycle(&mut self, env: &mut dyn Env, obs: &mut dyn Observer) -> IrResult<()> {
        for ti in 0..self.threads.len() {
            self.step_thread(ti, obs)?;
        }
        self.cycle += 1;
        env.tick(self.cycle, &self.fsm.prog, &mut self.state);
        Ok(())
    }

    /// Runs `n` cycles, stopping early if all threads halt. Returns the
    /// number of cycles actually run.
    pub fn run_cycles(
        &mut self,
        n: u64,
        env: &mut dyn Env,
        obs: &mut dyn Observer,
    ) -> IrResult<u64> {
        for i in 0..n {
            if self.halted() {
                return Ok(i);
            }
            self.step_cycle(env, obs)?;
        }
        Ok(n)
    }

    /// Runs until `pred(state)` holds, up to `max_cycles`. Returns the
    /// cycle count at which the predicate fired.
    pub fn run_until(
        &mut self,
        env: &mut dyn Env,
        obs: &mut dyn Observer,
        max_cycles: u64,
        mut pred: impl FnMut(&MachineState) -> bool,
    ) -> IrResult<Option<u64>> {
        for _ in 0..max_cycles {
            if pred(&self.state) {
                return Ok(Some(self.cycle));
            }
            if self.halted() {
                return Ok(None);
            }
            self.step_cycle(env, obs)?;
        }
        Ok(None)
    }

    fn step_thread(&mut self, ti: usize, obs: &mut dyn Observer) -> IrResult<()> {
        if self.threads[ti].halted {
            return Ok(());
        }
        let start = self.threads[ti].pc;
        *self.occupancy.entry((ti, start)).or_insert(0) += 1;

        let thread = &self.fsm.threads[ti];
        let ops_len = thread.ops.len();
        let mut pc = start;
        let mut steps = 0usize;

        loop {
            if steps > 0 && thread.is_boundary(pc) {
                // Reached the next state (possibly looping back to start).
                self.threads[ti].pc = pc;
                return Ok(());
            }
            if steps > 2 * ops_len + 4 {
                return Err(IrError(format!(
                    "thread {} livelocked within one cycle at pc {pc}",
                    thread.name
                )));
            }
            steps += 1;
            if pc >= ops_len {
                self.threads[ti].halted = true;
                return Ok(());
            }
            match &thread.ops[pc] {
                Op::Assign(dst, e) => {
                    let w = self.fsm.prog.var(*dst).expect("validated").width;
                    let v = eval(e, &self.fsm.prog, &self.state).resize(w);
                    let old = self.state.vars[dst.0 as usize].clone();
                    obs.on_assign(dst.0, &old, &v);
                    self.state.vars[dst.0 as usize] = v;
                    pc += 1;
                }
                Op::ArrWrite(arr, idx, val) => {
                    let decl = self.fsm.prog.array(*arr).expect("validated");
                    let w = decl.elem_width;
                    let i = eval(idx, &self.fsm.prog, &self.state).to_u64() as usize;
                    let v = eval(val, &self.fsm.prog, &self.state).resize(w);
                    let data = &mut self.state.arrays[arr.0 as usize];
                    if i < data.len() {
                        data[i] = v;
                        self.state.note_arr_write(arr.0 as usize, i);
                    }
                    pc += 1;
                }
                Op::SigWrite(sig, e) => {
                    let w = self.fsm.prog.signal(*sig).expect("validated").width;
                    let v = eval(e, &self.fsm.prog, &self.state).resize(w);
                    self.state.sigs_out[sig.0 as usize] = v;
                    pc += 1;
                }
                Op::Branch(cond, if_false) => {
                    let c = eval(cond, &self.fsm.prog, &self.state);
                    pc = if c.to_bool() { pc + 1 } else { *if_false };
                }
                Op::Jump(t) => pc = *t,
                Op::Pause => {
                    self.threads[ti].pc = thread.resolve(pc + 1);
                    return Ok(());
                }
                Op::Label(name) => {
                    obs.on_label(name);
                    pc += 1;
                }
                Op::ExtPoint(id) => {
                    obs.on_ext_point(*id, &mut self.state);
                    pc += 1;
                }
                Op::Halt => {
                    self.threads[ti].halted = true;
                    return Ok(());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiwi::fsm::CostModel;
    use kiwi_ir::dsl::*;
    use kiwi_ir::interp::{NullEnv, NullObserver};
    use kiwi_ir::{Machine, ProgramBuilder};

    fn rtl(pb: &ProgramBuilder, model: CostModel) -> RtlMachine {
        let prog = pb.clone().build().unwrap();
        RtlMachine::new(kiwi::compile_with(&prog, model).unwrap())
    }

    #[test]
    fn counter_advances_once_per_cycle() {
        let mut pb = ProgramBuilder::new("c");
        let c = pb.reg("c", 32);
        pb.thread(
            "main",
            vec![forever(vec![assign(c, add(var(c), lit(1, 32))), pause()])],
        );
        let mut m = rtl(&pb, CostModel::default());
        m.run_cycles(100, &mut NullEnv, &mut NullObserver).unwrap();
        assert_eq!(m.state().vars[0].to_u64(), 100);
        assert!((m.time_ns() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn budget_split_changes_cycles_not_result() {
        // Ten chained adds: generous budget = 1 cycle/iteration, tight
        // budget = several cycles/iteration; the final value must agree.
        let mk = || {
            let mut pb = ProgramBuilder::new("chain");
            let a = pb.reg("a", 32);
            let done = pb.reg("done", 1);
            let mut body = Vec::new();
            for _ in 0..10 {
                body.push(assign(a, add(var(a), lit(3, 32))));
            }
            body.push(assign(done, lit(1, 1)));
            body.push(halt());
            pb.thread("main", body);
            pb
        };
        let mut loose = rtl(
            &mk(),
            CostModel {
                period_units: 10_000,
                clock_hz: 200_000_000,
            },
        );
        let mut tight = rtl(
            &mk(),
            CostModel {
                period_units: 8,
                clock_hz: 200_000_000,
            },
        );
        loose
            .run_cycles(1000, &mut NullEnv, &mut NullObserver)
            .unwrap();
        tight
            .run_cycles(1000, &mut NullEnv, &mut NullObserver)
            .unwrap();
        assert_eq!(loose.state().vars[0].to_u64(), 30);
        assert_eq!(tight.state().vars[0].to_u64(), 30);
        assert!(tight.cycle() > loose.cycle());
    }

    #[test]
    fn rtl_matches_interpreter_functionally() {
        // A program with data-dependent control flow; both targets must
        // compute the same fibonacci-ish sequence.
        let mk = || {
            let mut pb = ProgramBuilder::new("fib");
            let a = pb.reg("a", 64);
            let b = pb.reg("b", 64);
            let i = pb.reg("i", 8);
            let t = pb.reg("t", 64);
            pb.reg_init("seed", 64, emu_types::Bits::from_u64(1, 64));
            pb.thread(
                "main",
                vec![
                    assign(b, lit(1, 64)),
                    while_loop(
                        lt(var(i), lit(30, 8)),
                        vec![
                            assign(t, add(var(a), var(b))),
                            assign(a, var(b)),
                            assign(b, var(t)),
                            assign(i, add(var(i), lit(1, 8))),
                            pause(),
                        ],
                    ),
                    halt(),
                ],
            );
            pb
        };
        let prog = mk().build().unwrap();
        let mut interp = Machine::new(kiwi_ir::flatten(&prog).unwrap());
        interp
            .run_cycles(100, &mut NullEnv, &mut NullObserver)
            .unwrap();

        let mut m = rtl(&mk(), CostModel::default());
        m.run_cycles(1000, &mut NullEnv, &mut NullObserver).unwrap();

        assert!(interp.halted() && m.halted());
        assert_eq!(interp.state().vars[0], m.state().vars[0]);
        assert_eq!(interp.state().vars[1], m.state().vars[1]);
        assert_eq!(m.state().vars[1].to_u64(), 1_346_269); // fib(31)
    }

    #[test]
    fn occupancy_profile_accumulates() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread(
            "main",
            vec![forever(vec![
                assign(a, add(var(a), lit(1, 8))),
                pause(),
                assign(a, add(var(a), lit(2, 8))),
                pause(),
            ])],
        );
        let mut m = rtl(&pb, CostModel::default());
        m.run_cycles(10, &mut NullEnv, &mut NullObserver).unwrap();
        let total: u64 = m.occupancy().values().sum();
        assert_eq!(total, 10);
        assert!(m.occupancy_report().contains("thread main"));
    }

    #[test]
    fn run_until_fires_on_predicate() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 16);
        pb.thread(
            "main",
            vec![forever(vec![assign(a, add(var(a), lit(1, 16))), pause()])],
        );
        let mut m = rtl(&pb, CostModel::default());
        let at = m
            .run_until(&mut NullEnv, &mut NullObserver, 1000, |st| {
                st.vars[0].to_u64() == 42
            })
            .unwrap();
        assert_eq!(at, Some(42));
    }

    #[test]
    fn halted_design_stops_consuming_cycles() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.reg("a", 8);
        pb.thread("main", vec![assign(a, lit(9, 8)), halt()]);
        let mut m = rtl(&pb, CostModel::default());
        let ran = m.run_cycles(100, &mut NullEnv, &mut NullObserver).unwrap();
        assert!(ran <= 2);
        assert!(m.halted());
    }
}
