//! Cycle-accurate execution substrate: the reproduction's "FPGA".
//!
//! The paper runs compiled services on a NetFPGA SUME card; this crate
//! runs the same compiled FSMs in a cycle-accurate simulator instead
//! (DESIGN.md explains the substitution). It provides:
//!
//! * [`RtlMachine`] — one 5 ns clock edge per step, with a state-occupancy
//!   profiler,
//! * behavioural IP-block models ([`ipblocks`]) with signal-level
//!   protocols: CAM, Pearson hash (Figure 5), FIFO, the Figure 9 LRU
//!   queue, and BRAM,
//! * AXI4-Stream framing ([`axis`]) matching the SUME 256-bit datapath,
//! * VCD waveform dumping ([`vcd`]) for debugging without an RTL
//!   simulator.

pub mod axis;
pub mod cam;
pub mod exec;
pub mod ipblocks;
pub mod vcd;

pub use axis::{beats_for_len, beats_to_frame, frame_to_beats, Beat, BEAT_BYTES};
pub use cam::{
    CamPair, CamSnapshot, CamStats, CamTable, PartnerKeyFn, RemoveCause, Removed, WriteEffect,
};
pub use exec::{ExecBackend, RtlMachine};
pub use ipblocks::{
    BramModel, CamModel, ChainEnv, FifoModel, IpBlockModel, IpEnv, NaughtyQModel, PairedCamModel,
    PearsonHashModel,
};
pub use vcd::VcdTrace;
