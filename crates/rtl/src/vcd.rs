//! Value-change-dump (VCD) trace writer.
//!
//! Emu's debugging story (§2, §3.5) includes inspecting runtime behaviour
//! without an RTL-level simulator; dumping register traffic in the VCD
//! format lets any standard waveform viewer display a run of the
//! cycle-accurate simulator. The writer records every register and output
//! signal each sampled cycle, emitting changes only.

use emu_types::Bits;
use kiwi_ir::interp::MachineState;
use kiwi_ir::program::Program;
use std::fmt::Write as _;

/// Incremental VCD writer over a program's registers and output signals.
pub struct VcdTrace {
    header: String,
    body: String,
    ids: Vec<(String, u16)>, // (vcd id, width) per tracked slot
    last: Vec<Option<Bits>>,
    nvars: usize,
}

fn vcd_id(i: usize) -> String {
    // Printable identifier alphabet per the VCD spec.
    let mut n = i;
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

impl VcdTrace {
    /// Creates a trace for `prog`, writing declarations for every register
    /// and every output signal.
    pub fn new(prog: &Program, timescale_ns: f64) -> Self {
        let mut header = String::new();
        let _ = writeln!(header, "$date Emu reproduction trace $end");
        let _ = writeln!(header, "$timescale {}ns $end", timescale_ns.max(1.0) as u64);
        let _ = writeln!(header, "$scope module {} $end", prog.name);
        let mut ids = Vec::new();
        for v in prog.vars() {
            let id = vcd_id(ids.len());
            let _ = writeln!(header, "$var reg {} {} {} $end", v.width, id, v.name);
            ids.push((id, v.width));
        }
        for s in prog.signals() {
            let id = vcd_id(ids.len());
            let _ = writeln!(header, "$var wire {} {} {} $end", s.width, id, s.name);
            ids.push((id, s.width));
        }
        let _ = writeln!(header, "$upscope $end");
        let _ = writeln!(header, "$enddefinitions $end");
        let nvars = prog.vars().len();
        let last = vec![None; ids.len()];
        VcdTrace {
            header,
            body: String::new(),
            ids,
            last,
            nvars,
        }
    }

    fn emit_value(body: &mut String, id: &str, width: u16, v: &Bits) {
        if width == 1 {
            let _ = writeln!(body, "{}{}", u64::from(v.to_bool()), id);
        } else {
            let mut bits = String::with_capacity(usize::from(width));
            for i in (0..width).rev() {
                bits.push(if v.bit(i) { '1' } else { '0' });
            }
            let _ = writeln!(body, "b{bits} {id}");
        }
    }

    /// Samples the machine state at `cycle`, appending changes.
    pub fn sample(&mut self, cycle: u64, prog: &Program, st: &MachineState) {
        let mut stamp_written = false;
        for (slot, (id, width)) in self.ids.iter().enumerate() {
            let v: &Bits = if slot < self.nvars {
                &st.vars[slot]
            } else {
                let sidx = slot - self.nvars;
                match prog.signals()[sidx].dir {
                    kiwi_ir::SigDir::In => &st.sigs_in[sidx],
                    kiwi_ir::SigDir::Out => &st.sigs_out[sidx],
                }
            };
            if self.last[slot].as_ref() != Some(v) {
                if !stamp_written {
                    let _ = writeln!(self.body, "#{cycle}");
                    stamp_written = true;
                }
                Self::emit_value(&mut self.body, id, *width, v);
                self.last[slot] = Some(v.clone());
            }
        }
    }

    /// Finishes and returns the VCD text.
    pub fn finish(self) -> String {
        format!("{}{}", self.header, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiwi_ir::dsl::*;
    use kiwi_ir::interp::{NullEnv, NullObserver};
    use kiwi_ir::{Machine, ProgramBuilder};

    #[test]
    fn vcd_has_declarations_and_changes() {
        let mut pb = ProgramBuilder::new("trace_me");
        let c = pb.reg("count", 8);
        pb.sig_out("led", 1);
        pb.thread(
            "main",
            vec![forever(vec![assign(c, add(var(c), lit(1, 8))), pause()])],
        );
        let prog = pb.build().unwrap();
        let mut m = Machine::new(kiwi_ir::flatten(&prog).unwrap());
        let mut vcd = VcdTrace::new(m.program(), 5.0);
        for cycle in 0..5 {
            m.step_cycle(&mut NullEnv, &mut NullObserver).unwrap();
            let prog = m.program().clone();
            vcd.sample(cycle, &prog, m.state());
        }
        let text = vcd.finish();
        assert!(text.contains("$var reg 8"));
        assert!(text.contains("count"));
        assert!(text.contains("$enddefinitions"));
        assert!(text.contains("#0"));
        assert!(text.contains("b00000011")); // count reaches 3
    }

    #[test]
    fn unchanged_values_not_re_emitted() {
        let mut pb = ProgramBuilder::new("quiet");
        pb.reg("still", 8);
        pb.thread("main", vec![forever(vec![pause()])]);
        let prog = pb.build().unwrap();
        let mut m = Machine::new(kiwi_ir::flatten(&prog).unwrap());
        let mut vcd = VcdTrace::new(m.program(), 5.0);
        for cycle in 0..10 {
            m.step_cycle(&mut NullEnv, &mut NullObserver).unwrap();
            let prog = m.program().clone();
            vcd.sample(cycle, &prog, m.state());
        }
        let text = vcd.finish();
        // Exactly one change record (the initial value at #0).
        assert_eq!(text.matches("b00000000").count(), 1);
        assert!(!text.contains("#5"));
    }

    #[test]
    fn vcd_ids_unique_for_many_vars() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            assert!(seen.insert(vcd_id(i)), "duplicate id at {i}");
        }
    }
}
