//! DNS server (§4.3).
//!
//! "We provide a simple DNS server that supports non-recursive queries.
//! Our prototype supports resolution queries from names (of length at
//! most 26 bytes) to IPv4 addresses... If the queried name is absent from
//! the resolution table, the server informs the client that it cannot
//! resolve the name." Table 4: 1.82 µs / 1.176 Mq/s vs 126.46 µs / 0.226
//! Mq/s on the host.
//!
//! The wire-format QNAME (up to [`MAX_NAME_BYTES`]) is accumulated one
//! byte per cycle into a wide key register — this is exactly the workload
//! the paper's wide-word extension (§3.2(iv)) exists for — then resolved
//! through a CAM holding the zone. Responses answer with an A record via
//! a compression pointer; absent names get RCODE 3 (NXDOMAIN), oversized
//! names RCODE 4 (not implemented).

use emu_core::csum::csum_update_word;
use emu_core::ipblock::CamIf;
use emu_core::proto::{DnsWrapper, Ipv4Wrapper, UdpWrapper};
use emu_core::{service_builder, Service};
use emu_rtl::{CamModel, IpEnv};
use emu_types::proto::{ether_type, ip_proto, port};
use emu_types::{Bits, Ipv4};
use kiwi_ir::dsl::*;

/// Maximum wire-format name length (paper: "length at most 26 bytes").
pub const MAX_NAME_BYTES: usize = 26;

/// CAM key width: 26 name bytes left-shifted into a wide register.
pub const KEY_BITS: u16 = (MAX_NAME_BYTES as u16) * 8;

/// Zone capacity.
pub const ZONE_ENTRIES: usize = 256;

const FRAME_CAP: usize = 512;

/// Encodes a dotted name into DNS wire format (labels + terminal zero).
pub fn dns_name_wire(name: &str) -> Vec<u8> {
    let mut out = Vec::new();
    for label in name.split('.').filter(|l| !l.is_empty()) {
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
    out
}

/// The CAM key for a name: wire bytes (excluding the terminal zero)
/// folded MSB-first, exactly as the hardware accumulation loop does.
pub fn dns_key(name: &str) -> Bits {
    let wire = dns_name_wire(name);
    let mut key = Bits::zero(KEY_BITS);
    for &b in &wire[..wire.len() - 1] {
        key = key.shl(8).or(&Bits::from_u64(u64::from(b), KEY_BITS));
    }
    key
}

/// Builds the DNS service answering for the given zone.
pub fn dns_server(zone: Vec<(String, Ipv4)>) -> Service {
    let (mut pb, dp) = service_builder("emu_dns", FRAME_CAP);
    let ip = Ipv4Wrapper::new(dp);
    let udp = UdpWrapper::new(dp);
    let dns = DnsWrapper::new(dp);
    let cam = CamIf::declare(&mut pb, "zone", KEY_BITS, 32);

    let scratch48 = pb.reg("scratch48", 48);
    let scratch32 = pb.reg("scratch32", 32);
    let scratch16 = pb.reg("scratch16", 16);
    let key = pb.reg("qname_key", KEY_BITS);
    let idx = pb.reg("idx", 16);
    let b = pb.reg("b", 8);
    let too_long = pb.reg("too_long", 1);
    let hit = pb.reg("hit", 1);
    let answer_ip = pb.reg("answer_ip", 32);
    let ans_off = pb.reg("ans_off", 16);
    let old_total = pb.reg("old_total", 16);
    let csum_new = pb.reg("csum_new", 16);

    // --- QNAME accumulation: one byte per cycle ----------------------
    let parse_loop = vec![
        assign(key, lit(0, KEY_BITS)),
        assign(too_long, fls()),
        assign(idx, lit(DnsWrapper::QUESTION as u64, 16)),
        while_loop(
            tru(),
            vec![
                assign(b, dp.byte_dyn(var(idx))),
                if_then(eq(var(b), lit(0, 8)), vec![break_loop()]),
                if_then(
                    ge(
                        var(idx),
                        lit((DnsWrapper::QUESTION + MAX_NAME_BYTES) as u64, 16),
                    ),
                    vec![assign(too_long, tru()), break_loop()],
                ),
                assign(key, bor(shl(var(key), lit(8, 8)), resize(var(b), KEY_BITS))),
                assign(idx, add(var(idx), lit(1, 16))),
                pause(),
            ],
        ),
        // Answer section offset: name end (+1 for the zero) + QTYPE/QCLASS.
        assign(ans_off, add(var(idx), lit(5, 16))),
    ];

    // --- Response construction ---------------------------------------
    // Common reply plumbing: swap addresses/ports at L2/L3/L4.
    let mut reply_common = Vec::new();
    reply_common.extend(dp.swap_macs(scratch48));
    reply_common.extend(ip.swap_addrs(scratch32));
    reply_common.extend(udp.swap_ports(scratch16));
    reply_common.extend(udp.clear_checksum());

    // Success: append a 16-byte A record at ans_off.
    let ans = |k: u64| add(var(ans_off), lit(k, 16));
    let record: Vec<(u64, u64)> = vec![
        (0, 0xc0),
        (1, 0x0c), // compression pointer to the question name
        (2, 0x00),
        (3, 0x01), // TYPE A
        (4, 0x00),
        (5, 0x01), // CLASS IN
        (6, 0x00),
        (7, 0x00),
        (8, 0x00),
        (9, 0x3c), // TTL 60s
        (10, 0x00),
        (11, 0x04), // RDLENGTH 4
    ];
    let mut success = vec![assign(answer_ip, cam.value())];
    success.extend(dns.set_response_flags(0));
    success.extend(dns.set_ancount(lit(1, 16)));
    for (k, v) in record {
        success.push(dp.set8_dyn(ans(k), lit(v, 8)));
    }
    for k in 0..4u64 {
        let hi = (31 - 8 * k) as u16;
        success.push(dp.set8_dyn(ans(12 + k), slice(var(answer_ip), hi, hi - 7)));
    }
    // New lengths: frame = ans_off + 16; update IP total length (with an
    // incremental checksum fix, via a register since the update reads the
    // checksum field it rewrites) and the UDP length.
    let new_total = sub(add(var(ans_off), lit(16, 16)), lit(14, 16));
    success.push(assign(old_total, ip.total_len()));
    success.extend(dp.set16(16, new_total.clone()));
    success.extend(dp.set16_via(
        csum_new,
        emu_types::proto::offset::IPV4_CSUM,
        csum_update_word(ip.header_checksum(), var(old_total), new_total),
    ));
    success.extend(udp.set_len(sub(add(var(ans_off), lit(16, 16)), lit(34, 16))));
    success.push(dp.set_output_port(dp.input_port()));
    success.extend(dp.transmit(add(var(ans_off), lit(16, 16))));

    // Failure: NXDOMAIN (or NOTIMP for oversized names), no answer
    // records, frame length unchanged.
    let failure = |rcode: u8| {
        let mut f = Vec::new();
        f.extend(dns.set_response_flags(rcode));
        f.extend(dns.set_ancount(lit(0, 16)));
        f.push(dp.set_output_port(dp.input_port()));
        f.extend(dp.transmit(dp.rx_len()));
        f
    };

    // --- Main loop -----------------------------------------------------
    let is_query = band(
        band(
            dp.ethertype_is(ether_type::IPV4),
            ip.protocol_is(ip_proto::UDP),
        ),
        band(
            eq(udp.dst_port(), lit(u64::from(port::DNS), 16)),
            band(
                eq(slice(dns.flags(), 15, 15), lit(0, 1)), // QR = query
                band(eq(dns.qdcount(), lit(1, 16)), lnot(ip.has_options())),
            ),
        ),
    );

    let mut handle = parse_loop;
    // Every query gets a reply: swap L2/L3/L4 addressing once, up front.
    handle.extend(reply_common);
    let mut resolve = cam.lookup(var(key));
    resolve.push(assign(hit, cam.matched()));
    resolve.push(if_else(
        var(hit),
        success,
        failure(3), // NXDOMAIN
    ));
    handle.push(if_else(var(too_long), failure(4), resolve));

    let mut body = vec![dp.rx_wait(), label("rx"), ext_point(0)];
    body.push(if_then(is_query, handle));
    body.extend(dp.done());

    pb.thread("main", vec![forever(body)]);
    let prog = pb.build().expect("dns program is well-formed");

    Service::with_env(prog, move || {
        let mut cam = CamModel::new("zone", ZONE_ENTRIES, KEY_BITS, 32, false);
        for (name, addr) in &zone {
            cam.insert(dns_key(name), Bits::from_u64(u64::from(addr.0), 32));
        }
        let mut env = IpEnv::new();
        env.attach(Box::new(cam));
        env
    })
}

/// Builds a DNS query test frame for `name` with transaction `id`.
pub fn query_frame(name: &str, id: u16) -> emu_types::Frame {
    use emu_types::{checksum, Frame, MacAddr};
    let qname = dns_name_wire(name);
    let dns_len = 12 + qname.len() + 4;
    let udp_len = 8 + dns_len;
    let total = 20 + udp_len;

    let mut iphdr = vec![
        0x45,
        0x00,
        (total >> 8) as u8,
        total as u8,
        0x00,
        id as u8,
        0x40,
        0x00,
        0x40,
        0x11,
        0,
        0,
        10,
        0,
        0,
        50,
        10,
        0,
        0,
        53,
    ];
    let c = checksum::internet_checksum(&iphdr);
    iphdr[10] = (c >> 8) as u8;
    iphdr[11] = c as u8;

    let mut udp = Vec::new();
    udp.extend_from_slice(&4242u16.to_be_bytes());
    udp.extend_from_slice(&53u16.to_be_bytes());
    udp.extend_from_slice(&(udp_len as u16).to_be_bytes());
    udp.extend_from_slice(&[0, 0]); // checksum optional over IPv4

    let mut dns = Vec::new();
    dns.extend_from_slice(&id.to_be_bytes());
    dns.extend_from_slice(&[0x01, 0x00]); // RD
    dns.extend_from_slice(&[0, 1, 0, 0, 0, 0, 0, 0]); // QD=1
    dns.extend_from_slice(&qname);
    dns.extend_from_slice(&[0, 1, 0, 1]); // QTYPE A, QCLASS IN

    let mut payload = iphdr;
    payload.extend_from_slice(&udp);
    payload.extend_from_slice(&dns);
    let mut f = Frame::ethernet(
        MacAddr::from_u64(0x02_00_00_00_00_aa),
        MacAddr::from_u64(0x02_00_00_00_00_bb),
        ether_type::IPV4,
        &payload,
    );
    f.in_port = 1;
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::{assert_targets_agree, Target};
    use emu_types::bitutil;

    fn test_zone() -> Vec<(String, Ipv4)> {
        vec![
            ("example.com".into(), "93.184.216.34".parse().unwrap()),
            ("emu.cl.cam.ac.uk".into(), "128.232.0.20".parse().unwrap()),
            ("a.b".into(), "1.2.3.4".parse().unwrap()),
        ]
    }

    #[test]
    fn resolves_known_name() {
        let svc = dns_server(test_zone());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let q = query_frame("example.com", 0x1234);
        let out = inst.process(&q).unwrap();
        assert_eq!(out.tx.len(), 1);
        let b = out.tx[0].frame.bytes();
        // Response bit + NOERROR.
        assert_eq!(bitutil::get16(b, 44) & 0x800f, 0x8000);
        // ANCOUNT = 1.
        assert_eq!(bitutil::get16(b, 48), 1);
        // The answer's rdata carries the right address at the tail.
        let ans_off = 54 + dns_name_wire("example.com").len() + 4;
        assert_eq!(&b[ans_off..ans_off + 2], &[0xc0, 0x0c]);
        assert_eq!(&b[ans_off + 12..ans_off + 16], &[93, 184, 216, 34]);
        // UDP ports swapped; transaction id preserved.
        assert_eq!(bitutil::get16(b, 34), 53);
        assert_eq!(bitutil::get16(b, 36), 4242);
        assert_eq!(bitutil::get16(b, 42), 0x1234);
        // IP header checksum still valid after the length fix.
        assert!(emu_types::checksum::verify(&b[14..34]));
    }

    #[test]
    fn unknown_name_gets_nxdomain() {
        let svc = dns_server(test_zone());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let out = inst.process(&query_frame("nope.invalid", 7)).unwrap();
        assert_eq!(out.tx.len(), 1);
        let b = out.tx[0].frame.bytes();
        assert_eq!(bitutil::get16(b, 44) & 0x000f, 3, "RCODE must be NXDOMAIN");
        assert_eq!(bitutil::get16(b, 48), 0, "no answers");
    }

    #[test]
    fn oversized_name_gets_notimp() {
        let svc = dns_server(test_zone());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let long = "aaaaaaaaaaaaaaaaaaaa.bbbbbbbbbbbbbbbbbbbb.cc";
        assert!(dns_name_wire(long).len() > MAX_NAME_BYTES);
        let out = inst.process(&query_frame(long, 9)).unwrap();
        let b = out.tx[0].frame.bytes();
        assert_eq!(bitutil::get16(b, 44) & 0x000f, 4, "RCODE must be NOTIMP");
    }

    #[test]
    fn non_dns_traffic_ignored() {
        let svc = dns_server(test_zone());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let mut q = query_frame("example.com", 1);
        bitutil::set16(q.bytes_mut(), 36, 5353); // wrong port
        assert!(inst.process(&q).unwrap().tx.is_empty());
        // A DNS *response* (QR=1) must be ignored.
        let mut r = query_frame("example.com", 2);
        r.bytes_mut()[44] = 0x81;
        assert!(inst.process(&r).unwrap().tx.is_empty());
    }

    #[test]
    fn key_encoding_host_and_wire_agree() {
        // Injective on distinct short names.
        assert_ne!(dns_key("a.b"), dns_key("ab"));
        assert_ne!(dns_key("example.com"), dns_key("example.org"));
        // Wire format shape.
        assert_eq!(dns_name_wire("a.b"), vec![1, b'a', 1, b'b', 0]);
    }

    #[test]
    fn targets_agree() {
        let frames = vec![
            query_frame("example.com", 1),
            query_frame("nope.invalid", 2),
            query_frame("a.b", 3),
        ];
        assert_targets_agree(&dns_server(test_zone()), &frames).unwrap();
    }

    #[test]
    fn cycle_count_band() {
        // ~170 cycles implied by Table 4's 1.176 Mq/s; accept a band.
        let svc = dns_server(test_zone());
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let out = inst.process(&query_frame("emu.cl.cam.ac.uk", 1)).unwrap();
        assert!(
            (30..=250).contains(&out.cycles),
            "dns took {} cycles",
            out.cycles
        );
    }
}
