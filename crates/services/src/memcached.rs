//! Memcached server (§4.3).
//!
//! The paper's headline application: "Memcached is sensitive to latency,
//! and even an extra 20 µs are enough to lose 25 % throughput." Their
//! deployed configuration — the one Table 4 measures with memaslap at a
//! 90 % GET / 10 % SET mix — runs the ASCII protocol over UDP. This
//! implementation does the same:
//!
//! * requests carry the 8-byte memcached-UDP frame header (request id,
//!   sequence, datagram count, reserved), which is echoed in replies;
//! * `get`, `set` and `delete` commands, keys up to 8 bytes, fixed
//!   8-byte values (the paper's first implementation used 6-byte keys and
//!   8-byte values; §5.4 discusses relaxing this with on-board DRAM);
//! * the store is a CAM keyed on `{key_len, key}`.
//!
//! Table 4: 1.21 µs / 1.932 Mq/s for Emu vs 24.29 µs / 0.876 Mq/s for a
//! 4-thread Linux memcached.

use emu_core::csum::csum_update_word;
use emu_core::ipblock::{CamDeleteIf, CamIf};
use emu_core::proto::{Ipv4Wrapper, UdpWrapper};
use emu_core::{service_builder, Service};
use emu_rtl::{CamModel, IpEnv};
use emu_types::proto::{ether_type, ip_proto, port};
use kiwi_ir::dsl::*;
use kiwi_ir::{Expr, Stmt, VarId};

/// Maximum key length in bytes.
pub const MAX_KEY: usize = 8;

/// Fixed value size in bytes.
pub const VALUE_BYTES: usize = 8;

/// Store capacity in entries.
pub const STORE_ENTRIES: usize = 1024;

/// CAM key: length byte ++ key bytes (prevents `"ab"`/`"\0ab"` aliasing).
pub const CAM_KEY_BITS: u16 = 8 + (MAX_KEY as u16) * 8;

/// Offset of the memcached UDP frame header.
const MC_HDR: usize = UdpWrapper::PAYLOAD;
/// Offset of the ASCII command.
const CMD: usize = MC_HDR + 8;

const FRAME_CAP: usize = 512;

/// Emits statements writing an ASCII literal at a constant offset.
fn put_ascii(dp: &emu_core::Dataplane, off: usize, s: &[u8]) -> Vec<Stmt> {
    s.iter()
        .enumerate()
        .map(|(i, &b)| dp.set8(off + i, lit(u64::from(b), 8)))
        .collect()
}

/// Emits statements writing an ASCII literal at `base + k` dynamic.
fn put_ascii_dyn(dp: &emu_core::Dataplane, base: VarId, k: usize, s: &[u8]) -> Vec<Stmt> {
    s.iter()
        .enumerate()
        .map(|(i, &b)| {
            dp.set8_dyn(
                add(var(base), lit((k + i) as u64, 16)),
                lit(u64::from(b), 8),
            )
        })
        .collect()
}

/// Builds the Memcached service.
pub fn memcached() -> Service {
    let (mut pb, dp) = service_builder("emu_memcached", FRAME_CAP);
    let ip = Ipv4Wrapper::new(dp);
    let udp = UdpWrapper::new(dp);
    let cam = CamIf::declare(&mut pb, "store", CAM_KEY_BITS, (VALUE_BYTES as u16) * 8);
    let del = CamDeleteIf::declare(&mut pb, "store", CAM_KEY_BITS);

    let scratch48 = pb.reg("scratch48", 48);
    let scratch32 = pb.reg("scratch32", 32);
    let scratch16 = pb.reg("scratch16", 16);
    let key = pb.reg("key", (MAX_KEY as u16) * 8);
    let klen = pb.reg("klen", 8);
    let idx = pb.reg("idx", 16);
    let b = pb.reg("b", 8);
    let value = pb.reg("value", (VALUE_BYTES as u16) * 8);
    let hit = pb.reg("hit", 1);
    let reply_len = pb.reg("reply_len", 16);
    let bad = pb.reg("bad", 1);
    let old_total = pb.reg("old_total", 16);
    let csum_new = pb.reg("csum_new", 16);
    // Service statistics, also the §5.5 debugging targets.
    let n_get = pb.reg("n_get", 32);
    let n_set = pb.reg("n_set", 32);
    let n_hit = pb.reg("n_hit", 32);

    let cam_key = concat(var(klen), var(key));

    // --- key parser: from `idx` until space/CR, one byte per cycle ----
    let parse_key = vec![
        assign(key, lit(0, (MAX_KEY as u16) * 8)),
        assign(klen, lit(0, 8)),
        assign(bad, fls()),
        while_loop(
            tru(),
            vec![
                assign(b, dp.byte_dyn(var(idx))),
                if_then(
                    bor(
                        eq(var(b), lit(b' ' as u64, 8)),
                        eq(var(b), lit(b'\r' as u64, 8)),
                    ),
                    vec![break_loop()],
                ),
                if_then(
                    ge(var(klen), lit(MAX_KEY as u64, 8)),
                    vec![assign(bad, tru()), break_loop()],
                ),
                assign(
                    key,
                    bor(
                        shl(var(key), lit(8, 8)),
                        resize(var(b), (MAX_KEY as u16) * 8),
                    ),
                ),
                assign(klen, add(var(klen), lit(1, 8))),
                assign(idx, add(var(idx), lit(1, 16))),
                pause(),
            ],
        ),
        if_then(eq(var(klen), lit(0, 8)), vec![assign(bad, tru())]),
    ];

    // --- reply plumbing -------------------------------------------------
    // Swap addresses/ports; fix lengths + IP checksum; transmit. The
    // 8-byte memcached frame header at MC_HDR stays in place (echoed).
    let finish_reply = |reply_len_expr: Expr| -> Vec<Stmt> {
        let mut s = Vec::new();
        s.push(assign(reply_len, reply_len_expr));
        s.extend(dp.swap_macs(scratch48));
        s.extend(ip.swap_addrs(scratch32));
        s.extend(udp.swap_ports(scratch16));
        s.extend(udp.clear_checksum());
        let frame_len = add(lit((CMD) as u64, 16), var(reply_len));
        let new_total = sub(frame_len.clone(), lit(14, 16));
        s.push(assign(old_total, ip.total_len()));
        s.extend(dp.set16(16, new_total.clone()));
        s.extend(dp.set16_via(
            csum_new,
            emu_types::proto::offset::IPV4_CSUM,
            csum_update_word(ip.header_checksum(), var(old_total), new_total),
        ));
        s.extend(udp.set_len(sub(frame_len.clone(), lit(34, 16))));
        s.push(dp.set_output_port(dp.input_port()));
        s.extend(dp.transmit(frame_len));
        s
    };

    // --- GET --------------------------------------------------------------
    // "get <key>\r\n" → hit: "VALUE <key> 0 8\r\n<8B>\r\nEND\r\n",
    //                   miss: "END\r\n".
    let mut get_body = vec![
        assign(n_get, add(var(n_get), lit(1, 32))),
        assign(idx, lit((CMD + 4) as u64, 16)),
    ];
    get_body.extend(parse_key.clone());
    let mut get_ok = cam.lookup(cam_key.clone());
    get_ok.push(assign(hit, cam.matched()));
    get_ok.push(assign(value, cam.value()));

    // Hit path: write the VALUE response at CMD.
    let mut hit_path = vec![assign(n_hit, add(var(n_hit), lit(1, 32)))];
    hit_path.extend(put_ascii(&dp, CMD, b"VALUE "));
    // Key bytes: key[8*(klen-1-i) .. ] for i in 0..klen, one per cycle.
    hit_path.push(assign(idx, lit(0, 16))); // reuse idx as key write counter
    hit_path.push(while_loop(
        lt(var(idx), resize(var(klen), 16)),
        vec![
            dp.set8_dyn(
                add(lit((CMD + 6) as u64, 16), var(idx)),
                resize(
                    shr(
                        var(key),
                        mul(
                            sub(resize(var(klen), 16), add(var(idx), lit(1, 16))),
                            lit(8, 16),
                        ),
                    ),
                    8,
                ),
            ),
            assign(idx, add(var(idx), lit(1, 16))),
            pause(),
        ],
    ));
    // " 0 8\r\n" then value then "\r\nEND\r\n"; offsets depend on klen.
    let vstart = pb.reg("vstart", 16); // CMD + 6 + klen + 6
    hit_path.push(assign(
        vstart,
        add(
            lit((CMD + 6) as u64, 16),
            add(resize(var(klen), 16), lit(6, 16)),
        ),
    ));
    let tail = pb.reg("tail", 16);
    hit_path.extend(put_ascii_dyn(&dp, vstart, 0, b"")); // anchor (no-op)
                                                         // " 0 8\r\n" sits right after the key:
    {
        let mid_base = pb.reg("mid_base", 16);
        hit_path.push(assign(
            mid_base,
            add(lit((CMD + 6) as u64, 16), resize(var(klen), 16)),
        ));
        hit_path.extend(put_ascii_dyn(&dp, mid_base, 0, b" 0 8\r\n"));
    }
    for i in 0..VALUE_BYTES {
        let hi = ((VALUE_BYTES - 1 - i) * 8 + 7) as u16;
        hit_path.push(dp.set8_dyn(
            add(var(vstart), lit(i as u64, 16)),
            slice(var(value), hi, hi - 7),
        ));
    }
    hit_path.push(assign(tail, add(var(vstart), lit(VALUE_BYTES as u64, 16))));
    hit_path.extend(put_ascii_dyn(&dp, tail, 0, b"\r\nEND\r\n"));
    // reply_len = (tail + 7) - CMD + 8 for the frame header... computed
    // from CMD: header(8 already before CMD) — reply_len counts bytes
    // from CMD: 6 + klen + 6 + 8 + 7 = klen + 27.
    hit_path.extend(finish_reply(add(resize(var(klen), 16), lit(27, 16))));

    let mut miss_path = put_ascii(&dp, CMD, b"END\r\n");
    miss_path.extend(finish_reply(lit(5, 16)));

    get_ok.push(if_else(var(hit), hit_path, miss_path));
    get_body.push(if_then(lnot(var(bad)), get_ok));

    // --- SET ---------------------------------------------------------------
    // "set <key> <flags> <exptime> <bytes>\r\n<8B>\r\n" → "STORED\r\n".
    let mut set_body = vec![
        assign(n_set, add(var(n_set), lit(1, 32))),
        assign(idx, lit((CMD + 4) as u64, 16)),
    ];
    set_body.extend(parse_key.clone());
    // Skip to the end of the command line ('\n'), then read 8 data bytes.
    let mut skip_line = vec![while_loop(
        band(
            ne(dp.byte_dyn(var(idx)), lit(b'\n' as u64, 8)),
            lt(var(idx), lit((FRAME_CAP - VALUE_BYTES - 1) as u64, 16)),
        ),
        vec![assign(idx, add(var(idx), lit(1, 16))), pause()],
    )];
    skip_line.push(assign(idx, add(var(idx), lit(1, 16)))); // past '\n'
    let mut read_value = vec![assign(value, lit(0, (VALUE_BYTES as u16) * 8))];
    for _ in 0..VALUE_BYTES {
        read_value.push(assign(
            value,
            bor(
                shl(var(value), lit(8, 8)),
                resize(dp.byte_dyn(var(idx)), (VALUE_BYTES as u16) * 8),
            ),
        ));
        read_value.push(assign(idx, add(var(idx), lit(1, 16))));
    }
    let mut store = cam.write(cam_key.clone(), var(value));
    let mut stored_reply = put_ascii(&dp, CMD, b"STORED\r\n");
    stored_reply.extend(finish_reply(lit(8, 16)));
    store.extend(stored_reply);

    let mut set_ok = skip_line;
    set_ok.extend(read_value);
    set_ok.extend(store);
    set_body.push(if_then(lnot(var(bad)), set_ok));

    // --- DELETE -------------------------------------------------------------
    // "delete <key>\r\n" → "DELETED\r\n" | "NOT_FOUND\r\n".
    let mut del_body = vec![assign(idx, lit((CMD + 7) as u64, 16))];
    del_body.extend(parse_key.clone());
    let mut del_ok = cam.lookup(cam_key.clone());
    del_ok.push(assign(hit, cam.matched()));
    let mut deleted = del.delete(cam_key.clone());
    deleted.extend(put_ascii(&dp, CMD, b"DELETED\r\n"));
    deleted.extend(finish_reply(lit(9, 16)));
    let mut notfound = put_ascii(&dp, CMD, b"NOT_FOUND\r\n");
    notfound.extend(finish_reply(lit(11, 16)));
    del_ok.push(if_else(var(hit), deleted, notfound));
    del_body.push(if_then(lnot(var(bad)), del_ok));

    // --- dispatch -------------------------------------------------------------
    let is_mc = band(
        band(
            dp.ethertype_is(ether_type::IPV4),
            ip.protocol_is(ip_proto::UDP),
        ),
        band(
            eq(udp.dst_port(), lit(u64::from(port::MEMCACHED), 16)),
            lnot(ip.has_options()),
        ),
    );
    let cmd0 = dp.byte(CMD);
    let dispatch = if_else(
        eq(cmd0.clone(), lit(b'g' as u64, 8)),
        get_body,
        vec![if_else(
            eq(cmd0.clone(), lit(b's' as u64, 8)),
            set_body,
            vec![if_then(eq(cmd0, lit(b'd' as u64, 8)), del_body)],
        )],
    );

    let mut body = vec![dp.rx_wait(), label("rx"), ext_point(0)];
    body.push(if_then(is_mc, vec![dispatch]));
    body.extend(dp.done());

    pb.thread("main", vec![forever(body)]);
    let prog = pb.build().expect("memcached program is well-formed");
    // Only the capacity comes from the engine's TableConfig. The TTL is
    // deliberately ignored: the store is a key-value cache with
    // explicit `delete` semantics, not a flow table — silently expiring
    // a stored key would violate the memcached contract the checker
    // models (a GET after SET must hit until DELETE or eviction).
    Service::with_sized_env(prog, move |cfg| {
        let entries = cfg.entries.unwrap_or(STORE_ENTRIES);
        let mut env = IpEnv::new();
        env.attach(Box::new(CamModel::new(
            "store",
            entries,
            CAM_KEY_BITS,
            (VALUE_BYTES as u16) * 8,
            false,
        )));
        env
    })
}

/// Builds a memcached-over-UDP request frame with ASCII `body`.
pub fn request_frame(body: &str, req_id: u16) -> emu_types::Frame {
    use emu_types::{checksum, Frame, MacAddr};
    let mc_payload_len = 8 + body.len();
    let udp_len = 8 + mc_payload_len;
    let total = 20 + udp_len;
    let mut iphdr = vec![
        0x45,
        0x00,
        (total >> 8) as u8,
        total as u8,
        0x00,
        0x01,
        0x40,
        0x00,
        0x40,
        0x11,
        0,
        0,
        10,
        0,
        0,
        9,
        10,
        0,
        0,
        10,
    ];
    let c = checksum::internet_checksum(&iphdr);
    iphdr[10] = (c >> 8) as u8;
    iphdr[11] = c as u8;
    let mut payload = iphdr;
    payload.extend_from_slice(&31337u16.to_be_bytes()); // src port
    payload.extend_from_slice(&11211u16.to_be_bytes());
    payload.extend_from_slice(&(udp_len as u16).to_be_bytes());
    payload.extend_from_slice(&[0, 0]);
    // memcached UDP frame header.
    payload.extend_from_slice(&req_id.to_be_bytes());
    payload.extend_from_slice(&[0, 0, 0, 1, 0, 0]);
    payload.extend_from_slice(body.as_bytes());
    let mut f = Frame::ethernet(
        MacAddr::from_u64(0x02_00_00_00_00_31),
        MacAddr::from_u64(0x02_00_00_00_00_32),
        ether_type::IPV4,
        &payload,
    );
    f.in_port = 3;
    f
}

/// Extracts the ASCII portion of a memcached-UDP reply.
pub fn reply_text(frame: &emu_types::Frame) -> Vec<u8> {
    let b = frame.bytes();
    let udp_len = emu_types::bitutil::get16(b, 38) as usize;
    let text_len = udp_len.saturating_sub(8 + 8);
    b[CMD..CMD + text_len].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::{assert_targets_agree, Target};

    #[test]
    fn set_then_get_round_trip() {
        let svc = memcached();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let set = request_frame("set foo 0 0 8\r\nAAAABBBB\r\n", 1);
        let out = inst.process(&set).unwrap();
        assert_eq!(reply_text(&out.tx[0].frame), b"STORED\r\n");

        let get = request_frame("get foo\r\n", 2);
        let out = inst.process(&get).unwrap();
        assert_eq!(
            reply_text(&out.tx[0].frame),
            b"VALUE foo 0 8\r\nAAAABBBB\r\nEND\r\n"
        );
        // The reply echoes the request id of the UDP frame header.
        assert_eq!(
            emu_types::bitutil::get16(out.tx[0].frame.bytes(), MC_HDR),
            2
        );
        // IP header checksum still valid after length rewrite.
        assert!(emu_types::checksum::verify(
            &out.tx[0].frame.bytes()[14..34]
        ));
    }

    #[test]
    fn get_miss_returns_end() {
        let svc = memcached();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let out = inst.process(&request_frame("get nothere\r\n", 1)).unwrap();
        // Key "nothere" is 7 bytes — fits; miss → END.
        assert_eq!(reply_text(&out.tx[0].frame), b"END\r\n");
    }

    #[test]
    fn delete_semantics() {
        let svc = memcached();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        inst.process(&request_frame("set k1 0 0 8\r\n12345678\r\n", 1))
            .unwrap();
        let out = inst.process(&request_frame("delete k1\r\n", 2)).unwrap();
        assert_eq!(reply_text(&out.tx[0].frame), b"DELETED\r\n");
        let out = inst.process(&request_frame("delete k1\r\n", 3)).unwrap();
        assert_eq!(reply_text(&out.tx[0].frame), b"NOT_FOUND\r\n");
        let out = inst.process(&request_frame("get k1\r\n", 4)).unwrap();
        assert_eq!(reply_text(&out.tx[0].frame), b"END\r\n");
    }

    #[test]
    fn overwrite_replaces_value() {
        let svc = memcached();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        inst.process(&request_frame("set k 0 0 8\r\nOLDVALUE\r\n", 1))
            .unwrap();
        inst.process(&request_frame("set k 0 0 8\r\nNEWVALUE\r\n", 2))
            .unwrap();
        let out = inst.process(&request_frame("get k\r\n", 3)).unwrap();
        assert_eq!(
            reply_text(&out.tx[0].frame),
            b"VALUE k 0 8\r\nNEWVALUE\r\nEND\r\n"
        );
    }

    #[test]
    fn oversized_key_rejected_silently() {
        let svc = memcached();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let out = inst
            .process(&request_frame("get waytoolongkey\r\n", 1))
            .unwrap();
        assert!(out.tx.is_empty(), "oversized key must be dropped");
    }

    #[test]
    fn wrong_port_ignored() {
        let svc = memcached();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let mut f = request_frame("get foo\r\n", 1);
        emu_types::bitutil::set16(f.bytes_mut(), 36, 11212);
        assert!(inst.process(&f).unwrap().tx.is_empty());
    }

    #[test]
    fn stats_registers_track_ops() {
        let svc = memcached();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        inst.process(&request_frame("set a 0 0 8\r\nxxxxxxxx\r\n", 1))
            .unwrap();
        inst.process(&request_frame("get a\r\n", 2)).unwrap();
        inst.process(&request_frame("get b\r\n", 3)).unwrap();
        assert_eq!(inst.read_reg("n_set").unwrap().to_u64(), 1);
        assert_eq!(inst.read_reg("n_get").unwrap().to_u64(), 2);
        assert_eq!(inst.read_reg("n_hit").unwrap().to_u64(), 1);
    }

    #[test]
    fn targets_agree() {
        let frames = vec![
            request_frame("set foo 0 0 8\r\nAAAABBBB\r\n", 1),
            request_frame("get foo\r\n", 2),
            request_frame("get missing\r\n", 3),
            request_frame("delete foo\r\n", 4),
            request_frame("get foo\r\n", 5),
        ];
        assert_targets_agree(&memcached(), &frames).unwrap();
    }

    #[test]
    fn cycle_count_band() {
        // Table 4 implies ~103 cycles per query at 1.932 Mq/s.
        let svc = memcached();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        inst.process(&request_frame("set mykey 0 0 8\r\nVVVVVVVV\r\n", 1))
            .unwrap();
        let out = inst.process(&request_frame("get mykey\r\n", 2)).unwrap();
        assert!(
            (25..=160).contains(&out.cycles),
            "memcached GET took {} cycles",
            out.cycles
        );
    }
}
