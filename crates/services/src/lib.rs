//! The network services of the paper's §4, written against the Emu
//! standard library (`emu-core`) exactly as the paper's C# services are
//! written against Emu:
//!
//! * [`switch`] — L2 learning switch, behavioural-CAM and IP-CAM
//!   variants (§4.1, Figure 2; Table 3's device under test),
//! * [`filter`] — L3/L4 filter with an iptables-style rule front end
//!   that generates code slotting into the switch (§4.1),
//! * [`icmp`] — ICMP echo responder (§4.2),
//! * [`tcp_ping`](mod@tcp_ping) — SYN → SYN-ACK reachability responder (§4.2),
//! * [`dns`] — non-recursive DNS server, ≤26-byte names (§4.3),
//! * [`memcached`](mod@memcached) — ASCII-over-UDP memcached with GET/SET/DELETE
//!   (§4.3),
//! * [`nat`](mod@nat) — UDP+TCP network address translation (§4.4),
//! * [`cache`] — in-dataplane look-aside LRU cache (§4.4, Figure 9).
//!
//! Every service is a plain function returning an [`emu_core::Service`],
//! runnable unmodified on the CPU and FPGA targets (and inside `netsim`).

pub mod cache;
pub mod dns;
pub mod filter;
pub mod icmp;
pub mod memcached;
pub mod nat;
pub mod switch;
pub mod tcp_ping;

pub use cache::lru_cache;
pub use dns::dns_server;
pub use filter::{filter_switch, filter_switch_from_lines, parse_rule, FilterAction, FilterRule};
pub use icmp::icmp_echo;
pub use memcached::memcached;
pub use nat::nat;
pub use switch::{switch_behavioural, switch_ip_cam};
pub use tcp_ping::tcp_ping;
