//! The L2 learning switch of §4.1 — the paper's flagship use case.
//!
//! Two variants, as the paper describes: "it provides an example of how
//! content addressable memory (CAM) is implemented in Emu, and how a
//! native FPGA IP CAM block can be used. While the first option does not
//! burden developers with implementation details, the latter provides
//! better resource usage and timing performance."
//!
//! * [`switch_ip_cam`] — uses the CAM IP block (the configuration behind
//!   Table 3's Emu column: "85 % [of the resources] are used by the CAM,
//!   which is an IP block, and only 15 % by the C# generated logic").
//! * [`switch_behavioural`] — the table lives in program arrays and the
//!   parallel match is generated logic (a LUT-based CAM), following the
//!   Figure 2 fragment: learn the source, look up the destination,
//!   forward or broadcast, with the `free` pointer wrap of line 17.

use emu_core::ipblock::CamIf;
use emu_core::{service_builder, Service};
use emu_rtl::{CamModel, IpEnv};
use kiwi::resources::IpBlock;
use kiwi_ir::dsl::*;
use kiwi_ir::program::ArrayBacking;
use kiwi_ir::{ArrId, Expr};

/// MAC table capacity used by Table 3 ("we use 256-entry tables").
pub const TABLE_ENTRIES: usize = 256;

/// Frame buffer capacity: switching is header-only, but the frame must
/// fit; 1514-byte standard maximum.
const FRAME_CAP: usize = 1536;

/// Builds the switch around the CAM IP block.
pub fn switch_ip_cam() -> Service {
    let (mut pb, dp) = service_builder("emu_switch_cam", FRAME_CAP);
    let cam = CamIf::declare(&mut pb, "cam", 48, 8);
    let dst_hit = pb.reg("dstmac_lut_hit", 1);
    let lut_element_op = pb.reg("lut_element_op", 8);
    let srcmac_lut_exist = pb.reg("srcmac_lut_exist", 1);

    let mut body = vec![dp.rx_wait(), label("rx")];

    // Look up the destination MAC.
    body.extend(cam.lookup(dp.dst_mac()));
    body.push(assign(dst_hit, cam.matched()));
    body.push(assign(lut_element_op, cam.value()));

    // Configure the metadata such that if we have a hit then set the
    // appropriate output port in the metadata, otherwise broadcast
    // (Figure 2, lines 4-9).
    body.push(if_else(
        var(dst_hit),
        vec![dp.set_output_port(resize(var(lut_element_op), 8))],
        vec![dp.broadcast()],
    ));
    body.extend(dp.transmit(dp.rx_len()));

    // Kiwi.Pause(); then add the source MAC to our LUT if it's not
    // already there, thus the switch "learns" (Figure 2, lines 11-18).
    body.extend(cam.lookup(dp.src_mac()));
    body.push(assign(srcmac_lut_exist, cam.matched()));
    body.push(if_then(
        lnot(var(srcmac_lut_exist)),
        cam.write(dp.src_mac(), resize(dp.input_port(), 8)),
    ));
    body.extend(dp.done());

    pb.thread("main", vec![forever(body)]);
    let prog = pb.build().expect("switch program is well-formed");
    // Table sizing/aging comes from the engine's TableConfig: a Cpu
    // deployment can hold millions of MACs, and a TTL gives the learned
    // entries IEEE-style aging (an idle station's entry expires and its
    // traffic floods again until re-learned).
    Service::with_sized_env(prog, move |cfg| {
        let entries = cfg.entries.unwrap_or(TABLE_ENTRIES);
        let mut env = IpEnv::new();
        env.attach(Box::new(
            CamModel::new("cam", entries, 48, 8, false).with_ttl(cfg.ttl_frames),
        ));
        env
    })
}

/// IP blocks used by [`switch_ip_cam`], for resource accounting.
pub fn switch_ip_cam_blocks() -> Vec<IpBlock> {
    vec![IpBlock::Cam {
        entries: TABLE_ENTRIES,
        key_bits: 48,
        value_bits: 8,
        native: false,
    }]
}

/// Balanced-tree parallel match over a program array: returns
/// `(hit, port)` expressions. Entry layout: `[56] valid, [55:8] mac,
/// [7:0] port`. This is what "CAM implemented in C#" compiles to —
/// parallel comparators in generated logic.
fn lut_match(arr: ArrId, lo: usize, hi: usize, key: &Expr) -> (Expr, Expr) {
    if lo == hi {
        let e = arr_read(arr, lit(lo as u64, 16));
        let valid = slice(e.clone(), 56, 56);
        let mac = slice(e.clone(), 55, 8);
        let port = slice(e, 7, 0);
        (band(valid, eq(mac, key.clone())), port)
    } else {
        let mid = (lo + hi) / 2;
        let (h1, p1) = lut_match(arr, lo, mid, key);
        let (h2, p2) = lut_match(arr, mid + 1, hi, key);
        (bor(h1.clone(), h2), mux(h1, p1, p2))
    }
}

/// Builds the behavioural-CAM switch with `entries` table slots.
pub fn switch_behavioural(entries: usize) -> Service {
    assert!(
        entries.is_power_of_two() && entries >= 2,
        "entries must be a power of two"
    );
    let (mut pb, dp) = service_builder("emu_switch_behavioural", FRAME_CAP);
    let lut = pb.array("LUT", 64, entries, ArrayBacking::Cam);
    let free = pb.reg("free", 16);
    let dst_hit = pb.reg("dstmac_lut_hit", 1);
    let dst_port = pb.reg("dst_port", 8);
    let src_exist = pb.reg("srcmac_lut_exist", 1);

    let mut body = vec![dp.rx_wait()];

    // Parallel destination match (one cycle of wide logic).
    let (dhit, dport) = lut_match(lut, 0, entries - 1, &dp.dst_mac());
    body.push(assign(dst_hit, dhit));
    body.push(assign(dst_port, dport));
    body.push(pause());

    body.push(if_else(
        var(dst_hit),
        vec![dp.set_output_port(resize(var(dst_port), 8))],
        vec![dp.broadcast()],
    ));
    body.extend(dp.transmit(dp.rx_len()));

    // Learning: parallel source match, then fill LUT[free] on miss with
    // the Figure 2 line 17 wrap of the free pointer.
    let (shit, _) = lut_match(lut, 0, entries - 1, &dp.src_mac());
    body.push(assign(src_exist, shit));
    body.push(pause());
    body.push(if_then(
        lnot(var(src_exist)),
        vec![
            arr_write(
                lut,
                var(free),
                concat_all([lit(1, 1), dp.src_mac(), resize(dp.input_port(), 8)]),
            ),
            assign(
                free,
                mux(
                    ge(var(free), lit(entries as u64 - 1, 16)),
                    lit(0, 16),
                    add(var(free), lit(1, 16)),
                ),
            ),
        ],
    ));
    body.extend(dp.done());

    pb.thread("main", vec![forever(body)]);
    Service::new(pb.build().expect("switch program is well-formed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::{assert_targets_agree, Target};
    use emu_types::proto::ether_type;
    use emu_types::{Frame, MacAddr};
    use netfpga_sim::native::{switch_forward, MacTable};

    fn frame(src: u64, dst: u64, port: u8) -> Frame {
        let mut f = Frame::ethernet(
            MacAddr::from_u64(dst),
            MacAddr::from_u64(src),
            ether_type::IPV4,
            &[0; 46],
        );
        f.in_port = port;
        f
    }

    fn check_learning(svc: Service) {
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        // A@0 -> B: flood.
        let out = inst.process(&frame(0xA, 0xB, 0)).unwrap();
        assert_eq!(out.tx[0].ports, 0b1110, "unknown dst must flood");
        // B@1 -> A: unicast to 0.
        let out = inst.process(&frame(0xB, 0xA, 1)).unwrap();
        assert_eq!(out.tx[0].ports, 0b0001, "learned dst must unicast");
        // A@0 -> B: unicast to 1.
        let out = inst.process(&frame(0xA, 0xB, 0)).unwrap();
        assert_eq!(out.tx[0].ports, 0b0010);
        // Frame content must be forwarded unmodified.
        assert_eq!(out.tx[0].frame.bytes(), frame(0xA, 0xB, 0).bytes());
    }

    #[test]
    fn ip_cam_switch_learns() {
        check_learning(switch_ip_cam());
    }

    #[test]
    fn behavioural_switch_learns() {
        check_learning(switch_behavioural(16));
    }

    #[test]
    fn both_variants_match_reference_model() {
        // Differential test against the reference switch's functional
        // model over a pseudo-random MAC workload.
        for svc in [switch_ip_cam(), switch_behavioural(16)] {
            let mut inst = svc.engine(Target::Fpga).build().unwrap();
            let mut reference = MacTable::new(TABLE_ENTRIES);
            let mut x = 0x12345u64;
            for i in 0..60 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let src = (x >> 10) % 8;
                let dst = (x >> 20) % 8;
                let port = (i % 4) as u8;
                let f = frame(src + 1, dst + 1, port);
                let got = inst.process(&f).unwrap();
                let want = switch_forward(&mut reference, &f, 4);
                let got_ports = got.tx.first().map(|t| t.ports).unwrap_or(0);
                let want_ports = want.first().map(|t| t.ports).unwrap_or(0);
                assert_eq!(
                    got_ports, want_ports,
                    "frame {i}: src {src} dst {dst} port {port}"
                );
            }
        }
    }

    #[test]
    fn cpu_and_fpga_targets_agree() {
        let frames: Vec<Frame> = (0..20)
            .map(|i| frame((i % 5) + 1, ((i + 2) % 5) + 1, (i % 4) as u8))
            .collect();
        assert_targets_agree(&switch_ip_cam(), &frames).unwrap();
        assert_targets_agree(&switch_behavioural(16), &frames).unwrap();
    }

    #[test]
    fn module_latency_near_paper() {
        // Table 3: Emu switch module latency 8 cycles. Accept a small
        // band — EXPERIMENTS.md records the exact measured value.
        let svc = switch_ip_cam();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        inst.process(&frame(0xB, 0xA, 1)).unwrap();
        let out = inst.process(&frame(0xA, 0xB, 0)).unwrap();
        assert!(
            (5..=14).contains(&out.cycles),
            "switch took {} cycles",
            out.cycles
        );
    }

    #[test]
    fn behavioural_free_pointer_wraps() {
        let svc = switch_behavioural(4);
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        for i in 0..6u64 {
            inst.process(&frame(100 + i, 0xB, (i % 4) as u8)).unwrap();
        }
        let free = inst.read_reg("free").unwrap().to_u64();
        assert!(free < 4, "free pointer must wrap, got {free}");
    }
}
