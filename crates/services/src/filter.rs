//! L3–L4 filter with an iptables-style front end (§4.1).
//!
//! "We provide a tool that emulates the command-line parameter interface
//! of iptables. Instead of modifying a Linux server's filters, it
//! generates code that slots into our learning switch. This turns the
//! switch into a L3 filter over sets of IP addresses or protocols (ICMP,
//! UDP, and TCP), or an L4 filter over ranges of TCP or UDP ports."
//!
//! [`parse_rule`] accepts a subset of iptables syntax; [`filter_switch`]
//! compiles the rule chain into match expressions inserted ahead of the
//! learning switch's forwarding decision — code generation, exactly as
//! the paper's tool does.

use emu_core::ipblock::CamIf;
use emu_core::proto::Ipv4Wrapper;
use emu_core::{service_builder, Service};
use emu_rtl::{CamModel, IpEnv};
use emu_types::proto::{ether_type, ip_proto, offset};
use emu_types::Ipv4;
use kiwi_ir::dsl::*;
use kiwi_ir::Expr;

/// Rule verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterAction {
    /// Forward normally.
    Accept,
    /// Silently discard.
    Drop,
}

/// One filter rule: all present conditions must match (conjunction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterRule {
    /// Verdict when the rule matches.
    pub action: FilterAction,
    /// IP protocol constraint.
    pub proto: Option<u8>,
    /// Source subnet constraint.
    pub src: Option<(Ipv4, u8)>,
    /// Destination subnet constraint.
    pub dst: Option<(Ipv4, u8)>,
    /// Source port range (TCP/UDP only).
    pub sport: Option<(u16, u16)>,
    /// Destination port range (TCP/UDP only).
    pub dport: Option<(u16, u16)>,
}

impl FilterRule {
    /// An empty (match-all) rule with the given action.
    pub fn any(action: FilterAction) -> Self {
        FilterRule {
            action,
            proto: None,
            src: None,
            dst: None,
            sport: None,
            dport: None,
        }
    }
}

fn parse_subnet(s: &str) -> Result<(Ipv4, u8), String> {
    let (ip, len) = match s.split_once('/') {
        Some((ip, len)) => (ip, len.parse::<u8>().map_err(|e| e.to_string())?),
        None => (s, 32),
    };
    if len > 32 {
        return Err(format!("prefix length {len} out of range"));
    }
    Ok((
        ip.parse()
            .map_err(|e: emu_types::AddrParseError| e.to_string())?,
        len,
    ))
}

fn parse_ports(s: &str) -> Result<(u16, u16), String> {
    let (lo, hi) = match s.split_once(':') {
        Some((lo, hi)) => (
            lo.parse::<u16>().map_err(|e| e.to_string())?,
            hi.parse::<u16>().map_err(|e| e.to_string())?,
        ),
        None => {
            let p = s.parse::<u16>().map_err(|e| e.to_string())?;
            (p, p)
        }
    };
    if lo > hi {
        return Err(format!("inverted port range {lo}:{hi}"));
    }
    Ok((lo, hi))
}

/// Parses one iptables-style rule, e.g.
/// `-A FORWARD -p tcp -s 10.0.0.0/8 --dport 80:443 -j DROP`.
pub fn parse_rule(line: &str) -> Result<FilterRule, String> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let mut rule = FilterRule::any(FilterAction::Accept);
    let mut i = 0;
    let mut have_action = false;
    while i < toks.len() {
        let need = |i: usize| -> Result<&str, String> {
            toks.get(i + 1)
                .copied()
                .ok_or_else(|| format!("{} needs an argument", toks[i]))
        };
        match toks[i] {
            "-A" => {
                // Chain name accepted and ignored (single chain here).
                let _ = need(i)?;
                i += 2;
            }
            "-p" => {
                rule.proto = Some(match need(i)? {
                    "icmp" => ip_proto::ICMP,
                    "tcp" => ip_proto::TCP,
                    "udp" => ip_proto::UDP,
                    other => return Err(format!("unknown protocol {other}")),
                });
                i += 2;
            }
            "-s" => {
                rule.src = Some(parse_subnet(need(i)?)?);
                i += 2;
            }
            "-d" => {
                rule.dst = Some(parse_subnet(need(i)?)?);
                i += 2;
            }
            "--sport" => {
                rule.sport = Some(parse_ports(need(i)?)?);
                i += 2;
            }
            "--dport" => {
                rule.dport = Some(parse_ports(need(i)?)?);
                i += 2;
            }
            "-j" => {
                rule.action = match need(i)? {
                    "DROP" => FilterAction::Drop,
                    "ACCEPT" => FilterAction::Accept,
                    other => return Err(format!("unknown target {other}")),
                };
                have_action = true;
                i += 2;
            }
            other => return Err(format!("unknown token {other}")),
        }
    }
    if !have_action {
        return Err("rule needs -j ACCEPT|DROP".into());
    }
    if (rule.sport.is_some() || rule.dport.is_some())
        && !matches!(rule.proto, Some(p) if p == ip_proto::TCP || p == ip_proto::UDP)
    {
        return Err("port matches require -p tcp or -p udp".into());
    }
    Ok(rule)
}

/// Compiles a rule into a 1-bit match expression over the frame.
fn rule_match_expr(rule: &FilterRule, dp: &emu_core::Dataplane, ip: &Ipv4Wrapper) -> Expr {
    // Non-IPv4 frames never match L3/L4 rules.
    let mut cond = dp.ethertype_is(ether_type::IPV4);
    if let Some(p) = rule.proto {
        cond = band(cond, ip.protocol_is(p));
    }
    let subnet = |addr: Expr, (net, len): (Ipv4, u8)| -> Expr {
        if len == 0 {
            return tru();
        }
        let mask = if len == 32 {
            u32::MAX
        } else {
            u32::MAX << (32 - u32::from(len))
        };
        eq(
            band(addr, lit(u64::from(mask), 32)),
            lit(u64::from(net.0 & mask), 32),
        )
    };
    if let Some(s) = rule.src {
        cond = band(cond, subnet(ip.src(), s));
    }
    if let Some(d) = rule.dst {
        cond = band(cond, subnet(ip.dst(), d));
    }
    // L4 ports live at the same offsets for TCP and UDP.
    if let Some((lo, hi)) = rule.sport {
        let sp = dp.get16(offset::L4);
        cond = band(
            cond,
            band(
                ge(sp.clone(), lit(u64::from(lo), 16)),
                le(sp, lit(u64::from(hi), 16)),
            ),
        );
    }
    if let Some((lo, hi)) = rule.dport {
        let dpn = dp.get16(offset::L4 + 2);
        cond = band(
            cond,
            band(
                ge(dpn.clone(), lit(u64::from(lo), 16)),
                le(dpn, lit(u64::from(hi), 16)),
            ),
        );
    }
    cond
}

/// Builds a learning switch with the rule chain compiled in front of the
/// forwarding decision (first matching rule wins; `default` applies when
/// none match).
pub fn filter_switch(rules: &[FilterRule], default: FilterAction) -> Service {
    let (mut pb, dp) = service_builder("emu_l3l4_filter", 1536);
    let ip = Ipv4Wrapper::new(dp);
    let cam = CamIf::declare(&mut pb, "cam", 48, 8);
    let dst_hit = pb.reg("dstmac_lut_hit", 1);
    let lut_port = pb.reg("lut_element_op", 8);
    let src_exist = pb.reg("srcmac_lut_exist", 1);
    let drop_it = pb.reg("drop_it", 1);
    let n_dropped = pb.reg("n_dropped", 32);

    // First-match-wins chain, folded from the back: default ← rule_n ←
    // ... ← rule_0.
    let mut verdict: Expr = match default {
        FilterAction::Drop => tru(),
        FilterAction::Accept => fls(),
    };
    for rule in rules.iter().rev() {
        let bit = match rule.action {
            FilterAction::Drop => tru(),
            FilterAction::Accept => fls(),
        };
        verdict = mux(rule_match_expr(rule, &dp, &ip), bit, verdict);
    }

    let mut forward = Vec::new();
    forward.extend(cam.lookup(dp.dst_mac()));
    forward.push(assign(dst_hit, cam.matched()));
    forward.push(assign(lut_port, cam.value()));
    forward.push(if_else(
        var(dst_hit),
        vec![dp.set_output_port(resize(var(lut_port), 8))],
        vec![dp.broadcast()],
    ));
    forward.extend(dp.transmit(dp.rx_len()));
    forward.extend(cam.lookup(dp.src_mac()));
    forward.push(assign(src_exist, cam.matched()));
    forward.push(if_then(
        lnot(var(src_exist)),
        cam.write(dp.src_mac(), resize(dp.input_port(), 8)),
    ));

    let mut body = vec![dp.rx_wait(), label("rx")];
    body.push(assign(drop_it, verdict));
    body.push(if_else(
        var(drop_it),
        vec![assign(n_dropped, add(var(n_dropped), lit(1, 32)))],
        forward,
    ));
    body.extend(dp.done());

    pb.thread("main", vec![forever(body)]);
    let prog = pb.build().expect("filter program is well-formed");
    Service::with_env(prog, || {
        let mut env = IpEnv::new();
        env.attach(Box::new(CamModel::new("cam", 256, 48, 8, false)));
        env
    })
}

/// Parses a list of rule lines and builds the filter switch.
pub fn filter_switch_from_lines(lines: &[&str], default: FilterAction) -> Result<Service, String> {
    let rules = lines
        .iter()
        .map(|l| parse_rule(l))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(filter_switch(&rules, default))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::udp_frame;
    use crate::tcp_ping::syn_frame;
    use emu_core::Target;

    #[test]
    fn parse_full_rule() {
        let r = parse_rule("-A FORWARD -p tcp -s 10.0.0.0/8 --dport 80:443 -j DROP").unwrap();
        assert_eq!(r.action, FilterAction::Drop);
        assert_eq!(r.proto, Some(ip_proto::TCP));
        assert_eq!(r.src, Some(("10.0.0.0".parse().unwrap(), 8)));
        assert_eq!(r.dport, Some((80, 443)));
        assert_eq!(r.sport, None);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_rule("-p tcp").is_err()); // no action
        assert!(parse_rule("-p sctp -j DROP").is_err());
        assert!(parse_rule("--dport 80 -j DROP").is_err()); // port without tcp/udp
        assert!(parse_rule("-s 10.0.0.0/40 -j DROP").is_err());
        assert!(parse_rule("--dport 90:80 -p tcp -j DROP").is_err());
        assert!(parse_rule("-x nonsense -j DROP").is_err());
        assert!(parse_rule("-j REJECT").is_err());
    }

    #[test]
    fn single_port_shorthand() {
        let r = parse_rule("-p udp --dport 53 -j DROP").unwrap();
        assert_eq!(r.dport, Some((53, 53)));
    }

    #[test]
    fn drops_matching_tcp_port_range() {
        let svc = filter_switch_from_lines(
            &["-A FORWARD -p tcp --dport 80:443 -j DROP"],
            FilterAction::Accept,
        )
        .unwrap();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        // Port 80: dropped.
        assert!(inst.process(&syn_frame(4000, 80, 1)).unwrap().tx.is_empty());
        // Port 443: dropped (range inclusive).
        assert!(inst
            .process(&syn_frame(4000, 443, 1))
            .unwrap()
            .tx
            .is_empty());
        // Port 22: forwarded.
        assert_eq!(inst.process(&syn_frame(4000, 22, 1)).unwrap().tx.len(), 1);
        assert_eq!(inst.read_reg("n_dropped").unwrap().to_u64(), 2);
    }

    #[test]
    fn subnet_match_drops_source() {
        let svc = filter_switch_from_lines(
            &["-A FORWARD -s 192.168.0.0/16 -j DROP"],
            FilterAction::Accept,
        )
        .unwrap();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let inside = udp_frame(
            "192.168.9.9".parse().unwrap(),
            1,
            "1.1.1.1".parse().unwrap(),
            2,
            0,
        );
        let outside = udp_frame(
            "172.16.0.1".parse().unwrap(),
            1,
            "1.1.1.1".parse().unwrap(),
            2,
            0,
        );
        assert!(inst.process(&inside).unwrap().tx.is_empty());
        assert_eq!(inst.process(&outside).unwrap().tx.len(), 1);
    }

    #[test]
    fn first_match_wins() {
        // Accept ICMP explicitly, then drop everything from 10/8: an ICMP
        // packet from 10.1.1.1 must pass.
        let svc = filter_switch_from_lines(
            &[
                "-A FORWARD -p icmp -j ACCEPT",
                "-A FORWARD -s 10.0.0.0/8 -j DROP",
            ],
            FilterAction::Accept,
        )
        .unwrap();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let ping = crate::icmp::echo_request_frame(8, 1); // src 10.0.0.1
        assert_eq!(inst.process(&ping).unwrap().tx.len(), 1, "ICMP accepted");
        let udp = udp_frame(
            "10.0.0.1".parse().unwrap(),
            5,
            "1.1.1.1".parse().unwrap(),
            6,
            0,
        );
        assert!(
            inst.process(&udp).unwrap().tx.is_empty(),
            "UDP from 10/8 dropped"
        );
    }

    #[test]
    fn default_drop_policy() {
        let svc =
            filter_switch_from_lines(&["-A FORWARD -p udp -j ACCEPT"], FilterAction::Drop).unwrap();
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let udp = udp_frame(
            "1.2.3.4".parse().unwrap(),
            5,
            "5.6.7.8".parse().unwrap(),
            6,
            0,
        );
        assert_eq!(inst.process(&udp).unwrap().tx.len(), 1);
        assert!(inst.process(&syn_frame(1, 2, 3)).unwrap().tx.is_empty());
        // Non-IPv4 also hits the default.
        let arp = emu_types::Frame::ethernet(
            emu_types::MacAddr::BROADCAST,
            emu_types::MacAddr::from_u64(9),
            ether_type::ARP,
            &[0; 46],
        );
        assert!(inst.process(&arp).unwrap().tx.is_empty());
    }

    #[test]
    fn still_a_learning_switch() {
        let svc = filter_switch(&[], FilterAction::Accept);
        let mut inst = svc.engine(Target::Fpga).build().unwrap();
        let mut a = udp_frame(
            "1.1.1.1".parse().unwrap(),
            1,
            "2.2.2.2".parse().unwrap(),
            2,
            0,
        );
        let out = inst.process(&a).unwrap();
        assert_eq!(out.tx[0].ports, 0b1110, "unknown dst floods");
        // Teach it the reverse direction and check unicast.
        let mut b = a.clone();
        {
            let bytes = b.bytes_mut();
            // Swap MACs so the reply goes to the learned address.
            let (dst, src): (Vec<u8>, Vec<u8>) = (bytes[0..6].to_vec(), bytes[6..12].to_vec());
            bytes[0..6].copy_from_slice(&src);
            bytes[6..12].copy_from_slice(&dst);
        }
        b.in_port = 3;
        let out = inst.process(&b).unwrap();
        assert_eq!(out.tx[0].ports, 1 << 0);
        let _ = &mut a;
    }
}
